#!/bin/bash
cd /root/repo
python -m pytest tests/ 2>&1 | tee /root/repo/test_output.txt > /dev/null
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo FINAL_DONE > /root/repo/.final_done
