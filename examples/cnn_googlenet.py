#!/usr/bin/env python3
"""Optimize the CNN kernel for GoogLeNet layer shapes (Section 6.3).

For each 3x3-filter layer shape in GoogLeNet, finds the best tiling and
thread-group selection under a slow bus (memory-bound regime, where the
selection matters most) and prints a Table-6.6-style summary, then shows
how the selection changes as the bus speeds up across the boundary region
(Table 6.7's story) for the 128/28/28/96 layer.

Run:  python examples/cnn_googlenet.py [--quick]
"""

import sys

from repro import Platform
from repro.kernels import GOOGLENET_3X3_LAYERS, STUDY_LAYER, \
    bounds_label, googlenet_cnn
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt import ComponentOptimizer, TreeOptimizer
from repro.sim.profiler import fit_component_model


def selection_string(solution) -> str:
    groups = "/".join(str(solution.thread_groups[v]) for v in "kpq")
    sizes = "/".join(str(solution.tile_sizes[v]) for v in "kpqc")
    return f"R(k/p/q)={groups}  K(k/p/q/c)={sizes}"


def per_layer_selections(layers, bus_gb: float) -> None:
    print(f"=== best selections at {bus_gb:g} GB/s (Table 6.6 style) ===")
    for bounds in layers:
        tree = LoopTree.build(googlenet_cnn(bounds))
        optimizer = TreeOptimizer(tree)
        result = optimizer.optimize(Platform().with_bus(bus_gb * 1e9))
        best = result.choices[0].result.best
        print(f"  {bounds_label(bounds):>22}: "
              f"{selection_string(best.solution)}  "
              f"makespan {best.makespan_ns:,.0f} ns")


def boundary_region(steps) -> None:
    print("\n=== boundary region for 128/28/28/96 (Table 6.7 style) ===")
    tree = LoopTree.build(googlenet_cnn(STUDY_LAYER))
    comp = component_at(tree, ["n", "k", "p", "q", "c"])
    model = fit_component_model(comp)
    for speed in steps:
        platform = Platform().with_bus(speed * 1e9)
        result = ComponentOptimizer(comp, platform, model).optimize(8)
        best = result.best
        spm_pct = 100.0 * best.spm_bytes_needed / platform.spm_bytes
        print(f"  {speed:7.4f} GB/s: {selection_string(best.solution)}  "
              f"makespan {best.makespan_ns:>13,.0f} ns  "
              f"traffic {best.transferred_bytes:>11,} B  "
              f"SPM {spm_pct:4.1f}%")


def main() -> None:
    quick = "--quick" in sys.argv
    layers = GOOGLENET_3X3_LAYERS[:2] if quick else GOOGLENET_3X3_LAYERS
    per_layer_selections(layers, bus_gb=1 / 512)
    steps = [1 / 64, 1 / 64 + 0.05, 1 / 64 + 0.10] if quick else \
        [1 / 64 + 0.02 * i for i in range(6)]
    boundary_region(steps)


if __name__ == "__main__":
    main()
