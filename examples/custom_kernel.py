#!/usr/bin/env python3
"""Bring your own kernel: declare a loop nest, compile it, validate it.

Shows the full user journey for a kernel that is not part of
PolyBench-NN — a batched matrix-vector product with a guarded
initialisation (the same idiom as the LSTM gates):

    for (b = 0; b < NB; b++)
      for (i = 0; i < NI; i++)
        for (j = 0; j < NJ; j++) {
          if (j == 0) y[b][i] = bias[i];
          y[b][i] += A[i][j] * x[b][j];
        }

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import Platform, PremCompiler
from repro.loopir import LoopTree, for_, kernel_, stmt_
from repro.poly import Array, Constraint


def build_kernel(nb=4, ni=96, nj=120):
    mat = Array("A", (ni, nj), "float")
    vec = Array("x", (nb, nj), "float")
    out = Array("y", (nb, ni), "float")
    bias = Array("bias", (ni,), "float")
    arrays = {a.name: a for a in (mat, vec, out, bias)}

    def init_compute(a, pt):
        a["y"][pt["b"], pt["i"]] = a["bias"][(pt["i"],)]

    def mac_compute(a, pt):
        b, i, j = pt["b"], pt["i"], pt["j"]
        a["y"][b, i] += a["A"][i, j] * a["x"][b, j]

    init = stmt_("init", arrays,
                 writes={"y": ("b", "i")}, reads={"bias": ("i",)},
                 guards=[Constraint.eq("j", 0)],
                 compute=init_compute, flops=0)
    mac = stmt_("mac", arrays,
                writes={"y": ("b", "i")},
                reads={"y": ("b", "i"), "A": ("i", "j"), "x": ("b", "j")},
                compute=mac_compute, flops=2)
    nest = for_("b", nb, for_("i", ni, for_("j", nj, init, mac)))
    return kernel_("batched_matvec", list(arrays.values()), [nest],
                   {"NB": nb, "NI": ni, "NJ": nj})


def main() -> None:
    kernel = build_kernel()

    print("=== analysis ===")
    tree = LoopTree.build(kernel)
    print(tree.render())
    print(f"dependences found: {len(tree.dependences)}")

    print("\n=== compile for a small-SPM platform ===")
    platform = Platform(spm_bytes=16 * 1024, cores=4)
    result = PremCompiler(platform).compile(kernel, tree=tree)
    print(result.opt_result.describe())
    print(f"normalised makespan: {result.normalized_makespan:.3f}")

    print("\n=== validate the transformed program ===")
    expected = result.run_reference(seed=2)
    actual = result.run_functional(seed=2)
    np.testing.assert_allclose(actual["y"], expected["y"],
                               rtol=1e-5, atol=1e-6)
    print("y matches the sequential reference.")

    print("\n=== PREM-C skeleton ===")
    for label, source in result.generate_c().items():
        print(f"--- {label}: {len(source.splitlines())} lines generated")


if __name__ == "__main__":
    main()
