#!/usr/bin/env python3
"""Quickstart: compile one kernel end to end and inspect every artefact.

Compiles the LSTM forward pass for the paper's default platform
(8 cores @ 1 GHz, 128 KiB SPM/core, shared DMA, 16 GB/s bus), prints the
loop tree, the chosen tiling/parallelization per component, the predicted
makespan against the ideal single-core bound, and a slice of the generated
PREM-C.  Finishes by running the functional PREM VM on a miniature
instance and checking it against the sequential reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LoopTree, Platform, PremCompiler, make_kernel


def main() -> None:
    platform = Platform()                       # Section 6.1 defaults
    kernel = make_kernel("lstm", "LARGE")       # NS=650, NP=700

    print("=== loop tree (application model, Section 3.3) ===")
    tree = LoopTree.build(kernel)
    print(tree.render())

    print("\n=== compiling (Algorithms 1 + 2) ===")
    compiler = PremCompiler(platform)
    result = compiler.compile(kernel, tree=tree)
    print(result.opt_result.describe())
    print(f"ideal single-core bound : {result.ideal_ns:>16,.0f} ns")
    print(f"predicted makespan      : {result.makespan_ns:>16,.0f} ns")
    print(f"normalised (Fig 6.1 y)  : {result.normalized_makespan:.4f}")

    print("\n=== generated PREM-C (first 30 lines of one component) ===")
    sources = result.generate_c()
    label, source = next(iter(sources.items()))
    print(f"--- component {label} ---")
    print("\n".join(source.splitlines()[:30]))

    print("\n=== functional validation on a miniature instance ===")
    mini = make_kernel("lstm", "MINI")
    mini_result = PremCompiler(Platform(spm_bytes=8192)).compile(mini)
    expected = mini_result.run_reference(seed=1)
    actual = mini_result.run_functional(seed=1)
    for name in expected:
        np.testing.assert_allclose(
            actual[name], expected[name], rtol=1e-5, atol=1e-6)
    print("PREM VM output matches the sequential reference for every "
          "array — the generated schedule is semantics preserving.")


if __name__ == "__main__":
    main()
