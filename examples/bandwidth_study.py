#!/usr/bin/env python3
"""Bandwidth study: regenerate a miniature Figure 6.1 from the library.

Sweeps the main-memory bus speed and prints, per kernel, the makespan of
our optimizer on 1 and 8 cores and of the greedy baseline on 8 cores,
normalised by the ideal single-core execution — the exact quantities on
Figure 6.1's y axis.  Also prints where each kernel's schedule flips from
memory bound to computation bound, and the kernel's Pareto frontier
(makespan / SPM / DMA bytes / cores) at each bus speed.

The plateau is detected on the RAW makespans (:func:`plateau_index`):
the normalised columns divide by a per-platform ideal, so a ratio of
normalised values only equals the ratio of raw values while the
normaliser happens to be invariant across the sweep — raw makespans
make the detection correct whatever the normaliser does.

Run:  python examples/bandwidth_study.py [kernels...]   (default: lstm rnn)
"""

import sys
from typing import Optional, Sequence

from repro import Platform, make_kernel
from repro.loopir import LoopTree
from repro.opt import (
    GreedyOptimizer,
    ParetoOptimizer,
    TreeOptimizer,
    ideal_makespan_ns,
    kernel_front,
)
from repro.opt.exhaustive import SearchSpaceTooLarge

SPEEDS_GB = [1 / 16, 1 / 4, 1, 4, 16]

#: A sweep step that improves the makespan by less than this factor
#: means the bus is no longer the bottleneck.
PLATEAU_THRESHOLD = 1.1


def plateau_index(makespans: Sequence[float],
                  threshold: float = PLATEAU_THRESHOLD) -> Optional[int]:
    """First sweep index where the schedule is computation bound.

    *makespans* are RAW makespans in sweep order (slowest bus first);
    the flip is the first point improving on its predecessor by less
    than *threshold*.  None when every step is still a >= *threshold*
    improvement (memory bound across the whole sweep)."""
    for index in range(1, len(makespans)):
        if makespans[index - 1] / makespans[index] < threshold:
            return index
    return None


def greedy_fn(platform, cores):
    def optimize_fn(component, exec_model):
        return GreedyOptimizer(
            component, platform, exec_model).optimize(cores)
    return optimize_fn


def pareto_fn(platform, cores):
    def optimize_fn(component, exec_model):
        return ParetoOptimizer(
            component, platform, exec_model).optimize(cores)
    return optimize_fn


def study(name: str, preset: str = "LARGE",
          speeds: Sequence[float] = SPEEDS_GB,
          pareto_preset: str = "SMALL") -> None:
    kernel = make_kernel(name, preset)
    tree = LoopTree.build(kernel)
    optimizer = TreeOptimizer(tree)
    print(f"\n=== {name} ({preset}) ===")
    rows = []
    raw_makespans = []
    for speed in speeds:
        platform = Platform().with_bus(speed * 1e9)
        ideal = ideal_makespan_ns(kernel, platform)
        ours8_ns = optimizer.optimize(platform).makespan_ns
        ours1 = optimizer.optimize(platform, cores=1).makespan_ns / ideal
        greedy = optimizer.optimize(
            platform, optimize_fn=greedy_fn(platform, 8)
        ).makespan_ns / ideal
        raw_makespans.append(ours8_ns)
        rows.append((speed, ours1, ours8_ns / ideal, greedy))
    flip = plateau_index(raw_makespans)

    print(f"{'bus GB/s':>9} {'ours-1c':>9} {'ours-8c':>9} {'greedy-8c':>10}")
    for index, (speed, ours1, ours8, greedy) in enumerate(rows):
        marker = ""
        if index >= 1 and raw_makespans[index - 1] / \
                raw_makespans[index] < PLATEAU_THRESHOLD:
            marker = "  <- computation bound (plateau)"
        print(f"{speed:>9.4f} {ours1:>9.3f} {ours8:>9.3f} "
              f"{greedy:>10.3f}{marker}")
    if flip is None:
        print("memory bound across the whole sweep")
    else:
        print(f"memory -> computation bound at {speeds[flip]:g} GB/s")

    # The same sweep through the multi-objective optimizer: at each bus
    # speed, the kernel's exact (makespan, SPM, DMA, cores) frontier.
    # The full sweep is exhaustive, so it runs on the smaller preset.
    pareto_tree = LoopTree.build(make_kernel(name, pareto_preset))
    print(f"\npareto frontier per bus speed ({pareto_preset}):")
    print(f"{'bus GB/s':>9} {'front':>6} {'fastest ns':>12} "
          f"{'@SPM B':>8} {'leanest B':>10} {'@ns':>12}")
    for speed in speeds:
        platform = Platform().with_bus(speed * 1e9)
        try:
            result = TreeOptimizer(pareto_tree).optimize(
                platform, optimize_fn=pareto_fn(platform, None))
        except SearchSpaceTooLarge as error:
            print(f"{speed:>9.4f}  pareto sweep skipped: {error}")
            continue
        front = kernel_front(result.choices)
        if not front:
            print(f"{speed:>9.4f}  (infeasible)")
            continue
        fastest = front[0]
        leanest = min(front, key=lambda p: p.spm_bytes)
        print(f"{speed:>9.4f} {len(front):>6} {fastest.makespan_ns:>12,.0f} "
              f"{fastest.spm_bytes:>8,} {leanest.spm_bytes:>10,} "
              f"{leanest.makespan_ns:>12,.0f}")


def main() -> None:
    names = sys.argv[1:] or ["lstm", "rnn"]
    for name in names:
        study(name)


if __name__ == "__main__":
    main()
