#!/usr/bin/env python3
"""Bandwidth study: regenerate a miniature Figure 6.1 from the library.

Sweeps the main-memory bus speed and prints, per kernel, the makespan of
our optimizer on 1 and 8 cores and of the greedy baseline on 8 cores,
normalised by the ideal single-core execution — the exact quantities on
Figure 6.1's y axis.  Also prints where each kernel's schedule flips from
memory bound to computation bound.

Run:  python examples/bandwidth_study.py [kernels...]   (default: lstm rnn)
"""

import sys

from repro import Platform, make_kernel
from repro.loopir import LoopTree
from repro.opt import GreedyOptimizer, TreeOptimizer, ideal_makespan_ns

SPEEDS_GB = [1 / 16, 1 / 4, 1, 4, 16]


def greedy_fn(platform, cores):
    def optimize_fn(component, exec_model):
        return GreedyOptimizer(
            component, platform, exec_model).optimize(cores)
    return optimize_fn


def study(name: str) -> None:
    kernel = make_kernel(name, "LARGE")
    tree = LoopTree.build(kernel)
    optimizer = TreeOptimizer(tree)
    print(f"\n=== {name} (LARGE) ===")
    header = f"{'bus GB/s':>9} {'ours-1c':>9} {'ours-8c':>9} {'greedy-8c':>10}"
    print(header)
    previous = None
    for speed in SPEEDS_GB:
        platform = Platform().with_bus(speed * 1e9)
        ideal = ideal_makespan_ns(kernel, platform)
        ours8 = optimizer.optimize(platform).makespan_ns / ideal
        ours1 = optimizer.optimize(platform, cores=1).makespan_ns / ideal
        greedy = optimizer.optimize(
            platform, optimize_fn=greedy_fn(platform, 8)
        ).makespan_ns / ideal
        marker = ""
        if previous is not None and previous / ours8 < 1.1:
            marker = "  <- computation bound (plateau)"
        print(f"{speed:>9.4f} {ours1:>9.3f} {ours8:>9.3f} "
              f"{greedy:>10.3f}{marker}")
        previous = ours8


def main() -> None:
    names = sys.argv[1:] or ["lstm", "rnn"]
    for name in names:
        study(name)


if __name__ == "__main__":
    main()
