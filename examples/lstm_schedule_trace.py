#!/usr/bin/env python3
"""Reproduce the Section 3.5 walkthrough: Table 3.1's schedule trace and
Table 3.2's swap-parameter table for the LSTM running example.

Uses the paper's illustrative (deliberately non-optimal) solution for
component (s1_0, p): K = (109, 350), R = (3, 1) — twelve tiles over three
cores, four segments each — and prints, per segment on core 0, the PREM
API calls issued, the DMA transfers running in parallel, and the SPM
buffer contents afterwards.

Run:  python examples/lstm_schedule_trace.py
"""

from repro import Solution, make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.prem.macros import MacroBuilder, render_trace

GROUPS = {
    "U_ifog": ["U_i", "U_f", "U_o", "U_g"],
    "ifog": ["i", "f", "o", "g"],
}


def main() -> None:
    kernel = make_kernel("lstm", "LARGE")
    tree = LoopTree.build(kernel)
    comp = component_at(tree, ["s1_0", "p"])
    solution = Solution(comp, {"s1_0": 109, "p": 350},
                        {"s1_0": 3, "p": 1})
    builder = MacroBuilder(comp, solution)

    print("=== SegmentToSwap sets on core 0 (Section 3.5) ===")
    for name, schedule in builder.core_schedules(0).items():
        stride = schedule.change_stride
        print(f"  {name:>6} [{schedule.mode}]: swap at segments "
              f"{schedule.segments_to_swap}  "
              f"change stride {'-' if stride is None else stride}")

    print(f"\nEquation 3.1 (same swap indices on all cores): "
          f"{builder.segments_to_swap_uniform()}")

    print("\n=== Table 3.1: schedule trace for core 0 (t = 0) ===")
    rows = builder.trace(0, outer={"t": 0}, groups=GROUPS)
    print(render_trace(rows))

    print("\n=== Table 3.2: gate-array swap parameters per core ===")
    print(f"{'core':>4}  {'swap#':>5}  {'offset (elems)':>15}  "
          f"{'size (bytes)':>12}")
    for core in range(3):
        schedule = builder.core_schedules(core)["i"]
        for event in schedule.events:
            print(f"{core:>4}  {event.index:>5}  "
                  f"{event.call.src_offset():>15}  "
                  f"{event.call.size[0]:>12}")


if __name__ == "__main__":
    main()
