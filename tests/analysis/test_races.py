"""Inter-core race detection on forged and genuine footprints."""

from repro.analysis import Footprint, check_races


def _codes(diags):
    return {d.code for d in diags}


class TestClean:
    def test_multicore_plan_is_race_free(self, mini_ctx):
        assert len(mini_ctx.cores()) > 1
        assert check_races(mini_ctx) == []

    def test_single_core_plan_is_trivially_race_free(self, deep_ctx):
        assert check_races(deep_ctx) == []


class TestFootprints:
    def test_footprints_cover_every_core(self, mini_ctx):
        footprints = mini_ctx.array_footprints()
        assert sorted(footprints) == list(
            range(mini_ctx.solution.threads))
        # Every core reads something and writes something.
        for per_core in footprints.values():
            assert any(fp.reads for fp in per_core.values())
            assert any(fp.writes for fp in per_core.values())

    def test_footprints_are_cached(self, mini_ctx):
        assert mini_ctx.array_footprints() is mini_ctx.array_footprints()


class TestForgedOverlap:
    def _forge(self, ctx, *, shared_writes):
        """Give two cores identical hulls over one real array."""
        name = sorted(ctx.component.arrays())[0]
        real = ctx.array_footprints()
        hull = next(
            fp.reads[0] if fp.reads else fp.writes[0]
            for per_core in real.values()
            for fp in [per_core[name]] if fp.reads or fp.writes)
        writer = Footprint(reads=(), writes=(hull,))
        other = writer if shared_writes else Footprint(
            reads=(hull,), writes=())
        ctx.footprints = {0: {name: writer}, 1: {name: other}}
        return name

    def test_write_write_overlap_flagged(self, mini_ctx):
        name = self._forge(mini_ctx, shared_writes=True)
        found = check_races(mini_ctx)
        assert "PREM101" in _codes(found)
        assert all(d.array == name for d in found)

    def test_write_read_overlap_flagged(self, mini_ctx):
        self._forge(mini_ctx, shared_writes=False)
        found = check_races(mini_ctx)
        assert _codes(found) == {"PREM102"}

    def test_one_diagnostic_per_pair_and_kind(self, mini_ctx):
        self._forge(mini_ctx, shared_writes=True)
        found = check_races(mini_ctx)
        keys = [(d.code, d.array, d.core) for d in found]
        assert len(keys) == len(set(keys))
