"""Property test: the verifier matches the slot-convention ground truth.

For every corruptible transfer of the deep plan, the static campaign's
enumeration knows whether the corruption is harmful (drop/duplicate
always; a delayed load iff it lands past its first consumer segment).
The semantic passes must detect every harmful case and stay silent on
every benign one — soundness *and* precision, over randomly drawn
cases.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import RACE_HAZARD_CODES, SEMANTIC_PASSES
from repro.faults.staticdet import _apply_case, _enumerate_cases


@pytest.fixture(scope="module")
def universe(deep_compiled):
    result, verifier = deep_compiled
    compiled = result.components[0]
    ctx = verifier.build_context(compiled.component, compiled.solution)
    cases = _enumerate_cases(ctx, magnitudes=(1, 2, 3, 5))
    assert cases
    return verifier, ctx, cases


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_verdict_matches_ground_truth(universe, data):
    verifier, ctx, cases = universe
    case = data.draw(st.sampled_from(cases))
    models = ctx.clone_models()
    _apply_case(models, case)
    bag = verifier.verify_context(
        ctx.with_models(models), passes=SEMANTIC_PASSES).diagnostics
    scored = bag.with_codes(RACE_HAZARD_CODES)
    if case.harmful:
        assert scored, (
            f"harmful case went undetected: {case.describe()}")
    else:
        assert not scored, (
            f"benign case raised a false alarm: {case.describe()}\n"
            + "\n".join(d.describe() for d in scored))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_corruption_never_escapes_the_clone(universe, data):
    verifier, ctx, cases = universe
    case = data.draw(st.sampled_from(cases))
    models = ctx.clone_models()
    _apply_case(models, case)
    # The pristine context must keep verifying clean afterwards.
    assert not verifier.verify_context(ctx).diagnostics
