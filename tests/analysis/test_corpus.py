"""Corpus sweep: every kernel x strategy compiles to zero diagnostics.

This is the headline guarantee of the static verifier: the compiler
never emits an artifact the analyzer objects to.  Any diagnostic here
is a bug in one of the two — the failure message says which plan and
which rule disagree.
"""

import pytest

from repro.compiler import PremCompiler
from repro.kernels import make_kernel

KERNELS = ("cnn", "convrelu", "lstm", "maxpool", "sumpool", "rnn")
STRATEGIES = ("heuristic", "greedy", "exhaustive", "pruned")


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("kernel_name", KERNELS)
def test_clean_compile_means_zero_diagnostics(kernel_name, strategy):
    result = PremCompiler().compile(
        make_kernel(kernel_name, "MINI"), strategy=strategy)
    report = result.verify_static()
    assert not report.merged, (
        f"{kernel_name}/{strategy}: the verifier disagrees with the "
        f"compiler:\n{report.render_text()}")


@pytest.mark.parametrize("strategy", ("heuristic", "greedy"))
@pytest.mark.parametrize("kernel_name", KERNELS)
def test_fissioned_compile_is_equally_clean(kernel_name, strategy):
    """The loop-fission pre-pass never produces objectionable artifacts."""
    result = PremCompiler().compile(
        make_kernel(kernel_name, "MINI"), strategy=strategy,
        fission="auto")
    report = result.verify_static()
    assert not report.merged, (
        f"{kernel_name}/{strategy}+fission: the verifier disagrees with "
        f"the compiler:\n{report.render_text()}")
