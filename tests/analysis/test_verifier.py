"""The verifier facade: reports, re-planning, and the glue APIs."""

import json

import pytest

from repro.analysis import StaticVerifier
from repro.prem.segments import PlanError
from repro.reporting import diagnostics_note
from repro.schedule import validate_static
from repro.timing.platform import Platform


class TestReports:
    def test_clean_compilation_verifies(self, mini_compiled):
        result, verifier = mini_compiled
        report = verifier.verify_compilation(result)
        assert not report.has_errors
        assert not report.merged
        assert len(report.components) == len(result.components)

    def test_render_text_names_the_kernel(self, mini_compiled):
        result, verifier = mini_compiled
        text = verifier.verify_compilation(result).render_text()
        assert result.kernel.name in text
        assert "no diagnostics" in text

    def test_render_json_parses(self, mini_compiled):
        result, verifier = mini_compiled
        payload = json.loads(
            verifier.verify_compilation(result).render_json())
        assert payload["kernel"] == result.kernel.name
        assert payload["counts"]["total"] == 0
        assert set(payload["components"]) == {
            r.label for r in verifier.verify_compilation(result).components}

    def test_pass_subset_runs_only_those(self, mini_compiled):
        result, verifier = mini_compiled
        report = verifier.verify_compilation(result, passes=("races",))
        assert not report.has_errors


class TestPlanFailure:
    def test_unplannable_solution_reports_not_raises(self, deep_compiled):
        result, _verifier = deep_compiled
        compiled = result.components[0]
        starved = StaticVerifier(Platform().with_cores(1).with_spm(64))
        with pytest.raises(PlanError):
            starved.build_context(compiled.component, compiled.solution)
        report = starved.verify_component(
            compiled.component, compiled.solution)
        assert report.context is None
        assert report.has_errors
        codes = {d.code for d in report.diagnostics}
        assert codes == {"PREM003"}
        assert all(d.source == "verifier" for d in report.diagnostics)


class TestGlueApis:
    def test_compilation_result_verify_static(self, mini_compiled):
        result, _verifier = mini_compiled
        report = result.verify_static()
        assert not report.has_errors

    def test_schedule_validate_static(self, mini_compiled):
        result, _verifier = mini_compiled
        compiled = result.components[0]
        report = validate_static(
            compiled.component, compiled.solution, result.platform)
        assert not report.has_errors

    def test_diagnostics_note_formats(self, mini_compiled):
        result, verifier = mini_compiled
        bag = verifier.verify_compilation(result).merged
        assert diagnostics_note(bag) == "static analysis: clean"
