"""SPM capacity and buffer-lifetime checks."""

import dataclasses

from repro.analysis import check_capacity
from repro.timing.platform import Platform


def _codes(ctx):
    return {d.code for d in check_capacity(ctx)}


def _streamed(ctx):
    for core in ctx.cores():
        for name, model in sorted(ctx.models[core].items()):
            if model.events:
                return core, name, model
    raise AssertionError("fixture lost its streaming plan")


class TestClean:
    def test_deep_plan_fits(self, deep_ctx):
        assert check_capacity(deep_ctx) == []

    def test_mini_plan_fits(self, mini_ctx):
        assert check_capacity(mini_ctx) == []


class TestOverflow:
    def test_shrunken_spm_overflows(self, deep_ctx):
        tiny = dataclasses.replace(
            deep_ctx.platform,
            spm_bytes=deep_ctx.plan.spm_bytes_needed // 2)
        shrunk = dataclasses.replace(deep_ctx, platform=tiny)
        found = check_capacity(shrunk)
        assert {d.code for d in found} == {"PREM301"}
        # Both views agree: the live-buffer sum and the planner's own
        # accounting overflow together.
        assert len(found) >= 2

    def test_inflated_bounding_box_overflows(self, deep_ctx):
        _core, name, _model = _streamed(deep_ctx)
        deep_ctx.bounding_bytes[name] += deep_ctx.platform.spm_bytes
        assert "PREM301" in _codes(deep_ctx)


class TestLifetime:
    def test_missing_dealloc_flagged(self, deep_ctx):
        core, name, _model = _streamed(deep_ctx)
        deep_ctx.dealloc_segments[core][name] = []
        found = [d for d in check_capacity(deep_ctx)
                 if d.code == "PREM302"]
        assert len(found) == 2            # one per buffer
        assert all(d.array == name for d in found)

    def test_double_dealloc_flagged(self, deep_ctx):
        core, name, _model = _streamed(deep_ctx)
        deallocs = deep_ctx.dealloc_segments[core][name]
        deallocs.append(deallocs[0])
        assert "PREM302" in _codes(deep_ctx)

    def test_early_dealloc_flagged(self, deep_ctx):
        core, name, model = _streamed(deep_ctx)
        deallocs = deep_ctx.dealloc_segments[core][name]
        _segment, buffer = deallocs[0]
        deallocs[0] = (1, buffer)         # while consumers remain
        found = check_capacity(deep_ctx)
        assert any(d.code == "PREM302" and "still uses it" in d.message
                   for d in found)

    def test_out_of_range_dealloc_flagged(self, deep_ctx):
        core, name, model = _streamed(deep_ctx)
        deallocs = deep_ctx.dealloc_segments[core][name]
        _segment, buffer = deallocs[0]
        deallocs[0] = (model.n_segments + 9, buffer)
        found = check_capacity(deep_ctx)
        assert any(d.code == "PREM302" and "outside" in d.message
                   for d in found)

    def test_unknown_buffer_flagged(self, deep_ctx):
        core, name, _model = _streamed(deep_ctx)
        deallocs = deep_ctx.dealloc_segments[core][name]
        segment, _buffer = deallocs[0]
        deallocs[0] = (segment, 7)
        found = check_capacity(deep_ctx)
        assert any(d.code == "PREM302" and "unknown buffer 7"
                   in d.message for d in found)
