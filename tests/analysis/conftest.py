"""Shared compiled artifacts for the static-analysis tests.

Two configurations cover the interesting plan shapes:

- ``deep``: cnn SMALL on one core with an 8 KiB SPM — a small partition
  forces deep double-buffered streaming (many swap events per array),
  which is what the hazard rules need to bite on;
- ``mini``: cnn MINI on the default multi-core platform — multiple
  thread groups, which is what the race detector needs.
"""

import pytest

from repro.analysis import StaticVerifier
from repro.compiler import PremCompiler
from repro.faults import campaign_platform
from repro.kernels import make_kernel


@pytest.fixture(scope="package")
def deep_compiled():
    platform = campaign_platform()
    result = PremCompiler(platform=platform).compile(
        make_kernel("cnn", "SMALL"))
    return result, StaticVerifier(result.platform)


@pytest.fixture(scope="package")
def mini_compiled():
    result = PremCompiler().compile(make_kernel("cnn", "MINI"))
    return result, StaticVerifier(result.platform)


@pytest.fixture
def deep_ctx(deep_compiled):
    """A fresh context per test: corruption tests mutate it freely."""
    result, verifier = deep_compiled
    compiled = result.components[0]
    return verifier.build_context(compiled.component, compiled.solution)


@pytest.fixture
def mini_ctx(mini_compiled):
    result, verifier = mini_compiled
    compiled = result.components[0]
    return verifier.build_context(compiled.component, compiled.solution)
