"""The analysis model: schedule mirroring and the corruption surface."""

import pytest

from repro.analysis import LOAD, UNLOAD
from repro.prem.macros import MacroBuilder
from repro.prem.segments import RO, RW, WO


def _streamed(ctx, min_events=2):
    """(core, name, model) pairs with at least *min_events* events."""
    return [(core, name, model)
            for core in ctx.cores()
            for name, model in sorted(ctx.models[core].items())
            if len(model.events) >= min_events]


class TestMirroring:
    def test_deep_plan_streams(self, deep_ctx):
        # The whole point of the deep fixture: real multi-event plans.
        assert _streamed(deep_ctx, min_events=3)

    def test_transfers_match_schedule_arithmetic(self, deep_ctx):
        builder = MacroBuilder(deep_ctx.component, deep_ctx.solution)
        for core in deep_ctx.cores():
            schedules = builder.core_schedules(core)
            for name, model in deep_ctx.models[core].items():
                schedule = schedules[name]
                for event in schedule.events:
                    loads = model.of_event(LOAD, event.index)
                    assert [t.slot for t in loads] == \
                        [schedule.transfer_slot(event.index)]
                    assert loads[0].moves_data == (model.mode in (RO, RW))
                    unloads = model.of_event(UNLOAD, event.index)
                    if model.mode in (WO, RW):
                        assert [t.slot for t in unloads] == \
                            [schedule.unload_slot(event.index)]
                    else:
                        assert unloads == []

    def test_last_use_covers_to_next_event(self, deep_ctx):
        for _core, _name, model in _streamed(deep_ctx):
            for event, nxt in zip(model.events, model.events[1:]):
                assert model.last_use(event.index) == nxt.segment - 1
            assert model.last_use(model.events[-1].index) == \
                model.n_segments

    def test_context_geometry_populated(self, deep_ctx):
        for name in deep_ctx.component.arrays():
            assert deep_ctx.bounding_bytes[name] > 0
        for core, name, model in _streamed(deep_ctx, min_events=1):
            assert deep_ctx.dealloc_segments[core][name]


class TestCorruption:
    def _target(self, ctx):
        return _streamed(ctx, min_events=3)[0]

    def test_drop_removes_earliest(self, deep_ctx):
        _, _, model = self._target(deep_ctx)
        index = model.events[0].index
        before = len(model.loads())
        model.drop_transfer(LOAD, index)
        assert len(model.loads()) == before - 1
        assert model.of_event(LOAD, index) == []

    def test_delay_shifts_slot(self, deep_ctx):
        _, _, model = self._target(deep_ctx)
        index = model.events[-1].index
        slot = model.of_event(LOAD, index)[0].slot
        model.delay_transfer(LOAD, index, 2)
        assert model.of_event(LOAD, index)[0].slot == slot + 2

    def test_duplicate_appends_copy(self, deep_ctx):
        _, _, model = self._target(deep_ctx)
        index = model.events[0].index
        model.duplicate_transfer(LOAD, index, 1)
        copies = model.of_event(LOAD, index)
        assert len(copies) == 2
        assert copies[1].slot == copies[0].slot + 1
        assert copies[1].sequence > copies[0].sequence

    def test_missing_transfer_rejected(self, deep_ctx):
        _, _, model = self._target(deep_ctx)
        with pytest.raises(KeyError):
            model.drop_transfer(LOAD, 999)
        with pytest.raises(KeyError):
            model.delay_transfer(UNLOAD, 999, 1)

    def test_clone_is_independent(self, deep_ctx):
        core, name, model = self._target(deep_ctx)
        index = model.events[0].index
        clone = model.clone()
        clone.drop_transfer(LOAD, index)
        assert model.of_event(LOAD, index)        # original untouched
        assert clone.of_event(LOAD, index) == []

    def test_with_models_leaves_context_untouched(self, deep_ctx):
        core, name, model = self._target(deep_ctx)
        index = model.events[0].index
        models = deep_ctx.clone_models()
        models[core][name].drop_transfer(LOAD, index)
        swapped = deep_ctx.with_models(models)
        assert swapped.models[core][name].of_event(LOAD, index) == []
        assert deep_ctx.models[core][name].of_event(LOAD, index)
