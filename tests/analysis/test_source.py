"""Tests for the source-level polyhedral analyzer (PREM5xx)."""

import pytest

from repro.analysis import (
    SOURCE_REGISTRY,
    analyze_source,
    build_source_context,
    source_registry,
)
from repro.analysis.diagnostics import CODE_TABLE, Diagnostic
from repro.analysis.source import verify_fission_groups
from repro.cli import main
from repro.kernels import make_kernel
from repro.loopir.ast import Kernel
from repro.loopir.builder import for_, stmt_
from repro.poly.access import Array
from repro.poly.constraint import Constraint
from repro.poly.dependence import Dependence

CORPUS = ("cnn", "convrelu", "lstm", "maxpool", "sumpool", "rnn")


def make_dep(src, dst, shared, directions, kind="RAW"):
    return Dependence(
        src_stmt=src, dst_stmt=dst, array="a", kind=kind,
        shared_loops=tuple(shared),
        directions=frozenset(tuple(d) for d in directions),
        loop_independent=False,
    )


def _guard_scope_kernel():
    """A statement guard naming an iterator outside its nest."""
    a = Array("a", (4,))
    s = stmt_("s", {"a": a}, writes={"a": ("i",)},
              guards=[Constraint.ge("z", 1)])
    return Kernel("broken", [a], [for_("i", 4, s)])


def _empty_domain_kernel():
    a = Array("a", (4,))
    s = stmt_("s", {"a": a}, writes={"a": ("i",)},
              guards=[Constraint.ge("i", 99)])
    return Kernel("hollow", [a], [for_("i", 4, s)])


class TestRegistry:
    def test_all_prem5xx_codes_are_declared(self):
        declared = set()
        for entry in SOURCE_REGISTRY.passes():
            declared |= set(entry.codes)
        assert declared == {c for c in CODE_TABLE if c.startswith("PREM5")}

    def test_pass_names(self):
        assert SOURCE_REGISTRY.names() == [
            "structure", "deps", "legality", "fission"]

    def test_undeclared_emission_is_rejected(self):
        registry = source_registry()

        def rogue(ctx):
            return [Diagnostic(code="PREM101", message="not mine")]

        registry.register("rogue", "rogue pass", ("PREM503",), rogue)
        ctx = build_source_context(make_kernel("cnn", "MINI"))
        with pytest.raises(ValueError, match="PREM101"):
            registry.run(ctx, names=("rogue",))


class TestCorpus:
    @pytest.mark.parametrize("name", CORPUS)
    def test_zero_diagnostics(self, name):
        report = analyze_source(make_kernel(name, "MINI"))
        assert report.ok
        assert not report.diagnostics, report.render_text()

    @pytest.mark.parametrize("name", ("lstm", "convrelu"))
    def test_report_is_deterministic(self, name):
        kernel = make_kernel(name, "MINI")
        first = analyze_source(kernel)
        second = analyze_source(make_kernel(name, "MINI"))
        assert first.render_json() == second.render_json()
        assert first.render_text() == second.render_text()

    def test_lstm_level_verdicts(self):
        report = analyze_source(make_kernel("lstm", "MINI"))
        rows = {row["var"]: row for row in report.level_verdicts()}
        assert rows["t"]["tilable"] and not rows["t"]["parallel"]
        assert rows["s1_0"]["parallel"]
        assert rows["p"]["tilable"] and not rows["p"]["parallel"]


class TestStructurePass:
    def test_guard_scope_yields_prem501(self):
        report = analyze_source(_guard_scope_kernel())
        codes = [d.code for d in report.diagnostics]
        assert "PREM501" in codes
        assert not report.ok

    def test_empty_domain_yields_prem503_warning(self):
        report = analyze_source(_empty_domain_kernel())
        codes = [d.code for d in report.diagnostics]
        assert codes.count("PREM503") >= 1
        # A warning, not an error: the kernel still compiles.
        assert report.ok

    def test_no_traceback_on_broken_kernel(self):
        # The context builder is a total function; malformed input
        # becomes diagnostics, never an exception.
        ctx = build_source_context(_guard_scope_kernel())
        assert not ctx.well_formed
        assert ctx.guard_errors


class TestDepsPass:
    def test_inadmissible_direction_yields_prem502(self):
        from repro.analysis.source import check_source_deps

        ctx = build_source_context(make_kernel("cnn", "MINI"))
        ctx.dependences = (
            *ctx.dependences,
            make_dep("cnn_mac", "cnn_mac", ("n", "k"), [(">", "=")]),
        )
        codes = [d.code for d in check_source_deps(ctx)]
        assert codes == ["PREM502"]


class TestLegalityPass:
    def test_contradicted_claims_yield_prem511_and_512(self):
        from repro.analysis.source import check_source_legality

        ctx = build_source_context(make_kernel("cnn", "MINI"))
        assert check_source_legality(ctx) == []
        # A '>' at k carried at n contradicts the tree's claim that the
        # (n, k, p, q) band is tilable and k-parallel.
        vars_ = ("n", "k", "p", "q", "c", "r", "s")
        ctx.dependences = (
            *ctx.dependences,
            make_dep("cnn_mac", "cnn_mac", vars_,
                     [("<", ">", "=", "=", "=", "=", "=")]),
        )
        diagnostics = check_source_legality(ctx)
        codes = {d.code for d in diagnostics}
        assert codes == {"PREM511", "PREM512"}
        assert {d.component for d in diagnostics
                if d.code == "PREM511"} == {"k"}


class TestFissionVerification:
    def test_backward_split_yields_prem521(self):
        deps = [make_dep("late", "early", ("i",), [("<",)])]
        diagnostics = verify_fission_groups(
            "i", [("early",), ("late",)], deps)
        assert [d.code for d in diagnostics] == ["PREM521"]

    def test_forward_split_is_clean(self):
        deps = [make_dep("early", "late", ("i",), [("<",)])]
        assert verify_fission_groups(
            "i", [("early",), ("late",)], deps) == []

    def test_confined_above_is_ignored(self):
        deps = [make_dep("late", "early", ("t", "i"), [("<", "=")])]
        assert verify_fission_groups(
            "i", [("early",), ("late",)], deps) == []

    @pytest.mark.parametrize("name", CORPUS)
    def test_computed_plans_self_verify(self, name):
        ctx = build_source_context(make_kernel(name, "MINI"))
        from repro.analysis.source import check_source_fission
        assert check_source_fission(ctx) == []


class TestCli:
    def test_source_analysis_exits_zero_on_clean_kernel(self, capsys):
        assert main(["analyze", "lstm", "--preset", "MINI",
                     "--source"]) == 0
        out = capsys.readouterr().out
        assert "source analysis: lstm" in out
        assert "no diagnostics" in out

    def test_source_analysis_json(self, capsys):
        import json

        assert main(["analyze", "convrelu", "--preset", "MINI",
                     "--source", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "convrelu"
        assert payload["diagnostics"]["diagnostics"] == []
        assert [s["var"] for s in payload["fission"]] == \
            ["q", "p", "k", "n"]

    def test_unknown_source_pass_exits_two(self, capsys):
        assert main(["analyze", "lstm", "--preset", "MINI",
                     "--source", "--passes", "nosuch"]) == 2
        assert "nosuch" in capsys.readouterr().err

    def test_selftest_does_not_compose_with_source(self, capsys):
        assert main(["analyze", "lstm", "--preset", "MINI",
                     "--source", "--selftest", "5"]) == 2

    def test_broken_kernel_exits_one_without_traceback(
            self, capsys, monkeypatch):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "make_kernel", lambda *a, **k: _guard_scope_kernel())
        assert main(["analyze", "lstm", "--preset", "MINI",
                     "--source"]) == 1
        out = capsys.readouterr().out
        assert "PREM501" in out

    def test_compile_fission_prints_the_plan(self, capsys):
        assert main(["compile", "lstm", "--preset", "MINI",
                     "--fission", "auto"]) == 0
        out = capsys.readouterr().out
        assert "fission: 2 loop(s) distributed" in out

    def test_compile_fission_with_static_gate(self, capsys):
        assert main(["compile", "convrelu", "--preset", "MINI",
                     "--fission", "auto", "--verify-static"]) == 0
        out = capsys.readouterr().out
        assert "static analysis   : 0 error(s)" in out
