"""The pass registry: declaration checks and selective runs."""

import pytest

from repro.analysis import (
    DEFAULT_REGISTRY,
    SEMANTIC_PASSES,
    Diagnostic,
    PassRegistry,
    default_registry,
)


class TestRegistration:
    def test_default_registry_passes(self):
        assert DEFAULT_REGISTRY.names() == \
            ["wellformed", "hazards", "races", "capacity"]

    def test_semantic_subset_skips_races(self):
        # Corrupting swap plans never changes footprints, so the fault
        # campaign skips the race pass.
        assert "races" not in SEMANTIC_PASSES
        for name in SEMANTIC_PASSES:
            assert name in DEFAULT_REGISTRY.names()

    def test_duplicate_name_rejected(self):
        registry = default_registry()
        with pytest.raises(ValueError, match="registered twice"):
            registry.register("hazards", "again", ("PREM201",),
                              lambda ctx: [])

    def test_unknown_code_rejected(self):
        registry = PassRegistry()
        with pytest.raises(ValueError, match="unknown codes"):
            registry.register("bogus", "bogus", ("PREM999",),
                              lambda ctx: [])

    def test_get_unknown_pass_rejected(self):
        with pytest.raises(KeyError, match="unknown analysis pass"):
            DEFAULT_REGISTRY.get("nonexistent")


class TestRun:
    def test_undeclared_emission_rejected(self):
        registry = PassRegistry()
        registry.register(
            "liar", "declares one code, emits another", ("PREM201",),
            lambda ctx: [Diagnostic("PREM205", "surprise")])
        with pytest.raises(ValueError, match="undeclared code"):
            registry.run(ctx=None)

    def test_selected_subset_runs_only_those(self):
        ran = []
        registry = PassRegistry()
        registry.register("a", "a", ("PREM201",),
                          lambda ctx: ran.append("a") or [])
        registry.register("b", "b", ("PREM205",),
                          lambda ctx: ran.append("b") or [])
        bag = registry.run(ctx=None, names=("b",))
        assert ran == ["b"]
        assert not bag
