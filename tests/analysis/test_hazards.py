"""Double-buffer hazard rules against seeded swap-plan corruption."""

from dataclasses import replace

import pytest

from repro.analysis import (
    LOAD,
    RACE_HAZARD_CODES,
    SEMANTIC_PASSES,
    UNLOAD,
    check_hazards,
)
from repro.prem.segments import RW, WO


def _codes(ctx):
    return {d.code for d in check_hazards(ctx)}


def _scored(ctx):
    return {d.code for d in check_hazards(ctx)
            if d.code in RACE_HAZARD_CODES}


def _streamed(ctx, min_events=3, modes=None):
    for core in ctx.cores():
        for name, model in sorted(ctx.models[core].items()):
            if len(model.events) < min_events:
                continue
            if modes is not None and model.mode not in modes:
                continue
            return model
    raise AssertionError("deep fixture lost its streaming plan")


class TestClean:
    def test_compiled_plan_is_hazard_free(self, deep_ctx):
        assert check_hazards(deep_ctx) == []

    def test_mini_plan_is_hazard_free(self, mini_ctx):
        assert check_hazards(mini_ctx) == []


class TestLoadFaults:
    def test_dropped_load_uncovers_the_segment(self, deep_ctx):
        model = _streamed(deep_ctx)
        model.drop_transfer(LOAD, model.events[0].index)
        found = _scored(deep_ctx)
        assert found & {"PREM002", "PREM207"}

    def test_harmful_delay_is_late(self, deep_ctx):
        model = _streamed(deep_ctx)
        event = model.events[-1]
        slot = model.of_event(LOAD, event.index)[0].slot
        # Push the load strictly past its first consumer segment.
        model.delay_transfer(LOAD, event.index,
                             event.segment - slot + 1)
        found = check_hazards(deep_ctx)
        late = [d for d in found if d.code == "PREM201"]
        assert late
        assert late[0].segment == event.segment
        assert late[0].array == model.array_name

    def test_benign_delay_stays_clean(self, deep_ctx):
        # A load with slack may slip up to its consumer segment: the
        # transfer in slot s still completes before exec s starts.
        for core in deep_ctx.cores():
            for _name, model in sorted(deep_ctx.models[core].items()):
                for event in model.events:
                    binds = model.of_event(LOAD, event.index)
                    if binds and binds[0].slot < event.segment:
                        model.delay_transfer(
                            LOAD, event.index,
                            event.segment - binds[0].slot)
                        assert _scored(deep_ctx) == set()
                        return
        pytest.skip("no load with slack in this plan")

    def test_early_reload_clobbers_occupant(self, deep_ctx):
        model = _streamed(deep_ctx)
        # Events alternate buffers: events[2] reuses events[0]'s buffer.
        victim, reuser = model.events[0], model.events[2]
        assert victim.buffer == reuser.buffer
        load = model.of_event(LOAD, reuser.index)[0]
        target = model.last_use(victim.index) + 1   # one slot too early
        # delay_transfer only moves later; forge the early slot directly.
        model.transfers[model.transfers.index(load)] = replace(
            load, slot=target)
        found = check_hazards(deep_ctx)
        assert any(d.code == "PREM202" and d.array == model.array_name
                   for d in found)

    def test_duplicate_load_warns(self, deep_ctx):
        model = _streamed(deep_ctx)
        model.duplicate_transfer(LOAD, model.events[0].index, 1)
        assert "PREM206" in _codes(deep_ctx)


class TestUnloadFaults:
    def test_dropped_unload_loses_writes(self, deep_ctx):
        model = _streamed(deep_ctx, modes=(WO, RW))
        model.drop_transfer(UNLOAD, model.events[0].index)
        found = _scored(deep_ctx)
        assert "PREM205" in found

    def test_delayed_unload_saves_the_wrong_range(self, deep_ctx):
        model = _streamed(deep_ctx, modes=(WO, RW))
        model.delay_transfer(UNLOAD, model.events[0].index, 3)
        found = _scored(deep_ctx)
        assert found & {"PREM208", "PREM209"}

    def test_duplicate_unload_warns(self, deep_ctx):
        model = _streamed(deep_ctx, modes=(WO, RW))
        model.duplicate_transfer(UNLOAD, model.events[0].index, 1)
        assert "PREM206" in _codes(deep_ctx)


class TestVerifierIntegration:
    def test_semantic_passes_flag_swapped_models(self, deep_compiled,
                                                 deep_ctx):
        _result, verifier = deep_compiled
        models = deep_ctx.clone_models()
        model = _streamed(deep_ctx)
        models[model.core][model.array_name].drop_transfer(
            LOAD, model.events[0].index)
        report = verifier.verify_context(
            deep_ctx.with_models(models), passes=SEMANTIC_PASSES)
        assert report.has_errors
        assert report.diagnostics.with_codes(RACE_HAZARD_CODES)
        # The pristine context still verifies clean.
        clean = verifier.verify_context(deep_ctx)
        assert not clean.diagnostics
