"""Well-formedness pass: clean plans verify, corrupted ones report."""

from dataclasses import replace

from repro.analysis import LOAD, check_wellformed


def _codes(ctx):
    return {d.code for d in check_wellformed(ctx)}


def _deep_model(ctx, min_events=3):
    for core in ctx.cores():
        for name, model in sorted(ctx.models[core].items()):
            if len(model.events) >= min_events:
                return model
    raise AssertionError("deep fixture lost its streaming plan")


def _sched(ctx):
    return next(s for s in ctx.plan.cores if s.n_segments > 0)


class TestClean:
    def test_compiled_plan_is_wellformed(self, deep_ctx):
        assert check_wellformed(deep_ctx) == []

    def test_mini_plan_is_wellformed(self, mini_ctx):
        assert check_wellformed(mini_ctx) == []


class TestModelLevel:
    def test_non_monotone_events_flagged(self, deep_ctx):
        model = _deep_model(ctx=deep_ctx)
        model.events.reverse()
        assert "PREM001" in _codes(deep_ctx)

    def test_segment_past_end_flagged(self, deep_ctx):
        model = _deep_model(ctx=deep_ctx)
        last = model.events[-1]
        model.events[-1] = replace(
            last, segment=model.n_segments + 5)
        assert "PREM001" in _codes(deep_ctx)

    def test_slot_out_of_range_flagged(self, deep_ctx):
        model = _deep_model(ctx=deep_ctx)
        model.transfers[0] = replace(model.transfers[0], slot=0)
        model.transfers[-1] = replace(
            model.transfers[-1], slot=model.n_segments + 99)
        found = check_wellformed(deep_ctx)
        assert sum(d.code == "PREM006" for d in found) >= 2


class TestPlanLevel:
    def test_shape_mismatch_flagged(self, deep_ctx):
        _sched(deep_ctx).exec_ns.pop()
        assert "PREM003" in _codes(deep_ctx)

    def test_negative_time_flagged(self, deep_ctx):
        sched = _sched(deep_ctx)
        sched.exec_ns[0] = -1.0
        assert "PREM005" in _codes(deep_ctx)

    def test_dep_after_segment_flagged(self, deep_ctx):
        sched = _sched(deep_ctx)
        sched.dep_slot[0] = sched.n_segments + 2
        assert "PREM004" in _codes(deep_ctx)

    def test_dangling_dep_flagged(self, deep_ctx):
        sched = _sched(deep_ctx)
        # Point some segment at a slot that carries no transfer.
        empty = next(
            (i + 1 for i, length in enumerate(sched.mem_slot_ns)
             if length <= 0), None)
        target = next(
            (i for i in range(sched.n_segments) if empty and empty <= i + 1),
            None)
        if target is None:
            # Every slot is busy on this plan: zero one out instead.
            sched.mem_slot_ns[sched.dep_slot[0] - 1] = 0.0
        else:
            sched.dep_slot[target] = empty
        found = _codes(deep_ctx)
        assert found & {"PREM007", "PREM008"}

    def test_slot_time_mismatch_flagged(self, deep_ctx):
        sched = _sched(deep_ctx)
        busy = next(i for i, length in enumerate(sched.mem_slot_ns)
                    if length > 0)
        sched.mem_slot_ns[busy] *= 3.0
        assert "PREM008" in _codes(deep_ctx)

    def test_transfer_total_mismatch_flagged(self, deep_ctx):
        _sched(deep_ctx).load_bytes += 4096
        assert "PREM008" in _codes(deep_ctx)

    def test_segment_count_mismatch_flagged(self, deep_ctx):
        model = _deep_model(ctx=deep_ctx)
        model.n_segments += 1
        assert "PREM008" in _codes(deep_ctx)

    def test_init_api_mismatch_flagged(self, deep_ctx):
        _sched(deep_ctx).init_api_ns += 123.0
        assert "PREM009" in _codes(deep_ctx)

    def test_dropped_model_load_breaks_consistency(self, deep_ctx):
        # PREM008 is why the fault campaign must exclude consistency
        # codes from scoring: any model mutation trips the cross-check.
        model = _deep_model(ctx=deep_ctx)
        model.drop_transfer(LOAD, model.events[0].index)
        assert "PREM008" in _codes(deep_ctx)
