"""The diagnostics framework: codes, severities, bags, rendering."""

import json
import re

import pytest

from repro.analysis import (
    CODE_TABLE,
    ERROR,
    INFO,
    NAME_TO_CODE,
    RACE_HAZARD_CODES,
    WARNING,
    Diagnostic,
    DiagnosticBag,
    code_info,
)


class TestCodeTable:
    def test_codes_are_stable_slugs(self):
        for code, info in CODE_TABLE.items():
            assert re.fullmatch(r"PREM\d{3}", code)
            assert info.code == code
            assert re.fullmatch(r"[a-z][a-z0-9-]*", info.name)
            assert info.severity in (ERROR, WARNING, INFO)
            assert info.summary

    def test_slugs_are_unique(self):
        assert len(NAME_TO_CODE) == len(CODE_TABLE)
        for name, code in NAME_TO_CODE.items():
            assert CODE_TABLE[code].name == name

    def test_scored_subset_excludes_consistency_checks(self):
        # The fault campaign scores on semantic codes only; the
        # plan-vs-model cross-checks would flag any mutation trivially.
        assert "PREM008" not in RACE_HAZARD_CODES
        assert "PREM009" not in RACE_HAZARD_CODES
        for code in CODE_TABLE:
            if code.startswith(("PREM1", "PREM2")):
                assert code in RACE_HAZARD_CODES

    def test_code_info_rejects_unknown(self):
        with pytest.raises(KeyError):
            code_info("PREM999")


class TestDiagnostic:
    def test_severity_defaults_from_table(self):
        assert Diagnostic("PREM201", "late").severity == ERROR
        assert Diagnostic("PREM206", "dup").severity == WARNING

    def test_severity_override(self):
        d = Diagnostic("PREM206", "dup", severity=ERROR)
        assert d.is_error

    def test_unknown_code_fails_fast(self):
        with pytest.raises(KeyError):
            Diagnostic("PREM999", "nope")

    def test_unknown_severity_fails_fast(self):
        with pytest.raises(ValueError):
            Diagnostic("PREM201", "late", severity="fatal")

    def test_name_and_kind_are_the_slug(self):
        d = Diagnostic("PREM203", "stale")
        assert d.name == "uncovered-read"
        assert d.kind == d.name

    def test_describe_pins_coordinates(self):
        d = Diagnostic("PREM202", "clobbered", core=1, segment=3, slot=5,
                       array="A", hint="shift the load")
        text = d.describe()
        assert "PREM202" in text
        assert "double-buffer-clobber" in text
        assert "core=1" in text and "segment=3" in text
        assert "slot=5" in text and "array=A" in text
        assert "hint: shift the load" in text

    def test_to_json_drops_empty_fields(self):
        payload = Diagnostic("PREM101", "race", core=0).to_json()
        assert payload["code"] == "PREM101"
        assert payload["name"] == "write-write-race"
        assert payload["core"] == 0
        assert "segment" not in payload
        assert "hint" not in payload


class TestDiagnosticBag:
    def _bag(self):
        return DiagnosticBag([
            Diagnostic("PREM206", "dup", core=1),
            Diagnostic("PREM201", "late", core=0, slot=4),
            Diagnostic("PREM201", "late again", core=0, slot=2),
        ])

    def test_len_bool_and_counts(self):
        bag = self._bag()
        assert len(bag) == 3 and bag
        assert not DiagnosticBag()
        assert len(bag.errors) == 2
        assert len(bag.warnings) == 1
        assert bag.has_errors
        assert bag.by_code() == {"PREM201": 2, "PREM206": 1}

    def test_with_codes_filters(self):
        bag = self._bag()
        assert all(d.code == "PREM201"
                   for d in bag.with_codes(("PREM201",)))
        assert bag.with_codes(("PREM101",)) == []

    def test_sorted_most_severe_first(self):
        ordered = self._bag().sorted()
        assert [d.code for d in ordered] == \
            ["PREM201", "PREM201", "PREM206"]
        assert ordered[0].slot == 2          # then by coordinates

    def test_render_text_has_summary_line(self):
        text = self._bag().render_text()
        assert "3 diagnostic(s): 2 error(s), 1 warning(s)" in text
        assert DiagnosticBag().render_text() == "no diagnostics"

    def test_render_json_parses(self):
        payload = json.loads(self._bag().render_json())
        assert payload["counts"]["total"] == 3
        assert payload["counts"]["by_code"]["PREM201"] == 2
        assert len(payload["diagnostics"]) == 3
