"""Platform configuration tests (Section 6.1 defaults, Table 6.1)."""

import pytest

from repro.timing.platform import API_WCET_NS, Platform, bus_speed_gb


class TestDefaults:
    def test_section_6_1_configuration(self):
        p = Platform()
        assert p.cores == 8
        assert p.freq_hz == 10 ** 9
        assert p.spm_bytes == 128 * 1024
        assert p.bus_bytes_per_s == 16 * 10 ** 9
        assert p.burst_bytes == 64
        assert p.dma_line_overhead_ns == 40.0

    def test_table_6_1_values(self):
        p = Platform()
        assert p.api_cost("allocate_buffer") == 1139
        assert p.api_cost("dispatch") == 861
        assert p.api_cost("DMA_int_handler") == 1187
        assert p.api_cost("end_segment") == 1878
        assert p.api_cost("swap_buffer") == 1914
        assert p.api_cost("swap2d_buffer") == 1248
        # Section 6.1's assumptions: swapnd ~ swap2d, threadID free.
        assert p.api_cost("swapnd_buffer") == p.api_cost("swap2d_buffer")
        assert p.api_cost("threadID") == 0

    def test_unknown_api_rejected(self):
        with pytest.raises(KeyError):
            Platform().api_cost("warp_drive")

    def test_partitions(self):
        assert Platform().spm_partition_bytes == 64 * 1024


class TestDerived:
    def test_with_bus_spm_cores(self):
        p = Platform()
        assert p.with_bus(1e9).bus_bytes_per_s == 1e9
        assert p.with_spm(2 ** 20).spm_bytes == 2 ** 20
        assert p.with_cores(4).cores == 4
        # originals untouched (frozen dataclass copies)
        assert p.cores == 8

    def test_ns_per_cycle(self):
        assert Platform().ns_per_cycle == 1.0
        assert Platform(freq_hz=2 * 10 ** 9).ns_per_cycle == 0.5

    def test_bus_speed_gb_helper(self):
        assert bus_speed_gb(1 / 16) == 10 ** 9 / 16

    def test_validation(self):
        with pytest.raises(ValueError):
            Platform(cores=0)
        with pytest.raises(ValueError):
            Platform(spm_bytes=0)
        with pytest.raises(ValueError):
            Platform(bus_bytes_per_s=0)

    def test_wcet_table_is_copied(self):
        p1, p2 = Platform(), Platform()
        assert p1.api_wcet_ns == API_WCET_NS
        assert p1.api_wcet_ns is not p2.api_wcet_ns
