"""Memory-phase model tests against the paper's Section 4.2 examples."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.timing.memory import (
    alpha_index,
    burst_transfers,
    data_line_num,
    data_line_size,
    transfer_bytes,
    transfer_time_ns,
)
from repro.timing.platform import Platform


class TestPaperExamples:
    def test_2d_full_rows(self):
        # Shape(a) = <3,5>, range <2,5>: alpha = 2, one line of 10.
        assert alpha_index((2, 5), (3, 5)) == 2
        assert data_line_num((2, 5), (3, 5)) == 1
        assert data_line_size((2, 5), (3, 5)) == 10

    def test_3d_partial_middle(self):
        # Shape(a') = <6,3,5>, range <4,2,5>: alpha = 3, 4 lines of 10.
        assert alpha_index((4, 2, 5), (6, 3, 5)) == 3
        assert data_line_num((4, 2, 5), (6, 3, 5)) == 4
        assert data_line_size((4, 2, 5), (6, 3, 5)) == 10

    def test_partial_innermost(self):
        # Innermost partial: alpha = n+1, lines = product of outer dims.
        assert alpha_index((2, 3), (4, 8)) == 3
        assert data_line_num((2, 3), (4, 8)) == 2
        assert data_line_size((2, 3), (4, 8)) == 3

    def test_whole_array_single_line(self):
        assert alpha_index((4, 8), (4, 8)) == 1
        assert data_line_num((4, 8), (4, 8)) == 1
        assert data_line_size((4, 8), (4, 8)) == 32


class TestBurstsAndTime:
    def test_burst_ceiling(self):
        # 10 floats = 40 bytes over 64-byte bursts -> 1 burst.
        assert burst_transfers((2, 5), (3, 5), 4, 64) == 1
        # 100 floats = 400 bytes -> 7 bursts.
        assert burst_transfers((100,), (100,), 4, 64) == 7

    def test_transfer_time_composition(self):
        platform = Platform()
        shape, full = (4, 2, 5), (6, 3, 5)
        lines = data_line_num(shape, full)
        bursts = burst_transfers(shape, full, 4, platform.burst_bytes)
        expected = (platform.dma_line_overhead_ns * lines
                    + platform.bus_overhead_ns_per_burst * bursts * lines)
        assert transfer_time_ns(shape, full, 4, platform) == \
            pytest.approx(expected)

    def test_bus_overhead_matches_section_6_1(self):
        # 16 GB/s with 64-byte bursts: 0.0625 ns/byte -> 4 ns per burst.
        platform = Platform()
        assert platform.bus_overhead_ns_per_burst == pytest.approx(4.0)

    def test_empty_range_is_free(self):
        assert transfer_time_ns((0, 5), (3, 5), 4, Platform()) == 0.0
        assert transfer_bytes((0, 5), 4) == 0

    def test_transfer_bytes(self):
        assert transfer_bytes((4, 2, 5), 8) == 320


@given(st.lists(st.integers(min_value=1, max_value=6),
                min_size=1, max_size=4).flatmap(
    lambda full: st.tuples(
        st.just(full),
        st.tuples(*[st.integers(min_value=1, max_value=f) for f in full]))))
def test_lines_times_size_covers_range(pair):
    """DataLineNum * DataLineSize always equals the number of elements."""
    full, shape = pair
    total = 1
    for extent in shape:
        total *= extent
    assert data_line_num(shape, full) * data_line_size(shape, full) == total


@given(st.integers(min_value=1, max_value=10),
       st.integers(min_value=1, max_value=10))
def test_more_bandwidth_never_slower(rows, cols):
    fast = Platform().with_bus(16e9)
    slow = Platform().with_bus(1e9)
    shape, full = (rows, cols), (rows + 1, cols)
    assert transfer_time_ns(shape, full, 4, fast) <= \
        transfer_time_ns(shape, full, 4, slow)
