"""Execution-model fitting tests (Section 4.2's constrained fit)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.timing.execmodel import ExecModel, design_matrix, fit_exec_model


class TestEstimate:
    def test_formula(self):
        model = ExecModel(overheads=(3.0, 0.0), work=2.0, intercept=10.0)
        # 10 + 3*w1 + 2*w1*w2
        assert model.estimate((4, 5)) == 10 + 3 * 4 + 2 * 20

    def test_depth_checked(self):
        model = ExecModel(overheads=(1.0,), work=1.0, intercept=0.0)
        with pytest.raises(ValueError):
            model.estimate((1, 2))


class TestDesignMatrix:
    def test_columns(self):
        matrix = design_matrix([(2, 3, 4)])
        # prefix products 2, 6 (levels 1..L-1), full product 24, intercept.
        np.testing.assert_allclose(matrix, [[2, 6, 24, 1]])


class TestFit:
    def samples(self):
        return [(w1, w2) for w1 in (1, 2, 4, 8, 16)
                for w2 in (1, 3, 9, 27)]

    def test_exact_recovery(self):
        truth = ExecModel(overheads=(5.0, 0.0), work=1.5, intercept=40.0)
        samples = self.samples()
        measured = [truth.estimate(w) for w in samples]
        fitted = fit_exec_model(samples, measured)
        for widths in [(3, 2), (10, 20), (1, 1)]:
            assert fitted.estimate(widths) == \
                pytest.approx(truth.estimate(widths), rel=1e-6)

    def test_upper_bound_constraint(self):
        """No measured sample may exceed its estimate (WCET property)."""
        samples = self.samples()
        rng = np.random.default_rng(0)
        truth = ExecModel(overheads=(5.0, 0.0), work=1.5, intercept=40.0)
        measured = [
            truth.estimate(w) * float(rng.uniform(0.8, 1.0))
            for w in samples
        ]
        fitted = fit_exec_model(samples, measured)
        for widths, value in zip(samples, measured):
            assert fitted.estimate(widths) >= value - 1e-6

    def test_nonnegative_coefficients(self):
        samples = self.samples()
        measured = [100.0 for _ in samples]
        fitted = fit_exec_model(samples, measured)
        assert all(o >= 0 for o in fitted.overheads)
        assert fitted.work >= 0
        assert fitted.intercept >= 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_exec_model([], [])
        with pytest.raises(ValueError):
            fit_exec_model([(1,)], [1.0, 2.0])


@settings(max_examples=25, deadline=None)
@given(st.tuples(
    st.floats(min_value=0.0, max_value=20.0),
    st.floats(min_value=0.1, max_value=5.0),
    st.floats(min_value=0.0, max_value=200.0),
))
def test_fit_upper_bounds_model_generated_data(params):
    o1, work, intercept = params
    truth = ExecModel(overheads=(o1, 0.0), work=work, intercept=intercept)
    samples = [(w1, w2) for w1 in (1, 3, 7) for w2 in (1, 4, 9)]
    measured = [truth.estimate(w) for w in samples]
    fitted = fit_exec_model(samples, measured)
    for widths, value in zip(samples, measured):
        assert fitted.estimate(widths) >= value - 1e-5
