"""Timing perturbation surface and Monte-Carlo scenario machinery.

Two contracts matter here.  First, the perturbation helpers
(``Platform.with_timing_scales``, ``ExecModel.scaled``) touch *only*
timing parameters — structure (cores, SPM, burst size) is invariant, so
a solution's feasibility never depends on the scenario.  Second, the
closed-form bounds stay admissible at any positively-scaled parameter
point: that is what lets the robust optimizer prune with an envelope
bound computed at the componentwise most optimistic scenario.
"""

import math
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.scenarios import (
    DEFAULT_SPREAD,
    NOMINAL_SCENARIO,
    PARAMETERS,
    TimingScenario,
    adverse_scenario,
    envelope_scenario,
    sample_scenarios,
)
from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.bounds import BoundCalculator
from repro.opt.exhaustive import assignment_candidates
from repro.opt.threadgroups import generate_nondominated_thread_groups
from repro.schedule.makespan import MakespanEvaluator
from repro.sim.profiler import fit_component_model
from repro.timing.execmodel import ExecModel
from repro.timing.platform import Platform


class TestPlatformCopies:
    def test_with_bus(self):
        fast = Platform().with_bus(32e9)
        assert fast.bus_bytes_per_s == 32e9
        assert fast.cores == Platform().cores

    def test_with_spm(self):
        small = Platform().with_spm(64 * 1024)
        assert small.spm_bytes == 64 * 1024
        assert small.spm_partition_bytes == 32 * 1024

    def test_with_cores(self):
        assert Platform().with_cores(4).cores == 4

    def test_with_dma_overhead(self):
        slow = Platform().with_dma_overhead(80.0)
        assert slow.dma_line_overhead_ns == 80.0
        assert Platform().with_dma_overhead(0.0).dma_line_overhead_ns == 0.0

    def test_with_dma_overhead_rejects_negative(self):
        with pytest.raises(ValueError):
            Platform().with_dma_overhead(-1.0)

    def test_copies_do_not_mutate_the_original(self):
        base = Platform()
        base.with_bus(1e9)
        base.with_timing_scales(api=2.0)
        assert base == Platform()


class TestTimingScales:
    def test_scales_every_timing_group(self):
        base = Platform()
        noisy = base.with_timing_scales(bus=0.5, dma=2.0, api=1.5)
        assert noisy.bus_bytes_per_s == base.bus_bytes_per_s * 0.5
        assert noisy.dma_line_overhead_ns == base.dma_line_overhead_ns * 2.0
        for name, cost in base.api_wcet_ns.items():
            assert noisy.api_wcet_ns[name] == cost * 1.5

    def test_identity_returns_self(self):
        base = Platform()
        assert base.with_timing_scales() is base

    def test_structural_parameters_invariant(self):
        base = Platform()
        noisy = base.with_timing_scales(bus=0.7, dma=1.3, api=1.3)
        assert noisy.cores == base.cores
        assert noisy.spm_bytes == base.spm_bytes
        assert noisy.burst_bytes == base.burst_bytes

    @pytest.mark.parametrize("kwargs", [
        {"bus": 0.0}, {"dma": -0.1}, {"api": 0.0}])
    def test_rejects_nonpositive_scales(self, kwargs):
        with pytest.raises(ValueError):
            Platform().with_timing_scales(**kwargs)


class TestExecModelScaled:
    MODEL = ExecModel(overheads=(3.0, 0.0), work=2.0, intercept=10.0)

    def test_scales_overheads_and_intercept_together(self):
        scaled = self.MODEL.scaled(overheads=2.0)
        assert scaled.overheads == (6.0, 0.0)
        assert scaled.intercept == 20.0
        assert scaled.work == 2.0

    def test_scales_work_alone(self):
        scaled = self.MODEL.scaled(work=0.5)
        assert scaled.work == 1.0
        assert scaled.overheads == self.MODEL.overheads
        assert scaled.intercept == self.MODEL.intercept

    def test_identity_returns_self(self):
        assert self.MODEL.scaled() is self.MODEL

    def test_estimate_scales_linearly_per_group(self):
        widths = (4, 8)
        base = self.MODEL.estimate(widths)
        doubled = self.MODEL.scaled(overheads=2.0, work=2.0)
        assert doubled.estimate(widths) == pytest.approx(2.0 * base)

    @pytest.mark.parametrize("kwargs", [
        {"overheads": 0.0}, {"work": -1.0}])
    def test_rejects_nonpositive_scales(self, kwargs):
        with pytest.raises(ValueError):
            self.MODEL.scaled(**kwargs)


class TestScenarioSampling:
    def test_pure_function_of_count_seed_spread(self):
        assert sample_scenarios(16, seed=3) == sample_scenarios(16, seed=3)
        assert sample_scenarios(16, seed=3) != sample_scenarios(16, seed=4)
        assert sample_scenarios(16, spread=0.1) != \
            sample_scenarios(16, spread=0.3)

    def test_prefix_stability(self):
        # Growing the set keeps the existing scenarios bit-identical.
        assert sample_scenarios(32, seed=0)[:8] == sample_scenarios(8, seed=0)

    def test_scales_stay_inside_the_interval(self):
        for scenario in sample_scenarios(64, seed=1, spread=0.2):
            for scale in scenario.scales():
                assert 0.8 <= scale <= 1.2

    def test_zero_count_is_empty(self):
        assert sample_scenarios(0) == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_scenarios(-1)
        with pytest.raises(ValueError):
            sample_scenarios(4, spread=0.0)
        with pytest.raises(ValueError):
            sample_scenarios(4, spread=1.0)

    def test_digests_are_distinct(self):
        scenarios = sample_scenarios(32, seed=0)
        digests = {s.digest() for s in scenarios}
        assert len(digests) == len(scenarios)
        assert NOMINAL_SCENARIO.digest() not in digests

    def test_scenario_validation_and_nominal(self):
        assert NOMINAL_SCENARIO.is_nominal
        assert not TimingScenario(0, bus=0.9).is_nominal
        with pytest.raises(ValueError):
            TimingScenario(0, dma=0.0)

    def test_apply_helpers(self):
        scenario = TimingScenario(0, exec_overhead=1.1, exec_work=0.9,
                                  bus=0.8, dma=1.2, api=1.05)
        platform = scenario.apply_platform(Platform())
        assert platform.bus_bytes_per_s == Platform().bus_bytes_per_s * 0.8
        model = scenario.apply_exec_model(
            ExecModel(overheads=(2.0,), work=4.0, intercept=6.0))
        assert model.overheads == (2.2,)
        assert model.work == pytest.approx(3.6)


class TestEnvelopeAndAdverse:
    def test_empty_envelope_is_nominal(self):
        assert envelope_scenario(()) is NOMINAL_SCENARIO

    def test_componentwise_optimism(self):
        scenarios = sample_scenarios(16, seed=2)
        envelope = envelope_scenario(scenarios)
        # Fastest bus, cheapest everything else.
        assert envelope.bus == max(s.bus for s in scenarios)
        assert envelope.dma == min(s.dma for s in scenarios)
        assert envelope.api == min(s.api for s in scenarios)
        assert envelope.exec_overhead == \
            min(s.exec_overhead for s in scenarios)
        assert envelope.exec_work == min(s.exec_work for s in scenarios)

    def test_adverse_moves_one_group_to_its_costly_extreme(self):
        for parameter in PARAMETERS:
            scenario = adverse_scenario(parameter, spread=0.25)
            for name, scale in zip(PARAMETERS, scenario.scales()):
                if name != parameter:
                    assert scale == 1.0
                elif name == "bus":
                    assert scale == 0.75     # slower bus is adverse
                else:
                    assert scale == 1.25

    def test_adverse_rejects_unknown_parameter(self):
        with pytest.raises(ValueError):
            adverse_scenario("cores")


# -- envelope admissibility against the evaluator --------------------------


def _component(kernel_name, preset, vars_):
    tree = LoopTree.build(make_kernel(kernel_name, preset))
    comp = component_at(tree, vars_)
    return comp, fit_component_model(comp)


@pytest.fixture(scope="module")
def rnn_small():
    return _component("rnn", "SMALL", ["s1", "p"])


positive_scales = st.tuples(*(
    st.floats(min_value=0.5, max_value=2.0,
              allow_nan=False, allow_infinity=False)
    for _ in PARAMETERS))


@settings(max_examples=10, deadline=None)
@given(scales=positive_scales)
def test_bounds_admissible_at_any_positive_scale(rnn_small, scales):
    """quick/refined bounds computed *at* perturbed parameters never
    exceed the planner's makespan at the same parameters — the property
    the robust search's envelope pruning rests on (DESIGN §10)."""
    comp, model = rnn_small
    scenario = TimingScenario(0, *scales)
    platform = scenario.apply_platform(Platform())
    exec_model = scenario.apply_exec_model(model)
    evaluator = MakespanEvaluator(comp, platform, exec_model)
    bounds = BoundCalculator(
        comp, platform, exec_model, geometry=evaluator.geometry,
        modes=evaluator.planner.modes)
    vars_ = [n.var for n in comp.nodes]
    checked = 0
    for assignment in generate_nondominated_thread_groups(8, comp):
        groups, lists = assignment_candidates(comp, assignment)
        for index, sizes in enumerate(product(*lists)):
            if index % 3:              # subsample: plans are the cost
                continue
            quick = bounds.quick_bound(sizes, assignment)
            truth = evaluator.evaluate_params(
                dict(zip(vars_, sizes)), groups)
            if math.isinf(quick):
                assert not truth.feasible, (sizes, assignment)
                continue
            refined = bounds.refine(quick, sizes, assignment)
            if truth.feasible:
                assert quick <= refined <= truth.makespan_ns, \
                    (sizes, assignment, scales)
                checked += 1
    assert checked > 0


def test_envelope_bound_lower_bounds_every_scenario(rnn_small):
    """The bound at the envelope parameters lower-bounds the true
    makespan under *each* scenario of the set it envelopes."""
    comp, model = rnn_small
    scenarios = sample_scenarios(6, seed=5)
    envelope = envelope_scenario(scenarios)
    env_eval = MakespanEvaluator(
        comp, envelope.apply_platform(Platform()),
        envelope.apply_exec_model(model))
    env_bounds = BoundCalculator(
        comp, envelope.apply_platform(Platform()),
        envelope.apply_exec_model(model),
        geometry=env_eval.geometry, modes=env_eval.planner.modes)
    evaluators = [
        MakespanEvaluator(comp, s.apply_platform(Platform()),
                          s.apply_exec_model(model))
        for s in scenarios]
    vars_ = [n.var for n in comp.nodes]
    checked = 0
    for assignment in generate_nondominated_thread_groups(8, comp):
        groups, lists = assignment_candidates(comp, assignment)
        for index, sizes in enumerate(product(*lists)):
            if index % 4:
                continue
            quick = env_bounds.quick_bound(sizes, assignment)
            if math.isinf(quick):
                continue
            refined = env_bounds.refine(quick, sizes, assignment)
            if math.isinf(refined):
                continue
            params = dict(zip(vars_, sizes))
            for evaluator in evaluators:
                truth = evaluator.evaluate_params(params, groups)
                if truth.feasible:
                    assert refined <= truth.makespan_ns, \
                        (sizes, assignment)
                    checked += 1
    assert checked > 0
