"""Gantt renderer tests: spans must replay the pipeline exactly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.prem.segments import CoreSchedule
from repro.schedule.dag import dag_makespan
from repro.schedule.gantt import render_gantt, schedule_spans
from repro.schedule.pipeline import evaluate_pipeline


def make_core(core, exec_ns, mem_ns, init=10.0):
    n = len(exec_ns)
    assert len(mem_ns) == n + 2
    return CoreSchedule(
        core=core, n_segments=n, init_api_ns=init,
        exec_ns=list(exec_ns), mem_slot_ns=list(mem_ns),
        dep_slot=[s if mem_ns[s - 1] > 0 else 0
                  for s in range(1, n + 1)])


class TestSpans:
    def test_last_span_is_makespan(self):
        cores = [make_core(0, [50, 60, 70], [5, 5, 5, 0, 8]),
                 make_core(1, [40, 40], [3, 3, 0, 6])]
        spans = schedule_spans(cores)
        pipeline = evaluate_pipeline(cores)
        assert max(s.end_ns for s in spans) == \
            pytest.approx(pipeline.makespan_ns)

    def test_span_counts(self):
        cores = [make_core(0, [50, 60], [5, 5, 0, 8])]
        spans = schedule_spans(cores)
        kinds = {}
        for span in spans:
            kinds[span.kind] = kinds.get(span.kind, 0) + 1
        assert kinds == {"init": 1, "exec": 2, "mem": 3}

    def test_exec_spans_sequential_per_core(self):
        cores = [make_core(0, [50, 60, 70], [5, 5, 5, 0, 8])]
        execs = [s for s in schedule_spans(cores) if s.kind == "exec"]
        for before, after in zip(execs, execs[1:]):
            assert after.start_ns >= before.end_ns - 1e-9

    def test_mem_spans_never_overlap(self):
        cores = [make_core(i, [50, 60], [5, 5, 0, 8]) for i in range(3)]
        mems = sorted((s for s in schedule_spans(cores)
                       if s.kind == "mem"), key=lambda s: s.start_ns)
        for before, after in zip(mems, mems[1:]):
            assert after.start_ns >= before.end_ns - 1e-9

    def test_empty(self):
        assert schedule_spans([]) == []


class TestRender:
    def test_render_contains_all_lanes(self):
        cores = [make_core(i, [100, 100], [10, 10, 0, 10])
                 for i in range(2)]
        text = render_gantt(cores, width=60)
        assert "core 0" in text and "core 1" in text and "dma" in text
        assert "|" in text

    def test_render_empty(self):
        assert "empty" in render_gantt([])


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(
        st.lists(st.floats(min_value=1.0, max_value=500.0),
                 min_size=1, max_size=5),
        st.floats(min_value=0.0, max_value=100.0)),
    min_size=1, max_size=4))
def test_spans_consistent_with_dag(core_specs):
    """On random schedules, the replayed span horizon equals both the
    pipeline recurrence and the explicit DAG longest path."""
    cores = []
    for index, (exec_ns, mem) in enumerate(core_specs):
        n = len(exec_ns)
        mem_ns = [mem] * n + [0.0, mem]
        cores.append(make_core(index, exec_ns, mem_ns))
    spans = schedule_spans(cores)
    horizon = max(s.end_ns for s in spans)
    assert horizon == pytest.approx(evaluate_pipeline(cores).makespan_ns)
    assert horizon == pytest.approx(dag_makespan(cores))
