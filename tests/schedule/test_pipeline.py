"""Pipeline evaluator tests, including the paper's Section 4.1 formula.

Section 4.1 derives, for the 3-core/12-segment execution-bound LSTM
schedule with uniform phase lengths, a makespan of
``3*(ld/12) + 4*(e/12) + ul/12``: the three initial loads serialize on the
DMA, core 2's four executions follow, and its last unload closes the
schedule.  We rebuild exactly that schedule from hand-made CoreSchedules
and check the closed form.
"""

import pytest

from repro.prem.segments import CoreSchedule
from repro.schedule.pipeline import evaluate_pipeline


def uniform_core(core, n, exec_ns, load_ns, unload_ns):
    """A stride-1 double-buffered core: load before every segment, the
    final unload in the trailing slot."""
    mem = [load_ns] * n + [0.0, unload_ns]
    return CoreSchedule(
        core=core,
        n_segments=n,
        init_api_ns=0.0,
        exec_ns=[exec_ns] * n,
        mem_slot_ns=mem,
        dep_slot=list(range(1, n + 1)),
    )


class TestSection41Formula:
    def test_execution_bound_three_cores(self):
        e_total, ld_total, ul_total = 1200.0, 120.0, 60.0
        n = 4                      # 12 segments over 3 cores
        e, ld, ul = e_total / 12, ld_total / 12, ul_total / 12
        cores = [uniform_core(i, n, e, ld, ul) for i in range(3)]
        result = evaluate_pipeline(cores)
        expected = 3 * ld + 4 * e + ul
        assert result.makespan_ns == pytest.approx(expected)

    def test_more_segments_reduce_makespan(self):
        """Section 4.1: splitting the same work into 15 segments lowers
        the makespan to ld/5 + e/3 + ul/15."""
        e_total, ld_total, ul_total = 1200.0, 120.0, 60.0
        coarse = [uniform_core(i, 4, e_total / 12, ld_total / 12,
                               ul_total / 12) for i in range(3)]
        fine = [uniform_core(i, 5, e_total / 15, ld_total / 15,
                             ul_total / 15) for i in range(3)]
        coarse_result = evaluate_pipeline(coarse)
        fine_result = evaluate_pipeline(fine)
        assert fine_result.makespan_ns < coarse_result.makespan_ns
        assert fine_result.makespan_ns == pytest.approx(
            3 * ld_total / 15 + 5 * e_total / 15 + ul_total / 15)


class TestStructure:
    def test_empty(self):
        assert evaluate_pipeline([]).makespan_ns == 0.0

    def test_single_segment_core(self):
        core = CoreSchedule(
            core=0, n_segments=1, init_api_ns=5.0,
            exec_ns=[100.0], mem_slot_ns=[20.0, 0.0, 30.0],
            dep_slot=[1])
        result = evaluate_pipeline([core])
        # init, load, exec, trailing unload all serialize.
        assert result.makespan_ns == pytest.approx(5 + 20 + 100 + 30)

    def test_memory_bound_dma_serializes(self):
        # Loads dominate: cores starve on the single DMA.
        cores = [uniform_core(i, 4, 1.0, 100.0, 0.0) for i in range(4)]
        result = evaluate_pipeline(cores)
        # 16 loads of 100 serialize; the last exec then runs.
        assert result.makespan_ns >= 16 * 100.0
        assert result.dma_busy_ns == pytest.approx(16 * 100.0)

    def test_compute_bound_hides_memory(self):
        cores = [uniform_core(0, 6, 1000.0, 1.0, 1.0)]
        result = evaluate_pipeline(cores)
        # All but the first load hide under execution.
        assert result.makespan_ns == pytest.approx(1.0 + 6 * 1000.0 + 1.0)

    def test_init_segment_delays_first_load(self):
        slow_init = CoreSchedule(
            core=0, n_segments=1, init_api_ns=500.0,
            exec_ns=[10.0], mem_slot_ns=[20.0, 0.0, 0.0], dep_slot=[1])
        result = evaluate_pipeline([slow_init])
        assert result.makespan_ns == pytest.approx(500 + 20 + 10)

    def test_double_buffering_skips_one_round(self):
        """The load in slot s waits on exec(s-2), not exec(s-1): a long
        segment must not block the load of the segment after next."""
        core = CoreSchedule(
            core=0, n_segments=3, init_api_ns=0.0,
            exec_ns=[100.0, 100.0, 100.0],
            mem_slot_ns=[10.0, 10.0, 10.0, 0.0, 0.0],
            dep_slot=[1, 2, 3])
        result = evaluate_pipeline([core])
        # load1=10, exec1 @10..110; load2 during exec1; exec2 @110..210;
        # load3 waits exec1 only -> done long before exec3.
        assert result.makespan_ns == pytest.approx(10 + 300)

    def test_idle_cores_ignored(self):
        busy = uniform_core(0, 2, 50.0, 5.0, 5.0)
        idle = CoreSchedule(core=1, n_segments=0, init_api_ns=0.0,
                            exec_ns=[], mem_slot_ns=[0.0, 0.0],
                            dep_slot=[])
        with_idle = evaluate_pipeline([busy, idle])
        without = evaluate_pipeline([busy])
        assert with_idle.makespan_ns == without.makespan_ns
