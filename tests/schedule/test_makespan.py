"""Makespan evaluator tests: caching, feasibility reporting, totals."""

import math

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.solution import Solution
from repro.schedule.makespan import MakespanEvaluator
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform

BIG_SPM = Platform(spm_bytes=4 * 1024 * 1024)


@pytest.fixture(scope="module")
def evaluator():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    comp = component_at(tree, ["s1_0", "p"])
    model = fit_component_model(comp)
    return MakespanEvaluator(comp, BIG_SPM, model)


class TestEvaluate:
    def test_feasible_solution(self, evaluator):
        result = evaluator.evaluate_params(
            {"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1})
        assert result.feasible
        assert math.isfinite(result.makespan_ns)
        assert result.plan is not None
        assert result.pipeline is not None
        assert result.transferred_bytes > 0
        assert result.spm_bytes_needed > 0

    def test_total_multiplies_executions(self, evaluator):
        result = evaluator.evaluate_params(
            {"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1})
        executions = evaluator.component.executions
        assert result.total_makespan_ns == \
            pytest.approx(result.makespan_ns * executions)

    def test_infeasible_spm(self):
        tree = LoopTree.build(make_kernel("lstm", "LARGE"))
        comp = component_at(tree, ["s1_0", "p"])
        model = fit_component_model(comp)
        small = MakespanEvaluator(comp, Platform(), model)
        result = small.evaluate_params(
            {"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1})
        assert not result.feasible
        assert result.makespan_ns == math.inf
        assert "SPM" in result.reason

    def test_invalid_params_reported(self, evaluator):
        result = evaluator.evaluate_params({"s1_0": 0, "p": 350})
        assert not result.feasible
        result = evaluator.evaluate_params(
            {"s1_0": 109, "p": 350}, {"p": 2})   # p not parallel
        assert not result.feasible
        assert "parallel" in result.reason

    def test_caching(self, evaluator):
        before = evaluator.evaluations
        a = evaluator.evaluate_params(
            {"s1_0": 14, "p": 700}, {"s1_0": 8, "p": 1})
        b = evaluator.evaluate_params(
            {"s1_0": 14, "p": 700}, {"s1_0": 8, "p": 1})
        assert a is b
        assert evaluator.evaluations == before + 1

    def test_segment_cap(self):
        tree = LoopTree.build(make_kernel("lstm", "LARGE"))
        comp = component_at(tree, ["s1_0", "p"])
        model = fit_component_model(comp)
        capped = MakespanEvaluator(comp, BIG_SPM, model, segment_cap=10)
        result = capped.evaluate_params({"s1_0": 10, "p": 10})
        assert not result.feasible
        assert "cap" in result.reason


class TestShapeOfMakespan:
    def test_parallelism_helps_when_compute_bound(self, evaluator):
        serial = evaluator.evaluate_params({"s1_0": 82, "p": 700})
        parallel = evaluator.evaluate_params(
            {"s1_0": 82, "p": 700}, {"s1_0": 8, "p": 1})
        assert parallel.makespan_ns < serial.makespan_ns

    def test_slow_bus_increases_makespan(self):
        tree = LoopTree.build(make_kernel("lstm", "LARGE"))
        comp = component_at(tree, ["s1_0", "p"])
        model = fit_component_model(comp)
        fast = MakespanEvaluator(comp, BIG_SPM, model)
        slow = MakespanEvaluator(
            comp, BIG_SPM.with_bus(1e9 / 16), model)
        params = ({"s1_0": 82, "p": 700}, {"s1_0": 8, "p": 1})
        assert slow.evaluate_params(*params).makespan_ns > \
            fast.evaluate_params(*params).makespan_ns
