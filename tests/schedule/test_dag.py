"""The explicit phase DAG must agree with the fast pipeline recurrence."""

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.solution import Solution
from repro.prem.segments import CoreSchedule, SegmentPlanner
from repro.schedule.dag import build_phase_dag, dag_makespan
from repro.schedule.pipeline import evaluate_pipeline
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform

BIG_SPM = Platform(spm_bytes=4 * 1024 * 1024)


@pytest.fixture(scope="module")
def lstm_plans():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    comp = component_at(tree, ["s1_0", "p"])
    model = fit_component_model(comp)
    planner = SegmentPlanner(comp, BIG_SPM, model)
    solutions = [
        Solution(comp, {"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1}),
        Solution(comp, {"s1_0": 82, "p": 700}, {"s1_0": 8, "p": 1}),
        Solution(comp, {"s1_0": 650, "p": 100}),
        Solution(comp, {"s1_0": 50, "p": 175}, {"s1_0": 2, "p": 1}),
    ]
    return [planner.plan(s) for s in solutions]


def test_dag_matches_pipeline_on_lstm(lstm_plans):
    for plan in lstm_plans:
        fast = evaluate_pipeline(plan.cores).makespan_ns
        exact = dag_makespan(plan.cores)
        assert fast == pytest.approx(exact, rel=1e-9), \
            plan.solution.describe()


def test_dag_matches_pipeline_on_cnn():
    tree = LoopTree.build(make_kernel("cnn", "LARGE"))
    comp = component_at(tree, ["n", "k", "p", "q", "c"])
    model = fit_component_model(comp)
    planner = SegmentPlanner(comp, Platform(), model)
    plan = planner.plan(Solution(
        comp, {"n": 1, "k": 32, "p": 7, "q": 28, "c": 16},
        {"n": 1, "k": 4, "p": 2, "q": 1, "c": 1}))
    assert evaluate_pipeline(plan.cores).makespan_ns == \
        pytest.approx(dag_makespan(plan.cores), rel=1e-9)


def test_dag_node_kinds(lstm_plans):
    graph = build_phase_dag(lstm_plans[0].cores)
    kinds = {node[0] for node in graph.nodes}
    assert kinds == {"init", "exec", "mem"}
    # one init per core, 4 exec phases per core
    inits = [n for n in graph.nodes if n[0] == "init"]
    execs = [n for n in graph.nodes if n[0] == "exec"]
    assert len(inits) == 3
    assert len(execs) == 12


def test_dag_is_acyclic(lstm_plans):
    import networkx as nx
    for plan in lstm_plans:
        assert nx.is_directed_acyclic_graph(build_phase_dag(plan.cores))


def test_empty_cores():
    assert dag_makespan([]) == 0.0
    idle = CoreSchedule(core=0, n_segments=0, init_api_ns=0.0,
                        exec_ns=[], mem_slot_ns=[0.0, 0.0], dep_slot=[])
    assert dag_makespan([idle]) == 0.0
