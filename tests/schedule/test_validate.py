"""Timing-model accuracy tests (the paper's <=5% claim, Section 6.1)."""

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt import ComponentOptimizer, Solution
from repro.schedule.validate import ExactExecModel, validate_timing_model
from repro.sim.machine import MachineModel
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform


@pytest.fixture(scope="module")
def lstm_setup():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    comp = component_at(tree, ["s1_0", "p"])
    return comp, fit_component_model(comp)


class TestExactModel:
    def test_matches_machine(self, lstm_setup):
        comp, _ = lstm_setup
        machine = MachineModel()
        exact = ExactExecModel(comp, machine)
        assert exact.estimate((14, 234)) == \
            machine.tile_cost(comp, (14, 234))


class TestAccuracy:
    def test_model_within_five_percent_on_chosen_solution(self, lstm_setup):
        """On the solution the optimizer actually picks, predicted and
        simulated makespans agree within the paper's 5% bound."""
        comp, model = lstm_setup
        platform = Platform()
        result = ComponentOptimizer(comp, platform, model).optimize(8)
        outcome = validate_timing_model(
            comp, result.best.solution, platform, model)
        assert abs(outcome.error) <= 0.05

    def test_model_is_safe_overestimate(self, lstm_setup):
        """The constrained fit makes the model a WCET upper bound, so the
        deviation must be non-negative for any feasible solution."""
        comp, model = lstm_setup
        platform = Platform(spm_bytes=4 * 1024 * 1024)
        for sizes, groups in [
            ({"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1}),
            ({"s1_0": 50, "p": 700}, {"s1_0": 8, "p": 1}),
            ({"s1_0": 650, "p": 140}, None),
        ]:
            solution = Solution(comp, sizes, groups)
            outcome = validate_timing_model(
                comp, solution, platform, model)
            assert outcome.error >= -0.01, sizes

    def test_accuracy_across_kernels(self):
        platform = Platform()
        for name, band in [("cnn", ["n", "k", "p", "q", "c"]),
                           ("maxpool", ["n", "k", "p", "q", "r"])]:
            tree = LoopTree.build(make_kernel(name, "LARGE"))
            comp = component_at(tree, band)
            model = fit_component_model(comp)
            result = ComponentOptimizer(comp, platform, model).optimize(8)
            outcome = validate_timing_model(
                comp, result.best.solution, platform, model)
            assert abs(outcome.error) <= 0.08, name
