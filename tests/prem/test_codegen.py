"""Structural tests for the generated PREM-C source."""

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.solution import Solution
from repro.prem.codegen import CodeGenerator


@pytest.fixture(scope="module")
def lstm_code():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    comp = component_at(tree, ["s1_0", "p"])
    solution = Solution(comp, {"s1_0": 109, "p": 350},
                        {"s1_0": 3, "p": 1})
    return CodeGenerator(comp, solution).generate()


@pytest.fixture(scope="module")
def cnn_code():
    tree = LoopTree.build(make_kernel("cnn", "LARGE"))
    comp = component_at(tree, ["n", "k", "p", "q", "c"])
    solution = Solution(
        comp, {"n": 1, "k": 32, "p": 7, "q": 28, "c": 16},
        {"n": 1, "k": 4, "p": 2, "q": 1, "c": 1})
    return CodeGenerator(comp, solution).generate()


class TestLstmListing33Shape:
    def test_macros_present(self, lstm_code):
        assert "BUFFER_ALLOC_APIS" in lstm_code
        assert "DATA_SWAP_APIS" in lstm_code
        assert "BUFFER_DEALLOC_APIS" in lstm_code

    def test_segment_counter(self, lstm_code):
        assert "static int s1_0_p_seg_count = 0;" in lstm_code
        assert "s1_0_p_seg_count++;" in lstm_code

    def test_buffer_allocation(self, lstm_code):
        assert "allocate_buffer(i_buf1, WO);" in lstm_code
        assert "allocate_buffer(U_i_buf2, RO);" in lstm_code
        assert "allocate_buffer(inp_F_buf1, RO);" in lstm_code

    def test_dispatch_between_first_and_second_swaps(self, lstm_code):
        alloc_block = lstm_code.split("DATA_SWAP_APIS")[0]
        assert "dispatch();" in alloc_block

    def test_tiled_loop_partitioning(self, lstm_code):
        # s1_0 is split over 3 thread groups, 2 ranges each.
        assert "threadID() % 3" in lstm_code
        assert "* 2" in lstm_code

    def test_element_loop_with_min_clamp(self, lstm_code):
        assert "for (int s1_0 = s1_0_t * 109;" in lstm_code
        assert "MIN(650, s1_0_t * 109 + 109)" in lstm_code

    def test_rebased_references(self, lstm_code):
        # Listing 3.3's i[s1_0 - s1_0_t*109] pattern.
        assert "[s1_0 - 109*s1_0_t]" in lstm_code

    def test_guarded_init_statement(self, lstm_code):
        assert "if (p == 0)" in lstm_code
        assert "STMT_LSTM_INIT" in lstm_code

    def test_swap_parameter_tables(self, lstm_code):
        assert "U_i_swap_params[3][4]" in lstm_code
        assert "i_swap_params[3][2]" in lstm_code

    def test_change_stride_conditionals(self, lstm_code):
        # gates swap every 2 segments: pointer rebinding flips on
        # seg_count/2 parity; U matrices (stride 1) get modulo conditions.
        assert "s1_0_p_seg_count / 2) % 2 == 0" in lstm_code
        assert "s1_0_p_seg_count % 1 == 0" in lstm_code

    def test_end_segment_and_deallocs(self, lstm_code):
        assert lstm_code.count("end_segment();") >= 2
        assert "deallocate(" in lstm_code


class TestCnnCode:
    def test_swapnd_for_4d_arrays(self, cnn_code):
        assert "swapnd_buffer" in cnn_code

    def test_halo_subscript_rebased(self, cnn_code):
        # inp_F's halo subscript p + 2 - r rebased by the tile start.
        assert "inp_F" in cnn_code
        assert "STMT_CNN_MAC" in cnn_code

    def test_inner_filter_loops_emitted(self, cnn_code):
        assert "for (int r = 0; r < 3; r += 1)" in cnn_code
        assert "for (int s = 0; s < 3; s += 1)" in cnn_code

    def test_thread_group_expression(self, cnn_code):
        # R = (1, 4, 2, 1, 1): k's group = threadID() % 8 / 2.
        assert "threadID() % 8 / 2" in cnn_code


class TestDeterminism:
    def test_generation_is_deterministic(self):
        tree = LoopTree.build(make_kernel("maxpool", "SMALL"))
        comp = component_at(tree, ["n", "k", "p", "q", "r"])
        solution = Solution(
            comp, {"n": 1, "k": 4, "p": 4, "q": 16, "r": 2})
        first = CodeGenerator(comp, solution).generate()
        second = CodeGenerator(comp, solution).generate()
        assert first == second
