"""Algorithm 3 swap-parameter tests, including Figure 5.4's 3-D example."""

import pytest

from repro.poly.access import Array
from repro.poly.affine import aff
from repro.prem.ranges import CanonicalRange
from repro.prem.swapgen import generate_swap_call


def crange(array, bounds):
    lo = tuple(aff(b[0]) for b in bounds)
    hi = tuple(aff(b[1]) for b in bounds)
    return CanonicalRange(array, lo, hi)


class TestFigure54:
    """double d[6][5][4]; range shape (4,3,2) starting at (2,0,2);
    bounding box (5,4,3).  Expected call parameters from the paper:
    offset 42, size {4,3,16}, spitch {5,32}, dpitch {4,24}."""

    @pytest.fixture()
    def call(self):
        d = Array("d", (6, 5, 4), "double")
        return generate_swap_call(
            crange(d, [(2, 5), (0, 2), (2, 3)]), (5, 4, 3))

    def test_api(self, call):
        assert call.api == "swapnd_buffer"

    def test_offset(self, call):
        assert call.src_offset() == 42

    def test_size(self, call):
        assert call.size == (4, 3, 2 * 8)

    def test_spitch(self, call):
        assert call.spitch == (5, 4 * 8)

    def test_dpitch(self, call):
        assert call.dpitch == (4, 3 * 8)

    def test_render(self, call):
        text = call.render("d_id")
        assert "swapnd_buffer(d_id" in text
        assert "{4, 3, 16}" in text
        assert "{5, 32}" in text
        assert "{4, 24}" in text


class TestOneAndTwoD:
    def test_1d_table_3_2_style(self):
        # Table 3.2: ifog rows of 109 elements, 4 bytes each.
        a = Array("ifog", (650,), "float")
        call = generate_swap_call(crange(a, [(218, 326)]), (109,))
        assert call.api == "swap_buffer"
        assert call.src_offset() == 218
        assert call.size == (109 * 4,)

    def test_2d_listing_3_3_style(self):
        u = Array("U_i", (650, 700), "float")
        call = generate_swap_call(
            crange(u, [(109, 217), (350, 699)]), (109, 350))
        assert call.api == "swap2d_buffer"
        assert call.src_offset() == 109 * 700 + 350
        assert call.size == (109, 350 * 4)
        assert call.spitch == (700 * 4,)
        assert call.dpitch == (350 * 4,)

    def test_symbolic_offset(self):
        inp = Array("inp_F", (10, 700), "float")
        call = generate_swap_call(
            CanonicalRange(inp, (aff("t"), aff(0)), (aff("t"), aff(349))),
            (1, 350))
        assert call.src_offset({"t": 3}) == 3 * 700
        assert "t" in call.render("inp_id")


class TestValidation:
    def test_range_exceeding_bbox_rejected(self):
        a = Array("a", (100,), "float")
        with pytest.raises(ValueError):
            generate_swap_call(crange(a, [(0, 49)]), (10,))

    def test_rank_mismatch_rejected(self):
        a = Array("a", (10, 10), "float")
        with pytest.raises(ValueError):
            generate_swap_call(crange(a, [(0, 4), (0, 4)]), (5,))
