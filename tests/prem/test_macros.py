"""Macro/swap-schedule tests reproducing Table 3.1's structure.

The fixture is the paper's running example: LSTM LARGE, component
(s1_0, p), K = (109, 350), R = (3, 1), 3 cores with 4 segments each.
"""

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.solution import Solution
from repro.prem.macros import MacroBuilder, render_trace


@pytest.fixture(scope="module")
def builder():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    comp = component_at(tree, ["s1_0", "p"])
    solution = Solution(comp, {"s1_0": 109, "p": 350},
                        {"s1_0": 3, "p": 1})
    return MacroBuilder(comp, solution)


@pytest.fixture(scope="module")
def core0(builder):
    return builder.core_schedules(0)


class TestSegmentToSwap:
    def test_u_matrices_swap_every_segment(self, core0):
        assert core0["U_i"].segments_to_swap == [1, 2, 3, 4]
        assert core0["U_i"].change_stride == 1

    def test_inp_f_swaps_every_segment(self, core0):
        assert core0["inp_F"].segments_to_swap == [1, 2, 3, 4]

    def test_gates_change_stride_two(self, core0):
        """Table 3.1: SegmentToSwap_ifog(0) = {seg1, seg3}."""
        for gate in ("i", "f", "o", "g"):
            assert core0[gate].segments_to_swap == [1, 3]
            assert core0[gate].change_stride == 2

    def test_equation_3_1_uniform_across_cores(self, builder):
        assert builder.segments_to_swap_uniform()


class TestIssuePlacement:
    def test_first_two_swaps_in_init_segment(self, core0):
        schedule = core0["U_i"]
        assert schedule.issue_segment(1) == 0
        assert schedule.issue_segment(2) == 0

    def test_third_swap_issued_at_seg1(self, core0):
        # Table 3.1: swap U_ifog(seg_{0,3}) executes in seg_{0,1}.
        assert core0["U_i"].issue_segment(3) == 1
        assert core0["U_i"].issue_segment(4) == 2

    def test_buffer_alternation(self, core0):
        buffers = [e.buffer for e in core0["U_i"].events]
        assert buffers == [1, 2, 1, 2]

    def test_transfer_slots(self, core0):
        schedule = core0["U_i"]
        # stride 1: the x-th load lands in slot x.
        assert [schedule.transfer_slot(x) for x in (1, 2, 3, 4)] == \
            [1, 2, 3, 4]
        gates = core0["i"]
        # stride 2: initial load slot 1, second load slot 3.
        assert gates.transfer_slot(1) == 1
        assert gates.transfer_slot(2) == 3

    def test_unload_slots(self, core0):
        gates = core0["i"]
        # range 1 (segs 1-2) unloads during seg 3 (slot 4); range 2 after
        # the last segment (slot n+2 = 6).
        assert gates.unload_slot(1) == 4
        assert gates.unload_slot(2) == 6


class TestDealloc:
    def test_gates_dealloc_placement(self, core0):
        # Table 3.1: dealloc ifog_buf1 in seg_{0,2}; final in seg_{0,4}.
        assert core0["i"].dealloc_segments() == [(2, 1), (4, 2)]

    def test_u_dealloc_placement(self, core0):
        # Table 3.1: dealloc U_ifog_buf1 in seg_{0,3}; buf2 in seg_{0,4}.
        assert core0["U_i"].dealloc_segments() == [(3, 1), (4, 2)]


class TestTrace:
    def test_trace_rows(self, builder):
        groups = {"U_ifog": ["U_i", "U_f", "U_o", "U_g"],
                  "ifog": ["i", "f", "o", "g"]}
        rows = builder.trace(0, outer={"t": 0}, groups=groups)
        assert len(rows) == 5          # init + 4 segments
        assert rows[0].segment == 0
        assert rows[0].tile is None
        assert any("dispatch" in call for call in rows[0].calls)
        # Every execution segment ends with end_segment.
        assert all(row.calls[-1] == "end_segment()" for row in rows)

    def test_spm_state_progression(self, builder):
        groups = {"U_ifog": ["U_i", "U_f", "U_o", "U_g"]}
        rows = builder.trace(0, outer={"t": 0}, groups=groups)
        # After the init segment buf1 holds seg1's range, buf2 empty;
        # after segment 1 buf2 holds seg2's range.
        state0 = rows[0].spm_state["U_ifog"]
        state1 = rows[1].spm_state["U_ifog"]
        assert state0[0] != "empty"
        assert state0[1] == "empty"
        assert state1[1] != "empty"

    def test_render_trace(self, builder):
        text = render_trace(builder.trace(0, outer={"t": 0}))
        assert "init segment" in text
        assert "segment 4" in text
        assert "swap2d_buffer" in text


class TestNonConstantStride:
    def test_bitvector_fallback(self):
        """Uneven tile counts yield non-constant change strides; the
        bit-vector encoding must cover every issued swap."""
        tree = LoopTree.build(make_kernel("lstm", "LARGE"))
        comp = component_at(tree, ["s1_0", "p"])
        # 3 p-ranges: gate swaps at segments 1 and 4 (stride 3), U swaps
        # every segment; make s1 ranges uneven: 650 = 2*300 + 50.
        solution = Solution(comp, {"s1_0": 300, "p": 250})
        builder = MacroBuilder(comp, solution)
        schedule = builder.core_schedules(0)["U_i"]
        stride = schedule.change_stride
        bits = schedule.swap_bitvector
        assert bits > 0
        for event in schedule.events:
            assert bits >> schedule.issue_segment(event.index) & 1
