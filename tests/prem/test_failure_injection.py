"""Failure injection: the PREM VM must expose broken schedules.

The functional VM is only a trustworthy oracle if incorrect compilation
decisions actually surface as errors or wrong results.  These tests
deliberately corrupt schedules and check the failure is caught:

- misclassifying an RW array as WO (skipping its loads) must poison the
  output with NaNs;
- accessing outside a segment's canonical range must raise;
- statements without compute functions must raise, not silently no-op.
"""

import numpy as np
import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.builder import for_, kernel_, stmt_
from repro.loopir.component import component_at
from repro.opt.solution import Solution
from repro.poly.access import Array
from repro.prem.runtime import (
    PremRuntime,
    SequentialInterpreter,
    init_arrays,
)
from repro.prem.segments import RO, RW, WO, classify_modes


@pytest.fixture()
def cnn_setup():
    kernel = make_kernel("cnn", "MINI")
    tree = LoopTree.build(kernel)
    comp = component_at(tree, ["n", "k", "p", "q", "c"])
    solution = Solution(comp, {"n": 1, "k": 2, "p": 2, "q": 4, "c": 3})
    return kernel, comp, solution


class TestModeMisclassification:
    def test_rw_as_wo_poisons_output(self, cnn_setup):
        """out_F accumulates (RW): treating it as WO skips the loads, so
        the first read in every tile hits poisoned SPM and NaN propagates
        to main memory — a silent-wrong-answer becomes a loud one."""
        kernel, comp, solution = cnn_setup
        modes = classify_modes(comp)
        assert modes["out_F"] == RW
        broken = dict(modes)
        broken["out_F"] = WO
        runtime = PremRuntime(comp, solution, modes=broken)
        arrays = init_arrays(kernel, seed=4)
        runtime.run(arrays, outer={})
        assert np.isnan(arrays["out_F"]).any()

    def test_correct_modes_no_poison(self, cnn_setup):
        kernel, comp, solution = cnn_setup
        runtime = PremRuntime(comp, solution)
        arrays = init_arrays(kernel, seed=4)
        runtime.run(arrays, outer={})
        assert not np.isnan(arrays["out_F"]).any()

    def test_ro_write_target_never_written_back(self, cnn_setup):
        """Marking the output RO drops its unloads: main memory keeps the
        original values — detectable against the reference."""
        kernel, comp, solution = cnn_setup
        broken = dict(classify_modes(comp))
        broken["out_F"] = RO
        runtime = PremRuntime(comp, solution, modes=broken)
        arrays = init_arrays(kernel, seed=4)
        before = arrays["out_F"].copy()
        runtime.run(arrays, outer={})
        np.testing.assert_array_equal(arrays["out_F"], before)


class TestOutOfRangeAccess:
    def test_access_outside_canonical_range_raises(self):
        """A statement whose compute touches elements its declared
        accesses do not cover must trip the SPM view's bounds check."""
        a = Array("a", (16,))
        b = Array("b", (16,))
        arrays = {"a": a, "b": b}

        def lying_compute(views, pt):
            i = pt["i"]
            # declared read is b[i]; actually reads b[i+8]
            views["a"][(i,)] = views["b"][((i + 8) % 16,)]

        s = stmt_("s", arrays, writes={"a": ("i",)},
                  reads={"b": ("i",)}, compute=lying_compute)
        kernel = kernel_("liar", [a, b], [for_("i", 16, s)])
        tree = LoopTree.build(kernel)
        comp = component_at(tree, ["i"])
        solution = Solution(comp, {"i": 4})
        runtime = PremRuntime(comp, solution)
        memory = init_arrays(kernel, seed=1)
        with pytest.raises(IndexError):
            runtime.run(memory, outer={})


class TestMissingCompute:
    def test_sequential_interpreter_raises(self):
        a = Array("a", (4,))
        s = stmt_("s", {"a": a}, writes={"a": ("i",)})   # no compute
        kernel = kernel_("nocompute", [a], [for_("i", 4, s)])
        with pytest.raises(ValueError, match="compute"):
            SequentialInterpreter().run(kernel, init_arrays(kernel))

    def test_vm_raises(self):
        a = Array("a", (4,))
        s = stmt_("s", {"a": a}, writes={"a": ("i",)})
        kernel = kernel_("nocompute2", [a], [for_("i", 4, s)])
        tree = LoopTree.build(kernel)
        comp = component_at(tree, ["i"])
        runtime = PremRuntime(comp, Solution(comp, {"i": 2}))
        with pytest.raises(ValueError, match="compute"):
            runtime.run(init_arrays(kernel), outer={})
