"""Tests for buffer-mode classification and per-core segment planning."""

import math

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.solution import Solution
from repro.prem.segments import (
    PlanError,
    RO,
    RW,
    SegmentPlanner,
    WO,
    classify_modes,
    swap_api_name,
)
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform


@pytest.fixture(scope="module")
def lstm_comp():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    return component_at(tree, ["s1_0", "p"])


@pytest.fixture(scope="module")
def lstm_model(lstm_comp):
    return fit_component_model(lstm_comp)


@pytest.fixture(scope="module")
def cnn_comp():
    tree = LoopTree.build(make_kernel("cnn", "LARGE"))
    return component_at(tree, ["n", "k", "p", "q", "c"])


BIG_SPM = Platform(spm_bytes=4 * 1024 * 1024)


def test_swap_api_name():
    assert swap_api_name(1) == "swap_buffer"
    assert swap_api_name(2) == "swap2d_buffer"
    assert swap_api_name(4) == "swapnd_buffer"


class TestModes:
    def test_lstm_component_modes(self, lstm_comp):
        """Section 3.5: U_* and inp_F are RO; i/f/o/g are WO because the
        guarded init writes every element before the accumulation reads."""
        modes = classify_modes(lstm_comp)
        for gate in ("i", "f", "o", "g"):
            assert modes[gate] == WO
        for mat in ("U_i", "U_f", "U_o", "U_g"):
            assert modes[mat] == RO
        assert modes["inp_F"] == RO

    def test_cnn_modes(self, cnn_comp):
        modes = classify_modes(cnn_comp)
        assert modes["out_F"] == RW       # read-modify-write accumulation
        assert modes["W"] == RO
        assert modes["inp_F"] == RO

    def test_rnn_modes(self):
        tree = LoopTree.build(make_kernel("rnn", "SMALL"))
        comp = component_at(tree, ["s2"])
        modes = classify_modes(comp)
        assert modes["h"] == RW           # exposed reads of h[s3]
        assert modes["acc"] == RO
        emit = component_at(tree, ["s4"])
        assert classify_modes(emit)["out_F"] == WO


class TestPlanning:
    def make_plan(self, comp, model, sizes, groups, platform=BIG_SPM):
        planner = SegmentPlanner(comp, platform, model)
        return planner.plan(Solution(comp, sizes, groups))

    def test_paper_example_geometry(self, lstm_comp, lstm_model):
        plan = self.make_plan(
            lstm_comp, lstm_model,
            {"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1})
        assert len(plan.cores) == 3
        assert all(core.n_segments == 4 for core in plan.cores)
        assert plan.total_segments == 12

    def test_spm_overflow_raises(self, lstm_comp, lstm_model):
        planner = SegmentPlanner(lstm_comp, Platform(), lstm_model)
        with pytest.raises(PlanError, match="SPM"):
            planner.plan(Solution(
                lstm_comp, {"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1}))

    def test_segment_cap_raises(self, lstm_comp, lstm_model):
        planner = SegmentPlanner(lstm_comp, BIG_SPM, lstm_model)
        with pytest.raises(PlanError, match="segments"):
            planner.plan(
                Solution(lstm_comp, {"s1_0": 1, "p": 1}),
                max_segments_per_core=100)

    def test_relevant_levels(self, lstm_comp, lstm_model):
        plan = self.make_plan(
            lstm_comp, lstm_model,
            {"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1})
        # U matrices move with both levels; gates only with s1; inp_F only
        # with p (its first dim is the outer t iterator).
        assert plan.array_plans["U_i"].relevant_levels == (0, 1)
        assert plan.array_plans["i"].relevant_levels == (0,)
        assert plan.array_plans["inp_F"].relevant_levels == (1,)

    def test_bounding_boxes_and_spm_accounting(self, lstm_comp, lstm_model):
        plan = self.make_plan(
            lstm_comp, lstm_model,
            {"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1})
        assert plan.array_plans["U_i"].bounding_shape == (109, 350)
        expected = 2 * sum(p.bounding_bytes
                           for p in plan.array_plans.values())
        assert plan.spm_bytes_needed == expected

    def test_mem_slots_and_deps(self, lstm_comp, lstm_model):
        plan = self.make_plan(
            lstm_comp, lstm_model,
            {"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1})
        core = plan.cores[0]
        n = core.n_segments
        assert len(core.mem_slot_ns) == n + 2
        # Loads exist for the first two slots; trailing unload occupies
        # the final slot (gates are WO and unload at n+2).
        assert core.mem_slot_ns[0] > 0
        assert core.mem_slot_ns[1] > 0
        assert core.mem_slot_ns[n + 1] > 0
        # Each segment's dependency points at a slot no later than itself.
        for segment in range(1, n + 1):
            assert 0 <= core.dep_slot[segment - 1] <= segment

    def test_transferred_bytes_double_counts_rw(self, cnn_comp):
        model = fit_component_model(cnn_comp)
        planner = SegmentPlanner(cnn_comp, Platform(), model)
        plan = planner.plan(Solution(
            cnn_comp, {"n": 1, "k": 32, "p": 7, "q": 28, "c": 16},
            {"n": 1, "k": 4, "p": 2, "q": 1, "c": 1}))
        # out_F is RW: it is both loaded and unloaded.
        assert plan.total_unload_bytes > 0
        assert plan.total_load_bytes > plan.total_unload_bytes

    def test_write_sharing_across_groups_rejected(self):
        """A written array whose range does not move with a parallelized
        level would be written identically by all its thread groups.

        Dependence analysis already clears such flags, so the scenario is
        forced by overriding the parallel attribute — the planner is the
        last line of defence (Section 5.3.1's cross-core overlap rule).
        """
        tree = LoopTree.build(make_kernel("lstm", "SMALL"))
        comp = component_at(tree, ["s1_0", "p"])
        model = fit_component_model(comp)
        planner = SegmentPlanner(comp, BIG_SPM, model)
        tree.node_by_var("p").parallel = True   # force an illegal flag
        ns = tree.kernel.constants["NS"]
        np_ = tree.kernel.constants["NP"]
        try:
            # The gates i/f/o/g (written) do not move with p: both p
            # thread groups would write the same gate ranges.
            with pytest.raises(PlanError, match="thread groups"):
                planner.plan(Solution(
                    comp, {"s1_0": ns, "p": np_ // 2}, {"p": 2}))
        finally:
            tree.node_by_var("p").parallel = False

    def test_api_costs_accounted(self, lstm_comp, lstm_model):
        plan = self.make_plan(
            lstm_comp, lstm_model,
            {"s1_0": 109, "p": 350}, {"s1_0": 3, "p": 1})
        core = plan.cores[0]
        assert core.init_api_ns > 0
        assert core.api_ns_total > core.init_api_ns
        assert all(e > 0 for e in core.exec_ns)
