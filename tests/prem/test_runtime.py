"""Functional PREM VM tests: the transformed schedule must compute exactly
what the original sequential program computes, for every kernel and for a
variety of tilings — including parallelized, boundary-heavy and
single-buffer-degenerate ones."""

import numpy as np
import pytest

from repro.compiler import PremCompiler
from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.solution import Solution
from repro.prem.runtime import (
    PremRuntime,
    SequentialInterpreter,
    SpmBufferView,
    init_arrays,
    run_kernel_prem,
)
from repro.timing.platform import Platform


def reference(kernel, seed=3):
    arrays = init_arrays(kernel, seed)
    SequentialInterpreter().run(kernel, arrays)
    return arrays


def assert_memories_equal(expected, actual):
    for name in expected:
        np.testing.assert_allclose(
            actual[name], expected[name], rtol=1e-5, atol=1e-6,
            err_msg=f"array {name} diverged")


class TestSpmBufferView:
    def test_translation(self):
        buf = np.zeros((3, 4))
        view = SpmBufferView("a", buf, (10, 20), (3, 4))
        view[11, 21] = 5.0
        assert buf[1, 1] == 5.0
        assert view[11, 21] == 5.0

    def test_out_of_range_rejected(self):
        view = SpmBufferView("a", np.zeros((3,)), (10,), (3,))
        with pytest.raises(IndexError):
            view[(9,)]
        with pytest.raises(IndexError):
            view[(13,)]

    def test_rank_mismatch_rejected(self):
        view = SpmBufferView("a", np.zeros((3, 3)), (0, 0), (3, 3))
        with pytest.raises(IndexError):
            view[(1,)]


class TestComponentRuntime:
    def run_component(self, kernel_name, band, sizes, groups=None):
        kernel = make_kernel(kernel_name, "MINI")
        tree = LoopTree.build(kernel)
        comp = component_at(tree, band)
        solution = Solution(comp, sizes, groups)
        expected = reference(kernel)
        arrays = init_arrays(kernel, 3)
        run_kernel_prem(kernel, {band[0]: (comp, solution)}, arrays)
        return kernel, expected, arrays

    def test_cnn_parallel_tiling(self):
        _, expected, actual = self.run_component(
            "cnn", ["n", "k", "p", "q", "c"],
            {"n": 1, "k": 1, "p": 2, "q": 2, "c": 2},
            {"n": 1, "k": 2, "p": 2, "q": 1, "c": 1})
        assert_memories_equal(expected, actual)

    def test_cnn_boundary_tiles(self):
        # MINI: k=4, p=4, q=4, c=3 — sizes 3/3/3/2 leave remainders.
        _, expected, actual = self.run_component(
            "cnn", ["n", "k", "p", "q", "c"],
            {"n": 1, "k": 3, "p": 3, "q": 3, "c": 2})
        assert_memories_equal(expected, actual)

    def test_maxpool_window_fold(self):
        _, expected, actual = self.run_component(
            "maxpool", ["n", "k", "p", "q", "r"],
            {"n": 1, "k": 1, "p": 2, "q": 2, "r": 2},
            {"n": 1, "k": 3, "p": 1, "q": 1, "r": 1})
        assert_memories_equal(expected, actual)

    def test_sumpool_sequential(self):
        _, expected, actual = self.run_component(
            "sumpool", ["n", "k", "p", "q", "r"],
            {"n": 1, "k": 2, "p": 4, "q": 2, "r": 2})
        assert_memories_equal(expected, actual)

    def test_rnn_sequential_recurrence(self):
        _, expected, actual = self.run_component(
            "rnn", ["t"], {"t": 3})
        assert_memories_equal(expected, actual)

    def test_single_tile_degenerates_to_one_segment(self):
        kernel = make_kernel("cnn", "MINI")
        tree = LoopTree.build(kernel)
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        sizes = {v: tree.node_by_var(v).N
                 for v in ("n", "k", "p", "q", "c")}
        solution = Solution(comp, sizes)
        expected = reference(kernel)
        arrays = init_arrays(kernel, 3)
        run_kernel_prem(kernel, {"n": (comp, solution)}, arrays)
        assert_memories_equal(expected, arrays)


class TestMultiComponentKernel:
    def test_lstm_children_decomposition(self):
        """All four LSTM sub-components run as separate PREM schedules
        under the sequential time loop."""
        kernel = make_kernel("lstm", "MINI")
        tree = LoopTree.build(kernel)
        ns, np_ = kernel.constants["NS"], kernel.constants["NP"]
        components = {}
        for band, sizes, groups in [
            (["s1_0", "p"], {"s1_0": 2, "p": 3}, {"s1_0": 2}),
            (["s1_1", "s2"], {"s1_1": 2, "s2": ns}, {"s1_1": 2}),
            (["b_0"], {"b_0": 2}, {"b_0": 2}),
            (["b_1"], {"b_1": 2}, {"b_1": 2}),
        ]:
            comp = component_at(tree, band)
            components[band[0]] = (comp, Solution(comp, sizes, groups))
        expected = reference(kernel)
        arrays = init_arrays(kernel, 3)
        run_kernel_prem(kernel, components, arrays)
        assert_memories_equal(expected, arrays)


class TestCompilerIntegration:
    @pytest.mark.parametrize("name",
                             ["cnn", "lstm", "maxpool", "sumpool", "rnn"])
    @pytest.mark.parametrize("spm", [2048, 8192])
    def test_compiled_program_matches_reference(self, name, spm):
        kernel = make_kernel(name, "MINI")
        result = PremCompiler(Platform(spm_bytes=spm)).compile(kernel)
        assert result.feasible
        expected = result.run_reference(seed=11)
        actual = result.run_functional(seed=11)
        assert_memories_equal(expected, actual)
