"""Canonical data element range tests against the paper's worked examples.

Key fixtures: the LSTM component of Section 3.5 (segment ranges like
``U_ifog[0-108][0-349]``) and the 3-D transfer example of Figure 5.4.
"""

import pytest

from repro.kernels import lstm, make_kernel, preset_sizes
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.poly.affine import AffineExpr, aff
from repro.prem.ranges import (
    CanonicalRange,
    bounding_box,
    canonical_range,
    partial_bounds,
    ranges_overlap,
    tile_box,
)
from repro.poly.access import Array


@pytest.fixture(scope="module")
def lstm_large():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    return component_at(tree, ["s1_0", "p"])


SIZES = {"s1_0": 109, "p": 350}


class TestPartialBounds:
    def test_pure_numeric(self):
        lo, hi = partial_bounds(aff("i") * 2 + 1, {"i": (0, 4)})
        assert (lo.constant, hi.constant) == (1, 9)

    def test_symbolic_part_passes_through(self):
        expr = aff("t") + aff("p")
        lo, hi = partial_bounds(expr, {"p": (3, 7)})
        assert lo == aff("t") + 3
        assert hi == aff("t") + 7

    def test_negative_coefficient(self):
        lo, hi = partial_bounds(5 - aff("r"), {"r": (0, 2)})
        assert (lo.constant, hi.constant) == (3, 5)


class TestSection35Ranges:
    """The canonical ranges quoted in Section 3.5 for the LSTM example
    with K = (109, 350) on core 0."""

    def range_at(self, comp, name, s1_t, p_t):
        box = tile_box(comp, {"s1_0": s1_t, "p": p_t}, SIZES)
        return canonical_range(comp, name, box)

    def test_u_ifog_seg01(self, lstm_large):
        crange = self.range_at(lstm_large, "U_i", 0, 0)
        assert crange.concrete() == ((0, 108), (0, 349))

    def test_u_ifog_seg02(self, lstm_large):
        crange = self.range_at(lstm_large, "U_i", 0, 1)
        assert crange.concrete() == ((0, 108), (350, 699))

    def test_u_ifog_seg03(self, lstm_large):
        crange = self.range_at(lstm_large, "U_i", 1, 0)
        assert crange.concrete() == ((109, 217), (0, 349))

    def test_last_tile_clipped(self, lstm_large):
        # 650 = 5*109 + 105: the last s1 range has 105 rows.
        crange = self.range_at(lstm_large, "U_i", 5, 1)
        assert crange.concrete() == ((545, 649), (350, 699))
        assert crange.shape == (105, 350)

    def test_ifog_depends_only_on_s1(self, lstm_large):
        a = self.range_at(lstm_large, "i", 0, 0)
        b = self.range_at(lstm_large, "i", 0, 1)
        c = self.range_at(lstm_large, "i", 1, 0)
        assert a.same_as(b)
        assert not a.same_as(c)

    def test_inp_f_symbolic_over_time(self, lstm_large):
        crange = self.range_at(lstm_large, "inp_F", 0, 0)
        # dim 0 is the outer iterator t: symbolic until pinned.
        assert crange.lo[0] == aff("t")
        assert crange.concrete({"t": 4}) == ((4, 4), (0, 349))
        assert crange.shape == (1, 350)

    def test_bytes_match_table_3_2(self, lstm_large):
        # Table 3.2: ifog swap sizes are 109*4 bytes per segment.
        crange = self.range_at(lstm_large, "i", 0, 0)
        assert crange.bytes == 109 * 4

    def test_address_offset(self, lstm_large):
        crange = self.range_at(lstm_large, "i", 2, 0)
        assert crange.address_offset() == 218


class TestFigure53Hull:
    """Figure 5.3: sparse accesses in arr[5][5] hull to [1..4]x[0..3]."""

    def test_hull_of_guarded_accesses(self):
        arr = Array("arr", (5, 5))
        lo = (aff(1), aff(0))
        hi = (aff(4), aff(3))
        crange = CanonicalRange(arr, lo, hi)
        assert crange.shape == (4, 4)
        assert crange.elements == 16


class TestCnnHalo:
    def test_input_halo_included(self):
        tree = LoopTree.build(make_kernel("cnn", "SMALL"))
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        sizes = {"n": 1, "k": 4, "p": 2, "q": 8, "c": 8}
        box = tile_box(comp, {v: 0 for v in sizes}, sizes)
        crange = canonical_range(comp, "inp_F", box)
        nr = tree.kernel.constants["NR"]
        # p in [0,1], subscript p + NR-1-r covers [0, 1 + NR - 1].
        assert crange.concrete()[2] == (0, 1 + nr - 1)


class TestBoundingBox:
    def test_dominated_by_full_tile(self, lstm_large):
        bbox = bounding_box(lstm_large, "U_i", SIZES)
        assert bbox == (109, 350)

    def test_unknown_array_raises(self, lstm_large):
        with pytest.raises(LookupError):
            bounding_box(lstm_large, "nope", SIZES)


class TestOverlap:
    def make(self, lo0, hi0):
        arr = Array("a", (100,))
        return CanonicalRange(arr, (aff(lo0),), (aff(hi0),))

    def test_disjoint(self):
        assert not ranges_overlap(self.make(0, 9), self.make(10, 19))

    def test_overlapping(self):
        assert ranges_overlap(self.make(0, 10), self.make(10, 19))

    def test_symbolic_conservative(self):
        arr = Array("a", (100, 100))
        a = CanonicalRange(arr, (aff("t"), aff(0)), (aff("t"), aff(9)))
        b = CanonicalRange(
            arr, (aff("t") - 1, aff(0)), (aff("t") - 1, aff(9)))
        assert not ranges_overlap(a, b)   # t-1 < t provably


class TestGuardNarrowing:
    def test_loop_guard_narrows_band_variable(self):
        """The LSTM (t) whole-loop component must not produce negative
        subscripts for s_F[t-1][...] thanks to the t > 0 loop guard."""
        kernel = lstm(preset_sizes("lstm", "MINI"))
        tree = LoopTree.build(kernel)
        comp = component_at(tree, ["t"])
        nt = kernel.constants["NT"]
        box = tile_box(comp, {"t": 0}, {"t": nt})
        crange = canonical_range(comp, "s_F", box)
        lo, hi = crange.concrete()[0]
        assert lo == 0
        assert hi == nt - 1
