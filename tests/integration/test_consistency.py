"""Cross-module consistency: the macro builder (used for codegen, traces
and the VM) and the segment planner (used for timing) must describe the
same schedule for any solution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.solution import Solution
from repro.prem.macros import MacroBuilder
from repro.prem.segments import PlanError, SegmentPlanner
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform

BIG = Platform(spm_bytes=64 * 1024 * 1024)


@pytest.fixture(scope="module")
def lstm_setup():
    tree = LoopTree.build(make_kernel("lstm", "SMALL"))
    comp = component_at(tree, ["s1_0", "p"])
    return comp, fit_component_model(comp)


def check_consistency(comp, model, sizes, groups):
    solution = Solution(comp, sizes, groups)
    planner = SegmentPlanner(comp, BIG, model)
    try:
        plan = planner.plan(solution)
    except PlanError:
        return
    builder = MacroBuilder(comp, solution, planner.modes)

    total_load = 0
    total_unload = 0
    for core in range(solution.threads):
        schedules = builder.core_schedules(core)
        core_plan = plan.cores[core]
        n = core_plan.n_segments
        assert n == solution.segments_on_core(core)
        for name, schedule in schedules.items():
            mode = schedule.mode
            events = schedule.events
            if n:
                assert not events or events[0].segment == 1
            for before, after in zip(events, events[1:]):
                assert before.segment < after.segment
            for event in events:
                slot = schedule.transfer_slot(event.index)
                assert 1 <= slot <= event.segment
                if mode in ("RO", "RW"):
                    total_load += event.crange.bytes
                if mode in ("WO", "RW"):
                    total_unload += event.crange.bytes
                    unload = schedule.unload_slot(event.index)
                    assert unload <= n + 2
        for segment in range(1, n + 1):
            assert 0 <= core_plan.dep_slot[segment - 1] <= segment

    assert total_load == plan.total_load_bytes
    assert total_unload == plan.total_unload_bytes


CASES = [
    ({"s1_0": 8, "p": 10}, {"s1_0": 4, "p": 1}),
    ({"s1_0": 32, "p": 40}, None),
    ({"s1_0": 5, "p": 40}, {"s1_0": 2, "p": 1}),
    ({"s1_0": 32, "p": 13}, {"s1_0": 1, "p": 1}),
    ({"s1_0": 3, "p": 7}, {"s1_0": 8, "p": 1}),
]


@pytest.mark.parametrize("sizes,groups", CASES)
def test_planner_and_macros_agree(lstm_setup, sizes, groups):
    comp, model = lstm_setup
    check_consistency(comp, model, sizes, groups)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=32),
       st.integers(min_value=1, max_value=40),
       st.sampled_from([1, 2, 4, 8]))
def test_planner_and_macros_agree_random(k_s1, k_p, r_s1):
    tree = LoopTree.build(make_kernel("lstm", "SMALL"))
    comp = component_at(tree, ["s1_0", "p"])
    model = fit_component_model(comp)
    import math
    if r_s1 > math.ceil(comp.nodes[0].N / k_s1):
        return
    check_consistency(comp, model, {"s1_0": k_s1, "p": k_p},
                      {"s1_0": r_s1, "p": 1})


def test_cnn_consistency():
    tree = LoopTree.build(make_kernel("cnn", "SMALL"))
    comp = component_at(tree, ["n", "k", "p", "q", "c"])
    model = fit_component_model(comp)
    check_consistency(
        comp, model,
        {"n": 1, "k": 4, "p": 3, "q": 8, "c": 3},
        {"n": 1, "k": 2, "p": 2, "q": 1, "c": 1})
