"""Tests for the report formatting and archiving helpers."""

import json

import pytest

from repro.reporting import (
    ExperimentReport,
    format_table,
    format_value,
    full_grid_enabled,
    log2_label,
    results_dir,
)


class TestFormatting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value("abc") == "abc"
        assert format_value(1234567) == "1,234,567"
        assert format_value(float("inf")) == "inf"
        assert format_value(0.0) == "0"
        assert format_value(0.1253) == "0.1253"
        assert format_value(3.14159) == "3.14"
        assert format_value(1e9) == "1,000,000,000"

    def test_format_table_alignment(self):
        text = format_table(
            ["kernel", "value"],
            [["cnn", 1], ["lstm", 22222]],
            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("kernel")
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_log2_label(self):
        assert log2_label(16) == "16"
        assert log2_label(1 / 16) == "1/16"
        assert log2_label(1) == "1"


class TestExperimentReport:
    def test_row_arity_checked(self):
        report = ExperimentReport("x", "t", ["a", "b"])
        with pytest.raises(ValueError):
            report.add_row(1)

    def test_save_and_json(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path))
        report = ExperimentReport("demo_exp", "title", ["a", "b"])
        report.add_row(1, 2.5)
        report.add_note("a note")
        path = report.save()
        assert path.read_text().startswith("[demo_exp] title")
        payload = json.loads((tmp_path / "demo_exp.json").read_text())
        assert payload["rows"] == [[1, 2.5]]
        assert payload["notes"] == ["a note"]

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS", str(tmp_path / "sub"))
        assert results_dir() == tmp_path / "sub"
        assert (tmp_path / "sub").is_dir()


class TestFullGridFlag:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_grid_enabled()
        monkeypatch.setenv("REPRO_FULL", "0")
        assert not full_grid_enabled()

    def test_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_grid_enabled()
