"""Property test: ANY legal tiling/parallelization computes the same
result as the sequential program under the PREM VM.

This is the repo's master invariant — it exercises canonical ranges,
buffer modes, swap scheduling, double buffering and the VM together on
randomly drawn solutions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.solution import Solution
from repro.prem.runtime import (
    SequentialInterpreter,
    init_arrays,
    run_kernel_prem,
)


def reference_memory(kernel):
    arrays = init_arrays(kernel, seed=9)
    SequentialInterpreter().run(kernel, arrays)
    return arrays


@pytest.fixture(scope="module")
def cnn_fixture():
    kernel = make_kernel("cnn", "MINI")
    tree = LoopTree.build(kernel)
    comp = component_at(tree, ["n", "k", "p", "q", "c"])
    return kernel, tree, comp, reference_memory(kernel)


@pytest.fixture(scope="module")
def lstm_fixture():
    kernel = make_kernel("lstm", "MINI")
    tree = LoopTree.build(kernel)
    comp = component_at(tree, ["t"])
    return kernel, tree, comp, reference_memory(kernel)


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_cnn_random_tilings_equivalent(cnn_fixture, data):
    kernel, tree, comp, expected = cnn_fixture
    sizes = {}
    for node in comp.nodes:
        sizes[node.var] = data.draw(
            st.integers(min_value=1, max_value=node.N), label=node.var)
    groups = {}
    budget = 8
    for node in comp.nodes:
        if not node.parallel:
            continue
        import math
        m = math.ceil(node.N / sizes[node.var])
        cap = min(budget, m)
        r = data.draw(st.integers(min_value=1, max_value=cap),
                      label=f"R_{node.var}")
        groups[node.var] = r
        budget //= r

    solution = Solution(comp, sizes, groups)
    arrays = init_arrays(kernel, seed=9)
    run_kernel_prem(kernel, {"n": (comp, solution)}, arrays)
    for name in expected:
        np.testing.assert_allclose(
            arrays[name], expected[name], rtol=1e-5, atol=1e-6,
            err_msg=f"{name} diverged for {solution.describe()}")


def test_lstm_time_tiling_rejected_below_full(lstm_fixture):
    """Chunking the time loop makes consecutive segments' c_F/s_F hulls
    overlap without being equal (the c_F[t-1] reads straddle chunk
    boundaries), which Section 5.3.1 declares illegal — the planner must
    reject every K_t < NT."""
    from repro.prem.segments import PlanError, SegmentPlanner
    from repro.sim.profiler import fit_component_model
    from repro.timing.platform import Platform

    kernel, tree, comp, expected = lstm_fixture
    model = fit_component_model(comp)
    planner = SegmentPlanner(
        comp, Platform(spm_bytes=1 << 26), model)
    nt = kernel.constants["NT"]
    for k_t in range(1, nt):
        with pytest.raises(PlanError):
            planner.plan(Solution(comp, {"t": k_t}))
    # the single-tile solution is legal and equivalent
    solution = Solution(comp, {"t": nt})
    planner.plan(solution)
    arrays = init_arrays(kernel, seed=9)
    run_kernel_prem(kernel, {"t": (comp, solution)}, arrays)
    for name in expected:
        np.testing.assert_allclose(
            arrays[name], expected[name], rtol=1e-5, atol=1e-6)
