"""CLI smoke tests (fast presets only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for command in ("tree", "compile", "codegen", "trace", "gantt",
                        "sweep", "analyze", "pareto"):
            args = parser.parse_args([command, "cnn"])
            assert args.command == command

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tree", "fft"])


class TestCommands:
    def test_tree(self, capsys):
        assert main(["tree", "lstm", "--preset", "MINI"]) == 0
        out = capsys.readouterr().out
        assert "s1_0" in out and "dependences" in out

    def test_compile(self, capsys):
        code = main(["compile", "cnn", "--preset", "MINI",
                     "--spm", "8", "--cores", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "normalised" in out

    def test_compile_greedy(self, capsys):
        code = main(["compile", "cnn", "--preset", "MINI",
                     "--spm", "8", "--greedy"])
        assert code == 0

    def test_codegen(self, capsys):
        assert main(["codegen", "maxpool", "--preset", "MINI",
                     "--spm", "8"]) == 0
        out = capsys.readouterr().out
        assert "BUFFER_ALLOC_APIS" in out

    def test_trace(self, capsys):
        assert main(["trace", "sumpool", "--preset", "MINI",
                     "--spm", "8"]) == 0
        out = capsys.readouterr().out
        assert "segment" in out

    def test_gantt(self, capsys):
        assert main(["gantt", "cnn", "--preset", "MINI",
                     "--spm", "8"]) == 0
        out = capsys.readouterr().out
        assert "dma" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "lstm", "--preset", "MINI", "--spm", "8",
                     "--speeds", "1,16"]) == 0
        out = capsys.readouterr().out
        assert "normalised" in out

    def test_faults_campaign(self, capsys):
        code = main(["faults", "cnn", "--seed", "7", "--per-kind", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out and "detected" in out
        assert "OK: every correctness-affecting fault was detected" in out

    def test_faults_selected_kinds(self, capsys):
        code = main(["faults", "cnn", "--seed", "7", "--per-kind", "1",
                     "--kinds", "swap-drop,spm-poison"])
        assert code == 0
        out = capsys.readouterr().out
        assert "swap-drop" in out and "dma-jitter" not in out

    def test_faults_unknown_kind_rejected(self, capsys):
        code = main(["faults", "cnn", "--kinds", "bitrot"])
        assert code == 2
        assert "unknown fault kinds" in capsys.readouterr().err

    def test_compile_robust(self, capsys):
        code = main(["compile", "maxpool", "--preset", "MINI",
                     "--robust", "--stage-budget", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy" in out and "ok" in out

    def test_compile_jobs(self, capsys):
        serial = main(["compile", "lstm", "--preset", "MINI"])
        serial_out = capsys.readouterr().out
        parallel = main(["compile", "lstm", "--preset", "MINI",
                         "--jobs", "4"])
        parallel_out = capsys.readouterr().out
        assert serial == parallel == 0
        assert serial_out == parallel_out      # bit-identical report

    def test_compile_cache_warm(self, tmp_path, capsys):
        argv = ["compile", "lstm", "--preset", "MINI",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "cache hits" not in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "cache hits" in warm and "100.0% of probes" in warm

    def test_compile_no_cache(self, tmp_path, capsys):
        argv = ["compile", "lstm", "--preset", "MINI",
                "--cache-dir", str(tmp_path), "--no-cache"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "cache hits" not in capsys.readouterr().out
        assert not list(tmp_path.iterdir())    # nothing was written

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        assert main(["compile", "lstm", "--preset", "MINI",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "makespan-cache.jsonl" in out
        assert main(["cache", "clear", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "entries    : 0" in capsys.readouterr().out

    def test_gantt_replans_from_warm_cache(self, tmp_path, capsys):
        # A warm cache hands the winner back plan-less; gantt must
        # re-plan it (not bypass the cache, not fail) and render the
        # identical timeline.
        argv = ["gantt", "cnn", "--preset", "MINI", "--spm", "8",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert (tmp_path / "makespan-cache.jsonl").exists()
        assert main(argv) == 0                 # warm run still renders
        warm = capsys.readouterr().out
        assert "dma" in warm
        assert warm == cold

    def test_compile_robust_timing(self, capsys):
        code = main(["compile", "lstm", "--preset", "MINI", "--spm", "8",
                     "--robust-timing", "--scenarios", "4", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "robust: cvar-0.9 over 4 scenarios" in out

    def test_compile_robust_timing_zero_scenarios_matches_pruned(
            self, capsys):
        base = ["lstm", "--preset", "MINI", "--spm", "8"]
        assert main(["compile"] + base + ["--pruned"]) == 0
        pruned_out = capsys.readouterr().out
        assert main(["compile"] + base + ["--robust-timing",
                                          "--scenarios", "0"]) == 0
        robust_out = capsys.readouterr().out

        def makespan_line(text):
            return next(l for l in text.splitlines()
                        if l.startswith("makespan"))

        # Identical makespan; only the robust note differs.
        assert makespan_line(pruned_out) == makespan_line(robust_out)
        assert "0 scenarios (nominal winner kept)" in robust_out

    def test_pareto_command(self, capsys):
        code = main(["pareto", "rnn", "--preset", "MINI", "--spm", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pareto:" in out                  # per-component note
        assert "makespan ns" in out              # frontier table header
        assert "weights (" in out                # scalarized winners

    def test_compile_pareto(self, capsys):
        code = main(["compile", "cnn", "--preset", "MINI",
                     "--spm", "8", "--pareto"])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out                 # the usual compile report
        assert "pareto:" in out and "front members" in out

    def test_pareto_custom_weights(self, capsys):
        code = main(["pareto", "rnn", "--preset", "MINI", "--spm", "8",
                     "--weights", "0.7,0.1,0.1,0.1",
                     "--weights", "0.25,0.25,0.25,0.25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "weights (0.7,0.1,0.1,0.1)" in out
        assert "weights (0.25,0.25,0.25,0.25)" in out

    @pytest.mark.parametrize("bad", ["0,1,1,1", "1,2,3", "a,b,c,d"])
    def test_pareto_bad_weights_exit_2(self, bad, capsys):
        code = main(["pareto", "rnn", "--preset", "MINI", "--spm", "8",
                     "--weights", bad])
        assert code == 2
        err = capsys.readouterr().err
        assert "--weights" in err or "weights" in err


class TestShardCli:
    BASE = ["cnn", "--preset", "MINI", "--spm", "8"]

    def test_shard_compile_status_reduce_roundtrip(self, tmp_path,
                                                   capsys):
        # Reference: one unsharded --pruned compile on its own cache.
        ref_dir = tmp_path / "ref"
        assert main(["compile"] + self.BASE +
                    ["--pruned", "--cache-dir", str(ref_dir)]) == 0
        reference = capsys.readouterr().out

        shared = tmp_path / "shared"
        for shard in ("1/3", "2/3", "3/3"):
            assert main(["compile"] + self.BASE +
                        ["--shard", shard,
                         "--cache-dir", str(shared)]) == 0
            out = capsys.readouterr().out
            assert f"shard             : {shard}" in out

        assert main(["shard", "status", "--cache-dir", str(shared)]) == 0
        status = capsys.readouterr().out
        assert "3/3 chunks done" in status

        assert main(["shard-reduce"] + self.BASE +
                    ["--cache-dir", str(shared)]) == 0
        merged = capsys.readouterr().out
        assert "0" in merged and "cache hits" in merged

        def line(text, prefix):
            return next(l for l in text.splitlines()
                        if l.startswith(prefix))

        # The merged winner is bit-identical to the unsharded compile.
        assert line(merged, "makespan") == line(reference, "makespan")
        assert line(merged, "kernel cnn") == line(reference, "kernel cnn")
        # ... and recovered entirely from the cache: no fresh plans.
        assert "evaluations       :                0" in merged

    def test_shard_infeasible_slice_still_exits_zero(self, tmp_path,
                                                     capsys):
        shared = tmp_path / "shared"
        # Score the winning shard first so its published incumbent
        # prunes the later shard to an empty (infeasible) slice.
        for shard in ("1/2", "2/2"):
            assert main(["compile"] + self.BASE +
                        ["--shard", shard,
                         "--cache-dir", str(shared)]) == 0
            capsys.readouterr()

    def test_malformed_shard_exits_2(self, tmp_path, capsys):
        for bad in ("3", "0/2", "3/2", "a/b", "1/0"):
            code = main(["compile"] + self.BASE +
                        ["--shard", bad, "--cache-dir", str(tmp_path)])
            assert code == 2, bad
            assert "--shard" in capsys.readouterr().err

    def test_shard_without_cache_dir_exits_2(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["compile"] + self.BASE + ["--shard", "1/2"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_shard_rejects_greedy_and_robust(self, tmp_path, capsys):
        assert main(["compile"] + self.BASE +
                    ["--shard", "1/2", "--greedy",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "--greedy" in capsys.readouterr().err
        assert main(["compile"] + self.BASE +
                    ["--shard", "1/2", "--robust",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "--robust" in capsys.readouterr().err

    def test_shard_status_empty_log(self, tmp_path, capsys):
        assert main(["shard", "status", "--cache-dir",
                     str(tmp_path)]) == 0
        assert "no shard coordination records" in capsys.readouterr().out

    def test_shard_reduce_without_cache_dir_exits_2(self, capsys,
                                                    monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["shard-reduce"] + self.BASE) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_cache_compact_cli(self, tmp_path, capsys):
        assert main(["compile"] + self.BASE +
                    ["--pruned", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["cache", "compact", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "reclaimed" in out
        # The compacted cache still yields a 100%-warm compile.
        assert main(["compile"] + self.BASE +
                    ["--pruned", "--cache-dir", str(tmp_path)]) == 0
        assert "100.0% of probes" in capsys.readouterr().out

    def test_robust_timing_accepts_shard(self, tmp_path, capsys):
        for shard in ("1/2", "2/2"):
            assert main(["compile"] + self.BASE +
                        ["--robust-timing", "--scenarios", "2",
                         "--shard", shard,
                         "--cache-dir", str(tmp_path)]) == 0
            capsys.readouterr()


class TestAnalyze:
    def test_analyze_clean_kernel(self, capsys):
        assert main(["analyze", "cnn", "--preset", "MINI"]) == 0
        out = capsys.readouterr().out
        assert "static analysis of cnn" in out
        assert "no diagnostics" in out

    def test_analyze_json(self, capsys):
        import json
        assert main(["analyze", "maxpool", "--preset", "MINI",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "maxpool"
        assert payload["counts"]["errors"] == 0

    def test_analyze_pass_subset(self, capsys):
        assert main(["analyze", "cnn", "--preset", "MINI",
                     "--passes", "races,capacity"]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_analyze_unknown_pass_rejected(self, capsys):
        assert main(["analyze", "cnn", "--preset", "MINI",
                     "--passes", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_analyze_selftest(self, capsys):
        assert main(["analyze", "cnn", "--preset", "SMALL",
                     "--cores", "1", "--spm", "8",
                     "--selftest", "30", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "static fault campaign" in out
        assert "detection rate" in out

    def test_compile_verify_static(self, capsys):
        assert main(["compile", "cnn", "--preset", "MINI",
                     "--verify-static"]) == 0
        out = capsys.readouterr().out
        assert "static analysis" in out
        assert "0 error(s)" in out


class TestPresetValidation:
    def test_unknown_preset_reported_with_the_offending_value(self,
                                                              capsys):
        # Validation is deferred past argparse so the error names the
        # bad token and the kernel's actual presets.
        assert main(["compile", "cnn", "--preset", "HUGE"]) == 2
        err = capsys.readouterr().err
        assert "HUGE" in err and "cnn" in err
        assert "MINI" in err          # known presets are listed

    def test_faults_defaults_to_mini(self):
        args = build_parser().parse_args(["faults", "cnn"])
        assert args.preset == "MINI"

    def test_known_presets_accepted(self):
        for preset in ("MINI", "SMALL", "LARGE"):
            args = build_parser().parse_args(
                ["compile", "cnn", "--preset", preset])
            assert args.preset == preset
