"""CLI smoke tests (fast presets only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for command in ("tree", "compile", "codegen", "trace", "gantt",
                        "sweep"):
            args = parser.parse_args([command, "cnn"])
            assert args.command == command

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tree", "fft"])


class TestCommands:
    def test_tree(self, capsys):
        assert main(["tree", "lstm", "--preset", "MINI"]) == 0
        out = capsys.readouterr().out
        assert "s1_0" in out and "dependences" in out

    def test_compile(self, capsys):
        code = main(["compile", "cnn", "--preset", "MINI",
                     "--spm", "8", "--cores", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "normalised" in out

    def test_compile_greedy(self, capsys):
        code = main(["compile", "cnn", "--preset", "MINI",
                     "--spm", "8", "--greedy"])
        assert code == 0

    def test_codegen(self, capsys):
        assert main(["codegen", "maxpool", "--preset", "MINI",
                     "--spm", "8"]) == 0
        out = capsys.readouterr().out
        assert "BUFFER_ALLOC_APIS" in out

    def test_trace(self, capsys):
        assert main(["trace", "sumpool", "--preset", "MINI",
                     "--spm", "8"]) == 0
        out = capsys.readouterr().out
        assert "segment" in out

    def test_gantt(self, capsys):
        assert main(["gantt", "cnn", "--preset", "MINI",
                     "--spm", "8"]) == 0
        out = capsys.readouterr().out
        assert "dma" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "lstm", "--preset", "MINI", "--spm", "8",
                     "--speeds", "1,16"]) == 0
        out = capsys.readouterr().out
        assert "normalised" in out

    def test_faults_campaign(self, capsys):
        code = main(["faults", "cnn", "--seed", "7", "--per-kind", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault campaign" in out and "detected" in out
        assert "OK: every correctness-affecting fault was detected" in out

    def test_faults_selected_kinds(self, capsys):
        code = main(["faults", "cnn", "--seed", "7", "--per-kind", "1",
                     "--kinds", "swap-drop,spm-poison"])
        assert code == 0
        out = capsys.readouterr().out
        assert "swap-drop" in out and "dma-jitter" not in out

    def test_faults_unknown_kind_rejected(self, capsys):
        code = main(["faults", "cnn", "--kinds", "bitrot"])
        assert code == 2
        assert "unknown fault kinds" in capsys.readouterr().err

    def test_compile_robust(self, capsys):
        code = main(["compile", "maxpool", "--preset", "MINI",
                     "--robust", "--stage-budget", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy" in out and "ok" in out


class TestPresetValidation:
    def test_unknown_preset_rejected_by_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["compile", "cnn", "--preset", "HUGE"])
        assert excinfo.value.code == 2

    def test_faults_defaults_to_mini(self):
        args = build_parser().parse_args(["faults", "cnn"])
        assert args.preset == "MINI"

    def test_known_presets_accepted(self):
        for preset in ("MINI", "SMALL", "LARGE"):
            args = build_parser().parse_args(
                ["compile", "cnn", "--preset", preset])
            assert args.preset == preset
