"""End-to-end compiler pipeline tests (Figure 5.1's toolchain)."""

import math

import numpy as np
import pytest

from repro.compiler import PremCompiler
from repro.kernels import make_kernel
from repro.timing.platform import Platform


@pytest.fixture(scope="module")
def compiled_small_cnn():
    return PremCompiler(Platform()).compile(make_kernel("cnn", "SMALL"))


class TestCompile:
    def test_result_fields(self, compiled_small_cnn):
        result = compiled_small_cnn
        assert result.feasible
        assert result.ideal_ns > 0
        assert result.makespan_ns > 0
        assert result.components
        assert 0 < result.normalized_makespan < 2.0

    def test_generated_c_per_component(self, compiled_small_cnn):
        sources = compiled_small_cnn.generate_c()
        assert "(n, k, p, q, c)" in sources
        text = sources["(n, k, p, q, c)"]
        assert "BUFFER_ALLOC_APIS" in text
        assert "end_segment();" in text

    def test_greedy_strategy(self):
        kernel = make_kernel("cnn", "SMALL")
        compiler = PremCompiler(Platform())
        heuristic = compiler.compile(kernel)
        greedy = compiler.compile(kernel, strategy="greedy")
        assert greedy.feasible
        assert heuristic.makespan_ns <= greedy.makespan_ns * 1.001

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            PremCompiler(Platform()).compile(
                make_kernel("cnn", "MINI"), strategy="magic")

    def test_functional_equivalence(self):
        result = PremCompiler(Platform(spm_bytes=8192)).compile(
            make_kernel("lstm", "MINI"))
        expected = result.run_reference(seed=21)
        actual = result.run_functional(seed=21)
        for name in expected:
            np.testing.assert_allclose(
                actual[name], expected[name], rtol=1e-5, atol=1e-6)


class TestShapeClaims:
    """Coarse reproductions of the evaluation's qualitative claims, fast
    enough for the unit suite (the full versions live in benchmarks/)."""

    def test_bandwidth_monotonicity(self):
        kernel = make_kernel("lstm", "LARGE")
        makespans = []
        for gb in (1 / 16, 1, 16):
            platform = Platform().with_bus(gb * 1e9)
            result = PremCompiler(platform).compile(kernel)
            makespans.append(result.makespan_ns)
        assert makespans[0] > makespans[1] >= makespans[2]

    def test_spm_monotonicity(self):
        kernel = make_kernel("lstm", "LARGE")
        slow = Platform().with_bus(1e9 / 4)
        small = PremCompiler(slow.with_spm(32 * 1024)).compile(kernel)
        large = PremCompiler(slow.with_spm(512 * 1024)).compile(kernel)
        assert large.makespan_ns <= small.makespan_ns * 1.001

    def test_eight_cores_scale_on_parallel_kernel(self):
        kernel = make_kernel("lstm", "LARGE")
        compiler = PremCompiler(Platform())
        eight = compiler.compile(kernel)
        one = compiler.compile(kernel, cores=1)
        # Figure 6.1 at full bandwidth: near-ideal on 1 core, strong
        # scaling on 8.
        assert one.normalized_makespan < 1.2
        assert eight.normalized_makespan < 0.25
        assert eight.makespan_ns < one.makespan_ns / 4

    def test_rnn_scales_worse_than_lstm(self):
        """Figure 6.1: RNN's sequential component limits its scaling."""
        compiler = PremCompiler(Platform())
        rnn = compiler.compile(make_kernel("rnn", "LARGE"))
        lstm = compiler.compile(make_kernel("lstm", "LARGE"))
        assert rnn.normalized_makespan > lstm.normalized_makespan * 2
