"""Small fast tests covering corners the main suites skip."""

import math

import pytest

from repro.ext.multilevel import TwoLevelPlatform
from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.builder import for_, stmt_
from repro.loopir.component import component_at
from repro.poly.access import Array
from repro.poly.constraint import Constraint, ConstraintSystem
from repro.poly.fm import check_feasibility
from repro.prem.segments import CoreSchedule
from repro.schedule.gantt import render_gantt
from repro.timing.platform import Platform


class TestFmDiagnostics:
    def test_reason_strings(self):
        feasible = check_feasibility(
            ConstraintSystem([Constraint.ge("x", 0)]))
        assert bool(feasible)
        assert "feasible" in repr(feasible)
        refuted = check_feasibility(ConstraintSystem([
            Constraint.eq("x", 1), Constraint.eq("x", 2)]))
        assert not refuted
        assert refuted.reason


class TestBuilderGuards:
    def test_loop_guards_threaded_through(self):
        a = Array("a", (4,))
        s = stmt_("s", {"a": a}, writes={"a": ("i",)})
        loop = for_("i", 4, s, guards=[Constraint.ge("t", 1)])
        assert len(loop.guards) == 1


class TestGanttOptions:
    def make_core(self):
        return CoreSchedule(
            core=0, n_segments=4, init_api_ns=5.0,
            exec_ns=[10.0] * 4, mem_slot_ns=[2.0] * 6,
            dep_slot=[1, 2, 3, 4])

    def test_max_segments_filter(self):
        full = render_gantt([self.make_core()], width=40)
        clipped = render_gantt([self.make_core()], width=40,
                               max_segments=2)
        assert "3" in full
        assert "3" not in clipped.split("\n")[1]

    def test_width_respected(self):
        text = render_gantt([self.make_core()], width=30)
        lane = [l for l in text.splitlines() if l.startswith("core")][0]
        assert len(lane) <= len("core 0 |") + 30 + 1


class TestTwoLevelPlatformEdges:
    def test_zero_and_negative_payload(self):
        platform = TwoLevelPlatform(Platform())
        assert platform.bulk_transfer_ns(0) == 0.0
        assert platform.bulk_transfer_ns(-5) == 0.0

    def test_l1_view_preserves_other_fields(self):
        base = Platform(cores=4, spm_bytes=64 * 1024)
        view = TwoLevelPlatform(base).l1_view()
        assert view.cores == 4
        assert view.spm_bytes == 64 * 1024


class TestCompilerComponentMap:
    def test_heads_are_unique(self):
        kernel = make_kernel("lstm", "MINI")
        from repro.compiler import PremCompiler
        result = PremCompiler(Platform(spm_bytes=8192)).compile(kernel)
        mapping = result.component_map()
        assert len(mapping) == len(result.components)
        for head, (component, solution) in mapping.items():
            assert component.nodes[0].var == head
            assert solution.threads >= 1


class TestLoopTreePrebuiltDeps:
    def test_build_accepts_precomputed_dependences(self):
        kernel = make_kernel("cnn", "MINI")
        first = LoopTree.build(kernel)
        second = LoopTree.build(kernel, dependences=first.dependences)
        assert first.render() == second.render()


class TestExhaustiveAccounting:
    def test_evaluations_bounded_by_space(self):
        from repro.opt.exhaustive import (
            ExhaustiveOptimizer,
            search_space_size,
        )
        from repro.sim.profiler import fit_component_model

        tree = LoopTree.build(make_kernel("lstm", "SMALL"))
        comp = component_at(tree, ["b_0"])
        model = fit_component_model(comp)
        optimizer = ExhaustiveOptimizer(comp, Platform(), model)
        result = optimizer.optimize(4)
        assert result.evaluations <= search_space_size(comp, 4)
        assert result.feasible
