"""Regression tests for ``examples/bandwidth_study.py``.

The historical bug: the memory->compute plateau was detected by
comparing makespans *normalised by* ``ideal_makespan_ns`` of each
sweep platform.  The ratio of normalised values only equals the ratio
of raw values while the normaliser happens to be bus-invariant; the
moment the ideal tracks the bus, the flip point moves.  The example
now detects the plateau on raw makespans via an importable
``plateau_index``, pinned here.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" \
    / "bandwidth_study.py"


@pytest.fixture(scope="module")
def bandwidth_study():
    spec = importlib.util.spec_from_file_location(
        "bandwidth_study", EXAMPLE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPlateauIndex:
    def test_memory_bound_everywhere_is_none(self, bandwidth_study):
        # Every 4x bus step still buys >= 1.1x: no plateau.
        assert bandwidth_study.plateau_index([800, 400, 200, 100]) is None

    def test_flip_at_first_small_step(self, bandwidth_study):
        makespans = [100.0, 50.0, 26.0, 25.0, 24.9]
        assert bandwidth_study.plateau_index(makespans) == 3

    def test_threshold_is_respected(self, bandwidth_study):
        makespans = [100.0, 80.0, 64.0]      # every step improves 1.25x
        assert bandwidth_study.plateau_index(makespans, 1.3) == 1
        assert bandwidth_study.plateau_index(makespans, 1.2) is None

    def test_single_point_sweep_has_no_plateau(self, bandwidth_study):
        assert bandwidth_study.plateau_index([42.0]) is None
        assert bandwidth_study.plateau_index([]) is None

    def test_raw_detection_immune_to_bus_varying_normaliser(
            self, bandwidth_study):
        # The regression proper: normalising by a per-platform ideal
        # that grows with the bus moves the flip point; the raw series
        # must not.
        raw = [100.0, 50.0, 26.0, 25.0, 24.9]
        ideal = [1.0, 1.0, 1.0, 1.2, 1.2]      # bus-varying normaliser
        normalised = [m / i for m, i in zip(raw, ideal)]
        assert bandwidth_study.plateau_index(raw) == 3
        # The old scheme (ratios of normalised makespans) misses the
        # real flip at 3 and reports 4 — exactly the bug under test.
        assert bandwidth_study.plateau_index(normalised) == 4

    def test_flip_matches_the_raw_makespan_plateau(self, bandwidth_study):
        # plateau_index is definitionally the first sweep position whose
        # raw step-ratio drops under the threshold — cross-check against
        # an independent scan.
        makespans = [900.0, 300.0, 120.0, 115.0, 60.0]
        flip = bandwidth_study.plateau_index(makespans)
        reference = next(
            (i for i in range(1, len(makespans))
             if makespans[i - 1] / makespans[i]
             < bandwidth_study.PLATEAU_THRESHOLD), None)
        assert flip == reference == 3


class TestStudyEndToEnd:
    def test_study_runs_and_reports_the_frontier(self, bandwidth_study,
                                                 capsys):
        bandwidth_study.study("rnn", preset="MINI", speeds=[1 / 4, 16],
                              pareto_preset="MINI")
        out = capsys.readouterr().out
        assert "=== rnn (MINI) ===" in out
        assert "bus GB/s" in out
        assert "pareto frontier per bus speed (MINI)" in out
        # The plateau verdict is always printed, one way or the other.
        assert ("computation bound at" in out
                or "memory bound across the whole sweep" in out)
