"""Hardened-pipeline tests: golden identity, typed errors, degradation.

The fault-injection hooks must be invisible when unused: compiled
makespans and VM memory must stay bit-identical to the pre-hook build
(golden values below were captured on the unmodified seed).  On top of
that, error paths must raise the typed hierarchy from ``repro.errors``
and the compiler must degrade gracefully instead of crashing.
"""

import hashlib

import pytest

from repro.compiler import FALLBACK_CHAIN, PremCompiler
from repro.errors import (
    KernelConfigError,
    OptimizerTimeout,
    SpmAccessError,
    TileConfigError,
)
from repro.kernels import make_kernel, preset_sizes
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.prem.runtime import SpmBufferView
from repro.sim.machine import MachineModel
from repro.timing.platform import Platform

import numpy as np

#: (kernel, MINI makespan ns, sha256 of the post-run memory image)
#: captured on the seed revision, before the fault hooks existed.
GOLDEN = {
    "cnn": (27350.0,
            "2dd3a6dadd7f13a05888015c08ab87cb03e13b4e95c081e283f886cd814c95f1"),
    "lstm": (101831.0,
             "4bbb15234e1352713e80a574107b7324731e05e63cf73af95a2b184b38a83a4a"),
}


def _digest(arrays):
    h = hashlib.sha256()
    for name in sorted(arrays):
        h.update(name.encode())
        h.update(arrays[name].tobytes())
    return h.hexdigest()


class TestGoldenBitIdentity:
    @pytest.mark.parametrize("kernel", sorted(GOLDEN))
    def test_unfaulted_build_matches_seed(self, kernel):
        want_makespan, want_sha = GOLDEN[kernel]
        result = PremCompiler().compile(make_kernel(kernel, "MINI"))
        assert result.makespan_ns == want_makespan
        assert _digest(result.run_functional(seed=7)) == want_sha


class TestTypedErrors:
    def test_tile_cost_rejects_wrong_width_count(self):
        tree = LoopTree.build(make_kernel("cnn", "MINI"))
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        machine = MachineModel()
        with pytest.raises(TileConfigError):
            machine.tile_cost(comp, (1, 2))
        # Back-compat: the typed error still is a ValueError.
        with pytest.raises(ValueError):
            machine.tile_cost(comp, (1, 2))

    def test_tile_cost_rejects_non_positive_widths(self):
        tree = LoopTree.build(make_kernel("cnn", "MINI"))
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        with pytest.raises(TileConfigError):
            MachineModel().tile_cost(comp, (1, 2, 2, 0, 3))

    def test_spm_view_reports_coordinates(self):
        spm = np.zeros(8)
        view = SpmBufferView("W", spm, lo=(4,), shape=(4,),
                             core=2, segment=3)
        with pytest.raises(SpmAccessError) as excinfo:
            view[(9,)]
        message = str(excinfo.value)
        assert "W" in message and "(4,)" in message and "(7,)" in message
        assert excinfo.value.core == 2 and excinfo.value.segment == 3
        assert excinfo.value.index == (9,) and excinfo.value.lo == (4,)
        # Back-compat: SpmAccessError still is an IndexError.
        with pytest.raises(IndexError):
            view[(9,)]

    def test_spm_view_rank_mismatch(self):
        spm = np.zeros(8)
        view = SpmBufferView("W", spm, lo=(4,), shape=(4,))
        with pytest.raises(SpmAccessError, match="rank"):
            view[(1, 2)]

    def test_unknown_preset_is_typed(self):
        with pytest.raises(KernelConfigError):
            preset_sizes("cnn", "HUGE")
        with pytest.raises(KeyError):
            preset_sizes("cnn", "HUGE")

    def test_unknown_kernel_is_typed(self):
        with pytest.raises(KernelConfigError, match="unknown kernel"):
            make_kernel("fft", "MINI")


class TestGracefulDegradation:
    def test_infeasible_platform_falls_back_to_sequential(self):
        kernel = make_kernel("maxpool", "MINI")
        compiler = PremCompiler(Platform(spm_bytes=16))
        result = compiler.compile_robust(kernel, stage_budget_s=5.0)
        assert result.strategy == "sequential"
        assert result.feasible and result.degraded
        assert [a.strategy for a in result.attempts] == list(FALLBACK_CHAIN)
        assert [a.status for a in result.attempts] == \
            ["infeasible", "infeasible", "ok"]

    def test_exhausted_budget_times_out_and_degrades(self):
        kernel = make_kernel("maxpool", "MINI")
        result = PremCompiler().compile_robust(kernel, stage_budget_s=0.0)
        assert result.strategy == "sequential"
        statuses = {a.strategy: a.status for a in result.attempts}
        assert statuses["exhaustive"] == "timeout"
        assert statuses["greedy"] == "timeout"
        assert statuses["sequential"] == "ok"

    def test_timeout_error_names_stage_and_budget(self):
        kernel = make_kernel("maxpool", "MINI")
        with pytest.raises(OptimizerTimeout, match="greedy"):
            PremCompiler().compile(
                kernel, strategy="greedy", deadline=0.0, budget_s=0.0)

    def test_sequential_makespan_matches_machine_model(self):
        kernel = make_kernel("maxpool", "MINI")
        compiler = PremCompiler()
        result = compiler.compile(kernel, strategy="sequential")
        expected = compiler.machine.kernel_cost(kernel) * \
            compiler.platform.ns_per_cycle
        assert result.makespan_ns == expected
        assert result.components == [] and result.feasible

    def test_no_budget_keeps_result_undegraded(self):
        kernel = make_kernel("maxpool", "MINI")
        result = PremCompiler().compile_robust(kernel, stage_budget_s=None)
        assert result.strategy == "exhaustive"
        assert not result.degraded
        assert [a.status for a in result.attempts] == ["ok"]
