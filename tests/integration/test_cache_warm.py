"""Warm-cache integration tests: the re-run contract.

A second compile against a populated persistent cache must (a) perform
zero fresh plans, (b) report every probe as a cache hit, and (c) choose
bit-identical solutions — the property the CI warm-cache job asserts on
a real bench.
"""

import pytest

from repro.compiler import PremCompiler
from repro.kernels import make_kernel
from repro.opt.cache import PersistentCache
from repro.prem import segments as segments_module
from repro.timing.platform import Platform


def _solutions(result):
    return [(c.component.label(), c.solution.key())
            for c in result.components]


@pytest.fixture()
def platform():
    return Platform()


class TestWarmCompile:
    @pytest.mark.parametrize("strategy", ["heuristic", "exhaustive"])
    def test_warm_run_plans_nothing(self, tmp_path, platform, strategy,
                                    monkeypatch):
        kernel = make_kernel("lstm", "MINI")
        cold = PremCompiler(
            platform, cache=PersistentCache(tmp_path)).compile(
                kernel, strategy=strategy)
        assert cold.opt_result.evaluations > 0

        plans = []
        original = segments_module.SegmentPlanner.plan

        def counting(self, solution, *args, **kwargs):
            plans.append(solution.key())
            return original(self, solution, *args, **kwargs)

        monkeypatch.setattr(
            segments_module.SegmentPlanner, "plan", counting)
        warm = PremCompiler(
            platform, cache=PersistentCache(tmp_path)).compile(
                kernel, strategy=strategy)
        assert plans == []                     # zero fresh plans
        assert warm.opt_result.evaluations == 0
        assert warm.opt_result.cache_hits > 0
        assert warm.opt_result.cache_hit_rate == 1.0
        assert warm.makespan_ns == cold.makespan_ns
        assert _solutions(warm) == _solutions(cold)

    def test_warm_parallel_matches_cold_serial(self, tmp_path, platform):
        kernel = make_kernel("lstm", "MINI")
        cold = PremCompiler(
            platform, jobs=1, cache=PersistentCache(tmp_path)).compile(
                kernel, strategy="exhaustive")
        warm = PremCompiler(
            platform, jobs=4, cache=PersistentCache(tmp_path)).compile(
                kernel, strategy="exhaustive")
        assert warm.makespan_ns == cold.makespan_ns
        assert _solutions(warm) == _solutions(cold)

    def test_per_call_override_beats_instance_default(self, tmp_path,
                                                      platform):
        kernel = make_kernel("lstm", "MINI")
        compiler = PremCompiler(platform)     # no cache by default
        compiler.compile(kernel, cache=PersistentCache(tmp_path))
        warm = compiler.compile(kernel, cache=PersistentCache(tmp_path))
        assert warm.opt_result.evaluations == 0
        assert warm.opt_result.cache_hits > 0

    def test_uncached_compiles_stay_uncached(self, tmp_path, platform):
        kernel = make_kernel("lstm", "MINI")
        compiler = PremCompiler(platform)
        first = compiler.compile(kernel)
        second = compiler.compile(kernel)
        assert second.opt_result.cache_hits == 0
        assert second.opt_result.evaluations == \
            first.opt_result.evaluations


class TestRobustChain:
    def test_robust_threads_cache_through_stages(self, tmp_path,
                                                 platform):
        kernel = make_kernel("lstm", "MINI")
        cache = PersistentCache(tmp_path)
        compiler = PremCompiler(platform)
        cold = compiler.compile_robust(kernel, cache=cache)
        assert cold.strategy == "exhaustive"

        warm = compiler.compile_robust(
            kernel, cache=PersistentCache(tmp_path))
        assert warm.opt_result.evaluations == 0
        assert warm.opt_result.cache_hits > 0
        assert warm.makespan_ns == cold.makespan_ns
        assert _solutions(warm) == _solutions(cold)

    def test_robust_accepts_jobs(self, platform):
        kernel = make_kernel("lstm", "MINI")
        serial = PremCompiler(platform).compile_robust(kernel, jobs=1)
        parallel = PremCompiler(platform).compile_robust(kernel, jobs=2)
        assert serial.makespan_ns == parallel.makespan_ns
        assert _solutions(serial) == _solutions(parallel)
