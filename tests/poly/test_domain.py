"""Tests for rectangular iteration domains."""

import pytest
from hypothesis import given, strategies as st

from repro.poly.constraint import Constraint, ConstraintSystem
from repro.poly.domain import Domain, LoopRange


class TestLoopRange:
    def test_bounds(self):
        r = LoopRange("i", begin=2, n=5, stride=3)
        assert r.last == 2 + 3 * 4
        assert r.bounds == (2, 14)
        assert list(r.values()) == [2, 5, 8, 11, 14]

    def test_contains_respects_stride(self):
        r = LoopRange("i", begin=0, n=4, stride=2)
        assert 4 in r
        assert 3 not in r
        assert 8 not in r

    def test_negative_trip_count_rejected(self):
        with pytest.raises(ValueError):
            LoopRange("i", 0, -1)

    def test_nonpositive_stride_rejected(self):
        with pytest.raises(ValueError):
            LoopRange("i", 0, 3, 0)


class TestDomain:
    def make(self, guards=None):
        return Domain(
            [LoopRange("i", 0, 4), LoopRange("j", 0, 3)],
            ConstraintSystem(guards or ()),
        )

    def test_iterators_and_dim(self):
        d = self.make()
        assert d.iterators == ("i", "j")
        assert d.dim == 2
        assert d.size() == 12

    def test_points_enumeration(self):
        points = list(self.make().points())
        assert len(points) == 12
        assert points[0] == {"i": 0, "j": 0}
        assert points[-1] == {"i": 3, "j": 2}

    def test_guard_filters_points(self):
        d = self.make([Constraint.eq("j", 0)])
        assert all(p["j"] == 0 for p in d.points())
        assert len(list(d.points())) == 4

    def test_contains(self):
        d = self.make([Constraint.ge("i", 1)])
        assert d.contains({"i": 1, "j": 0})
        assert not d.contains({"i": 0, "j": 0})
        assert not d.contains({"i": 4, "j": 0})

    def test_duplicate_iterators_rejected(self):
        with pytest.raises(ValueError):
            Domain([LoopRange("i", 0, 2), LoopRange("i", 0, 2)])

    def test_guard_with_unknown_var_rejected(self):
        with pytest.raises(ValueError):
            self.make([Constraint.ge("z", 0)])

    def test_constraints_with_prefix(self):
        d = self.make([Constraint.ge("i", 1)])
        sys_ = d.constraints(prefix="s$")
        assert sys_.variables() == frozenset({"s$i", "s$j"})

    def test_restrict_plain(self):
        d = self.make()
        sub = d.restrict({"i": (1, 2)})
        assert sub.range_of("i").bounds == (1, 2)
        assert sub.range_of("j").bounds == (0, 2)

    def test_restrict_empty(self):
        sub = self.make().restrict({"i": (10, 20)})
        assert sub.is_empty()

    def test_restrict_keeps_stride_alignment(self):
        d = Domain([LoopRange("i", 0, 10, 2)])
        sub = d.restrict({"i": (3, 9)})
        assert list(sub.range_of("i").values()) == [4, 6, 8]


@given(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=3),
)
def test_range_count_matches_values(begin, n, stride):
    r = LoopRange("i", begin, n, stride)
    assert len(list(r.values())) == n
    assert all(v in r for v in r.values())


@given(
    st.integers(min_value=-2, max_value=8),
    st.integers(min_value=-2, max_value=8),
)
def test_restrict_is_intersection(lo, hi):
    d = Domain([LoopRange("i", 0, 6)])
    sub = d.restrict({"i": (lo, hi)})
    expected = [v for v in range(0, 6) if lo <= v <= hi]
    got = [p["i"] for p in sub.points()]
    assert got == expected
