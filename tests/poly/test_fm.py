"""Feasibility tests for the Fourier–Motzkin engine."""

from itertools import product

from hypothesis import given, settings, strategies as st

from repro.poly.affine import AffineExpr, aff
from repro.poly.constraint import Constraint, ConstraintSystem, box_constraints
from repro.poly.fm import check_feasibility, is_feasible


def system(*constraints):
    return ConstraintSystem(constraints)


class TestBasics:
    def test_empty_system_feasible(self):
        assert is_feasible(system())

    def test_single_bound(self):
        assert is_feasible(system(Constraint.ge("x", 3)))

    def test_contradictory_bounds(self):
        assert not is_feasible(
            system(Constraint.ge("x", 3), Constraint.le("x", 2)))

    def test_adjacent_integer_bounds(self):
        assert is_feasible(
            system(Constraint.ge("x", 3), Constraint.le("x", 3)))

    def test_constant_violation(self):
        assert not is_feasible(system(Constraint.ge(aff(-1))))

    def test_constant_equality_violation(self):
        assert not is_feasible(system(Constraint.eq(aff(2))))

    def test_chain_of_differences(self):
        # x < y < z and z < x is infeasible
        assert not is_feasible(system(
            Constraint.lt("x", "y"),
            Constraint.lt("y", "z"),
            Constraint.lt("z", "x"),
        ))

    def test_two_var_equality(self):
        assert is_feasible(system(
            Constraint.eq(aff("x") - aff("y")),
            Constraint.ge("x", 0), Constraint.le("x", 10),
            Constraint.ge("y", 5), Constraint.le("y", 20),
        ))

    def test_two_var_equality_infeasible(self):
        assert not is_feasible(system(
            Constraint.eq(aff("x") - aff("y")),
            Constraint.le("x", 4),
            Constraint.ge("y", 5),
        ))


class TestGcd:
    def test_gcd_refutes_even_sum_odd_target(self):
        # 2x + 4y == 7 has no integer solution.
        result = check_feasibility(system(
            Constraint.eq(aff("x") * 2 + aff("y") * 4 - 7)))
        assert not result.feasible
        assert "gcd" in result.reason

    def test_gcd_allows_divisible_target(self):
        assert is_feasible(system(
            Constraint.eq(aff("x") * 2 + aff("y") * 4 - 6)))


class TestDependenceShapedSystems:
    """Systems of the form the dependence tester emits."""

    def test_loop_carried_distance(self):
        # src in [0,9], dst = src + 1 in [0,9], dst > src: feasible.
        assert is_feasible(system(
            Constraint.ge("s", 0), Constraint.le("s", 9),
            Constraint.ge("t", 0), Constraint.le("t", 9),
            Constraint.eq(aff("t") - aff("s") - 1),
            Constraint.gt("t", "s"),
        ))

    def test_reverse_direction_infeasible(self):
        assert not is_feasible(system(
            Constraint.ge("s", 0), Constraint.le("s", 9),
            Constraint.ge("t", 0), Constraint.le("t", 9),
            Constraint.eq(aff("t") - aff("s") - 1),
            Constraint.lt("t", "s"),
        ))

    def test_strided_access_disjoint(self):
        # 2s == 2t + 1 never holds for integers.
        assert not is_feasible(system(
            Constraint.eq(aff("s") * 2 - aff("t") * 2 - 1)))


@settings(max_examples=60)
@given(st.lists(
    st.tuples(
        st.integers(min_value=-3, max_value=3),
        st.integers(min_value=-3, max_value=3),
        st.integers(min_value=-4, max_value=4),
        st.booleans(),
    ),
    min_size=1, max_size=5,
))
def test_fm_agrees_with_rational_brute_force(rows):
    """On a small grid, integer satisfiability implies FM feasibility
    (conservativeness: FM may accept systems with only rational points,
    but must never reject a system that has an integer point)."""
    constraints = []
    for cx, cy, c0, is_eq in rows:
        expr = AffineExpr({"x": cx, "y": cy}, c0)
        constraints.append(
            Constraint(expr, "==") if is_eq else Constraint(expr, ">="))
    sys_ = ConstraintSystem(constraints).conjoin(
        box_constraints({"x": (-5, 5), "y": (-5, 5)}))
    has_integer_point = any(
        sys_.satisfied({"x": x, "y": y})
        for x, y in product(range(-5, 6), repeat=2))
    if has_integer_point:
        assert is_feasible(sys_)
