"""Property test: analyzed dependences cover the executed ones.

Random two-statement perfect nests (up to 4 dims, bounds up to 6,
unit-coefficient subscripts with small offsets, optional single-iterator
guards) are both run through the FM-based dependence analyzer and
brute-forced by enumerating every instance in execution order.  Every
dependence the execution actually exhibits — same cell, at least one
write, program order — must appear in the analyzed set with a matching
direction vector (or the loop-independent flag for same-iteration
pairs).  This is the soundness half of the analyzer's contract; the
legality and fission passes inherit it.
"""

import itertools
import math

from hypothesis import assume, given, settings, strategies as st

from repro.loopir import analyze_dependences
from repro.loopir.ast import Kernel
from repro.loopir.builder import for_, stmt_
from repro.poly.access import Array
from repro.poly.constraint import Constraint

DIMS = ("i0", "i1", "i2", "i3")
MAX_POINTS = 150


@st.composite
def nest_specs(draw):
    depth = draw(st.integers(min_value=1, max_value=4))
    bounds = tuple(
        draw(st.integers(min_value=1, max_value=6))
        for _ in range(depth))
    assume(math.prod(bounds) <= MAX_POINTS)

    def access():
        var = draw(st.sampled_from(DIMS[:depth]))
        offset = draw(st.integers(min_value=0, max_value=2))
        return var, offset

    # Each statement: one write and one read of the shared array.
    stmts = []
    for name in ("S", "T"):
        guard = None
        if draw(st.booleans()):
            gvar = draw(st.sampled_from(DIMS[:depth]))
            gval = draw(st.integers(min_value=0, max_value=2))
            guard = (gvar, gval)          # gvar >= gval
        stmts.append((name, access(), access(), guard))
    return depth, bounds, stmts


def build_kernel(depth, bounds, stmts):
    size = max(bounds) + 3
    array = Array("a", (size,))
    arrays = {"a": array}
    body = []
    for name, (wv, wo), (rv, ro), guard in stmts:
        guards = [] if guard is None else \
            [Constraint.ge(guard[0], guard[1])]
        body.append(stmt_(
            name, arrays,
            writes={"a": (f"{wv} + {wo}",)},
            reads={"a": (f"{rv} + {ro}",)},
            guards=guards))
    nest = body
    for level in reversed(range(depth)):
        nest = [for_(DIMS[level], bounds[level], *nest)]
    return Kernel("prop", [array], nest)


def observed_dependences(depth, bounds, stmts):
    """Brute force: every (src, dst, kind, direction) the run exhibits."""
    history = {}          # cell -> [(point, stmt_name, kind)]
    observed = set()
    for point in itertools.product(*(range(b) for b in bounds)):
        env = dict(zip(DIMS[:depth], point))
        for name, (wv, wo), (rv, ro), guard in stmts:
            if guard is not None and env[guard[0]] < guard[1]:
                continue
            # Reads happen before the write of the same instance.
            for kind, cell in (("read", env[rv] + ro),
                               ("write", env[wv] + wo)):
                for prev_point, prev_name, prev_kind in \
                        history.get(cell, ()):
                    if prev_kind == "read" and kind == "read":
                        continue
                    if prev_name == name and prev_point == point:
                        # One atomic statement instance: its read
                        # feeding its own write is not a dependence.
                        continue
                    direction = tuple(
                        "<" if a < b else ("=" if a == b else ">")
                        for a, b in zip(prev_point, point))
                    dep_kind = {
                        ("write", "read"): "RAW",
                        ("read", "write"): "WAR",
                        ("write", "write"): "WAW",
                    }[(prev_kind, kind)]
                    observed.add((prev_name, name, dep_kind, direction))
                history.setdefault(cell, []).append((point, name, kind))
    return observed


@settings(max_examples=40, deadline=None)
@given(spec=nest_specs())
def test_every_executed_dependence_is_analyzed(spec):
    depth, bounds, stmts = spec
    kernel = build_kernel(depth, bounds, stmts)
    analyzed = analyze_dependences(kernel)
    index = {}
    for dep in analyzed:
        index.setdefault(
            (dep.src_stmt, dep.dst_stmt, dep.kind), []).append(dep)
    for src, dst, kind, direction in \
            observed_dependences(depth, bounds, stmts):
        candidates = index.get((src, dst, kind), [])
        if all(c == "=" for c in direction):
            assert any(dep.loop_independent for dep in candidates), (
                f"loop-independent {kind} {src}->{dst} executed but "
                f"not analyzed")
        else:
            assert any(direction in dep.directions
                       for dep in candidates), (
                f"{kind} {src}->{dst} with direction {direction} "
                f"executed but not analyzed")


@settings(max_examples=25, deadline=None)
@given(spec=nest_specs())
def test_analyzed_directions_are_admissible(spec):
    """Analyzer invariant: the first non-'=' component is always '<'."""
    depth, bounds, stmts = spec
    kernel = build_kernel(depth, bounds, stmts)
    for dep in analyze_dependences(kernel):
        for direction in dep.directions:
            first = next((c for c in direction if c != "="), None)
            assert first in (None, "<"), (dep, direction)
