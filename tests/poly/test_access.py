"""Tests for arrays and access relations."""

import pytest

from repro.poly.access import Access, Array, READ, WRITE, read, write
from repro.poly.affine import aff


class TestArray:
    def test_basic_properties(self):
        a = Array("a", (3, 5), "float")
        assert a.ndim == 2
        assert a.element_size == 4
        assert a.total_elements == 15
        assert a.total_bytes == 60

    def test_linear_index_row_major(self):
        a = Array("a", (3, 5))
        assert a.linear_index((0, 0)) == 0
        assert a.linear_index((1, 0)) == 5
        assert a.linear_index((2, 4)) == 14

    def test_linear_index_bounds(self):
        a = Array("a", (3, 5))
        with pytest.raises(IndexError):
            a.linear_index((3, 0))
        with pytest.raises(ValueError):
            a.linear_index((1,))

    def test_invalid_declarations(self):
        with pytest.raises(ValueError):
            Array("a", ())
        with pytest.raises(ValueError):
            Array("a", (0,))
        with pytest.raises(ValueError):
            Array("a", (4,), "quad")

    def test_repr(self):
        assert "float a[3][5]" in repr(Array("a", (3, 5)))


class TestAccess:
    def test_element(self):
        a = Array("a", (10, 10))
        acc = read(a, "i", aff("j") + 1)
        assert acc.element({"i": 2, "j": 3}) == (2, 4)
        assert acc.is_read and not acc.is_write

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            read(Array("a", (10, 10)), "i")

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Access(Array("a", (4,)), ["i"], "readwrite")

    def test_index_bounds_over_box(self):
        a = Array("inp", (10, 12))
        acc = write(a, aff("p") + 2 - aff("r"), "q")
        bounds = acc.index_bounds({"p": (0, 3), "r": (0, 2), "q": (1, 5)})
        assert bounds == ((0, 5), (1, 5))

    def test_variables(self):
        acc = read(Array("a", (5, 5)), "i", aff("i") + aff("j"))
        assert acc.variables() == frozenset({"i", "j"})
