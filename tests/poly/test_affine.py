"""Unit and property tests for affine expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.poly.affine import AffineExpr, aff, lex_compare, parse_affine


class TestConstruction:
    def test_var(self):
        x = AffineExpr.var("x")
        assert x.coeff("x") == 1
        assert x.constant == 0

    def test_const(self):
        assert AffineExpr.const(5).constant == 5
        assert AffineExpr.const(5).is_constant()

    def test_zero_coeffs_dropped(self):
        expr = AffineExpr({"x": 0, "y": 2})
        assert expr.variables() == frozenset({"y"})

    def test_coerce_int_str_expr(self):
        assert aff(3) == AffineExpr.const(3)
        assert aff("i") == AffineExpr.var("i")
        e = aff("i") + 1
        assert aff(e) is e

    def test_coerce_rejects_other_types(self):
        with pytest.raises(TypeError):
            AffineExpr.coerce(3.5)

    def test_is_single_var(self):
        assert (aff("i") + 4).is_single_var()
        assert not (aff("i") * 2).is_single_var()
        assert not (aff("i") + aff("j")).is_single_var()


class TestArithmetic:
    def test_add_sub(self):
        e = aff("i") + aff("j") - aff("i")
        assert e == aff("j")

    def test_radd_rsub(self):
        assert 1 + aff("i") == aff("i") + 1
        assert (5 - aff("i")).coeff("i") == -1

    def test_scale(self):
        e = (aff("i") + 2) * 3
        assert e.coeff("i") == 3
        assert e.constant == 6

    def test_scale_by_expr_rejected(self):
        with pytest.raises(TypeError):
            aff("i") * aff("j")

    def test_neg(self):
        e = -(aff("i") - 4)
        assert e.coeff("i") == -1
        assert e.constant == 4


class TestEvaluation:
    def test_evaluate(self):
        e = aff("i") * 2 + aff("j") - 3
        assert e.evaluate({"i": 5, "j": 1}) == 8

    def test_bounds_positive_coeff(self):
        e = aff("i") * 2 + 1
        assert e.bounds({"i": (0, 9)}) == (1, 19)

    def test_bounds_negative_coeff(self):
        e = -1 * aff("i") + 10
        assert e.bounds({"i": (2, 4)}) == (6, 8)

    def test_bounds_mixed(self):
        e = aff("i") - aff("j")
        assert e.bounds({"i": (0, 3), "j": (0, 5)}) == (-5, 3)

    def test_substitute(self):
        e = aff("i") * 2 + aff("j")
        sub = e.substitute({"i": aff("t") + 1})
        assert sub == aff("t") * 2 + aff("j") + 2

    def test_rename(self):
        e = aff("i") + aff("j") * 3
        renamed = e.rename({"i": "s$i"})
        assert renamed.coeff("s$i") == 1
        assert renamed.coeff("j") == 3


class TestParse:
    def test_simple(self):
        assert parse_affine("p") == aff("p")

    def test_paper_cnn_subscript(self):
        e = parse_affine("p + NR - r - 1", {"NR": 3})
        assert e == aff("p") - aff("r") + 2

    def test_coefficient_product(self):
        assert parse_affine("2*p + r") == aff("p") * 2 + aff("r")
        assert parse_affine("p*2 + r") == aff("p") * 2 + aff("r")

    def test_constant_only(self):
        assert parse_affine("7").constant == 7

    def test_leading_minus(self):
        assert parse_affine("-i + 3") == -aff("i") + 3

    def test_nonaffine_product_rejected(self):
        with pytest.raises(ValueError):
            parse_affine("i*j")


class TestLexCompare:
    def test_orders(self):
        assert lex_compare((1, 2), (1, 3)) == -1
        assert lex_compare((2, 0), (1, 9)) == 1
        assert lex_compare((4, 4), (4, 4)) == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            lex_compare((1,), (1, 2))


# -- property-based tests -----------------------------------------------------

small_ints = st.integers(min_value=-8, max_value=8)
var_names = st.sampled_from(["i", "j", "k"])
exprs = st.builds(
    AffineExpr,
    st.dictionaries(var_names, small_ints, max_size=3),
    small_ints,
)


@given(exprs, exprs, st.dictionaries(
    var_names, small_ints, min_size=3, max_size=3))
def test_add_is_pointwise(a, b, point):
    assert (a + b).evaluate(point) == a.evaluate(point) + b.evaluate(point)


@given(exprs, st.dictionaries(var_names, small_ints, min_size=3, max_size=3))
def test_neg_is_pointwise(a, point):
    assert (-a).evaluate(point) == -a.evaluate(point)


@given(exprs)
def test_bounds_are_attained(expr):
    """Interval bounds over a box are exact for affine forms."""
    box = {v: (-2, 3) for v in ["i", "j", "k"]}
    lo, hi = expr.bounds(box)
    values = [
        expr.evaluate({"i": i, "j": j, "k": k})
        for i in range(-2, 4) for j in range(-2, 4) for k in range(-2, 4)
    ]
    assert min(values) == lo
    assert max(values) == hi


@given(exprs, exprs)
def test_equality_and_hash_consistent(a, b):
    if a == b:
        assert hash(a) == hash(b)
