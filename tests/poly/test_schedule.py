"""Tests for Kelly schedules, tiling transformation and Eq. 5.1 checks."""

import pytest

from repro.poly.schedule import (
    Schedule,
    ScheduleDim,
    TiledSchedule,
    check_pairs_legal,
)


def kelly(*entries):
    dims = []
    for entry in entries:
        if isinstance(entry, int):
            dims.append(ScheduleDim.static(entry))
        else:
            dims.append(ScheduleDim.loop(entry))
    return Schedule(dims)


class TestSchedule:
    def test_evaluate_vector_mult_example(self):
        # Section 2.2.1: Phi(Stmt2[i]) = (1, i, 0, 0), Phi(Stmt3[i,j]) =
        # (1, i, 1, j); Stmt3[8][40] precedes Stmt2[10].
        stmt2 = kelly(1, "i", 0, 0)
        stmt3 = kelly(1, "i", 1, "j")
        assert stmt3.evaluate({"i": 8, "j": 40}) < \
            stmt2.evaluate({"i": 10})

    def test_iterators(self):
        assert kelly(0, "i", 1, "j", 2).iterators() == ("i", "j")

    def test_statics_below(self):
        sched = kelly(0, "t", 1, "s1", 0, "p", 3)
        assert sched.statics_below(0) == (0,)
        assert sched.statics_below(1) == (1,)
        assert sched.statics_below(3) == (3,)


class TestTiledSchedule:
    def test_section_5_2_2_example(self):
        # Phi(Stmt1[t, s1, p]) = (t, s1, p, 0) tiled with K_s1=3, K_p=4
        # becomes (t, s1/3, p/4, s1%3, p%4, 0).
        base = kelly("t", "s1", "p", 0)
        tiled = TiledSchedule(base, ["s1", "p"], {"s1": 3, "p": 4})
        assert tiled.evaluate({"t": 1, "s1": 7, "p": 9}) == \
            (1, 2, 2, 1, 1, 0)

    def test_missing_tile_size_rejected(self):
        base = kelly("i", 0)
        with pytest.raises(ValueError):
            TiledSchedule(base, ["i"], {})

    def test_nonpositive_tile_size_rejected(self):
        base = kelly("i", 0)
        with pytest.raises(ValueError):
            TiledSchedule(base, ["i"], {"i": 0})

    def test_untiled_dims_keep_positions(self):
        base = kelly(0, "i", 1, "j", 2)
        tiled = TiledSchedule(base, ["i"], {"i": 2})
        assert tiled.evaluate({"i": 5, "j": 7}) == (0, 2, 1, 1, 7, 2)


class TestEq51:
    """Figure 5.2's legal/illegal dependent pairs."""

    def test_forward_dependence_legal(self):
        sched = kelly("i", "j")
        pairs = [({"i": 1, "j": 1}, {"i": 2, "j": 2})]
        assert check_pairs_legal(pairs, sched, sched)

    def test_backward_dependence_illegal(self):
        sched = kelly("i", "j")
        pairs = [({"i": 1, "j": 1}, {"i": 0, "j": 0})]
        assert not check_pairs_legal(pairs, sched, sched)

    def test_inner_negative_distance_legal(self):
        # Dep3 = (1,2) -> (2,1): distance (1,-1) is lexicographically
        # positive, hence legal untiled.
        sched = kelly("i", "j")
        pairs = [({"i": 1, "j": 2}, {"i": 2, "j": 1})]
        assert check_pairs_legal(pairs, sched, sched)

    def test_distance_one_minus_one_breaks_tiling(self):
        """The classical counterexample: distance (1,-1) reorders under
        2x2 tiling — exactly why the permutable-band criterion folds."""
        sched = kelly("i", "j")
        tiled = TiledSchedule(sched, ["i", "j"], {"i": 2, "j": 2})
        pairs = [({"i": 0, "j": 2}, {"i": 1, "j": 1})]
        assert check_pairs_legal(pairs, sched, sched)
        assert not check_pairs_legal(pairs, tiled, tiled)

    def test_forward_only_band_survives_tiling(self):
        sched = kelly("i", "j")
        tiled = TiledSchedule(sched, ["i", "j"], {"i": 3, "j": 3})
        pairs = [
            ({"i": i, "j": j}, {"i": i + 1, "j": j})
            for i in range(5) for j in range(6)
        ]
        assert check_pairs_legal(pairs, tiled, tiled)

    def test_section_5_2_1_lstm_style_check(self):
        # Dep2: Stmt2[t,s1,p] -> Stmt2[t,s1,p+1]; tiling s1 by 3, p by 4
        # keeps all pairs ordered (the paper's worked example).
        base = kelly("t", "s1", "p", 1)
        tiled = TiledSchedule(base, ["s1", "p"], {"s1": 3, "p": 4})
        pairs = [
            ({"t": 0, "s1": s, "p": p}, {"t": 0, "s1": s, "p": p + 1})
            for s in range(6) for p in range(7)
        ]
        assert check_pairs_legal(pairs, tiled, tiled)
