"""Tests for the direction-vector dependence analyzer.

The worked examples come straight from the paper: the vector-multiply
program of Figure 2.3 and the guarded accumulation of Listing 5.1.
"""

import pytest

from repro.poly.access import Array, read, write
from repro.poly.affine import aff
from repro.poly.constraint import Constraint, ConstraintSystem
from repro.poly.dependence import (
    DependenceAnalyzer,
    StatementInfo,
    concrete_pairs,
    shared_prefix,
)
from repro.poly.domain import Domain, LoopRange
from repro.poly.schedule import Schedule, ScheduleDim


def kelly(*entries):
    return Schedule([
        ScheduleDim.static(e) if isinstance(e, int) else ScheduleDim.loop(e)
        for e in entries
    ])


def test_shared_prefix():
    assert shared_prefix(("t", "i", "j"), ("t", "i", "k")) == ("t", "i")
    assert shared_prefix(("a",), ("b",)) == ()


class TestListing51:
    """Listing 5.1: guarded init + accumulation over (t, s1, p)."""

    @pytest.fixture()
    def stmts(self):
        nt, ns, np_ = 3, 4, 5
        arr_i = Array("i_arr", (ns,))
        u = Array("U_i", (ns, np_))
        inp = Array("inp_F", (nt, np_))
        ranges = [
            LoopRange("t", 0, nt),
            LoopRange("s1", 0, ns),
            LoopRange("p", 0, np_),
        ]
        stmt1 = StatementInfo(
            name="Stmt1",
            domain=Domain(ranges, ConstraintSystem([Constraint.eq("p", 0)])),
            schedule=kelly(0, "t", 0, "s1", 0, "p", 0),
            accesses=[write(arr_i, "s1")],
        )
        stmt2 = StatementInfo(
            name="Stmt2",
            domain=Domain(ranges),
            schedule=kelly(0, "t", 0, "s1", 0, "p", 1),
            accesses=[
                write(arr_i, "s1"), read(arr_i, "s1"),
                read(u, "s1", "p"), read(inp, "t", "p"),
            ],
        )
        return stmt1, stmt2

    def test_init_to_mac_raw(self, stmts):
        deps = DependenceAnalyzer(list(stmts)).analyze()
        raw = [d for d in deps if d.src_stmt == "Stmt1"
               and d.dst_stmt == "Stmt2" and d.kind == "RAW"]
        assert raw, "init -> mac RAW dependence must exist"
        dep = raw[0]
        # Loop independent (same p=0 instance, textual order) and carried
        # by p (read at p>0 of the value written at p=0); never by s1.
        assert dep.loop_independent
        assert ("=", "=", "<") in dep.directions
        assert all(d[1] == "=" for d in dep.directions)

    def test_mac_self_dependence_directions(self, stmts):
        deps = DependenceAnalyzer([stmts[1]]).analyze()
        self_raw = [d for d in deps if d.kind == "RAW"]
        assert self_raw
        dep = self_raw[0]
        # i[s1] accumulation: p carries within one t; across t the element
        # is rewritten, so ('<', '=', *) is feasible too — but s1 always 0.
        assert ("=", "=", "<") in dep.directions
        assert dep.has_nonzero_at("p")
        assert not dep.has_nonzero_at("s1")

    def test_parallelizable_levels(self, stmts):
        deps = DependenceAnalyzer(list(stmts)).analyze()
        # Paper's conclusion for Listing 5.1: s1 parallelizable, p not.
        assert all(not d.has_nonzero_at("s1") for d in deps)
        assert any(d.has_nonzero_at("p") for d in deps)

    def test_carried_by(self, stmts):
        deps = DependenceAnalyzer([stmts[1]]).analyze()
        dep = [d for d in deps if d.kind == "RAW"][0]
        assert dep.carried_by("p") or dep.carried_by("t")
        assert not dep.carried_by("s1")

    def test_directions_match_concrete_pairs(self, stmts):
        """Oracle check: every concrete dependent pair's sign pattern must
        be among the analyzer's direction vectors."""
        stmt1, stmt2 = stmts
        deps = DependenceAnalyzer([stmt1, stmt2]).analyze()
        raw = [d for d in deps if d.src_stmt == "Stmt1"
               and d.dst_stmt == "Stmt2" and d.kind == "RAW"][0]
        pairs = concrete_pairs(stmt1, stmt2, raw, limit=500)
        assert pairs
        for src, dst in pairs:
            signs = []
            for var in raw.shared_loops:
                delta = dst[var] - src[var]
                signs.append("=" if delta == 0 else
                             "<" if delta > 0 else ">")
            if all(s == "=" for s in signs):
                assert raw.loop_independent
            else:
                assert tuple(signs) in raw.directions


class TestKindsAndDisjointness:
    def test_read_read_ignored(self):
        a = Array("a", (10,))
        info = StatementInfo(
            "S", Domain([LoopRange("i", 0, 10)]), kelly(0, "i", 0),
            [read(a, "i")])
        assert DependenceAnalyzer([info]).analyze() == []

    def test_disjoint_elements_no_dependence(self):
        a = Array("a", (20,))
        info = StatementInfo(
            "S", Domain([LoopRange("i", 0, 5)]), kelly(0, "i", 0),
            [write(a, aff("i") * 2), read(a, aff("i") * 2 + 1)])
        deps = DependenceAnalyzer([info]).analyze()
        assert deps == []

    def test_war_detected(self):
        a = Array("a", (10,))
        info = StatementInfo(
            "S", Domain([LoopRange("i", 0, 9)]), kelly(0, "i", 0),
            [read(a, aff("i") + 1), write(a, "i")])
        kinds = {d.kind for d in DependenceAnalyzer([info]).analyze()}
        assert "WAR" in kinds
        # every element is written exactly once: no WAW exists
        assert "WAW" not in kinds

    def test_waw_detected(self):
        # instance i writes a[i] and a[i+1]; i+1 rewrites a[i+1].
        a = Array("a", (11,))
        info = StatementInfo(
            "S", Domain([LoopRange("i", 0, 10)]), kelly(0, "i", 0),
            [write(a, "i"), write(a, aff("i") + 1)])
        deps = DependenceAnalyzer([info]).analyze()
        waw = [d for d in deps if d.kind == "WAW"]
        assert any(("<",) in d.directions for d in waw)

    def test_stencil_negative_inner_direction(self):
        # a[i][j] = a[i+1][j-1]: WAR with direction ('<', '>').
        a = Array("a", (12, 12))
        info = StatementInfo(
            "S", Domain([LoopRange("i", 0, 10), LoopRange("j", 1, 10)]),
            kelly(0, "i", 0, "j", 0),
            [write(a, "i", "j"), read(a, aff("i") + 1, aff("j") - 1)])
        deps = DependenceAnalyzer([info]).analyze()
        war = [d for d in deps if d.kind == "WAR"]
        assert any(("<", ">") in d.directions for d in war)

    def test_different_arrays_independent(self):
        a, b = Array("a", (10,)), Array("b", (10,))
        dom = Domain([LoopRange("i", 0, 10)])
        s1 = StatementInfo("S1", dom, kelly(0, "i", 0), [write(a, "i")])
        s2 = StatementInfo("S2", dom, kelly(0, "i", 1), [read(b, "i")])
        assert DependenceAnalyzer([s1, s2]).analyze() == []
