"""Tests for affine constraints and constraint systems."""

import pytest

from repro.poly.affine import aff
from repro.poly.constraint import (
    Constraint,
    ConstraintSystem,
    EQ,
    GE,
    box_constraints,
)


class TestConstructors:
    def test_ge_le(self):
        assert Constraint.ge("x", 3).satisfied({"x": 3})
        assert not Constraint.ge("x", 3).satisfied({"x": 2})
        assert Constraint.le("x", 3).satisfied({"x": 3})
        assert not Constraint.le("x", 3).satisfied({"x": 4})

    def test_strict_integer_semantics(self):
        # gt/lt tighten by one (integer variables).
        assert not Constraint.gt("x", 3).satisfied({"x": 3})
        assert Constraint.gt("x", 3).satisfied({"x": 4})
        assert not Constraint.lt("x", 3).satisfied({"x": 3})
        assert Constraint.lt("x", 3).satisfied({"x": 2})

    def test_eq(self):
        c = Constraint.eq(aff("x") - aff("y"))
        assert c.satisfied({"x": 5, "y": 5})
        assert not c.satisfied({"x": 5, "y": 4})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Constraint(aff("x"), "!=")

    def test_variables(self):
        assert Constraint.ge(aff("x") + aff("y"), 0).variables() == \
            frozenset({"x", "y"})


class TestTransforms:
    def test_rename(self):
        c = Constraint.ge("x", 1).rename({"x": "s$x"})
        assert c.variables() == frozenset({"s$x"})
        assert c.satisfied({"s$x": 1})

    def test_substitute(self):
        c = Constraint.ge("x", 1).substitute({"x": aff("t") * 2})
        assert c.satisfied({"t": 1})
        assert not c.satisfied({"t": 0})


class TestSystem:
    def test_conjunction_semantics(self):
        system = ConstraintSystem([
            Constraint.ge("x", 0), Constraint.le("x", 5)])
        assert system.satisfied({"x": 3})
        assert not system.satisfied({"x": 6})

    def test_add_extend_copy(self):
        system = ConstraintSystem()
        system.add(Constraint.ge("x", 0))
        clone = system.copy()
        clone.add(Constraint.le("x", -1))
        assert len(system) == 1
        assert len(clone) == 2

    def test_conjoin(self):
        a = ConstraintSystem([Constraint.ge("x", 0)])
        b = ConstraintSystem([Constraint.le("x", 9)])
        joined = a.conjoin(b)
        assert len(joined) == 2
        assert joined.variables() == frozenset({"x"})

    def test_box_constraints(self):
        system = box_constraints({"i": (0, 3), "j": (2, 2)})
        assert system.satisfied({"i": 0, "j": 2})
        assert not system.satisfied({"i": 4, "j": 2})
        assert not system.satisfied({"i": 0, "j": 1})

    def test_repr(self):
        assert "true" in repr(ConstraintSystem())
        assert ">=" in repr(ConstraintSystem([Constraint.ge("x", 1)]))
