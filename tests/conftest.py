"""Test-suite configuration: a CI-friendly hypothesis profile."""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
