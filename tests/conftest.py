"""Test-suite configuration: a CI-friendly hypothesis profile."""

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _no_ambient_cache(monkeypatch):
    """Keep $REPRO_CACHE_DIR out of tests: an ambient cache directory on
    the developer's machine must never leak hits into the suite."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
