"""Tests for tilable components and the builder DSL."""

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.builder import accesses_for, for_, stmt_
from repro.loopir.component import TilableComponent, component_at
from repro.poly.access import Array
from repro.poly.affine import aff


@pytest.fixture(scope="module")
def lstm_tree():
    return LoopTree.build(make_kernel("lstm", "SMALL"))


@pytest.fixture(scope="module")
def cnn_tree():
    return LoopTree.build(make_kernel("cnn", "SMALL"))


class TestComponent:
    def test_band_vars_and_depth(self, lstm_tree):
        comp = component_at(lstm_tree, ["s1_0", "p"])
        assert comp.band_vars == ("s1_0", "p")
        assert comp.depth == 2

    def test_executions_is_first_level_I(self, lstm_tree):
        nt = lstm_tree.kernel.constants["NT"]
        assert component_at(lstm_tree, ["s1_0", "p"]).executions == nt
        assert component_at(lstm_tree, ["s1_1", "s2"]).executions == nt - 1

    def test_outer_vars(self, lstm_tree):
        comp = component_at(lstm_tree, ["s1_0", "p"])
        assert comp.outer_vars() == ("t",)

    def test_arrays_of_lstm_component(self, lstm_tree):
        names = set(component_at(lstm_tree, ["s1_0", "p"]).arrays())
        assert names == {"i", "f", "o", "g",
                         "U_i", "U_f", "U_o", "U_g", "inp_F"}

    def test_stmts(self, lstm_tree):
        comp = component_at(lstm_tree, ["s1_0", "p"])
        assert {s.name for s in comp.stmts()} == \
            {"lstm_init", "lstm_mac_u"}

    def test_non_chain_rejected(self, lstm_tree):
        t = lstm_tree.node_by_var("t")
        b1 = lstm_tree.node_by_var("b_1")
        s1 = lstm_tree.node_by_var("s1_0")
        with pytest.raises(ValueError):
            TilableComponent(lstm_tree, (s1, b1))
        # but t -> s1_0 is a legal chain step
        TilableComponent(lstm_tree, (t, s1))

    def test_empty_rejected(self, lstm_tree):
        with pytest.raises(ValueError):
            TilableComponent(lstm_tree, ())

    def test_inner_vars_of_folded_leaf(self, cnn_tree):
        comp = component_at(cnn_tree, ["n", "k", "p", "q", "c"])
        assert comp.inner_vars() == ("r", "s")
        box = comp.full_inner_box()
        assert box["r"] == (0, cnn_tree.kernel.constants["NR"] - 1)

    def test_accesses_by_array(self, cnn_tree):
        comp = component_at(cnn_tree, ["n", "k", "p", "q", "c"])
        pairs = comp.accesses("out_F")
        kinds = {a.kind for _, a in pairs}
        assert kinds == {"read", "write"}


class TestBuilderDsl:
    def test_accesses_for_multiple_reads_same_array(self):
        a = Array("h", (8,))
        accesses = accesses_for(
            {"h": a}, reads={"h": [("s2",), ("s3",)]})
        assert len(accesses) == 2

    def test_affine_string_subscripts(self):
        a = Array("inp", (8, 8))
        accesses = accesses_for(
            {"inp": a}, reads={"inp": ("2*p + r", "q")},
            constants={})
        assert accesses[0].indices[0] == aff("p") * 2 + aff("r")

    def test_unknown_array_rejected(self):
        with pytest.raises(KeyError):
            accesses_for({}, reads={"nope": ("i",)})

    def test_stmt_and_loop_shorthand(self):
        a = Array("a", (4,))
        s = stmt_("s", {"a": a}, writes={"a": ("i",)}, flops=3)
        loop = for_("i", 4, s, begin=1, stride=1)
        assert loop.begin == 1
        assert loop.child_stmts() == [s]
        assert s.flops == 3
