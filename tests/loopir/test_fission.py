"""Tests for the dependence-verified loop-fission pre-pass."""

import numpy as np
import pytest

from repro.compiler import PremCompiler
from repro.kernels import make_kernel
from repro.loopir import fission_kernel, fission_plan
from repro.loopir.ast import Kernel
from repro.loopir.builder import for_, stmt_
from repro.loopir.fission import _partition, backward_blockers
from repro.poly.access import Array
from repro.poly.dependence import Dependence
from repro.prem.runtime import SequentialInterpreter, init_arrays

ALL_KERNELS = ("cnn", "convrelu", "lstm", "maxpool", "sumpool", "rnn")

#: Kernels whose every nest is perfect (or whose imperfect levels are
#: glued by backward dependences): fission must refuse to touch them.
NOOP_KERNELS = ("cnn", "maxpool", "sumpool")


def make_dep(src, dst, shared, directions, loop_independent=False):
    return Dependence(
        src_stmt=src, dst_stmt=dst, array="a", kind="RAW",
        shared_loops=tuple(shared),
        directions=frozenset(tuple(d) for d in directions),
        loop_independent=loop_independent,
    )


class TestPartition:
    def test_no_blockers_fully_separates(self):
        assert _partition(3, []) == [[0], [1], [2]]

    def test_backward_edge_merges_span(self):
        dep = make_dep("S", "T", ("i",), [("<",)])
        groups = _partition(4, [(2, 0, dep)])
        assert groups == [[0, 1, 2], [3]]

    def test_adjacent_backward_edge(self):
        dep = make_dep("S", "T", ("i",), [("<",)])
        assert _partition(2, [(1, 0, dep)]) == [[0, 1]]

    def test_overlapping_spans_merge_transitively(self):
        dep = make_dep("S", "T", ("i",), [("<",)])
        groups = _partition(5, [(2, 1, dep), (4, 3, dep)])
        assert groups == [[0], [1, 2], [3, 4]]


class TestBackwardBlockers:
    UNITS = [("A",), ("B",), ("C",)]

    def test_forward_dep_is_no_blocker(self):
        deps = [make_dep("A", "C", ("i",), [("<",)])]
        assert backward_blockers(self.UNITS, "i", deps) == []

    def test_backward_dep_blocks(self):
        deps = [make_dep("C", "A", ("i",), [("<",)])]
        blockers = backward_blockers(self.UNITS, "i", deps)
        assert [(s, d) for s, d, _ in blockers] == [(2, 0)]

    def test_dep_confined_above_is_ignored(self):
        # Carried at t, '=' at i: fission at i cannot reorder it.
        deps = [make_dep("C", "A", ("t", "i"), [("<", "=")])]
        assert backward_blockers(self.UNITS, "i", deps) == []

    def test_same_unit_dep_is_ignored(self):
        deps = [make_dep("A", "A", ("i",), [("<",)])]
        assert backward_blockers(self.UNITS, "i", deps) == []


class TestFissionCorpus:
    @pytest.mark.parametrize("name", NOOP_KERNELS)
    def test_perfect_nests_are_untouched(self, name):
        kernel = make_kernel(name, "MINI")
        result = fission_kernel(kernel)
        assert not result.changed
        assert result.kernel is kernel

    def test_lstm_splits_init_from_mac(self):
        kernel = make_kernel("lstm", "MINI")
        splits = {s.var: s for s in fission_plan(kernel)}
        assert set(splits) == {"p", "s1_0"}
        assert splits["p"].groups == (
            ("lstm_init",), ("lstm_mac_u",))
        assert splits["s1_0"].new_vars == ("s1_0", "s1_0__f1")

    def test_lstm_t_loop_is_not_split(self):
        # The recurrence s_F[t-1] -> mac_w and the gate reuse across t
        # iterations are backward at t; distributing t would break them.
        kernel = make_kernel("lstm", "MINI")
        result = fission_kernel(kernel)
        assert len(result.kernel.roots) == 1
        assert result.kernel.roots[0].var == "t"

    def test_rnn_splits_projection_only(self):
        kernel = make_kernel("rnn", "MINI")
        splits = {s.var for s in fission_plan(kernel)}
        assert splits == {"p", "s1"}

    def test_convrelu_distributes_to_three_roots(self):
        kernel = make_kernel("convrelu", "MINI")
        result = fission_kernel(kernel)
        assert [r.var for r in result.kernel.roots] == \
            ["n", "n__f1", "n__f2"]
        assert {s.var for s in result.splits} == {"n", "k", "p", "q"}
        for split in result.splits:
            assert split.groups == (
                ("convrelu_init",), ("convrelu_mac",), ("convrelu_act",))

    def test_statement_names_never_duplicate(self):
        # Kernel.__post_init__ enforces unique names; re-walking the
        # fissioned kernel double-checks statements moved, not copied.
        kernel = make_kernel("convrelu", "MINI")
        fissioned = fission_kernel(kernel).kernel
        names = [s.name for s, _ in fissioned.walk_stmts()]
        assert sorted(names) == sorted(set(names))
        assert len(names) == len(list(kernel.walk_stmts()))

    def test_array_order_is_preserved(self):
        # init_arrays draws rng per array in insertion order, so the
        # bit-equality argument needs the order to survive fission.
        kernel = make_kernel("lstm", "MINI")
        fissioned = fission_kernel(kernel).kernel
        assert list(fissioned.arrays) == list(kernel.arrays)

    def test_renamed_maps_back_to_original(self):
        result = fission_kernel(make_kernel("convrelu", "MINI"))
        assert result.renamed["n__f1"] == "n"
        assert result.renamed["q__f2"] == "q"


class TestFreshNames:
    def test_collision_with_existing_loop_var(self):
        a = Array("a", (4,))
        b = Array("b", (4,))
        arrays = {"a": a, "b": b}
        s1 = stmt_("s1", arrays, writes={"a": ("i",)})
        s2 = stmt_("s2", arrays, writes={"b": ("i",)})
        s3 = stmt_("s3", arrays, writes={"b": ("i__f1",)},
                   reads={"b": ("i__f1",)})
        kernel = Kernel("k", [a, b], [
            for_("i", 4, s1, s2),
            for_("i__f1", 4, s3),
        ])
        result = fission_kernel(kernel)
        assert [r.var for r in result.kernel.roots] == \
            ["i", "i__f2", "i__f1"]


class TestSemanticsPreserved:
    @pytest.mark.parametrize("name", ALL_KERNELS)
    def test_sequential_vm_state_is_bit_identical(self, name):
        kernel = make_kernel(name, "MINI")
        result = fission_kernel(kernel)
        base = init_arrays(kernel, seed=7)
        fissioned = init_arrays(result.kernel, seed=7)
        SequentialInterpreter().run(kernel, base)
        SequentialInterpreter().run(result.kernel, fissioned)
        for array in base:
            assert np.array_equal(base[array], fissioned[array]), array

    @pytest.mark.parametrize("name", ("lstm", "rnn", "convrelu"))
    @pytest.mark.parametrize("strategy", ("heuristic", "greedy"))
    def test_compiled_prem_vm_matches_original(self, name, strategy):
        kernel = make_kernel(name, "MINI")
        result = PremCompiler().compile(
            kernel, strategy=strategy, fission="auto")
        assert result.fission is not None and result.fission.changed
        reference = init_arrays(kernel, seed=7)
        SequentialInterpreter().run(kernel, reference)
        prem = result.run_functional(seed=7)
        for array in reference:
            assert np.array_equal(reference[array], prem[array]), array


class TestCompilerIntegration:
    def test_fission_off_is_the_default(self):
        result = PremCompiler().compile(make_kernel("lstm", "MINI"))
        assert result.fission is None

    def test_fission_auto_records_the_result(self):
        result = PremCompiler().compile(
            make_kernel("lstm", "MINI"), fission="auto")
        assert result.fission is not None
        assert result.fission.changed
        assert {s.var for s in result.fission.splits} == {"p", "s1_0"}

    def test_fission_auto_on_noop_kernel_is_honest(self):
        result = PremCompiler().compile(
            make_kernel("cnn", "MINI"), fission="auto")
        assert result.fission is not None
        assert not result.fission.changed

    def test_convrelu_gains_components(self):
        compiler = PremCompiler()
        kernel = make_kernel("convrelu", "MINI")
        off = compiler.compile(kernel, fission="off")
        on = compiler.compile(kernel, fission="auto")
        assert len(on.components) > len(off.components)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="fission"):
            PremCompiler().compile(
                make_kernel("cnn", "MINI"), fission="yes")

    def test_explicit_tree_rejects_auto(self):
        from repro.loopir import LoopTree

        kernel = make_kernel("cnn", "MINI")
        tree = LoopTree.build(kernel)
        with pytest.raises(ValueError, match="tree"):
            PremCompiler().compile(kernel, tree=tree, fission="auto")

    def test_fissioned_artifacts_verify_clean(self):
        result = PremCompiler().compile(
            make_kernel("convrelu", "MINI"), fission="auto")
        report = result.verify_static()
        assert not report.merged, report.render_text()


# ---------------------------------------------------------------------------
# Property: fission preserves VM array state on random imperfect nests


from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.analysis.source import verify_fission_plan  # noqa: E402
from repro.loopir import analyze_dependences  # noqa: E402


@st.composite
def imperfect_nests(draw):
    """A random 2-3 unit imperfect nest over two shared arrays."""
    n0 = draw(st.integers(min_value=2, max_value=4))
    unit_count = draw(st.integers(min_value=2, max_value=3))
    units = []
    for index in range(unit_count):
        nested = draw(st.booleans())
        inner = f"j{index}"
        scope = ("i", inner) if nested else ("i",)
        warr = draw(st.sampled_from(("a", "b")))
        rarr = draw(st.sampled_from(("a", "b")))
        wvar = draw(st.sampled_from(scope))
        rvar = draw(st.sampled_from(scope))
        woff = draw(st.integers(min_value=0, max_value=2))
        roff = draw(st.integers(min_value=0, max_value=2))
        inner_n = draw(st.integers(min_value=2, max_value=3)) \
            if nested else 0
        units.append((index, nested, inner, inner_n,
                      warr, (wvar, woff), rarr, (rvar, roff)))
    return n0, units


def _build_random_kernel(n0, units):
    size = 16
    arrays = {"a": Array("a", (size,)), "b": Array("b", (size,))}

    def make_compute(warr, widx, rarr, ridx):
        def compute(mem, pt):
            value = mem[rarr][(pt[ridx[0]] + ridx[1],)]
            mem[warr][(pt[widx[0]] + widx[1],)] = value + np.float32(1.0)
        return compute

    body = []
    for index, nested, inner, inner_n, warr, widx, rarr, ridx in units:
        s = stmt_(
            f"s{index}", arrays,
            writes={warr: (f"{widx[0]} + {widx[1]}",)},
            reads={rarr: (f"{ridx[0]} + {ridx[1]}",)},
            compute=make_compute(warr, widx, rarr, ridx),
            flops=1)
        body.append(for_(inner, inner_n, s) if nested else s)
    kernel = Kernel(
        "prop", list(arrays.values()), [for_("i", n0, *body)])
    return kernel


@settings(max_examples=40, deadline=None)
@given(spec=imperfect_nests())
def test_fission_preserves_vm_state_on_random_nests(spec):
    n0, units = spec
    kernel = _build_random_kernel(n0, units)
    deps = analyze_dependences(kernel)
    result = fission_kernel(kernel, deps)
    assert verify_fission_plan(result.splits, deps) == []
    base = init_arrays(kernel, seed=11)
    fissioned = init_arrays(result.kernel, seed=11)
    SequentialInterpreter().run(kernel, base)
    SequentialInterpreter().run(result.kernel, fissioned)
    for name in base:
        assert np.array_equal(base[name], fissioned[name]), (
            name, result.splits)
