"""Tests for chain heads, legality criteria and execution counting."""

import pytest
from hypothesis import given, strategies as st

from repro.kernels import lstm, preset_sizes
from repro.loopir.ast import Kernel, Loop
from repro.loopir.builder import for_, stmt_
from repro.loopir.validity import (
    chain_heads,
    count_guarded_executions,
    is_chain_extendable,
    level_parallel,
    level_tilable,
)
from repro.poly.access import Array
from repro.poly.constraint import Constraint
from repro.poly.dependence import Dependence


def make_dep(shared, directions, loop_independent=False):
    return Dependence(
        src_stmt="S", dst_stmt="T", array="a", kind="RAW",
        shared_loops=tuple(shared),
        directions=frozenset(tuple(d) for d in directions),
        loop_independent=loop_independent,
    )


class TestChainHeads:
    def test_lstm_chain_heads(self):
        kernel = lstm(preset_sizes("lstm", "MINI"))
        heads = chain_heads(kernel)
        assert heads["t"] == "t"
        assert heads["s1_0"] == "s1_0"
        assert heads["p"] == "s1_0"
        assert heads["s2"] == "s1_1"
        assert heads["b_0"] == "b_0"

    def test_perfect_nest_single_head(self):
        a = Array("a", (4, 4, 4))
        s = stmt_("s", {"a": a}, writes={"a": ("i", "j", "k")})
        k = Kernel("k", [a], [for_("i", 4, for_("j", 4, for_("k", 4, s)))])
        heads = chain_heads(k)
        assert heads == {"i": "i", "j": "i", "k": "i"}

    def test_extendable(self):
        inner = Loop("j", 4, [])
        assert is_chain_extendable(Loop("i", 4, [inner]))
        a = Array("a", (4,))
        s = stmt_("s", {"a": a}, writes={"a": ("i",)})
        assert not is_chain_extendable(Loop("i", 4, [s, inner]))
        assert not is_chain_extendable(Loop("i", 4, [inner, Loop("k", 2)]))


class TestLegality:
    HEADS = {"i": "i", "j": "i", "k": "i"}

    def test_forward_directions_tilable(self):
        deps = [make_dep(("i", "j"), [("<", "="), ("=", "<")])]
        assert level_tilable("i", deps, self.HEADS)
        assert level_tilable("j", deps, self.HEADS)

    def test_negative_inner_carried_in_band_folds(self):
        deps = [make_dep(("i", "j"), [("<", ">")])]
        assert level_tilable("i", deps, self.HEADS)
        assert not level_tilable("j", deps, self.HEADS)

    def test_negative_component_carried_above_head_is_fine(self):
        heads = {"t": "t", "i": "i", "j": "i"}
        deps = [make_dep(("t", "i", "j"), [("<", "=", ">")])]
        assert level_tilable("j", deps, heads)

    def test_parallel_requires_all_zero(self):
        deps = [make_dep(("i", "j"), [("=", "<")])]
        assert level_parallel("i", deps, self.HEADS)
        assert not level_parallel("j", deps, self.HEADS)

    def test_parallel_ignores_deps_carried_above_head(self):
        heads = {"t": "t", "i": "i"}
        deps = [make_dep(("t", "i"), [("<", "<")])]
        assert level_parallel("i", deps, heads)
        assert not level_parallel("t", deps, heads)

    def test_unrelated_loop_unaffected(self):
        deps = [make_dep(("i", "j"), [("<", ">")])]
        other_heads = {**self.HEADS, "z": "z"}
        assert level_tilable("z", deps, other_heads)
        assert level_parallel("z", deps, other_heads)


class TestExecutionCounting:
    def loop(self, guards=()):
        return Loop("inner", 4, [], guards=list(guards))

    def test_root_is_one(self):
        assert count_guarded_executions(self.loop(), ()) == 1

    def test_unguarded_product(self):
        anc = (Loop("t", 5, []), Loop("u", 3, []))
        assert count_guarded_executions(self.loop(), anc) == 15

    def test_single_var_guard(self):
        anc = (Loop("t", 5, []),)
        assert count_guarded_executions(
            self.loop([Constraint.ge("t", 1)]), anc) == 4
        assert count_guarded_executions(
            self.loop([Constraint.eq("t", 2)]), anc) == 1
        assert count_guarded_executions(
            self.loop([Constraint.le("t", -1)]), anc) == 0

    def test_ancestor_guards_compose(self):
        anc = (Loop("t", 5, []),
               Loop("u", 3, [], guards=[Constraint.ge("t", 2)]))
        assert count_guarded_executions(self.loop(), anc) == 9

    def test_strided_ancestor(self):
        anc = (Loop("t", 5, [], begin=0, stride=2),)  # t in {0,2,4,6,8}
        assert count_guarded_executions(
            self.loop([Constraint.ge("t", 3)]), anc) == 3

    def test_multivar_guard_enumeration(self):
        anc = (Loop("t", 4, []), Loop("u", 4, []))
        guard = Constraint.ge("t", "u")  # t >= u
        assert count_guarded_executions(self.loop([guard]), anc) == 10

    def test_unknown_guard_var_rejected(self):
        anc = (Loop("t", 4, []),)
        with pytest.raises(ValueError):
            count_guarded_executions(
                self.loop([Constraint.ge("zzz", 0)]), anc)


@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=-3, max_value=14))
def test_threshold_guard_counting(n, threshold):
    anc = (Loop("t", n, []),)
    loop = Loop("inner", 2, [], guards=[Constraint.ge("t", threshold)])
    expected = len([t for t in range(n) if t >= threshold])
    assert count_guarded_executions(loop, anc) == expected
