"""Tests for chain heads, legality criteria and execution counting."""

import pytest
from hypothesis import given, strategies as st

from repro.kernels import lstm, preset_sizes
from repro.loopir.ast import Kernel, Loop
from repro.loopir.builder import for_, stmt_
from repro.errors import LatticeRangeError
from repro.loopir.validity import (
    _lattice_count,
    _lattice_range,
    _narrow,
    chain_heads,
    count_guarded_executions,
    is_chain_extendable,
    level_parallel,
    level_tilable,
)
from repro.poly.access import Array
from repro.poly.constraint import Constraint
from repro.poly.dependence import Dependence


def make_dep(shared, directions, loop_independent=False):
    return Dependence(
        src_stmt="S", dst_stmt="T", array="a", kind="RAW",
        shared_loops=tuple(shared),
        directions=frozenset(tuple(d) for d in directions),
        loop_independent=loop_independent,
    )


class TestChainHeads:
    def test_lstm_chain_heads(self):
        kernel = lstm(preset_sizes("lstm", "MINI"))
        heads = chain_heads(kernel)
        assert heads["t"] == "t"
        assert heads["s1_0"] == "s1_0"
        assert heads["p"] == "s1_0"
        assert heads["s2"] == "s1_1"
        assert heads["b_0"] == "b_0"

    def test_perfect_nest_single_head(self):
        a = Array("a", (4, 4, 4))
        s = stmt_("s", {"a": a}, writes={"a": ("i", "j", "k")})
        k = Kernel("k", [a], [for_("i", 4, for_("j", 4, for_("k", 4, s)))])
        heads = chain_heads(k)
        assert heads == {"i": "i", "j": "i", "k": "i"}

    def test_extendable(self):
        inner = Loop("j", 4, [])
        assert is_chain_extendable(Loop("i", 4, [inner]))
        a = Array("a", (4,))
        s = stmt_("s", {"a": a}, writes={"a": ("i",)})
        assert not is_chain_extendable(Loop("i", 4, [s, inner]))
        assert not is_chain_extendable(Loop("i", 4, [inner, Loop("k", 2)]))


class TestLegality:
    HEADS = {"i": "i", "j": "i", "k": "i"}

    def test_forward_directions_tilable(self):
        deps = [make_dep(("i", "j"), [("<", "="), ("=", "<")])]
        assert level_tilable("i", deps, self.HEADS)
        assert level_tilable("j", deps, self.HEADS)

    def test_negative_inner_carried_in_band_folds(self):
        deps = [make_dep(("i", "j"), [("<", ">")])]
        assert level_tilable("i", deps, self.HEADS)
        assert not level_tilable("j", deps, self.HEADS)

    def test_negative_component_carried_above_head_is_fine(self):
        heads = {"t": "t", "i": "i", "j": "i"}
        deps = [make_dep(("t", "i", "j"), [("<", "=", ">")])]
        assert level_tilable("j", deps, heads)

    def test_parallel_requires_all_zero(self):
        deps = [make_dep(("i", "j"), [("=", "<")])]
        assert level_parallel("i", deps, self.HEADS)
        assert not level_parallel("j", deps, self.HEADS)

    def test_parallel_ignores_deps_carried_above_head(self):
        heads = {"t": "t", "i": "i"}
        deps = [make_dep(("t", "i"), [("<", "<")])]
        assert level_parallel("i", deps, heads)
        assert not level_parallel("t", deps, heads)

    def test_unrelated_loop_unaffected(self):
        deps = [make_dep(("i", "j"), [("<", ">")])]
        other_heads = {**self.HEADS, "z": "z"}
        assert level_tilable("z", deps, other_heads)
        assert level_parallel("z", deps, other_heads)


class TestExecutionCounting:
    def loop(self, guards=()):
        return Loop("inner", 4, [], guards=list(guards))

    def test_root_is_one(self):
        assert count_guarded_executions(self.loop(), ()) == 1

    def test_unguarded_product(self):
        anc = (Loop("t", 5, []), Loop("u", 3, []))
        assert count_guarded_executions(self.loop(), anc) == 15

    def test_single_var_guard(self):
        anc = (Loop("t", 5, []),)
        assert count_guarded_executions(
            self.loop([Constraint.ge("t", 1)]), anc) == 4
        assert count_guarded_executions(
            self.loop([Constraint.eq("t", 2)]), anc) == 1
        assert count_guarded_executions(
            self.loop([Constraint.le("t", -1)]), anc) == 0

    def test_ancestor_guards_compose(self):
        anc = (Loop("t", 5, []),
               Loop("u", 3, [], guards=[Constraint.ge("t", 2)]))
        assert count_guarded_executions(self.loop(), anc) == 9

    def test_strided_ancestor(self):
        anc = (Loop("t", 5, [], begin=0, stride=2),)  # t in {0,2,4,6,8}
        assert count_guarded_executions(
            self.loop([Constraint.ge("t", 3)]), anc) == 3

    def test_multivar_guard_enumeration(self):
        anc = (Loop("t", 4, []), Loop("u", 4, []))
        guard = Constraint.ge("t", "u")  # t >= u
        assert count_guarded_executions(self.loop([guard]), anc) == 10

    def test_unknown_guard_var_rejected(self):
        anc = (Loop("t", 4, []),)
        with pytest.raises(ValueError):
            count_guarded_executions(
                self.loop([Constraint.ge("zzz", 0)]), anc)


@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=-3, max_value=14))
def test_threshold_guard_counting(n, threshold):
    anc = (Loop("t", n, []),)
    loop = Loop("inner", 2, [], guards=[Constraint.ge("t", threshold)])
    expected = len([t for t in range(n) if t >= threshold])
    assert count_guarded_executions(loop, anc) == expected


class TestLatticeRange:
    """Direct tests for the clipped-progression helpers."""

    def brute(self, lo, hi, begin, stride, steps=200):
        return [begin + k * stride for k in range(steps)
                if lo <= begin + k * stride <= hi]

    def test_forward_progression(self):
        assert list(_lattice_range(0, 9, 0, 3)) == [0, 3, 6, 9]
        assert _lattice_count(0, 9, 0, 3) == 4

    def test_begin_inside_interval_skips_earlier_points(self):
        # Points of the lattice below `begin` are never visited, even
        # when the interval would admit them.
        assert list(_lattice_range(0, 9, 4, 2)) == [4, 6, 8]
        assert _lattice_count(0, 9, 4, 2) == 3

    def test_begin_above_interval_is_empty(self):
        assert _lattice_count(0, 3, 10, 2) == 0

    def test_empty_interval(self):
        assert _lattice_count(5, 4, 0, 1) == 0
        assert list(_lattice_range(5, 4, 0, 1)) == []

    def test_negative_stride_walks_downward(self):
        assert list(_lattice_range(0, 9, 9, -3)) == [9, 6, 3, 0]
        assert list(_lattice_range(2, 9, 9, -3)) == [9, 6, 3]
        assert _lattice_count(0, 9, 9, -3) == 4

    def test_negative_stride_begin_below_interval_is_empty(self):
        assert _lattice_count(5, 9, 3, -2) == 0

    def test_zero_stride_raises_typed_error(self):
        with pytest.raises(LatticeRangeError):
            _lattice_range(0, 9, 0, 0)
        with pytest.raises(ValueError):   # LatticeRangeError subclasses it
            _lattice_count(0, 9, 0, 0)

    @given(st.integers(-10, 10), st.integers(-10, 10),
           st.integers(-10, 10),
           st.integers(-5, 5).filter(lambda s: s != 0))
    def test_matches_bruteforce(self, lo, hi, begin, stride):
        assert list(_lattice_range(lo, hi, begin, stride)) == \
            self.brute(lo, hi, begin, stride)


class TestNarrow:
    def test_ge_tightens_lower_bound(self):
        got = _narrow((0, 9), Constraint.ge("t", 4), "t")
        assert got == (4, 9)

    def test_le_tightens_upper_bound(self):
        got = _narrow((0, 9), Constraint.le("t", 6), "t")
        assert got == (0, 6)

    def test_eq_pins_the_value(self):
        assert _narrow((0, 9), Constraint.eq("t", 3), "t") == (3, 3)

    def test_eq_outside_interval_is_empty(self):
        assert _narrow((0, 9), Constraint.eq("t", 12), "t") is None

    def test_contradiction_is_empty(self):
        assert _narrow((0, 4), Constraint.ge("t", 99), "t") is None

    def test_already_empty_interval_stays_empty(self):
        assert _narrow((7, 3), Constraint.ge("t", 0), "t") is None
