"""Loop-tree construction tests against the paper's figures.

The LSTM tree must match Figure 3.2 (N, I, parallel per level); the CNN
tree must fold the small filter loops r/s into c, matching Table 6.6's
reporting of tile sizes for k/p/q/c only.
"""

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree


@pytest.fixture(scope="module")
def trees():
    return {
        name: LoopTree.build(make_kernel(name, "SMALL"))
        for name in ("cnn", "lstm", "maxpool", "sumpool", "rnn")
    }


class TestLstmFigure32:
    def test_structure(self, trees):
        tree = trees["lstm"]
        root = tree.roots[0]
        assert root.var == "t"
        assert [c.var for c in root.children] == \
            ["s1_0", "s1_1", "b_0", "b_1"]

    def test_parallel_flags(self, trees):
        tree = trees["lstm"]
        expected = {
            "t": False, "s1_0": True, "p": False,
            "s1_1": True, "s2": False, "b_0": True, "b_1": True,
        }
        for var, parallel in expected.items():
            assert tree.node_by_var(var).parallel == parallel, var

    def test_execution_counts(self, trees):
        tree = trees["lstm"]
        nt = make_kernel("lstm", "SMALL").constants["NT"]
        assert tree.node_by_var("t").I == 1
        assert tree.node_by_var("s1_0").I == nt
        # guarded by t > 0 (Figure 3.2: l.I = NT - 1)
        assert tree.node_by_var("s1_1").I == nt - 1
        assert tree.node_by_var("b_0").I == nt - 1
        assert tree.node_by_var("b_1").I == nt


class TestCnnFolding:
    def test_filter_loops_folded_into_c(self, trees):
        tree = trees["cnn"]
        c = tree.node_by_var("c")
        assert c.is_leaf
        assert c.folded
        with pytest.raises(KeyError):
            tree.node_by_var("r")

    def test_band_levels_parallel(self, trees):
        tree = trees["cnn"]
        for var in ("n", "k", "p", "q"):
            assert tree.node_by_var(var).parallel, var
        assert not tree.node_by_var("c").parallel

    def test_chain_shape(self, trees):
        tree = trees["cnn"]
        node = tree.roots[0]
        chain = [node.var]
        while node.children:
            assert len(node.children) == 1
            node = node.children[0]
            chain.append(node.var)
        assert chain == ["n", "k", "p", "q", "c"]


class TestPooling:
    @pytest.mark.parametrize("name", ["maxpool", "sumpool"])
    def test_window_loops_fold(self, trees, name):
        tree = trees[name]
        r = tree.node_by_var("r")
        assert r.is_leaf and r.folded
        for var in ("n", "k", "p", "q"):
            assert tree.node_by_var(var).parallel


class TestRnn:
    def test_recurrent_loop_sequential(self, trees):
        tree = trees["rnn"]
        s2 = tree.node_by_var("s2")
        assert not s2.parallel
        assert s2.is_leaf and s2.folded  # s3 folded (in-place update)

    def test_projection_parallel(self, trees):
        tree = trees["rnn"]
        assert tree.node_by_var("s1").parallel
        assert not tree.node_by_var("p").parallel
        assert tree.node_by_var("s4").parallel


def test_render_mentions_every_level(trees):
    text = trees["lstm"].render()
    for var in ("t", "s1_0", "p", "s1_1", "s2", "b_0", "b_1"):
        assert f"{var}:" in text
