"""Tests for the loop-nest IR: walks, domains, schedules."""

import pytest

from repro.kernels import lstm, preset_sizes
from repro.loopir.ast import Kernel, Loop, Stmt
from repro.loopir.builder import for_, stmt_
from repro.poly.access import Array
from repro.poly.constraint import Constraint


@pytest.fixture()
def tiny_kernel():
    a = Array("a", (4, 6))
    arrays = {"a": a}
    s1 = stmt_("init", arrays, writes={"a": ("i", "j")})
    s2 = stmt_("use", arrays, reads={"a": ("i", "j")},
               writes={"a": ("i", "j")})
    loops = for_("i", 4, for_("j", 6, s1, s2))
    return Kernel("tiny", [a], [loops])


class TestStructure:
    def test_walk_loops_preorder(self, tiny_kernel):
        loops = [loop.var for loop, _ in tiny_kernel.walk_loops()]
        assert loops == ["i", "j"]

    def test_walk_stmts_textual_order(self, tiny_kernel):
        names = [s.name for s, _ in tiny_kernel.walk_stmts()]
        assert names == ["init", "use"]

    def test_surrounding_loops(self, tiny_kernel):
        loops = tiny_kernel.surrounding_loops("use")
        assert [l.var for l in loops] == ["i", "j"]

    def test_lookup_errors(self, tiny_kernel):
        with pytest.raises(KeyError):
            tiny_kernel.loop_by_var("zz")
        with pytest.raises(KeyError):
            tiny_kernel.stmt_by_name("zz")

    def test_duplicate_loop_names_rejected(self):
        a = Array("a", (4,))
        s = stmt_("s", {"a": a}, writes={"a": ("i",)})
        with pytest.raises(ValueError):
            Kernel("bad", [a], [for_("i", 4, for_("i", 4, s))])

    def test_duplicate_stmt_names_rejected(self):
        a = Array("a", (4,))
        s1 = stmt_("s", {"a": a}, writes={"a": ("i",)})
        s2 = stmt_("s", {"a": a}, reads={"a": ("i",)})
        with pytest.raises(ValueError):
            Kernel("bad", [a], [for_("i", 4, s1, s2)])

    def test_stmts_and_arrays_under(self, tiny_kernel):
        root = tiny_kernel.roots[0]
        assert len(tiny_kernel.stmts_under(root)) == 2
        assert [a.name for a in tiny_kernel.arrays_under(root)] == ["a"]


class TestPolyhedralViews:
    def test_stmt_domain(self, tiny_kernel):
        dom = tiny_kernel.stmt_domain("use")
        assert dom.iterators == ("i", "j")
        assert dom.size() == 24

    def test_stmt_schedule_kelly_form(self, tiny_kernel):
        init = tiny_kernel.stmt_schedule("init")
        use = tiny_kernel.stmt_schedule("use")
        pt = {"i": 1, "j": 2}
        assert init.evaluate(pt) < use.evaluate(pt)
        assert init.evaluate({"i": 1, "j": 2}) < \
            init.evaluate({"i": 1, "j": 3})

    def test_lstm_schedules_interleave(self):
        kernel = lstm(preset_sizes("lstm", "MINI"))
        mac_u = kernel.stmt_schedule("lstm_mac_u")
        mac_w = kernel.stmt_schedule("lstm_mac_w")
        # mac_u is in the first subtree of t, mac_w in the second.
        pt_u = {"t": 1, "s1_0": 0, "p": 0}
        pt_w = {"t": 1, "s1_1": 0, "s2": 0}
        width = 2  # compare (beta0, t) then position within t's body
        assert mac_u.evaluate(pt_u)[:3] < mac_w.evaluate(pt_w)[:3]

    def test_lstm_guarded_domain(self):
        kernel = lstm(preset_sizes("lstm", "MINI"))
        dom = kernel.stmt_domain("lstm_mac_w")
        assert not dom.contains({"t": 0, "s1_1": 0, "s2": 0})
        assert dom.contains({"t": 1, "s1_1": 0, "s2": 0})

    def test_guarded_stmt_domain(self):
        a = Array("a", (4,))
        s = stmt_("s", {"a": a}, writes={"a": ("i",)},
                  guards=[Constraint.eq("j", 0)])
        k = Kernel("g", [a], [for_("i", 4, for_("j", 5, s))])
        dom = k.stmt_domain("s")
        assert len(list(dom.points())) == 4
