"""Seeded campaign smoke tests: determinism and full detection."""

import pytest

from repro.faults import ALL_KINDS, run_campaign


@pytest.mark.parametrize("kernel", ["cnn", "lstm"])
class TestCampaign:
    def test_all_affecting_faults_detected(self, kernel):
        result = run_campaign(kernel, preset="MINI", seed=7, per_kind=2)
        assert len(set(o.spec.kind for o in result.outcomes)) >= 5
        assert result.injected >= 10
        assert result.all_affecting_detected, result.describe()

    def test_campaign_is_deterministic(self, kernel):
        first = run_campaign(kernel, preset="MINI", seed=11, per_kind=1)
        second = run_campaign(kernel, preset="MINI", seed=11, per_kind=1)
        assert [o.spec for o in first.outcomes] == \
            [o.spec for o in second.outcomes]
        assert [(o.affecting, o.detected) for o in first.outcomes] == \
            [(o.affecting, o.detected) for o in second.outcomes]

    def test_describe_reports_every_kind(self, kernel):
        result = run_campaign(kernel, preset="MINI", seed=7, per_kind=1)
        text = result.describe()
        for kind in ALL_KINDS:
            assert kind in text
        assert "total" in text and "OK" in text
