"""FaultPlan / FaultInjector unit tests: matching, magnitudes, no-ops."""

from repro.faults import (
    ALL_KINDS,
    DMA_JITTER,
    DMA_STALL,
    EXEC_OVERRUN,
    FUNCTIONAL_KINDS,
    NULL_INJECTOR,
    SPM_POISON,
    SWAP_DELAY,
    SWAP_DROP,
    SWAP_DUPLICATE,
    TIMING_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)


class TestFaultPlan:
    def test_kind_partitions(self):
        assert set(ALL_KINDS) == set(TIMING_KINDS) | set(FUNCTIONAL_KINDS)
        assert len(ALL_KINDS) == 7

    def test_single_and_from_specs(self):
        spec = FaultSpec(DMA_STALL, core=1, slot=2, magnitude=10.0)
        plan = FaultPlan.single(spec, seed=3)
        assert len(plan) == 1 and plan.seed == 3
        both = FaultPlan.from_specs([spec, spec], seed=3)
        assert len(both) == 2
        assert both.of_kind(DMA_STALL) == (spec, spec)
        assert both.of_kind(DMA_JITTER) == ()

    def test_describe_mentions_coordinates(self):
        spec = FaultSpec(SWAP_DROP, core=2, array="W", index=1, op="unload")
        text = spec.describe()
        assert "core=2" in text and "array=W" in text and "op=unload" in text


class TestTimingHooks:
    def test_jitter_multiplies_matching_slot_only(self):
        inj = FaultInjector(FaultPlan.single(
            FaultSpec(DMA_JITTER, core=1, slot=3, magnitude=2.5)))
        assert inj.mem_ns(1, 3, 100.0) == 250.0
        assert inj.mem_ns(1, 2, 100.0) == 100.0
        assert inj.mem_ns(0, 3, 100.0) == 100.0

    def test_stall_adds(self):
        inj = FaultInjector(FaultPlan.single(
            FaultSpec(DMA_STALL, core=0, slot=1, magnitude=42.0)))
        assert inj.mem_ns(0, 1, 8.0) == 50.0

    def test_wildcard_core_matches_everywhere(self):
        inj = FaultInjector(FaultPlan.single(
            FaultSpec(DMA_STALL, slot=1, magnitude=5.0)))
        assert inj.mem_ns(0, 1, 1.0) == 6.0
        assert inj.mem_ns(7, 1, 1.0) == 6.0

    def test_exec_overrun_targets_core_and_segment(self):
        inj = FaultInjector(FaultPlan.single(
            FaultSpec(EXEC_OVERRUN, core=2, segment=1, magnitude=3.0)))
        assert inj.exec_ns(2, 1, 10.0) == 30.0
        assert inj.exec_ns(2, 2, 10.0) == 10.0
        assert inj.exec_ns(1, 1, 10.0) == 10.0

    def test_untargeted_overrun_perturbs_tile_cost(self):
        inj = FaultInjector(FaultPlan.single(
            FaultSpec(EXEC_OVERRUN, magnitude=2.0)))
        assert inj.tile_cycles((2, 2), 100) == 200
        pinned = FaultInjector(FaultPlan.single(
            FaultSpec(EXEC_OVERRUN, core=0, magnitude=2.0)))
        assert pinned.tile_cycles((2, 2), 100) == 100


class TestSwapHooks:
    def test_drop_matches_exact_target(self):
        inj = FaultInjector(FaultPlan.single(
            FaultSpec(SWAP_DROP, core=1, array="W", index=2, op="load")))
        assert inj.drops(1, "W", 2, "load")
        assert not inj.drops(1, "W", 2, "unload")
        assert not inj.drops(1, "W", 1, "load")
        assert not inj.drops(0, "W", 2, "load")
        assert not inj.drops(1, "out", 2, "load")

    def test_delay_sums_magnitudes(self):
        inj = FaultInjector(FaultPlan.from_specs([
            FaultSpec(SWAP_DELAY, core=0, array="a", index=1,
                      magnitude=1.0),
            FaultSpec(SWAP_DELAY, core=0, array="a", index=1,
                      magnitude=2.0),
        ]))
        assert inj.delay_slots(0, "a", 1, "load") == 3
        assert inj.delay_slots(0, "a", 2, "load") == 0

    def test_duplicate_offset(self):
        inj = FaultInjector(FaultPlan.single(
            FaultSpec(SWAP_DUPLICATE, core=0, array="a", index=1,
                      magnitude=2.0)))
        assert inj.duplicate_offset(0, "a", 1, "load") == 2
        assert inj.duplicate_offset(0, "a", 2, "load") is None

    def test_poison_elements(self):
        inj = FaultInjector(FaultPlan.single(
            FaultSpec(SPM_POISON, core=3, array="inp", index=1,
                      element=17)))
        assert inj.poison_elements(3, "inp", 1) == [17]
        assert inj.poison_elements(3, "inp", 2) == []
        assert inj.poison_elements(2, "inp", 1) == []


class TestNullInjector:
    def test_every_hook_is_identity(self):
        assert NULL_INJECTOR.mem_ns(0, 1, 123.0) == 123.0
        assert NULL_INJECTOR.exec_ns(0, 1, 456.0) == 456.0
        assert NULL_INJECTOR.tile_cycles((4,), 789) == 789
        assert not NULL_INJECTOR.drops(0, "a", 1, "load")
        assert NULL_INJECTOR.delay_slots(0, "a", 1, "load") == 0
        assert NULL_INJECTOR.duplicate_offset(0, "a", 1, "load") is None
        assert NULL_INJECTOR.poison_elements(0, "a", 1) == []
