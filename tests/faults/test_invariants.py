"""PremInvariantChecker tests: clean plans pass, corrupted ones don't."""

import pytest

from repro.compiler import PremCompiler
from repro.errors import InvariantViolationError
from repro.faults import (
    DMA_STALL,
    EXEC_OVERRUN,
    NULL_INJECTOR,
    SPM_POISON,
    SWAP_DELAY,
    SWAP_DROP,
    SWAP_DUPLICATE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PremInvariantChecker,
)
from repro.kernels import make_kernel
from repro.prem.macros import ArraySwapSchedule, MacroBuilder, SwapEvent
from repro.prem.runtime import PremRuntime, VmTrace, init_arrays
from repro.prem.segments import RW, CoreSchedule


@pytest.fixture(scope="module")
def compiled():
    kernel = make_kernel("cnn", "MINI")
    result = PremCompiler().compile(kernel)
    compiled = result.components[0]
    choice = next(c for c in result.opt_result.choices
                  if c.component is compiled.component)
    builder = MacroBuilder(compiled.component, compiled.solution)
    return kernel, compiled, choice.result.best.plan, builder


@pytest.fixture(scope="module")
def checker():
    return PremInvariantChecker()


def _traced_run(kernel, compiled, injector=None):
    arrays = init_arrays(kernel, seed=7)
    trace = VmTrace()
    component, solution = compiled.component, compiled.solution
    outer = {var: 0 for var in component.outer_vars()}
    runtime = PremRuntime(component, solution, injector=injector,
                          trace=trace)
    try:
        runtime.run(arrays, outer=outer)
    except Exception:
        pass
    return trace


class TestCleanPlansPass:
    def test_swap_plans_clean(self, compiled, checker):
        _, _, plan, builder = compiled
        for core in plan.cores:
            assert checker.check_swap_plan(builder, core.core) == []

    def test_core_schedules_clean(self, compiled, checker):
        _, _, plan, _ = compiled
        for core in plan.cores:
            assert checker.check_core_schedule(core) == []

    def test_unfaulted_trace_clean(self, compiled, checker):
        kernel, comp, _, builder = compiled
        trace = _traced_run(kernel, comp)
        assert checker.check_trace(
            comp.component, comp.solution, builder, trace) == []

    def test_unfaulted_timing_clean(self, compiled, checker):
        _, _, plan, _ = compiled
        assert checker.check_timing(plan.cores, NULL_INJECTOR) == []


def _synthetic_schedule(cls=ArraySwapSchedule, segments=(1, 2, 3),
                        n_segments=4, mode=RW):
    events = [SwapEvent(index=i + 1, segment=s, crange=None, call=None)
              for i, s in enumerate(segments)]
    return cls(array_name="a", mode=mode, core=0,
               n_segments=n_segments, events=events)


class _LateTransfer(ArraySwapSchedule):
    def transfer_slot(self, index):
        return 99


class _EarlyTransfer(ArraySwapSchedule):
    def transfer_slot(self, index):
        return 1


class _EarlyUnload(ArraySwapSchedule):
    def unload_slot(self, index):
        return 1


class TestCorruptedSwapPlans:
    def test_non_monotone_segments_flagged(self, checker):
        schedule = _synthetic_schedule(segments=(2, 1, 3))
        kinds = {v.kind for v in checker._check_schedule(schedule)}
        assert "swap-order" in kinds

    def test_segment_past_end_flagged(self, checker):
        schedule = _synthetic_schedule(segments=(1, 2, 9))
        kinds = {v.kind for v in checker._check_schedule(schedule)}
        assert "swap-order" in kinds

    def test_late_transfer_flagged(self, checker):
        schedule = _synthetic_schedule(cls=_LateTransfer)
        kinds = {v.kind for v in checker._check_schedule(schedule)}
        assert "late-transfer" in kinds

    def test_double_buffer_overlap_flagged(self, checker):
        schedule = _synthetic_schedule(cls=_EarlyTransfer)
        kinds = {v.kind for v in checker._check_schedule(schedule)}
        assert "double-buffer-overlap" in kinds

    def test_unload_before_last_write_flagged(self, checker):
        schedule = _synthetic_schedule(cls=_EarlyUnload)
        kinds = {v.kind for v in checker._check_schedule(schedule)}
        assert "unload-before-last-write" in kinds

    def test_violations_carry_coordinates(self, checker):
        schedule = _synthetic_schedule(segments=(2, 1, 3))
        violation = checker._check_schedule(schedule)[0]
        assert violation.core == 0 and violation.array == "a"
        assert "core=0" in violation.describe()


class TestCorruptedCoreSchedules:
    def _clean(self):
        return CoreSchedule(
            core=0, n_segments=2, init_api_ns=0.0,
            exec_ns=[10.0, 10.0], mem_slot_ns=[5.0, 5.0, 5.0, 5.0],
            dep_slot=[1, 2])

    def test_shape_mismatch_flagged(self, checker):
        bad = self._clean()
        bad.exec_ns = [10.0]
        assert any(v.kind == "plan-shape"
                   for v in checker.check_core_schedule(bad))
        bad = self._clean()
        bad.mem_slot_ns = [5.0]
        assert any(v.kind == "plan-shape"
                   for v in checker.check_core_schedule(bad))

    def test_dep_slot_after_segment_flagged(self, checker):
        bad = self._clean()
        bad.dep_slot = [4, 2]
        assert any(v.kind == "dep-order"
                   for v in checker.check_core_schedule(bad))

    def test_negative_times_flagged(self, checker):
        bad = self._clean()
        bad.exec_ns = [10.0, -1.0]
        bad.mem_slot_ns = [5.0, -5.0, 5.0, 5.0]
        kinds = [v.kind for v in checker.check_core_schedule(bad)]
        assert kinds.count("negative-time") == 2

    def test_clean_schedule_passes(self, checker):
        assert checker.check_core_schedule(self._clean()) == []


def _swap_target(builder, solution):
    """(core, array, index) of the first planned swap event."""
    for core in range(solution.threads):
        schedules = builder.core_schedules(core)
        for name in sorted(schedules):
            for event in schedules[name].events:
                return core, name, event.index
    raise AssertionError("no swap events planned")


class TestFaultedTraces:
    def test_dropped_swap_detected(self, compiled, checker):
        kernel, comp, _, builder = compiled
        core, name, index = _swap_target(builder, comp.solution)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(SWAP_DROP, core=core, array=name, index=index)))
        trace = _traced_run(kernel, comp, injector)
        kinds = {v.kind for v in checker.check_trace(
            comp.component, comp.solution, builder, trace)}
        assert "dropped-swap" in kinds

    def test_duplicate_swap_detected(self, compiled, checker):
        kernel, comp, _, builder = compiled
        core, name, index = _swap_target(builder, comp.solution)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(SWAP_DUPLICATE, core=core, array=name, index=index,
                      magnitude=1.0)))
        trace = _traced_run(kernel, comp, injector)
        kinds = {v.kind for v in checker.check_trace(
            comp.component, comp.solution, builder, trace)}
        assert "duplicate-swap" in kinds

    def test_delayed_swap_detected(self, compiled, checker):
        kernel, comp, _, builder = compiled
        core, name, index = _swap_target(builder, comp.solution)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(SWAP_DELAY, core=core, array=name, index=index,
                      magnitude=1.0)))
        trace = _traced_run(kernel, comp, injector)
        kinds = {v.kind for v in checker.check_trace(
            comp.component, comp.solution, builder, trace)}
        # A delay either shifts the op to a later slot or (past the end
        # of the run) suppresses it entirely; both must be flagged.
        assert kinds & {"delayed-swap", "dropped-swap"}

    def test_poison_read_detected(self, compiled, checker):
        kernel, comp, _, builder = compiled
        core, name, index = _swap_target(builder, comp.solution)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(SPM_POISON, core=core, array=name, index=index,
                      element=0)))
        trace = _traced_run(kernel, comp, injector)
        kinds = {v.kind for v in checker.check_trace(
            comp.component, comp.solution, builder, trace)}
        assert "poison-read" in kinds


class TestFaultedTiming:
    def test_dma_stall_breaks_round_robin(self, compiled, checker):
        _, _, plan, _ = compiled
        busy = next(
            (core.core, slot + 1)
            for core in plan.cores
            for slot, length in enumerate(core.mem_slot_ns) if length > 0)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(DMA_STALL, core=busy[0], slot=busy[1],
                      magnitude=1e6)))
        kinds = {v.kind for v in checker.check_timing(plan.cores, injector)}
        assert "dma-order" in kinds

    def test_exec_overrun_detected(self, compiled, checker):
        _, _, plan, _ = compiled
        core = next(c for c in plan.cores if c.n_segments > 0)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(EXEC_OVERRUN, core=core.core, segment=1,
                      magnitude=100.0)))
        kinds = {v.kind for v in checker.check_timing(plan.cores, injector)}
        assert "exec-overrun" in kinds


class TestEnsure:
    def test_raises_with_violations(self, checker):
        schedule = _synthetic_schedule(segments=(2, 1, 3))
        violations = checker._check_schedule(schedule)
        with pytest.raises(InvariantViolationError):
            checker.ensure(violations)

    def test_noop_when_clean(self, checker):
        checker.ensure([])
