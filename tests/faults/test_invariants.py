"""PremInvariantChecker tests: clean runs pass, faulted ones don't.

The static plan surface (slot arithmetic, double-buffer windows, core
schedule shape) moved to ``repro.analysis`` and is covered by
``tests/analysis/``; this file covers the dynamic checkers — VM traces
and the timing replay — and their ``Diagnostic`` output.
"""

import pytest

from repro.analysis import Diagnostic
from repro.compiler import PremCompiler
from repro.errors import InvariantViolationError
from repro.faults import (
    DMA_STALL,
    EXEC_OVERRUN,
    NULL_INJECTOR,
    SPM_POISON,
    SWAP_DELAY,
    SWAP_DROP,
    SWAP_DUPLICATE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PremInvariantChecker,
)
from repro.kernels import make_kernel
from repro.prem.macros import MacroBuilder
from repro.prem.runtime import PremRuntime, VmTrace, init_arrays


@pytest.fixture(scope="module")
def compiled():
    kernel = make_kernel("cnn", "MINI")
    result = PremCompiler().compile(kernel)
    compiled = result.components[0]
    choice = next(c for c in result.opt_result.choices
                  if c.component is compiled.component)
    builder = MacroBuilder(compiled.component, compiled.solution)
    return kernel, compiled, choice.result.best.plan, builder


@pytest.fixture(scope="module")
def checker():
    return PremInvariantChecker()


def _traced_run(kernel, compiled, injector=None):
    arrays = init_arrays(kernel, seed=7)
    trace = VmTrace()
    component, solution = compiled.component, compiled.solution
    outer = {var: 0 for var in component.outer_vars()}
    runtime = PremRuntime(component, solution, injector=injector,
                          trace=trace)
    try:
        runtime.run(arrays, outer=outer)
    except Exception:
        pass
    return trace


class TestCleanRunsPass:
    def test_unfaulted_trace_clean(self, compiled, checker):
        kernel, comp, _, builder = compiled
        trace = _traced_run(kernel, comp)
        assert checker.check_trace(
            comp.component, comp.solution, builder, trace) == []

    def test_unfaulted_timing_clean(self, compiled, checker):
        _, _, plan, _ = compiled
        assert checker.check_timing(plan.cores, NULL_INJECTOR) == []


def _swap_target(builder, solution):
    """(core, array, index) of the first planned swap event."""
    for core in range(solution.threads):
        schedules = builder.core_schedules(core)
        for name in sorted(schedules):
            for event in schedules[name].events:
                return core, name, event.index
    raise AssertionError("no swap events planned")


class TestFaultedTraces:
    def test_dropped_swap_detected(self, compiled, checker):
        kernel, comp, _, builder = compiled
        core, name, index = _swap_target(builder, comp.solution)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(SWAP_DROP, core=core, array=name, index=index)))
        trace = _traced_run(kernel, comp, injector)
        found = checker.check_trace(
            comp.component, comp.solution, builder, trace)
        assert "dropped-swap" in {v.kind for v in found}
        assert "PREM401" in {v.code for v in found}

    def test_duplicate_swap_detected(self, compiled, checker):
        kernel, comp, _, builder = compiled
        core, name, index = _swap_target(builder, comp.solution)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(SWAP_DUPLICATE, core=core, array=name, index=index,
                      magnitude=1.0)))
        trace = _traced_run(kernel, comp, injector)
        kinds = {v.kind for v in checker.check_trace(
            comp.component, comp.solution, builder, trace)}
        assert "duplicate-swap" in kinds

    def test_delayed_swap_detected(self, compiled, checker):
        kernel, comp, _, builder = compiled
        core, name, index = _swap_target(builder, comp.solution)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(SWAP_DELAY, core=core, array=name, index=index,
                      magnitude=1.0)))
        trace = _traced_run(kernel, comp, injector)
        kinds = {v.kind for v in checker.check_trace(
            comp.component, comp.solution, builder, trace)}
        # A delay either shifts the op to a later slot or (past the end
        # of the run) suppresses it entirely; both must be flagged.
        assert kinds & {"delayed-swap", "dropped-swap"}

    def test_poison_read_detected(self, compiled, checker):
        kernel, comp, _, builder = compiled
        core, name, index = _swap_target(builder, comp.solution)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(SPM_POISON, core=core, array=name, index=index,
                      element=0)))
        trace = _traced_run(kernel, comp, injector)
        kinds = {v.kind for v in checker.check_trace(
            comp.component, comp.solution, builder, trace)}
        assert "poison-read" in kinds

    def test_trace_diagnostics_carry_coordinates(self, compiled, checker):
        kernel, comp, _, builder = compiled
        core, name, index = _swap_target(builder, comp.solution)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(SWAP_DROP, core=core, array=name, index=index)))
        trace = _traced_run(kernel, comp, injector)
        found = checker.check_trace(
            comp.component, comp.solution, builder, trace)
        dropped = next(v for v in found if v.code == "PREM401")
        assert dropped.core == core
        assert dropped.array == name
        assert dropped.source == "trace"
        assert f"core={core}" in dropped.describe()


class TestFaultedTiming:
    def test_dma_stall_breaks_round_robin(self, compiled, checker):
        _, _, plan, _ = compiled
        busy = next(
            (core.core, slot + 1)
            for core in plan.cores
            for slot, length in enumerate(core.mem_slot_ns) if length > 0)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(DMA_STALL, core=busy[0], slot=busy[1],
                      magnitude=1e6)))
        found = checker.check_timing(plan.cores, injector)
        assert "dma-order" in {v.kind for v in found}
        assert all(v.source == "timing" for v in found)

    def test_dma_stall_misses_consumer_segment(self, compiled, checker):
        _, _, plan, _ = compiled
        # Stall a slot some segment depends on: PREM412 must name it.
        core, dep, segment = next(
            (c.core, c.dep_slot[s], s + 1)
            for c in plan.cores
            for s in range(c.n_segments) if c.dep_slot[s])
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(DMA_STALL, core=core, slot=dep, magnitude=1e6)))
        found = checker.check_timing(plan.cores, injector)
        late = [v for v in found if v.code == "PREM412"]
        assert any(v.segment == segment and v.slot == dep for v in late)
        assert all(v.kind == "late-transfer-timing" for v in late)

    def test_exec_overrun_detected(self, compiled, checker):
        _, _, plan, _ = compiled
        core = next(c for c in plan.cores if c.n_segments > 0)
        injector = FaultInjector(FaultPlan.single(
            FaultSpec(EXEC_OVERRUN, core=core.core, segment=1,
                      magnitude=100.0)))
        kinds = {v.kind for v in checker.check_timing(plan.cores, injector)}
        assert "exec-overrun" in kinds


class TestEnsure:
    def test_raises_with_violations(self, checker):
        diagnostics = [Diagnostic(
            "PREM401", "planned load never happened", core=0, slot=3)]
        with pytest.raises(InvariantViolationError) as excinfo:
            checker.ensure(diagnostics)
        assert "PREM401" in str(excinfo.value)

    def test_noop_when_clean(self, checker):
        checker.ensure([])
