"""Sanity tests for the PolyBench-NN transcriptions."""

import numpy as np
import pytest

from repro.kernels import (
    GOOGLENET_3X3_LAYERS,
    KERNELS,
    PRESETS,
    bounds_label,
    googlenet_cnn,
    layer_sizes,
    make_kernel,
    preset_sizes,
)
from repro.prem.runtime import SequentialInterpreter, init_arrays


class TestPresets:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_all_presets_instantiate(self, name):
        for preset in PRESETS[name]:
            kernel = make_kernel(name, preset)
            assert kernel.name == name
            assert kernel.roots

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            preset_sizes("cnn", "GIGANTIC")
        with pytest.raises(KeyError):
            preset_sizes("fft", "LARGE")

    def test_overrides(self):
        kernel = make_kernel("cnn", "MINI", overrides={"NK": 2})
        assert kernel.constants["NK"] == 2

    def test_large_lstm_matches_paper_bounds(self):
        sizes = preset_sizes("lstm", "LARGE")
        assert sizes["NS"] == 650 and sizes["NP"] == 700

    def test_large_working_sets_exceed_spm(self):
        """The paper picks LARGE so kernels cannot fit a 128 KiB SPM."""
        for name in KERNELS:
            kernel = make_kernel(name, "LARGE")
            total = sum(a.total_bytes for a in kernel.arrays.values())
            assert total > 128 * 1024, name


class TestShapes:
    def test_cnn_listing_6_1_structure(self):
        kernel = make_kernel("cnn", "MINI")
        loops = [loop.var for loop, _ in kernel.walk_loops()]
        assert loops == ["n", "k", "p", "q", "c", "r", "s"]
        sz = kernel.constants
        assert kernel.arrays["inp_F"].shape == (
            sz["NN"], sz["NC"], sz["NP"] + sz["NR"] - 1,
            sz["NQ"] + sz["NS"] - 1)

    def test_lstm_listing_3_1_structure(self):
        kernel = make_kernel("lstm", "MINI")
        root = kernel.roots[0]
        assert root.var == "t"
        children = [c.var for c in root.child_loops()]
        assert children == ["s1_0", "s1_1", "b_0", "b_1"]

    def test_pool_input_is_window_times_output(self):
        kernel = make_kernel("maxpool", "MINI")
        sz = kernel.constants
        assert kernel.arrays["inp_F"].shape == (
            sz["NN"], sz["NK"], sz["NP"] * sz["NR"], sz["NQ"] * sz["NS"])


class TestNumericSemantics:
    def test_cnn_matches_numpy_convolution(self):
        kernel = make_kernel("cnn", "MINI")
        arrays = init_arrays(kernel, seed=5)
        w, inp = arrays["W"].copy(), arrays["inp_F"].copy()
        out = arrays["out_F"].copy()
        SequentialInterpreter().run(kernel, arrays)
        sz = kernel.constants
        nr, ns = sz["NR"], sz["NS"]
        expected = out.copy()
        for n in range(sz["NN"]):
            for k in range(sz["NK"]):
                for p in range(sz["NP"]):
                    for q in range(sz["NQ"]):
                        acc = expected[n, k, p, q]
                        for c in range(sz["NC"]):
                            for r in range(nr):
                                for s in range(ns):
                                    acc += w[k, c, r, s] * \
                                        inp[n, c, p + nr - r - 1,
                                            q + ns - s - 1]
                        expected[n, k, p, q] = acc
        np.testing.assert_allclose(
            arrays["out_F"], expected, rtol=1e-5)

    def test_maxpool_matches_numpy(self):
        kernel = make_kernel("maxpool", "MINI")
        arrays = init_arrays(kernel, seed=5)
        inp = arrays["inp_F"].copy()
        SequentialInterpreter().run(kernel, arrays)
        sz = kernel.constants
        expected = inp.reshape(
            sz["NN"], sz["NK"], sz["NP"], sz["NR"], sz["NQ"], sz["NS"]
        ).max(axis=(3, 5))
        np.testing.assert_allclose(arrays["out_F"], expected, rtol=1e-6)

    def test_sumpool_matches_numpy(self):
        kernel = make_kernel("sumpool", "MINI")
        arrays = init_arrays(kernel, seed=5)
        inp = arrays["inp_F"].copy()
        SequentialInterpreter().run(kernel, arrays)
        sz = kernel.constants
        expected = inp.reshape(
            sz["NN"], sz["NK"], sz["NP"], sz["NR"], sz["NQ"], sz["NS"]
        ).sum(axis=(3, 5))
        np.testing.assert_allclose(arrays["out_F"], expected, rtol=1e-5)

    def test_lstm_state_feeds_forward(self):
        """s_F[t] must depend on s_F[t-1]: perturbing the input at t=0
        changes the state at the final step."""
        kernel = make_kernel("lstm", "MINI")
        base = init_arrays(kernel, seed=5)
        perturbed = {k: v.copy() for k, v in base.items()}
        perturbed["inp_F"][0, 0] += 1.0
        SequentialInterpreter().run(kernel, base)
        SequentialInterpreter().run(kernel, perturbed)
        nt = kernel.constants["NT"]
        assert not np.allclose(base["s_F"][nt - 1],
                               perturbed["s_F"][nt - 1])


class TestGoogLeNet:
    def test_layer_list(self):
        assert len(GOOGLENET_3X3_LAYERS) == 6
        assert GOOGLENET_3X3_LAYERS[0] == (128, 28, 28, 96)

    def test_layer_sizes(self):
        sizes = layer_sizes((128, 28, 28, 96))
        assert sizes == dict(NN=1, NK=128, NP=28, NQ=28, NC=96,
                             NR=3, NS=3)

    def test_kernel_instantiation(self):
        kernel = googlenet_cnn((208, 14, 14, 96))
        assert kernel.constants["NK"] == 208
        assert kernel.arrays["out_F"].shape == (1, 208, 14, 14)

    def test_bounds_label(self):
        assert bounds_label((128, 28, 28, 96)) == "128 / 28 / 28 / 96"
