"""Front exactness of the multi-objective sweep.

The contract under test: `ParetoOptimizer` emits the *exact*
non-dominated front over (makespan, SPM bytes, DMA bytes, cores) —
bit-identical to the unpruned reference sweep and across every
execution toggle (jobs, vectorize, cold/warm cache) — and every
weighted-scalarization winner lies on that front.  The dominance tier
may only skip candidates whose admissible bound vector is already
dominated by an achieved vector, so the front can never lose a member
to pruning.
"""

import math
import multiprocessing
import os
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizerError
from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.builder import for_, kernel_, stmt_
from repro.loopir.component import component_at
from repro.opt.cache import PersistentCache
from repro.opt.exhaustive import SearchSpaceTooLarge
from repro.opt.pareto import (
    DEFAULT_WEIGHTS,
    OBJECTIVES,
    ParetoOptimizer,
    ParetoPoint,
    compose_fronts,
    dominates_vector,
    kernel_front,
    pareto_front,
    scalarize,
)
from repro.opt.pruned import PrunedOptimizer
from repro.opt.tree import TreeOptimizer
from repro.poly.access import Array
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker pool requires the fork start method")


def eight_cpus():
    return mock.patch.object(os, "cpu_count", lambda: 8)


def _component(kernel_name, preset, vars_):
    tree = LoopTree.build(make_kernel(kernel_name, preset))
    comp = component_at(tree, vars_)
    return comp, fit_component_model(comp)


@pytest.fixture(scope="module")
def lstm_small():
    return _component("lstm", "SMALL", ["s1_0", "p"])


@pytest.fixture(scope="module")
def rnn_small():
    return _component("rnn", "SMALL", ["s1", "p"])


def _front_key(result):
    """The comparable identity of a front: vectors plus representatives."""
    return tuple((p.objectives, p.flat) for p in result.front)


def _counters(result):
    return (result.candidates, result.scored,
            result.pruned, result.dominance_pruned)


def _point(makespan, spm, dma, cores, flat):
    """Hand-built front point for the pure-function tests."""
    return ParetoPoint(result=None, flat=flat, makespan_ns=float(makespan),
                       spm_bytes=spm, dma_bytes=dma, cores=cores)


# -- pure functions ---------------------------------------------------------


class TestDominance:
    def test_equal_vectors_do_not_dominate(self):
        assert not dominates_vector((1.0, 2, 3, 4), (1.0, 2, 3, 4))

    def test_weak_dominance_needs_one_strict_coordinate(self):
        assert dominates_vector((1.0, 2, 3, 4), (1.0, 2, 3, 5))
        assert dominates_vector((0.5, 2, 3, 4), (1.0, 2, 3, 4))
        assert not dominates_vector((0.5, 9, 3, 4), (1.0, 2, 3, 4))

    def test_front_drops_dominated_and_dedupes_on_min_flat(self):
        a = _point(1.0, 10, 10, 1, (0, 1))
        twin = _point(1.0, 10, 10, 1, (0, 0))      # same vector, smaller key
        dominated = _point(2.0, 10, 10, 1, (0, 2))
        incomparable = _point(0.5, 20, 10, 1, (0, 3))
        front = pareto_front([a, dominated, twin, incomparable])
        assert [p.flat for p in front] == [(0, 3), (0, 0)]

    def test_front_members_are_mutually_nondominated(self):
        points = [_point(m, s, d, c, (m, s, d, c))
                  for m in (1, 2, 3) for s in (1, 2)
                  for d in (1, 2) for c in (1, 2)]
        front = pareto_front(points)
        assert front == (points[0],)   # (1,1,1,1) dominates everything


class TestCompose:
    def test_sums_and_maxima(self):
        front_a = (_point(10.0, 100, 1000, 2, (1,)),)
        front_b = (_point(5.0, 300, 500, 4, (2,)),)
        composed = compose_fronts([(front_a, 3), (front_b, 1)])
        assert len(composed) == 1
        only = composed[0]
        assert only.objectives == (35.0, 300, 3500, 4)
        assert only.picks == ((1,), (2,))

    def test_empty_component_front_means_infeasible_kernel(self):
        front_a = (_point(10.0, 100, 1000, 2, (1,)),)
        assert compose_fronts([(front_a, 1), ((), 1)]) == ()

    def test_intermediate_filtering_keeps_the_exact_product_front(self):
        front_a = (_point(1.0, 10, 10, 1, (1,)), _point(2.0, 5, 10, 1, (2,)))
        front_b = (_point(1.0, 10, 10, 1, (3,)), _point(2.0, 5, 10, 1, (4,)))
        composed = compose_fronts([(front_a, 1), (front_b, 1)])
        # Brute-force reference over the 4 combinations.
        combos = {}
        for a in front_a:
            for b in front_b:
                vector = (a.makespan_ns + b.makespan_ns,
                          max(a.spm_bytes, b.spm_bytes),
                          a.dma_bytes + b.dma_bytes,
                          max(a.cores, b.cores))
                picks = (a.flat, b.flat)
                if vector not in combos or picks < combos[vector]:
                    combos[vector] = picks
        reference = [
            (vector, picks) for vector, picks in sorted(combos.items())
            if not any(dominates_vector(other, vector)
                       for other in combos if other != vector)]
        assert [(p.objectives, p.picks) for p in composed] == reference

    def test_ties_keep_the_lexicographically_smallest_picks(self):
        front_a = (_point(1.0, 10, 10, 1, (9,)), _point(1.0, 10, 10, 1, (1,)))
        composed = compose_fronts([(front_a, 1)])
        assert len(composed) == 1
        assert composed[0].picks == ((1,),)


class TestScalarizeValidation:
    FRONT = (_point(1.0, 10, 10, 1, (1,)), _point(2.0, 5, 10, 1, (2,)))

    def test_rejects_wrong_weight_count(self):
        with pytest.raises(ValueError, match="weights"):
            scalarize(self.FRONT, self.FRONT, (1.0, 1.0))

    def test_rejects_non_positive_weights(self):
        with pytest.raises(ValueError, match="strictly positive"):
            scalarize(self.FRONT, self.FRONT, (1.0, 0.0, 1.0, 1.0))
        with pytest.raises(ValueError, match="strictly positive"):
            scalarize(self.FRONT, self.FRONT, (1.0, -1.0, 1.0, 1.0))

    def test_rejects_empty_front(self):
        with pytest.raises(ValueError, match="empty"):
            scalarize((), (), (0.25, 0.25, 0.25, 0.25))

    def test_off_front_winner_is_an_optimizer_error(self):
        # An off-front candidate that scores better than every member
        # can only mean a broken bound/weight setup; scalarize refuses.
        rogue = _point(0.0, 0, 0, 1, (0,))
        with pytest.raises(OptimizerError, match="not on the sweep front"):
            scalarize(self.FRONT, (*self.FRONT, rogue),
                      (0.25, 0.25, 0.25, 0.25))

    def test_winner_prefers_the_weighted_objective(self):
        fast = scalarize(self.FRONT, self.FRONT, (0.85, 0.05, 0.05, 0.05))
        lean = scalarize(self.FRONT, self.FRONT, (0.05, 0.85, 0.05, 0.05))
        assert fast.point.flat == (1,)
        assert lean.point.flat == (2,)


# -- the sweep itself -------------------------------------------------------


@st.composite
def random_kernels(draw):
    """Tiny synthetic kernels: 1–2 loop levels, elementwise or reduction
    accesses, so parallelizability, SPM pressure and remainder tiles all
    vary across examples."""
    depth = draw(st.integers(1, 2))
    ns = [draw(st.integers(2, 9)) for _ in range(depth)]
    reduction = depth == 2 and draw(st.booleans())
    vars_ = [f"v{i}" for i in range(depth)]
    a = Array("A", tuple(ns))
    if reduction:
        out = Array("B", (ns[0],))
        arrays = {"A": a, "B": out}
        stmt = stmt_("S0", arrays,
                     reads={"A": tuple(vars_), "B": (vars_[0],)},
                     writes={"B": (vars_[0],)})
    else:
        out = Array("B", tuple(ns))
        arrays = {"A": a, "B": out}
        stmt = stmt_("S0", arrays,
                     reads={"A": tuple(vars_)},
                     writes={"B": tuple(vars_)})
    loop = stmt
    for var, n in zip(reversed(vars_), reversed(ns)):
        loop = for_(var, n, loop)
    return kernel_("rand", list(arrays.values()), [loop]), vars_


def _assert_exact_front(comp, model, platform):
    """Pruned sweep == unpruned reference; winners on front; bounds hold."""
    pruned = ParetoOptimizer(comp, platform, model).optimize()
    reference = ParetoOptimizer(
        comp, platform, model, prune=False).optimize()
    assert reference.dominance_pruned == 0
    assert _front_key(pruned) == _front_key(reference)

    front = pruned.front
    for i, mine in enumerate(front):
        for j, other in enumerate(front):
            if i != j:
                assert not dominates_vector(
                    mine.objectives, other.objectives)

    if front:
        assert len(pruned.scalarized) == len(DEFAULT_WEIGHTS)
        members = {p.flat for p in front}
        for choice in pruned.scalarized:
            assert choice.point.flat in members

    single = PrunedOptimizer(comp, platform, model).optimize()
    if single.best is None or not single.best.feasible:
        assert not front
    else:
        assert front[0].makespan_ns == single.best.makespan_ns
        assert front[0].solution.key() == single.best.solution.key()
    return pruned


def _assert_admissible_bounds(comp, model, platform, front):
    """Every achieved vector sits at or above its bound vector."""
    optimizer = ParetoOptimizer(comp, platform, model)
    vars_ = [node.var for node in comp.nodes]
    for point in front:
        solution = point.solution
        sizes = tuple(solution.tile_sizes[v] for v in vars_)
        assignment = tuple(solution.thread_groups[v] for v in vars_)
        refined = optimizer.bounds.refine(0.0, sizes, assignment)
        assert refined <= point.makespan_ns * (1 + 1e-9)
        spm = optimizer.bounds.spm_bytes_exact(solution.tile_sizes)
        if spm is None:
            spm = optimizer.bounds.spm_bytes_floor(sizes)
        assert spm <= point.spm_bytes
        dma = optimizer.bounds.dma_bytes_floor(
            sizes, assignment, solution.tile_sizes)
        assert dma <= point.dma_bytes
        assert solution.threads == point.cores


class TestFrontExactness:
    @settings(max_examples=8, deadline=None)
    @given(data=random_kernels(),
           spm_kib=st.sampled_from([1, 4, 128]),
           bus_div=st.sampled_from([1, 64]))
    def test_random_components(self, data, spm_kib, bus_div):
        kernel, vars_ = data
        tree = LoopTree.build(kernel)
        comp = component_at(tree, vars_)
        model = fit_component_model(comp)
        platform = Platform(spm_bytes=spm_kib * 1024).with_bus(
            16e9 / bus_div)
        with eight_cpus():
            result = _assert_exact_front(comp, model, platform)
            _assert_admissible_bounds(comp, model, platform, result.front)

    @pytest.mark.parametrize("fixture", ["lstm_small", "rnn_small"])
    def test_corpus_components(self, fixture, request):
        comp, model = request.getfixturevalue(fixture)
        with eight_cpus():
            result = _assert_exact_front(comp, model, Platform())
            _assert_admissible_bounds(comp, model, Platform(), result.front)
        assert result.front_size > 1      # a real trade-off surface

    def test_dominance_tier_fires_without_losing_members(self):
        comp, model = _component(
            "maxpool", "SMALL", ["n", "k", "p", "q", "r"])
        with eight_cpus():
            result = _assert_exact_front(comp, model, Platform())
        assert result.dominance_pruned > 0

    def test_infeasible_space_has_an_empty_front(self, lstm_small):
        comp, model = lstm_small
        platform = Platform(spm_bytes=16)   # nothing fits 16 bytes
        with eight_cpus():
            result = ParetoOptimizer(comp, platform, model).optimize()
        assert result.front == ()
        assert result.scalarized == ()
        assert result.best is None

    def test_space_guard_still_applies(self, lstm_small):
        comp, model = lstm_small
        with eight_cpus(), pytest.raises(SearchSpaceTooLarge):
            ParetoOptimizer(
                comp, Platform(), model, max_points=3).optimize()


class TestDeterminism:
    """Front AND counters bit-identical across every execution toggle."""

    def test_vectorize_toggle(self, rnn_small):
        comp, model = rnn_small
        with eight_cpus():
            on = ParetoOptimizer(
                comp, Platform(), model, vectorize=True).optimize()
            off = ParetoOptimizer(
                comp, Platform(), model, vectorize=False).optimize()
        assert _front_key(on) == _front_key(off)
        assert _counters(on) == _counters(off)

    def test_cold_vs_warm_cache(self, rnn_small, tmp_path):
        comp, model = rnn_small
        with eight_cpus():
            cold = ParetoOptimizer(
                comp, Platform(), model,
                cache=PersistentCache(tmp_path)).optimize()
            warm = ParetoOptimizer(
                comp, Platform(), model,
                cache=PersistentCache(tmp_path)).optimize()
        assert _front_key(cold) == _front_key(warm)
        assert _counters(cold) == _counters(warm)
        assert warm.evaluations == 0      # every survivor was cached

    @needs_fork
    def test_parallel_matches_serial(self, rnn_small):
        comp, model = rnn_small
        with eight_cpus():
            serial = ParetoOptimizer(
                comp, Platform(), model, jobs=1).optimize()
            parallel = ParetoOptimizer(
                comp, Platform(), model, jobs=2).optimize()
        assert _front_key(serial) == _front_key(parallel)
        assert _counters(serial) == _counters(parallel)


class TestKernelFront:
    def test_composes_tree_choices(self):
        tree = LoopTree.build(make_kernel("rnn", "SMALL"))
        platform = Platform()

        def optimize_fn(component, exec_model):
            return ParetoOptimizer(
                component, platform, exec_model).optimize()

        with eight_cpus():
            result = TreeOptimizer(tree).optimize(
                platform, optimize_fn=optimize_fn)
        front = kernel_front(result.choices)
        assert front
        vectors = [p.objectives for p in front]
        for i, mine in enumerate(vectors):
            for j, other in enumerate(vectors):
                if i != j:
                    assert not dominates_vector(mine, other)
        # The composed fastest point reproduces Algorithm 2's makespan.
        assert front[0].makespan_ns == pytest.approx(result.makespan_ns)
        assert all(len(p.picks) == len(result.choices) for p in front)

    def test_rejects_non_pareto_choices(self):
        tree = LoopTree.build(make_kernel("rnn", "SMALL"))
        with eight_cpus():
            result = TreeOptimizer(tree).optimize(Platform())
        with pytest.raises(ValueError, match="pareto"):
            kernel_front(result.choices)


class TestObjectiveNames:
    def test_vector_order_matches_point_fields(self):
        point = _point(1.0, 2, 3, 4, (0,))
        assert OBJECTIVES == ("makespan_ns", "spm_bytes",
                              "dma_bytes", "cores")
        assert point.objectives == tuple(
            getattr(point, name) for name in OBJECTIVES)
