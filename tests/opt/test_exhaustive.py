"""Exhaustive-search tests and heuristic optimality-gap measurement."""

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.component import ComponentOptimizer
from repro.opt.exhaustive import (
    ExhaustiveOptimizer,
    SearchSpaceTooLarge,
    search_space_size,
)
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform


@pytest.fixture(scope="module")
def lstm_tree():
    return LoopTree.build(make_kernel("lstm", "LARGE"))


class TestSearchSpace:
    def test_size_counts_all_points(self, lstm_tree):
        comp = component_at(lstm_tree, ["b_0"])
        size = search_space_size(comp, 8)
        # one level, assignments (8,),(4?)... nondominated = (8,)? No:
        # (8,) dominates everything, so exactly one assignment remains.
        from repro.opt.threadgroups import \
            generate_nondominated_thread_groups
        from repro.opt.tilesizes import select_tile_sizes
        assignments = generate_nondominated_thread_groups(8, comp)
        expected = sum(
            len(select_tile_sizes(comp.nodes[0].N, a[0]))
            for a in assignments)
        assert size == expected

    def test_deep_component_refused(self):
        tree = LoopTree.build(make_kernel("cnn", "LARGE"))
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        model = fit_component_model(comp)
        optimizer = ExhaustiveOptimizer(
            comp, Platform(), model, max_points=1000)
        with pytest.raises(SearchSpaceTooLarge):
            optimizer.optimize(8)


class TestOptimalityGap:
    @pytest.mark.parametrize("band", [["b_0"], ["b_1"]])
    def test_heuristic_matches_exhaustive_on_1d(self, lstm_tree, band):
        comp = component_at(lstm_tree, band)
        model = fit_component_model(comp)
        platform = Platform()
        exact = ExhaustiveOptimizer(comp, platform, model).optimize(8)
        heuristic = ComponentOptimizer(comp, platform, model).optimize(8)
        assert exact.feasible and heuristic.feasible
        assert heuristic.makespan_ns <= exact.makespan_ns * 1.02

    def test_heuristic_gap_on_2d_component(self, lstm_tree):
        """Section 4.3's promise: 'solutions close to the optimal'."""
        comp = component_at(lstm_tree, ["s1_0", "p"])
        model = fit_component_model(comp)
        platform = Platform()
        exact = ExhaustiveOptimizer(
            comp, platform, model, max_points=20_000).optimize(8)
        heuristic = ComponentOptimizer(comp, platform, model).optimize(8)
        assert heuristic.makespan_ns <= exact.makespan_ns * 1.10
        # and by definition the exhaustive result is a lower bound.
        assert exact.makespan_ns <= heuristic.makespan_ns * 1.0 + 1e-6 \
            or exact.makespan_ns <= heuristic.makespan_ns

    def test_exhaustive_never_worse(self, lstm_tree):
        comp = component_at(lstm_tree, ["b_0"])
        model = fit_component_model(comp)
        platform = Platform().with_bus(1e9 / 8)
        exact = ExhaustiveOptimizer(comp, platform, model).optimize(8)
        heuristic = ComponentOptimizer(comp, platform, model).optimize(8)
        assert exact.makespan_ns <= heuristic.makespan_ns + 1e-6
