"""Persistent makespan-cache unit tests."""

import json
import math
import multiprocessing
import warnings

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.cache import (
    CACHE_VERSION,
    PersistentCache,
    context_fingerprint,
    fcntl,
    solution_digest,
)
from repro.schedule.makespan import MakespanEvaluator
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform


@pytest.fixture(scope="module")
def lstm_comp():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    return component_at(tree, ["b_0"])


@pytest.fixture(scope="module")
def lstm_model(lstm_comp):
    return fit_component_model(lstm_comp)


class TestFingerprint:
    def test_stable_across_rebuilds(self, lstm_comp, lstm_model):
        a = context_fingerprint(lstm_comp, Platform(), lstm_model, 8192)
        b = context_fingerprint(lstm_comp, Platform(), lstm_model, 8192)
        assert a == b

    def test_platform_changes_fingerprint(self, lstm_comp, lstm_model):
        base = context_fingerprint(lstm_comp, Platform(), lstm_model, 8192)
        slow = context_fingerprint(
            lstm_comp, Platform().with_bus(1e9), lstm_model, 8192)
        assert base != slow

    def test_segment_cap_changes_fingerprint(self, lstm_comp, lstm_model):
        a = context_fingerprint(lstm_comp, Platform(), lstm_model, 8192)
        b = context_fingerprint(lstm_comp, Platform(), lstm_model, 64)
        assert a != b

    def test_component_changes_fingerprint(self, lstm_model):
        tree = LoopTree.build(make_kernel("lstm", "LARGE"))
        a = context_fingerprint(
            component_at(tree, ["b_0"]), Platform(), lstm_model, 8192)
        b = context_fingerprint(
            component_at(tree, ["b_1"]), Platform(), lstm_model, 8192)
        assert a != b

    def test_scenario_changes_fingerprint(self, lstm_comp, lstm_model):
        base = context_fingerprint(lstm_comp, Platform(), lstm_model, 8192)
        scen = context_fingerprint(
            lstm_comp, Platform(), lstm_model, 8192, scenario="abcd1234")
        other = context_fingerprint(
            lstm_comp, Platform(), lstm_model, 8192, scenario="ffff0000")
        assert base != scen and scen != other

    def test_no_scenario_matches_legacy_fingerprint(self, lstm_comp,
                                                    lstm_model):
        # scenario=None omits the key entirely, so nominal fingerprints
        # (and every pre-robust cache entry) stay valid.
        assert context_fingerprint(
            lstm_comp, Platform(), lstm_model, 8192) == \
            context_fingerprint(
                lstm_comp, Platform(), lstm_model, 8192, scenario=None)

    def test_solution_digest_depends_on_key(self):
        assert solution_digest("ctx", (("i", 2, 1),)) != \
            solution_digest("ctx", (("i", 4, 1),))
        assert solution_digest("ctx", (("i", 2, 1),)) == \
            solution_digest("ctx", (("i", 2, 1),))


class TestPersistentCache:
    def test_roundtrip(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("abc", makespan_ns=123.0, feasible=True,
                  spm_bytes=10, transferred_bytes=20)
        fresh = PersistentCache(tmp_path)
        entry = fresh.get("abc")
        assert entry is not None
        assert PersistentCache.makespan_of(entry) == 123.0
        assert entry["f"] is True
        assert entry["spm"] == 10 and entry["xfer"] == 20

    def test_infeasible_roundtrips_to_inf(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("bad", makespan_ns=math.inf, feasible=False,
                  reason="SPM overflow")
        entry = PersistentCache(tmp_path).get("bad")
        assert math.isinf(PersistentCache.makespan_of(entry))
        assert entry["f"] is False
        assert entry["r"] == "SPM overflow"

    def test_miss_counts(self, tmp_path):
        cache = PersistentCache(tmp_path)
        assert cache.get("nope") is None
        assert cache.misses == 1 and cache.hits == 0

    def test_duplicate_put_ignored(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("k", makespan_ns=1.0, feasible=True)
        cache.put("k", makespan_ns=999.0, feasible=False)
        assert PersistentCache.makespan_of(cache.get("k")) == 1.0
        assert len(cache.path.read_text().splitlines()) == 1

    def test_corrupt_line_degrades_to_miss(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("good", makespan_ns=5.0, feasible=True)
        with open(cache.path, "a") as handle:
            handle.write("{torn json\n")
            handle.write(json.dumps({"k": "other", "v": CACHE_VERSION,
                                     "m": 7.0, "f": True}) + "\n")
        fresh = PersistentCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="1 corrupt line"):
            assert fresh.get("good") is not None
        assert fresh.get("other") is not None
        assert len(fresh) == 2
        assert fresh.corrupt_lines == 1

    def test_truncated_trailing_line_skipped(self, tmp_path):
        # A crash mid-append leaves a prefix of the last line; every
        # complete entry before it must survive the reload.
        cache = PersistentCache(tmp_path)
        cache.put("a", makespan_ns=1.0, feasible=True)
        cache.put("b", makespan_ns=2.0, feasible=True)
        text = cache.path.read_text()
        cache.path.write_text(text[:-9])       # tear the final line
        fresh = PersistentCache(tmp_path)
        with pytest.warns(RuntimeWarning):
            assert fresh.get("a") is not None
        assert fresh.get("b") is None
        assert fresh.corrupt_lines == 1

    def test_clean_load_emits_no_warning(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("a", makespan_ns=1.0, feasible=True)
        fresh = PersistentCache(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fresh.get("a") is not None
        assert fresh.corrupt_lines == 0

    def test_append_creates_lockfile(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("a", makespan_ns=1.0, feasible=True)
        if fcntl is not None:
            assert cache.lock_path.exists()

    def test_concurrent_appends_never_tear_lines(self, tmp_path):
        # Two writer processes interleave appends through the lockfile;
        # the merged log must parse line by line with no corruption.
        if fcntl is None:
            pytest.skip("no fcntl on this platform")

        def writer(tag):
            cache = PersistentCache(tmp_path)
            for index in range(50):
                cache.put(f"{tag}-{index}", makespan_ns=float(index),
                          feasible=True, reason="x" * 64)

        procs = [multiprocessing.Process(target=writer, args=(tag,))
                 for tag in ("p", "q")]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
        assert all(proc.exitcode == 0 for proc in procs)
        fresh = PersistentCache(tmp_path)
        assert len(fresh) == 100
        assert fresh.corrupt_lines == 0

    def test_other_version_ignored(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.directory.mkdir(parents=True, exist_ok=True)
        cache.path.write_text(json.dumps(
            {"k": "old", "v": CACHE_VERSION + 1, "m": 1.0, "f": True}) + "\n")
        assert PersistentCache(tmp_path).get("old") is None

    def test_clear(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("a", makespan_ns=1.0, feasible=True)
        cache.put("b", makespan_ns=2.0, feasible=True)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert not cache.path.exists()

    def test_stats(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("a", makespan_ns=1.0, feasible=True)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["bytes"] > 0


class TestCompact:
    def test_superseded_bound_lines_reclaimed(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put_bound("x", 10.0)
        cache.put_bound("y", 20.0)
        cache.put("x", makespan_ns=42.0, feasible=True)  # upgrade appends
        assert len(cache.path.read_text().splitlines()) == 3
        report = cache.compact()
        assert report["lines_before"] == 3
        assert report["lines_after"] == 2
        assert report["lines_reclaimed"] == 1
        assert report["bytes_reclaimed"] > 0
        # The surviving view is unchanged: x is the full result, y is
        # still a bound-only entry.
        assert PersistentCache.makespan_of(cache.get_result("x")) == 42.0
        assert cache.stats()["bound_entries"] == 1
        fresh = PersistentCache(tmp_path)
        assert PersistentCache.makespan_of(fresh.get_result("x")) == 42.0
        assert fresh.stats()["bound_entries"] == 1

    def test_compact_is_idempotent(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put_bound("x", 10.0)
        cache.put("x", makespan_ns=1.0, feasible=True)
        cache.compact()
        again = cache.compact()
        assert again["lines_reclaimed"] == 0
        assert again["bytes_reclaimed"] == 0

    def test_compact_drops_torn_lines(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("good", makespan_ns=5.0, feasible=True)
        with open(cache.path, "a") as handle:
            handle.write("{torn json\n")
        report = cache.compact()
        assert report["lines_before"] == 2
        assert report["lines_after"] == 1
        fresh = PersistentCache(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert fresh.get("good") is not None
        assert fresh.corrupt_lines == 0

    def test_compact_empty_cache(self, tmp_path):
        report = PersistentCache(tmp_path).compact()
        assert report["lines_before"] == 0
        assert report["lines_reclaimed"] == 0

    def test_compact_folds_lines_from_other_processes(self, tmp_path):
        # An entry appended by a second process after this process
        # loaded its index must survive compaction, not be dropped.
        mine = PersistentCache(tmp_path)
        mine.put("a", makespan_ns=1.0, feasible=True)
        assert mine.get("a") is not None          # index loaded
        other = PersistentCache(tmp_path)
        other.put("b", makespan_ns=2.0, feasible=True)
        mine.compact()
        assert mine.get("b") is not None
        assert PersistentCache(tmp_path).get("b") is not None

    def test_reload_sees_foreign_appends(self, tmp_path):
        mine = PersistentCache(tmp_path)
        mine.put("a", makespan_ns=1.0, feasible=True)
        assert mine.get("missing-yet") is None    # index loaded
        other = PersistentCache(tmp_path)
        other.put("late", makespan_ns=3.0, feasible=True)
        assert mine.get("late") is None           # stale index
        mine.reload()
        assert mine.get("late") is not None

    def test_peek_entry_does_not_count_stats(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("a", makespan_ns=1.0, feasible=True)
        assert cache.peek_entry("a") is not None
        assert cache.peek_entry("nope") is None
        assert cache.hits == 0 and cache.misses == 0


class TestFingerprintIndex:
    """The in-memory digest index: parsed once, coherent, O(1) stats."""

    def test_log_parsed_exactly_once(self, tmp_path, monkeypatch):
        seed = PersistentCache(tmp_path)
        for index in range(50):
            seed.put(f"d{index}", makespan_ns=float(index), feasible=True)

        import pathlib
        reads = {"count": 0}
        original = pathlib.Path.read_text

        def counting_read_text(self, *args, **kwargs):
            reads["count"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "read_text", counting_read_text)
        cache = PersistentCache(tmp_path)
        for index in range(50):
            assert cache.get(f"d{index}") is not None
        cache.get("missing")
        cache.put("new", makespan_ns=1.0, feasible=True)
        cache.put_bound("pruned", 2.0)
        cache.stats()
        assert reads["count"] == 1

    def test_bound_upgrade_keeps_index_coherent(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put_bound("x", 10.0)
        cache.put_bound("y", 20.0)
        assert cache.stats()["bound_entries"] == 2
        # Result upgrade of one bound entry: appended, shadows the
        # bound line, and the tally follows without a recount.
        cache.put("x", makespan_ns=42.0, feasible=True)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bound_entries"] == 1
        assert cache.get_result("x")["m"] == 42.0
        # put_bound on an upgraded digest stays a no-op (known digest).
        assert cache.put_bound("x", 5.0) is False
        assert cache.stats()["bound_entries"] == 1
        # A fresh open replays the log and lands on the same tally.
        fresh = PersistentCache(tmp_path)
        assert fresh.stats()["bound_entries"] == 1
        assert fresh.stats()["entries"] == 2
        assert PersistentCache.makespan_of(fresh.get_result("x")) == 42.0

    def test_index_beats_per_lookup_scan(self, tmp_path):
        """Micro-bench: N lookups through the index must cost far less
        than N re-parses of the log (what a per-lookup scan would pay).
        """
        import time

        seed = PersistentCache(tmp_path)
        for index in range(2000):
            seed.put(f"d{index}", makespan_ns=float(index), feasible=True,
                     reason="x" * 32)

        cache = PersistentCache(tmp_path)
        cache.get("d0")                        # pay the one-time load
        started = time.perf_counter()
        for index in range(2000):
            cache.get(f"d{index}")
            cache.stats()                      # O(1), no recount
        indexed_s = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(20):                    # 1% of the naive scans
            fresh = PersistentCache(tmp_path)
            fresh.get("d1999")
        scan20_s = time.perf_counter() - started
        # 2000 indexed lookups + stats vs just 20 full parses: the
        # index must win with a wide margin (timing-noise tolerant).
        assert indexed_s < scan20_s

    def test_len_after_mixed_entries(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put("r", makespan_ns=1.0, feasible=True)
        cache.put_bound("b", 3.0)
        assert len(cache) == 2
        assert len(PersistentCache(tmp_path)) == 2


class TestEvaluatorIntegration:
    def test_persist_and_reload(self, tmp_path, lstm_comp, lstm_model):
        platform = Platform()
        first = MakespanEvaluator(
            lstm_comp, platform, lstm_model,
            cache=PersistentCache(tmp_path))
        result = first.evaluate_params({"b_0": 10}, {"b_0": 2})
        assert first.evaluations == 1 and first.cache_hits == 0

        second = MakespanEvaluator(
            lstm_comp, platform, lstm_model,
            cache=PersistentCache(tmp_path))
        warm = second.evaluate_params({"b_0": 10}, {"b_0": 2})
        assert second.evaluations == 0 and second.cache_hits == 1
        assert warm.from_cache and warm.plan is None
        assert warm.makespan_ns == result.makespan_ns
        assert warm.transferred_bytes == result.transferred_bytes
        assert warm.spm_bytes_needed == result.spm_bytes_needed

    def test_context_isolation(self, tmp_path, lstm_comp, lstm_model):
        """Entries cached on one platform never leak onto another."""
        cached = MakespanEvaluator(
            lstm_comp, Platform(), lstm_model,
            cache=PersistentCache(tmp_path))
        cached.evaluate_params({"b_0": 10}, {"b_0": 2})

        slow = MakespanEvaluator(
            lstm_comp, Platform().with_bus(1e9), lstm_model,
            cache=PersistentCache(tmp_path))
        result = slow.evaluate_params({"b_0": 10}, {"b_0": 2})
        assert slow.cache_hits == 0 and slow.evaluations == 1
        assert not result.from_cache

    def test_attach_plan_restores_plan(self, tmp_path, lstm_comp,
                                       lstm_model):
        platform = Platform()
        first = MakespanEvaluator(
            lstm_comp, platform, lstm_model,
            cache=PersistentCache(tmp_path))
        cold = first.evaluate_params({"b_0": 10}, {"b_0": 2})

        second = MakespanEvaluator(
            lstm_comp, platform, lstm_model,
            cache=PersistentCache(tmp_path))
        warm = second.evaluate_params({"b_0": 10}, {"b_0": 2})
        replanned = second.attach_plan(warm)
        assert replanned.plan is not None
        assert replanned.makespan_ns == cold.makespan_ns
        assert second.evaluations == 0    # re-planning is not an evaluation
