"""Admissibility of the closed-form candidate lower bounds.

The whole branch-and-bound contract rests on one property: for every
candidate ``(R, K)`` point, ``quick_bound`` and ``refine`` never exceed
the makespan the segment planner actually produces, and an infinite
bound (or an ``exact_infeasible`` reason) implies the planner rejects
the candidate too.  These tests check that property point by point over
complete small candidate spaces — no sampling, no tolerance.
"""

import math
from itertools import product

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.bounds import BoundCalculator, chain_lower_bound, flatten_key
from repro.opt.exhaustive import assignment_candidates
from repro.opt.solution import Solution
from repro.opt.threadgroups import generate_nondominated_thread_groups
from repro.schedule.makespan import MakespanEvaluator
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform


def _component(kernel_name, preset, vars_):
    tree = LoopTree.build(make_kernel(kernel_name, preset))
    comp = component_at(tree, vars_)
    return comp, fit_component_model(comp)


@pytest.fixture(scope="module")
def lstm_small():
    return _component("lstm", "SMALL", ["s1_0", "p"])


@pytest.fixture(scope="module")
def rnn_small():
    return _component("rnn", "SMALL", ["s1", "p"])


def _walk(comp, model, platform, cores=8):
    """Yield (solution-or-None, sizes, assignment, quick, refined, truth)."""
    evaluator = MakespanEvaluator(comp, platform, model)
    bounds = BoundCalculator(
        comp, platform, model, geometry=evaluator.geometry,
        modes=evaluator.planner.modes)
    for assignment in generate_nondominated_thread_groups(cores, comp):
        groups, lists = assignment_candidates(comp, assignment)
        for sizes in product(*lists):
            quick = bounds.quick_bound(sizes, assignment)
            refined = quick if math.isinf(quick) else \
                bounds.refine(quick, sizes, assignment)
            truth = evaluator.evaluate_params(
                dict(zip((n.var for n in comp.nodes), sizes)), groups)
            yield bounds, sizes, assignment, quick, refined, truth


class TestAdmissibility:
    @pytest.mark.parametrize("fixture", ["lstm_small", "rnn_small"])
    def test_bounds_never_exceed_true_makespan(self, fixture, request):
        comp, model = request.getfixturevalue(fixture)
        checked = 0
        for _, sizes, assignment, quick, refined, truth in _walk(
                comp, model, Platform()):
            if truth.feasible:
                assert quick <= truth.makespan_ns, (sizes, assignment)
                assert refined <= truth.makespan_ns, (sizes, assignment)
                assert quick <= refined
                checked += 1
        assert checked > 0

    @pytest.mark.parametrize("fixture", ["lstm_small", "rnn_small"])
    def test_infinite_bound_implies_planner_rejects(self, fixture, request):
        comp, model = request.getfixturevalue(fixture)
        for _, sizes, assignment, quick, refined, truth in _walk(
                comp, model, Platform()):
            if math.isinf(refined):
                assert not truth.feasible, (sizes, assignment)

    def test_admissible_under_slow_bus(self, lstm_small):
        # A slow bus turns the search DMA-bound, exercising the
        # event-count term rather than the compute path.
        comp, model = lstm_small
        checked = 0
        for _, sizes, assignment, quick, refined, truth in _walk(
                comp, model, Platform().with_bus(16e9 / 256)):
            if truth.feasible:
                assert refined <= truth.makespan_ns, (sizes, assignment)
                checked += 1
        assert checked > 0


class TestExactInfeasible:
    @pytest.mark.parametrize("fixture", ["lstm_small", "rnn_small"])
    def test_reason_implies_infeasible(self, fixture, request):
        """Every exact_infeasible reason is a true implication — the
        evaluator must agree, decision for decision (the greedy baseline
        relies on this to skip plans without changing its choices)."""
        comp, model = request.getfixturevalue(fixture)
        vars_ = [n.var for n in comp.nodes]
        for bounds, sizes, assignment, quick, refined, truth in _walk(
                comp, model, Platform()):
            reason = bounds.exact_infeasible(
                dict(zip(vars_, sizes)),
                dict(zip(vars_, assignment)))
            if reason is not None:
                assert not truth.feasible, (sizes, assignment, reason)

    def test_invalid_parameters_are_reported(self, lstm_small):
        comp, model = lstm_small
        bounds = BoundCalculator(comp, Platform(), model)
        vars_ = [n.var for n in comp.nodes]
        n0 = comp.nodes[0].N
        too_big = dict(zip(vars_, [n0 + 1] + [1] * (len(vars_) - 1)))
        assert bounds.exact_infeasible(too_big, None) is not None


class TestFlattenKey:
    def test_orders_like_solution_key(self, lstm_small):
        comp, _ = lstm_small
        vars_ = [n.var for n in comp.nodes]
        points = []
        for assignment in generate_nondominated_thread_groups(8, comp):
            groups, lists = assignment_candidates(comp, assignment)
            for sizes in product(*lists):
                try:
                    sol = Solution(comp, dict(zip(vars_, sizes)), groups)
                except ValueError:
                    continue
                flat = tuple(x for k, r in zip(sizes, assignment)
                             for x in (k, r))
                assert flatten_key(sol.key()) == flat
                points.append((sol.key(), flat))
        points.sort()
        flats = [flat for _, flat in points]
        assert flats == sorted(flats)


class TestChainLowerBound:
    def test_floor_below_every_feasible_makespan(self, lstm_small):
        comp, model = lstm_small
        platform = Platform()
        floor = chain_lower_bound(comp, platform, model, platform.cores)
        assert floor > 0.0
        for _, sizes, assignment, quick, refined, truth in _walk(
                comp, model, platform):
            if truth.feasible:
                assert floor <= truth.makespan_ns, (sizes, assignment)
