"""Solution bookkeeping tests (Section 3.4's worked LSTM example)."""

import pytest
from hypothesis import given, strategies as st

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.solution import LevelParams, Solution


@pytest.fixture(scope="module")
def lstm_comp():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    return component_at(tree, ["s1_0", "p"])


@pytest.fixture()
def paper_solution(lstm_comp):
    # Section 3.4: K = (109, 350), R = (3, 1) on NS=650, NP=700.
    return Solution(lstm_comp, {"s1_0": 109, "p": 350},
                    {"s1_0": 3, "p": 1})


class TestSection34Example:
    def test_range_counts(self, paper_solution):
        s1 = paper_solution.level("s1_0")
        p = paper_solution.level("p")
        assert s1.M == 6 and p.M == 2            # ceil(650/109), ceil(700/350)
        assert s1.Z == 2 and p.Z == 2
        assert paper_solution.total_tiles == 12
        assert paper_solution.threads == 3

    def test_thread_group_formula(self, paper_solution):
        # group on s1_0 = threadID % (3*1) / 1 = threadID; on p = 0.
        for core in range(3):
            assert paper_solution.group_ids(core) == (core, 0)

    def test_tiles_per_core(self, paper_solution):
        for core in range(3):
            assert paper_solution.segments_on_core(core) == 4
        tiles = list(paper_solution.core_tiles(1))
        assert tiles == [
            {"s1_0": 2, "p": 0}, {"s1_0": 2, "p": 1},
            {"s1_0": 3, "p": 0}, {"s1_0": 3, "p": 1},
        ]

    def test_remainder_width(self, paper_solution):
        s1 = paper_solution.level("s1_0")
        assert s1.tile_width(0) == 109
        assert s1.tile_width(5) == 650 - 5 * 109   # 105
        widths = paper_solution.tile_widths({"s1_0": 5, "p": 1})
        assert widths == (105, 350)

    def test_describe_mentions_all_levels(self, paper_solution):
        text = paper_solution.describe()
        assert "'s1_0': 109" in text and "'p': 350" in text
        assert "'s1_0': 3" in text


class TestValidation:
    def test_tile_size_bounds(self, lstm_comp):
        with pytest.raises(ValueError):
            Solution(lstm_comp, {"s1_0": 0, "p": 350})
        with pytest.raises(ValueError):
            Solution(lstm_comp, {"s1_0": 651, "p": 350})

    def test_parallelizing_sequential_level_rejected(self, lstm_comp):
        with pytest.raises(ValueError):
            Solution(lstm_comp, {"s1_0": 109, "p": 350}, {"p": 2})

    def test_more_groups_than_ranges_rejected(self, lstm_comp):
        with pytest.raises(ValueError):
            Solution(lstm_comp, {"s1_0": 650, "p": 700}, {"s1_0": 2})

    def test_key_identity(self, lstm_comp):
        a = Solution(lstm_comp, {"s1_0": 109, "p": 350}, {"s1_0": 3})
        b = Solution(lstm_comp, {"s1_0": 109, "p": 350}, {"s1_0": 3})
        c = Solution(lstm_comp, {"s1_0": 130, "p": 350}, {"s1_0": 3})
        assert a.key() == b.key() != c.key()


class TestUnevenPartitioning:
    def test_last_group_gets_fewer_ranges(self, lstm_comp):
        # M = 5 ranges over 4 groups: Z = 2, groups get 2,2,1,0.
        solution = Solution(lstm_comp, {"s1_0": 130, "p": 700},
                            {"s1_0": 4, "p": 1})
        counts = [solution.segments_on_core(c) for c in range(4)]
        assert counts == [2, 2, 1, 0]

    def test_group_tiles_contiguous(self):
        level = LevelParams(var="x", N=24, K=4, R=3, M=6, Z=2)
        assert list(level.group_tiles(0)) == [0, 1]
        assert list(level.group_tiles(2)) == [4, 5]


@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=1, max_value=60))
def test_tile_widths_partition_the_level(n, k):
    if k > n:
        k = n
    import math
    m = math.ceil(n / k)
    level = LevelParams(var="x", N=n, K=k, R=1, M=m, Z=m)
    widths = [level.tile_width(i) for i in range(m)]
    assert sum(widths) == n
    assert all(1 <= w <= k for w in widths)
