"""Regression tests for the optimizer bugfix round.

One test class per fixed defect:

* greedy's binary search assumed feasibility is monotone in K, but the
  segment cap makes tiny K infeasible too — the search concluded "no
  fitting tile" for levels whose feasible region starts above K = 1;
* invalid parameter sets (failing ``Solution`` construction) were never
  memoized nor counted, skewing reported evaluation counts;
* ``CompilationResult.component_map`` silently dropped a component when
  two shared a head iterator;
* ``ExhaustiveOptimizer.optimize`` generated the non-dominated
  thread-group list twice and broke makespan ties by enumeration order.
"""

import math

import pytest

from repro.compiler import CompiledComponent, PremCompiler
from repro.errors import CompilationError
from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt import exhaustive as exhaustive_module
from repro.opt.exhaustive import ExhaustiveOptimizer
from repro.opt.greedy import GreedyOptimizer
from repro.schedule.makespan import MakespanEvaluator
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform


@pytest.fixture(scope="module")
def b0_large():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    comp = component_at(tree, ["b_0"])
    return comp, fit_component_model(comp)


class TestGreedyNonMonotoneFeasibility:
    def test_finds_tile_when_k1_violates_segment_cap(self, b0_large):
        """With N = 650 over 8 cores and a cap of 16 segments per core,
        K = 1 needs ceil(650/8) = 82 segments — infeasible — while a
        larger K is fine.  The old binary search returned None here."""
        comp, model = b0_large
        greedy = GreedyOptimizer(comp, Platform(), model, segment_cap=16)
        groups = greedy._assign_parallelism(0, 8)
        assert not greedy.evaluator.evaluate_params(
            greedy._tile_sizes(0, 1), groups).feasible
        k = greedy._largest_fitting_k(0, groups)
        assert k is not None and k > 1
        assert greedy.evaluator.evaluate_params(
            greedy._tile_sizes(0, k), groups).feasible

    def test_optimize_feasible_under_tight_cap(self, b0_large):
        comp, model = b0_large
        result = GreedyOptimizer(
            comp, Platform(), model, segment_cap=16).optimize(8)
        assert result.feasible

    def test_monotone_path_unchanged(self, b0_large):
        """When fits(1) holds, the binary search still finds the largest
        fitting K (feasibility upper boundary)."""
        comp, model = b0_large
        greedy = GreedyOptimizer(comp, Platform(), model)
        groups = greedy._assign_parallelism(0, 8)
        k = greedy._largest_fitting_k(0, groups)
        assert k is not None
        assert greedy.evaluator.evaluate_params(
            greedy._tile_sizes(0, k), groups).feasible
        if k < comp.nodes[0].N:
            assert not greedy.evaluator.evaluate_params(
                greedy._tile_sizes(0, k + 1), groups).feasible


class TestInvalidEvaluationsCounted:
    def test_invalid_params_count_once_then_memoize(self, b0_large):
        comp, model = b0_large
        n = comp.nodes[0].N
        evaluator = MakespanEvaluator(comp, Platform(), model)

        first = evaluator.evaluate_params({"b_0": n + 1}, {"b_0": 1})
        assert not first.feasible
        assert math.isinf(first.makespan_ns)
        assert first.reason
        assert evaluator.evaluations == 1 and evaluator.memo_hits == 0

        second = evaluator.evaluate_params({"b_0": n + 1}, {"b_0": 1})
        assert second is first
        assert evaluator.evaluations == 1 and evaluator.memo_hits == 1

    def test_distinct_invalid_params_counted_separately(self, b0_large):
        comp, model = b0_large
        n = comp.nodes[0].N
        evaluator = MakespanEvaluator(comp, Platform(), model)
        evaluator.evaluate_params({"b_0": n + 1}, {"b_0": 1})
        evaluator.evaluate_params({"b_0": n + 2}, {"b_0": 1})
        assert evaluator.evaluations == 2

    def test_invalid_thread_groups_counted(self, b0_large):
        comp, model = b0_large
        evaluator = MakespanEvaluator(comp, Platform(), model)
        result = evaluator.evaluate_params(
            {"b_0": 2}, {"b_0": comp.nodes[0].N + 1})
        assert not result.feasible
        assert evaluator.evaluations == 1


class TestComponentMapCollision:
    def test_duplicate_head_iterator_raises(self):
        result = PremCompiler(Platform()).compile(
            make_kernel("lstm", "MINI"))
        assert result.components
        twin = result.components[0]
        result.components.append(CompiledComponent(
            component=twin.component,
            solution=twin.solution,
            makespan_ns=twin.makespan_ns,
            executions=twin.executions,
        ))
        with pytest.raises(CompilationError, match="head"):
            result.component_map()

    def test_distinct_heads_build_full_map(self):
        result = PremCompiler(Platform()).compile(
            make_kernel("lstm", "MINI"))
        mapping = result.component_map()
        assert len(mapping) == len(result.components)


class TestExhaustiveSingleGeneration:
    def test_assignments_generated_exactly_once(self, b0_large,
                                                monkeypatch):
        comp, model = b0_large
        calls = []
        original = exhaustive_module.generate_nondominated_thread_groups

        def counting(cores, component):
            calls.append(cores)
            return original(cores, component)

        monkeypatch.setattr(
            exhaustive_module,
            "generate_nondominated_thread_groups", counting)
        ExhaustiveOptimizer(comp, Platform(), model).optimize(8)
        assert len(calls) == 1

    def test_repeat_runs_identical(self, b0_large):
        comp, model = b0_large
        first = ExhaustiveOptimizer(comp, Platform(), model).optimize(8)
        second = ExhaustiveOptimizer(comp, Platform(), model).optimize(8)
        assert first.best.solution.key() == second.best.solution.key()
        assert first.makespan_ns == second.makespan_ns
        assert first.evaluations == second.evaluations

    def test_evaluations_cover_whole_space(self, b0_large):
        comp, model = b0_large
        optimizer = ExhaustiveOptimizer(comp, Platform(), model)
        result = optimizer.optimize(8)
        assert result.evaluations == \
            exhaustive_module.search_space_size(comp, 8)
