"""Sharded distributed evaluation: partition, claims, reduce parity.

The contract under test: any number of shard workers, in any
interleaving (concurrent processes included), leave the shared cache in
a state whose reduce is the *bit-identical* winner of the serial
`PrunedOptimizer` — same makespan, same solution key — cold or warm,
vectorized or not.  Claim records must hand every chunk to exactly one
worker (stale claims excepted), and crash recovery must re-score a
stale chunk instead of losing it.
"""

import multiprocessing
import time

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.cache import PersistentCache
from repro.opt.engine import EngineMetrics
from repro.opt.pareto import ParetoOptimizer, pareto_front
from repro.opt.pruned import PrunedOptimizer, validate_shard
from repro.opt.robust import RobustOptimizer
from repro.opt.shard import (
    ShardCoordinator,
    ShardIncompleteError,
    ShardLog,
    ShardReducer,
    ShardWorker,
    StaticShardExchange,
    merge_ranks,
    space_statuses,
    static_space_id,
)
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker processes require the fork start method")


def _component(kernel_name, preset, vars_):
    tree = LoopTree.build(make_kernel(kernel_name, preset))
    comp = component_at(tree, vars_)
    return comp, fit_component_model(comp)


@pytest.fixture(scope="module")
def rnn_small():
    return _component("rnn", "SMALL", ["s1", "p"])


@pytest.fixture(scope="module")
def lstm_small():
    return _component("lstm", "SMALL", ["s1_0", "p"])


def _coordinator(data, tmp_path, **kwargs):
    comp, model = data
    return ShardCoordinator(
        comp, Platform(), model, PersistentCache(tmp_path), **kwargs)


def _winner(result):
    if result.best is None or not result.best.feasible:
        return None
    return result.best.makespan_ns, result.best.solution.key()


def _serial_winner(data, cache=None, **kwargs):
    comp, model = data
    return PrunedOptimizer(
        comp, Platform(), model, cache=cache, **kwargs).optimize()


class TestPartition:
    def test_identical_across_coordinators(self, rnn_small, tmp_path):
        a = _coordinator(rnn_small, tmp_path, chunk_size=16)
        b = _coordinator(rnn_small, tmp_path, chunk_size=16)
        assert a.space_id == b.space_id
        assert [c.chunk_id for c in a.chunks] == \
            [c.chunk_id for c in b.chunks]

    def test_chunks_cover_every_candidate_once(self, rnn_small, tmp_path):
        coord = _coordinator(rnn_small, tmp_path, chunk_size=7)
        positions = []
        for chunk in coord.chunks:
            positions.extend(range(chunk.start, chunk.start + chunk.count))
        assert positions == list(range(len(coord.candidates)))
        assert len({c.chunk_id for c in coord.chunks}) == len(coord.chunks)

    def test_chunk_size_changes_space_id(self, rnn_small, tmp_path):
        a = _coordinator(rnn_small, tmp_path, chunk_size=16)
        b = _coordinator(rnn_small, tmp_path, chunk_size=8)
        assert a.space_id != b.space_id

    def test_component_changes_space_id(self, rnn_small, lstm_small,
                                        tmp_path):
        a = _coordinator(rnn_small, tmp_path)
        b = _coordinator(lstm_small, tmp_path)
        assert a.space_id != b.space_id

    def test_bad_chunk_size_rejected(self, rnn_small, tmp_path):
        with pytest.raises(ValueError):
            _coordinator(rnn_small, tmp_path, chunk_size=0)


class TestClaims:
    def test_each_chunk_claimed_exactly_once(self, rnn_small, tmp_path):
        coord = _coordinator(rnn_small, tmp_path, chunk_size=8)
        seen = []
        while True:
            chunk, _contention = coord.claim("w1")
            if chunk is None:
                break
            seen.append(chunk.chunk_id)
        assert sorted(seen) == sorted(c.chunk_id for c in coord.chunks)
        # Nothing was completed, so a second pass finds all in flight.
        chunk, contention = coord.claim("w2")
        assert chunk is None
        assert contention == len(coord.chunks)

    def test_two_claimers_alternate_disjointly(self, rnn_small, tmp_path):
        a = _coordinator(rnn_small, tmp_path, chunk_size=8)
        b = _coordinator(rnn_small, tmp_path, chunk_size=8)
        mine, theirs = [], []
        while True:
            one, _ = a.claim("w1")
            two, _ = b.claim("w2")
            if one is None and two is None:
                break
            if one is not None:
                mine.append(one.chunk_id)
            if two is not None:
                theirs.append(two.chunk_id)
        assert not set(mine) & set(theirs)
        assert sorted(mine + theirs) == sorted(
            c.chunk_id for c in a.chunks)

    def test_stale_claim_is_reclaimed(self, rnn_small, tmp_path):
        coord = _coordinator(rnn_small, tmp_path, chunk_size=8,
                             stale_s=0.0)
        first, _ = coord.claim("crashed")
        time.sleep(0.01)
        second, _ = coord.claim("rescuer")
        assert second is not None
        assert second.chunk_id == first.chunk_id

    def test_done_chunk_never_reissued(self, rnn_small, tmp_path):
        coord = _coordinator(rnn_small, tmp_path, chunk_size=8,
                             stale_s=0.0)
        chunk, _ = coord.claim("w1")
        coord.complete(chunk, "w1", scored=chunk.count, pruned=0,
                       elapsed_s=0.0)
        others = set()
        while True:
            nxt, _ = coord.claim("w1")
            if nxt is None:
                break
            others.add(nxt.chunk_id)
            coord.complete(nxt, "w1", scored=nxt.count, pruned=0,
                           elapsed_s=0.0)
        assert chunk.chunk_id not in others

    def test_status_counts_progress(self, rnn_small, tmp_path):
        coord = _coordinator(rnn_small, tmp_path, chunk_size=8)
        coord.announce("w1")
        chunk, _ = coord.claim("w1")
        status = coord.status()
        assert status.chunks == len(coord.chunks)
        assert status.candidates == len(coord.candidates)
        assert status.claimed == 1 and status.done == 0
        assert not status.complete
        coord.complete(chunk, "w1", scored=chunk.count, pruned=0,
                       elapsed_s=0.0)
        status = coord.status()
        assert status.done == 1 and status.claimed == 0
        assert "w1" in status.workers


def _run_worker(data, tmp_path, worker_id, barrier=None, **kwargs):
    coord = _coordinator(data, tmp_path, **kwargs)
    if barrier is not None:
        barrier.wait()
    return ShardWorker(coord, worker_id=worker_id).run()


class TestWorkerReduceParity:
    @pytest.mark.parametrize("vectorize", [True, False])
    def test_two_workers_match_serial_winner(self, rnn_small, tmp_path,
                                             vectorize):
        serial = _serial_winner(rnn_small)
        for worker_id in ("w1", "w2"):
            _run_worker(rnn_small, tmp_path, worker_id,
                        chunk_size=8, vectorize=vectorize)
        coord = _coordinator(rnn_small, tmp_path, chunk_size=8,
                             vectorize=vectorize)
        merged = ShardReducer(coord).reduce()
        assert merged.feasible
        # Tail-pruned candidates never get an entry (serial does the
        # same); the taxonomy still has to account for every candidate.
        assert merged.results + merged.bounds + merged.missing == \
            len(coord.candidates)
        assert (merged.best.makespan_ns, merged.best.solution.key()) == \
            _winner(serial)
        assert merged.rank[0] == serial.best.makespan_ns

    def test_reduce_warm_is_identical_and_planless(self, rnn_small,
                                                   tmp_path):
        serial = _serial_winner(rnn_small)
        _run_worker(rnn_small, tmp_path, "w1", chunk_size=8)
        first = ShardReducer(
            _coordinator(rnn_small, tmp_path, chunk_size=8)).reduce()
        # Warm pass: a brand-new coordinator over the same directory
        # re-reduces without any worker running again.
        second = ShardReducer(
            _coordinator(rnn_small, tmp_path, chunk_size=8)).reduce()
        for merged in (first, second):
            assert (merged.best.makespan_ns,
                    merged.best.solution.key()) == _winner(serial)
            assert merged.best.from_cache and merged.best.plan is None

    def test_single_worker_drains_everything(self, lstm_small, tmp_path):
        serial = _serial_winner(lstm_small)
        out = _run_worker(lstm_small, tmp_path, "solo", chunk_size=16)
        coord = _coordinator(lstm_small, tmp_path, chunk_size=16)
        assert out.chunks_done == len(coord.chunks)
        assert out.candidates == len(coord.candidates)
        assert out.scored + out.pruned == out.candidates
        merged = ShardReducer(coord).reduce()
        assert (merged.best.makespan_ns, merged.best.solution.key()) == \
            _winner(serial)

    def test_worker_metrics_flow_through_engine(self, rnn_small,
                                                tmp_path):
        out = _run_worker(rnn_small, tmp_path, "w1", chunk_size=8)
        assert out.metrics is not None
        assert out.metrics.pruned == out.pruned
        assert out.metrics.bound_hits == out.bound_hits

    def test_incomplete_space_refuses_reduce(self, rnn_small, tmp_path):
        coord = _coordinator(rnn_small, tmp_path, chunk_size=8)
        coord.announce("w1")
        chunk, _ = coord.claim("w1")
        coord.complete(chunk, "w1", scored=chunk.count, pruned=0,
                       elapsed_s=0.0)
        with pytest.raises(ShardIncompleteError):
            ShardReducer(coord).reduce()
        partial = ShardReducer(coord).reduce(require_complete=False)
        assert partial.missing > 0

    def test_crashed_worker_chunk_is_rescored(self, rnn_small, tmp_path):
        serial = _serial_winner(rnn_small)
        crashed = _coordinator(rnn_small, tmp_path, chunk_size=8,
                               stale_s=0.0)
        crashed.announce("crashed")
        crashed.claim("crashed")       # claim, then "die" before scoring
        time.sleep(0.01)
        _run_worker(rnn_small, tmp_path, "rescuer", chunk_size=8,
                    stale_s=0.0)
        merged = ShardReducer(
            _coordinator(rnn_small, tmp_path, chunk_size=8)).reduce()
        assert (merged.best.makespan_ns, merged.best.solution.key()) == \
            _winner(serial)


def _race_worker(kernel_name, preset, vars_, cache_dir, worker_id,
                 started, release):
    comp, model = _component(kernel_name, preset, vars_)
    coord = ShardCoordinator(
        comp, Platform(), model, PersistentCache(cache_dir), chunk_size=4)
    started.release()
    release.acquire()                  # both processes start together
    ShardWorker(coord, worker_id=worker_id).run()


@needs_fork
class TestConcurrentClaimRace:
    def test_two_processes_share_without_overlap(self, rnn_small,
                                                 tmp_path):
        """Two live claimer processes racing on the same log: every
        chunk is scored by exactly one of them, none is scored twice,
        none is dropped, and the reduce still matches the serial
        winner."""
        started = multiprocessing.Semaphore(0)
        release = multiprocessing.Semaphore(0)
        procs = [
            multiprocessing.Process(
                target=_race_worker,
                args=("rnn", "SMALL", ["s1", "p"], str(tmp_path),
                      worker_id, started, release))
            for worker_id in ("p", "q")
        ]
        for proc in procs:
            proc.start()
        for _ in procs:                # wait for both coordinators
            started.acquire()
        for _ in procs:                # then release them at once
            release.release()
        for proc in procs:
            proc.join(timeout=120)
        assert all(proc.exitcode == 0 for proc in procs)

        coord = _coordinator(rnn_small, tmp_path, chunk_size=4)
        records = coord.log.records(coord.space_id)
        done = [r for r in records if r.get("t") == "done"]
        # Exactly one done record per chunk: nothing scored twice,
        # nothing dropped.
        assert sorted(r["c"] for r in done) == \
            sorted(c.chunk_id for c in coord.chunks)
        claimants = {r["c"]: r["w"] for r in records
                     if r.get("t") == "claim"}
        assert all(done_r["w"] == claimants[done_r["c"]]
                   for done_r in done)
        merged = ShardReducer(coord).reduce()
        serial = _serial_winner(rnn_small)
        assert (merged.best.makespan_ns, merged.best.solution.key()) == \
            _winner(serial)


class TestStaticSharding:
    """The ``shard_of`` slice knob on the optimizers themselves."""

    @pytest.mark.parametrize("count", [2, 3])
    def test_min_over_shards_is_serial_winner(self, rnn_small, count):
        serial = _serial_winner(rnn_small)
        best = None
        for index in range(count):
            result = _serial_winner(rnn_small, shard_of=(index, count))
            best = merge_ranks(best, _winner(result) and (
                result.best.makespan_ns, result.best.solution.key()))
        assert best == _winner(serial)

    def test_seeded_incumbent_never_changes_the_winner(self, rnn_small):
        serial = _serial_winner(rnn_small)
        rank = (serial.best.makespan_ns,
                tuple(x for _v, k, r in serial.best.solution.key()
                      for x in (k, r)))
        for index in range(2):
            seeded = _serial_winner(
                rnn_small, shard_of=(index, 2), incumbent=rank)
            got = _winner(seeded)
            # A seeded shard either rediscovers a rank no worse than the
            # incumbent or proves its slice holds nothing better.
            assert got is None or got[0] <= serial.best.makespan_ns

    def test_pareto_shard_fronts_union_to_full_front(self, rnn_small):
        comp, model = rnn_small
        full = ParetoOptimizer(comp, Platform(), model).optimize()
        parts = []
        for index in range(2):
            sharded = ParetoOptimizer(
                comp, Platform(), model,
                shard_of=(index, 2)).optimize()
            parts.extend(sharded.front)
        union = pareto_front(
            sorted(parts, key=lambda p: (p.objectives, p.flat)))
        assert {(p.objectives, p.flat) for p in union} == \
            {(p.objectives, p.flat) for p in full.front}

    def test_robust_shards_cover_the_nominal_winner(self, rnn_small):
        comp, model = rnn_small
        full = RobustOptimizer(
            comp, Platform(), model, scenarios=2, seed=0).optimize()
        ranks = []
        for index in range(2):
            sharded = RobustOptimizer(
                comp, Platform(), model, scenarios=2, seed=0,
                shard_of=(index, 2)).optimize()
            got = _winner(sharded)
            if got is not None:
                ranks.append(got)
        # The full search's risk winner lives in exactly one shard's
        # slice and is risk-minimal there, so it must be that shard's
        # local winner.
        assert _winner(full) in ranks

    def test_validate_shard_rejects_bad_tuples(self):
        assert validate_shard(None) is None
        assert validate_shard((0, 1)) == (0, 1)
        assert validate_shard((2, 3)) == (2, 3)
        for bad in ((3, 3), (-1, 2), (0, 0), (0,), "1/2"):
            with pytest.raises(ValueError):
                validate_shard(bad)

    def test_static_exchange_seeds_siblings(self, rnn_small, tmp_path):
        comp, _model = rnn_small
        cache = PersistentCache(tmp_path)
        serial = _serial_winner(rnn_small, cache=cache)
        flat = tuple(x for _v, k, r in serial.best.solution.key()
                     for x in (k, r))
        first = StaticShardExchange(
            cache.directory, "ctx", (0, 2))
        assert first.seed() is None
        first.publish(comp, serial)
        second = StaticShardExchange(cache.directory, "ctx", (1, 2))
        assert second.seed() == (serial.best.makespan_ns, flat)
        # A different shard count is a different space: no cross-talk.
        assert StaticShardExchange(
            cache.directory, "ctx", (0, 3)).seed() is None
        statuses = space_statuses(ShardLog(cache.directory))
        assert static_space_id("ctx", 2) in statuses


class TestEngineMetricsMerge:
    def test_merge_sums_counters_and_maxes_jobs(self):
        a = EngineMetrics(jobs=2, evaluations=3, memo_hits=1,
                          cache_hits=2, pruned=4, bound_hits=1,
                          batched=5, batch_fallbacks=1, elapsed_s=0.5)
        b = EngineMetrics(jobs=4, evaluations=7, memo_hits=2,
                          cache_hits=1, pruned=6, bound_hits=2,
                          batched=3, batch_fallbacks=2, elapsed_s=0.25)
        merged = a.merge(b)
        assert merged.jobs == 4
        assert merged.evaluations == 10
        assert merged.memo_hits == 3 and merged.cache_hits == 3
        assert merged.pruned == 10 and merged.bound_hits == 3
        assert merged.batched == 8 and merged.batch_fallbacks == 3
        assert merged.elapsed_s == pytest.approx(0.75)

    def test_sum_builtin_merges_a_list(self):
        parts = [EngineMetrics(jobs=1, evaluations=2),
                 EngineMetrics(jobs=2, evaluations=3),
                 EngineMetrics(jobs=1, evaluations=5)]
        merged = sum(parts)
        assert merged.evaluations == 10 and merged.jobs == 2

    def test_add_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            EngineMetrics(jobs=1) + 3
