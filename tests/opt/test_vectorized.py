"""BatchEvaluator exactness, routing and integration tests.

The contract under test (DESIGN.md §11): ``evaluate_batch`` returns
*bit-identical* results — makespan bits, feasibility, reason strings,
byte totals, cache entries, counter movements — to a serial
``[evaluator.evaluate(s) for s in solutions]`` loop, on any component,
cold or warm, and routes every candidate the vector model cannot score
exactly through the event-driven simulator, never silently.
"""

import math
import multiprocessing
import os
import struct
import tempfile
from itertools import product
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.builder import for_, kernel_, stmt_
from repro.loopir.component import component_at
from repro.opt.bounds import BoundCalculator
from repro.opt.cache import PersistentCache
from repro.opt.exhaustive import (
    ExhaustiveOptimizer,
    assignment_candidates,
)
from repro.opt.pruned import PrunedOptimizer
from repro.opt.robust import RobustOptimizer
from repro.opt.solution import Solution
from repro.opt.threadgroups import generate_nondominated_thread_groups
from repro.opt.vectorized import BatchEvaluator
from repro.poly.access import Array
from repro.schedule.makespan import MakespanEvaluator
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker pool requires the fork start method")


def eight_cpus():
    return mock.patch.object(os, "cpu_count", lambda: 8)


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


def _component(kernel_name, preset, vars_):
    tree = LoopTree.build(make_kernel(kernel_name, preset))
    comp = component_at(tree, vars_)
    return comp, fit_component_model(comp)


@pytest.fixture(scope="module")
def lstm_small():
    return _component("lstm", "SMALL", ["s1_0", "p"])


@pytest.fixture(scope="module")
def rnn_small():
    return _component("rnn", "SMALL", ["s1", "p"])


def _all_solutions(comp, cores=8):
    """Every candidate point of the Algorithm-1 space, walk order."""
    solutions = []
    vars_ = [node.var for node in comp.nodes]
    for assignment in generate_nondominated_thread_groups(cores, comp):
        groups, candidate_lists = assignment_candidates(comp, assignment)
        for sizes in product(*candidate_lists):
            try:
                solutions.append(
                    Solution(comp, dict(zip(vars_, sizes)), groups))
            except ValueError:
                continue       # r > ceil(N/k): not a constructible point
    return solutions


def _assert_bitwise(serial, batched):
    """One result pair must match bit for bit, not approximately."""
    assert _bits(batched.makespan_ns) == _bits(serial.makespan_ns)
    assert batched.feasible == serial.feasible
    assert batched.reason == serial.reason
    assert batched.spm_bytes_needed == serial.spm_bytes_needed
    assert batched.transferred_bytes == serial.transferred_bytes
    assert batched.solution.key() == serial.solution.key()


# -- random small components ----------------------------------------------


@st.composite
def random_kernels(draw):
    """Tiny synthetic kernels: 1–2 loop levels, elementwise or reduction
    accesses, so parallelizability, SPM pressure and remainder tiles all
    vary across examples."""
    depth = draw(st.integers(1, 2))
    ns = [draw(st.integers(2, 9)) for _ in range(depth)]
    reduction = depth == 2 and draw(st.booleans())
    vars_ = [f"v{i}" for i in range(depth)]
    a = Array("A", tuple(ns))
    if reduction:
        out = Array("B", (ns[0],))
        arrays = {"A": a, "B": out}
        stmt = stmt_("S0", arrays,
                     reads={"A": tuple(vars_), "B": (vars_[0],)},
                     writes={"B": (vars_[0],)})
    else:
        out = Array("B", tuple(ns))
        arrays = {"A": a, "B": out}
        stmt = stmt_("S0", arrays,
                     reads={"A": tuple(vars_)},
                     writes={"B": tuple(vars_)})
    loop = stmt
    for var, n in zip(reversed(vars_), reversed(ns)):
        loop = for_(var, n, loop)
    return kernel_("rand", list(arrays.values()), [loop]), vars_


class TestBitExactness:
    @settings(max_examples=10, deadline=None)
    @given(data=random_kernels(),
           spm_kib=st.sampled_from([1, 4, 128]),
           bus_div=st.sampled_from([1, 64]))
    def test_random_components_cold_and_warm(self, data, spm_kib, bus_div):
        kernel, vars_ = data
        tree = LoopTree.build(kernel)
        comp = component_at(tree, vars_)
        model = fit_component_model(comp)
        platform = Platform(spm_bytes=spm_kib * 1024).with_bus(
            16e9 / bus_div)
        with eight_cpus():
            solutions = _all_solutions(comp)

        serial_ev = MakespanEvaluator(comp, platform, model)
        serial = [serial_ev.evaluate(s) for s in solutions]

        batch_ev = MakespanEvaluator(comp, platform, model)
        batch = BatchEvaluator(batch_ev)
        cold = batch.evaluate_batch(solutions)
        for a, b in zip(serial, cold):
            _assert_bitwise(a, b)
        # Counter movements mirror the serial loop exactly.
        assert batch_ev.evaluations == serial_ev.evaluations
        assert batch.scored + batch.fallbacks == len(solutions)

        # Warm pass on the same evaluator: pure memo hits, zero fresh
        # evaluations, same bits, still reported as exact.
        before = batch_ev.evaluations
        warm = batch.evaluate_batch(solutions)
        assert batch_ev.evaluations == before
        assert all(batch.exactness_mask)
        for a, b in zip(serial, warm):
            _assert_bitwise(a, b)

    @settings(max_examples=6, deadline=None)
    @given(data=random_kernels())
    def test_persistent_cache_warm_run(self, data):
        kernel, vars_ = data
        tree = LoopTree.build(kernel)
        comp = component_at(tree, vars_)
        model = fit_component_model(comp)
        platform = Platform(spm_bytes=4096)
        with eight_cpus():
            solutions = _all_solutions(comp)
        with tempfile.TemporaryDirectory() as directory:
            cold_ev = MakespanEvaluator(
                comp, platform, model, cache=PersistentCache(directory))
            cold = BatchEvaluator(cold_ev).evaluate_batch(solutions)
            assert cold_ev.evaluations > 0

            warm_ev = MakespanEvaluator(
                comp, platform, model, cache=PersistentCache(directory))
            warm_batch = BatchEvaluator(warm_ev)
            warm = warm_batch.evaluate_batch(solutions)
            # Every candidate is a cache hit: no fresh evaluations, no
            # tensor program, and the hits count as exact decisions.
            assert warm_ev.evaluations == 0
            assert warm_ev.cache_hits > 0
            assert warm_batch.batches == 0
            assert all(warm_batch.exactness_mask)
        for a, b in zip(cold, warm):
            _assert_bitwise(a, b)

    def test_corpus_component_bitwise(self, lstm_small):
        comp, model = lstm_small
        platform = Platform()
        with eight_cpus():
            solutions = _all_solutions(comp)
        serial_ev = MakespanEvaluator(comp, platform, model)
        serial = [serial_ev.evaluate(s) for s in solutions]
        batch_ev = MakespanEvaluator(comp, platform, model)
        batch = BatchEvaluator(batch_ev)
        for a, b in zip(serial, batch.evaluate_batch(solutions)):
            _assert_bitwise(a, b)
        assert batch.fallbacks == 0
        assert batch.batches >= 1

    def test_in_batch_duplicates_hit_like_serial(self, rnn_small):
        comp, model = rnn_small
        with eight_cpus():
            solutions = _all_solutions(comp)[:8]
        doubled = solutions + solutions
        ev = MakespanEvaluator(comp, Platform(), model)
        batch = BatchEvaluator(ev)
        results = batch.evaluate_batch(doubled)
        assert ev.evaluations == len(solutions)
        for a, b in zip(results[:len(solutions)], results[len(solutions):]):
            _assert_bitwise(a, b)


class TestFallbackRouting:
    def test_tiny_cell_budget_routes_to_simulator(self, rnn_small):
        """Candidates over the cell budget must take the event-driven
        path — flagged in ``exactness_mask``, counted, and still
        bit-identical to the serial loop."""
        comp, model = rnn_small
        platform = Platform()
        with eight_cpus():
            solutions = _all_solutions(comp)
        serial_ev = MakespanEvaluator(comp, platform, model)
        serial = [serial_ev.evaluate(s) for s in solutions]

        batch_ev = MakespanEvaluator(comp, platform, model)
        # threads * (segments + 2) >= 3 always, so a 2-cell budget
        # forces every planner-feasible candidate through the fallback.
        batch = BatchEvaluator(batch_ev, max_cells=2)
        results = batch.evaluate_batch(solutions)
        assert batch.fallbacks > 0
        assert batch.scored == batch.infeasible
        for a, b, is_exact in zip(serial, results, batch.exactness_mask):
            _assert_bitwise(a, b)
            if a.feasible:
                assert not is_exact      # simulator decided it
        # The mask aligns with the fallback counter, and preflight-exact
        # infeasibles are *not* fallbacks.
        assert batch.fallbacks == sum(
            1 for flag in batch.exactness_mask if not flag)

    def test_mixed_budget_routes_partially(self, rnn_small):
        comp, model = rnn_small
        with eight_cpus():
            solutions = _all_solutions(comp)
        ev = MakespanEvaluator(comp, Platform(), model)
        segs = [int(BatchEvaluator(ev)._batch_segments([s])[0])
                for s in solutions]
        cells = [s.threads * (g + 2) for s, g in zip(solutions, segs)]
        cutoff = sorted(cells)[len(cells) // 2]
        batch = BatchEvaluator(
            MakespanEvaluator(comp, Platform(), model), max_cells=cutoff)
        batch.evaluate_batch(solutions)
        assert batch.fallbacks > 0 and batch.scored > 0
        assert not all(batch.exactness_mask)
        assert any(batch.exactness_mask)


class TestQuickBoundArray:
    @pytest.mark.parametrize("fixture", ["lstm_small", "rnn_small"])
    def test_bitwise_parity_with_scalar(self, fixture, request):
        comp, model = request.getfixturevalue(fixture)
        platform = Platform()
        bounds = BoundCalculator(comp, platform, model, 8192)
        with eight_cpus():
            assignments = generate_nondominated_thread_groups(8, comp)
        for assignment in assignments:
            _groups, candidate_lists = assignment_candidates(
                comp, assignment)
            arr = bounds.quick_bound_array(candidate_lists, assignment)
            points = list(product(*candidate_lists))
            assert len(arr) == len(points)
            for value, sizes in zip(arr, points):
                scalar = bounds.quick_bound(sizes, assignment)
                assert _bits(float(value)) == _bits(scalar), \
                    f"{sizes} @ {assignment}: {value!r} != {scalar!r}"

    @settings(max_examples=8, deadline=None)
    @given(data=random_kernels(), spm_kib=st.sampled_from([1, 128]))
    def test_bitwise_parity_random(self, data, spm_kib):
        kernel, vars_ = data
        tree = LoopTree.build(kernel)
        comp = component_at(tree, vars_)
        model = fit_component_model(comp)
        bounds = BoundCalculator(
            comp, Platform(spm_bytes=spm_kib * 1024), model, 8192)
        with eight_cpus():
            assignments = generate_nondominated_thread_groups(8, comp)
        for assignment in assignments:
            _groups, candidate_lists = assignment_candidates(
                comp, assignment)
            arr = bounds.quick_bound_array(candidate_lists, assignment)
            for value, sizes in zip(arr, product(*candidate_lists)):
                assert _bits(float(value)) == \
                    _bits(bounds.quick_bound(sizes, assignment))


class TestOptimizerOnOffParity:
    """Winners with vectorization on vs off, bit for bit."""

    def _winner(self, result):
        if result.best is None or not result.best.feasible:
            return None
        return (_bits(result.best.makespan_ns),
                result.best.solution.key())

    @pytest.mark.parametrize("fixture", ["lstm_small", "rnn_small"])
    def test_pruned_on_off(self, fixture, request):
        comp, model = request.getfixturevalue(fixture)
        with eight_cpus():
            on = PrunedOptimizer(
                comp, Platform(), model, vectorize=True).optimize()
            off = PrunedOptimizer(
                comp, Platform(), model, vectorize=False).optimize()
        assert self._winner(on) == self._winner(off)
        assert on.batched > 0 and on.batch_fallbacks == 0
        assert off.batched == 0

    @pytest.mark.parametrize("fixture", ["lstm_small", "rnn_small"])
    def test_robust_on_off(self, fixture, request):
        comp, model = request.getfixturevalue(fixture)
        with eight_cpus():
            on = RobustOptimizer(
                comp, Platform(), model, scenarios=3, seed=0,
                vectorize=True).optimize(8)
            off = RobustOptimizer(
                comp, Platform(), model, scenarios=3, seed=0,
                vectorize=False).optimize(8)
        assert self._winner(on) == self._winner(off)
        assert _bits(on.robust.risk_ns) == _bits(off.robust.risk_ns)
        assert on.best.solution.key() == off.best.solution.key()
        assert tuple(map(_bits, on.robust.scenario_ns)) == \
            tuple(map(_bits, off.robust.scenario_ns))
        assert on.batched > 0

    @needs_fork
    def test_exhaustive_engine_on_off_jobs(self, rnn_small):
        comp, model = rnn_small
        with eight_cpus():
            off = ExhaustiveOptimizer(
                comp, Platform(), model, max_points=10**9).optimize()
            on1 = ExhaustiveOptimizer(
                comp, Platform(), model, max_points=10**9,
                vectorize=True).optimize()
            on2 = ExhaustiveOptimizer(
                comp, Platform(), model, max_points=10**9,
                vectorize=True, jobs=2).optimize()
        assert self._winner(off) == self._winner(on1) == self._winner(on2)
        assert off.evaluations == on1.evaluations == on2.evaluations
        assert on1.batched > 0
        assert on2.batched > 0
        assert off.batched == 0


class TestAdoption:
    def test_batch_results_enter_memo_and_cache(self, rnn_small):
        comp, model = rnn_small
        with eight_cpus():
            solutions = _all_solutions(comp)[:6]
        with tempfile.TemporaryDirectory() as directory:
            ev = MakespanEvaluator(
                comp, Platform(), model, cache=PersistentCache(directory))
            batch = BatchEvaluator(ev)
            results = batch.evaluate_batch(solutions)
            # Scored candidates are adopted as real evaluations: peek
            # now hits the memo and the persistent store has them.
            for solution, result in zip(solutions, results):
                hit = ev.peek(solution)
                assert hit is not None
                _assert_bitwise(result, hit)
            entries = len(PersistentCache(directory))
            assert entries == len({s.key() for s in solutions})
