"""Winner parity of the bound-driven search.

The contract under test: `PrunedOptimizer` returns the *bit-identical*
winner — same makespan, same solution key, same feasibility — as the
unpruned `ExhaustiveOptimizer`, on any component, serial or parallel,
cold or against a warm persistent cache.  The evaluation count is
exactly what pruning reduces, so it is the one field deliberately
outside the contract.
"""

import math
import multiprocessing
import os
import tempfile
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.builder import for_, kernel_, stmt_
from repro.loopir.component import component_at
from repro.opt import bounds as bounds_mod
from repro.opt import tree as tree_mod
from repro.opt.cache import PersistentCache
from repro.opt.exhaustive import ExhaustiveOptimizer, SearchSpaceTooLarge
from repro.opt.greedy import GreedyOptimizer
from repro.opt.pruned import PrunedOptimizer
from repro.opt.tree import TreeOptimizer
from repro.poly.access import Array
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker pool requires the fork start method")


def eight_cpus():
    return mock.patch.object(os, "cpu_count", lambda: 8)


def _component(kernel_name, preset, vars_):
    tree = LoopTree.build(make_kernel(kernel_name, preset))
    comp = component_at(tree, vars_)
    return comp, fit_component_model(comp)


@pytest.fixture(scope="module")
def lstm_small():
    return _component("lstm", "SMALL", ["s1_0", "p"])


@pytest.fixture(scope="module")
def rnn_small():
    return _component("rnn", "SMALL", ["s1", "p"])


def _winner(result):
    if result.best is None or not result.best.feasible:
        return None
    return result.best.makespan_ns, result.best.solution.key()


def _assert_parity(exhaustive, pruned):
    assert _winner(exhaustive) == _winner(pruned)
    assert exhaustive.feasible == pruned.feasible
    assert exhaustive.component is pruned.component
    assert exhaustive.assignments_tried == pruned.assignments_tried
    # Evaluation counts and the cache-sourced byte hints are deliberately
    # outside the contract: fewer evaluations is the whole point, and the
    # hints are only populated on persistent-cache hits.


# -- random small components ----------------------------------------------


@st.composite
def random_kernels(draw):
    """Tiny synthetic kernels: 1–2 loop levels, elementwise or reduction
    accesses, so parallelizability, SPM pressure and remainder tiles all
    vary across examples."""
    depth = draw(st.integers(1, 2))
    ns = [draw(st.integers(2, 9)) for _ in range(depth)]
    reduction = depth == 2 and draw(st.booleans())
    vars_ = [f"v{i}" for i in range(depth)]
    a = Array("A", tuple(ns))
    if reduction:
        out = Array("B", (ns[0],))
        arrays = {"A": a, "B": out}
        stmt = stmt_("S0", arrays,
                     reads={"A": tuple(vars_), "B": (vars_[0],)},
                     writes={"B": (vars_[0],)})
    else:
        out = Array("B", tuple(ns))
        arrays = {"A": a, "B": out}
        stmt = stmt_("S0", arrays,
                     reads={"A": tuple(vars_)},
                     writes={"B": tuple(vars_)})
    loop = stmt
    for var, n in zip(reversed(vars_), reversed(ns)):
        loop = for_(var, n, loop)
    return kernel_("rand", list(arrays.values()), [loop]), vars_


class TestWinnerParity:
    @settings(max_examples=10, deadline=None)
    @given(data=random_kernels(),
           spm_kib=st.sampled_from([1, 4, 128]),
           bus_div=st.sampled_from([1, 64]))
    def test_random_components_cold_and_warm(self, data, spm_kib, bus_div):
        kernel, vars_ = data
        tree = LoopTree.build(kernel)
        comp = component_at(tree, vars_)
        model = fit_component_model(comp)
        platform = Platform(spm_bytes=spm_kib * 1024).with_bus(
            16e9 / bus_div)
        with eight_cpus():
            exhaustive = ExhaustiveOptimizer(
                comp, platform, model, max_points=10**9).optimize()
            cold = PrunedOptimizer(comp, platform, model).optimize()
            _assert_parity(exhaustive, cold)
            with tempfile.TemporaryDirectory() as directory:
                cache = PersistentCache(directory)
                first = PrunedOptimizer(
                    comp, platform, model, cache=cache).optimize()
                warm = PrunedOptimizer(
                    comp, platform, model,
                    cache=PersistentCache(directory)).optimize()
            _assert_parity(exhaustive, first)
            _assert_parity(exhaustive, warm)

    @pytest.mark.parametrize("fixture", ["lstm_small", "rnn_small"])
    def test_corpus_components(self, fixture, request):
        comp, model = request.getfixturevalue(fixture)
        platform = Platform()
        with eight_cpus():
            exhaustive = ExhaustiveOptimizer(
                comp, platform, model, max_points=10**9).optimize()
            pruned = PrunedOptimizer(comp, platform, model).optimize()
        _assert_parity(exhaustive, pruned)
        assert pruned.pruned > 0      # the bound tier actually fired

    def test_infeasible_space_has_no_winner(self, lstm_small):
        comp, model = lstm_small
        platform = Platform(spm_bytes=16)   # nothing fits 16 bytes
        with eight_cpus():
            exhaustive = ExhaustiveOptimizer(
                comp, platform, model, max_points=10**9).optimize()
            pruned = PrunedOptimizer(comp, platform, model).optimize()
        assert exhaustive.best is None
        assert pruned.best is None
        _assert_parity(exhaustive, pruned)

    @needs_fork
    def test_parallel_matches_serial(self, lstm_small):
        comp, model = lstm_small
        platform = Platform()
        with eight_cpus():
            serial = PrunedOptimizer(comp, platform, model).optimize()
            parallel = PrunedOptimizer(
                comp, platform, model, jobs=2).optimize()
        _assert_parity(serial, parallel)

    def test_space_guard_still_applies(self, lstm_small):
        comp, model = lstm_small
        with eight_cpus(), pytest.raises(SearchSpaceTooLarge):
            PrunedOptimizer(
                comp, Platform(), model, max_points=3).optimize()


class TestBoundEntries:
    """Persistent-cache plumbing for pruned candidates."""

    def test_bound_then_result_round_trip(self, tmp_path):
        cache = PersistentCache(tmp_path)
        assert cache.put_bound("d1", 123.0) is True
        assert cache.put_bound("d1", 456.0) is False   # already known
        assert cache.get_result("d1") is None          # bound-only entry
        cache.put("d1", makespan_ns=99.0, feasible=True)
        entry = cache.get_result("d1")
        assert entry is not None and entry["m"] == 99.0   # upgraded
        assert cache.stats()["bound_entries"] == 0
        # The upgrade survives a reload: the result line shadows the
        # bound line (last line wins).
        reloaded = PersistentCache(tmp_path)
        assert reloaded.get_result("d1")["m"] == 99.0

    def test_bound_entries_survive_reload(self, tmp_path):
        cache = PersistentCache(tmp_path)
        cache.put_bound("d2", math.inf)
        reloaded = PersistentCache(tmp_path)
        assert reloaded.put_bound("d2", math.inf) is False
        assert reloaded.get_result("d2") is None
        assert reloaded.stats()["bound_entries"] == 1

    def test_warm_rerun_reports_bound_hits(self, lstm_small, tmp_path):
        comp, model = lstm_small
        platform = Platform()
        with eight_cpus():
            cold = PrunedOptimizer(
                comp, platform, model,
                cache=PersistentCache(tmp_path)).optimize()
            persisted = PersistentCache(tmp_path).stats()["bound_entries"]
            warm = PrunedOptimizer(
                comp, platform, model,
                cache=PersistentCache(tmp_path)).optimize()
        _assert_parity(cold, warm)
        assert cold.bound_hits == 0          # nothing to recognise yet
        # The serial walk is deterministic, so the warm run re-prunes
        # exactly the candidates whose bounds the cold run persisted
        # (enumeration-time and sorted-tail prunes never hit the cache).
        assert warm.bound_hits == persisted
        assert warm.evaluations == 0         # all survivors were cached


class TestGreedyIdentity:
    @pytest.mark.parametrize("fixture", ["lstm_small", "rnn_small"])
    def test_precheck_never_changes_decisions(self, fixture, request):
        comp, model = request.getfixturevalue(fixture)
        platform = Platform()
        with eight_cpus():
            fast = GreedyOptimizer(comp, platform, model).optimize()
            with mock.patch.object(
                    bounds_mod.BoundCalculator, "exact_infeasible",
                    lambda self, sizes, groups: None):
                slow = GreedyOptimizer(comp, platform, model).optimize()
        assert _winner(fast) == _winner(slow)
        assert slow.pruned == 0


class TestTreeChainSkip:
    def test_skip_never_changes_the_plan(self):
        tree = LoopTree.build(make_kernel("lstm", "SMALL"))
        with eight_cpus():
            optimizer = TreeOptimizer(tree)
            with_bound = optimizer.optimize(Platform())
            with mock.patch.object(
                    tree_mod, "chain_lower_bound",
                    lambda *args: 0.0):
                never_skip = TreeOptimizer(tree).optimize(Platform())
        assert with_bound.makespan_ns == never_skip.makespan_ns
        assert [c.component.band_vars for c in with_bound.choices] == \
            [c.component.band_vars for c in never_skip.choices]
        assert never_skip.chains_pruned == 0

    def test_skip_mechanism_fires_on_branch_nodes(self):
        # Forcing the floor to infinity must skip every branch-node
        # parent chain; the result is then the pure children
        # decomposition, which is never better than the free choice.
        tree = LoopTree.build(make_kernel("lstm", "SMALL"))
        with eight_cpus():
            free = TreeOptimizer(tree).optimize(Platform())
            with mock.patch.object(
                    tree_mod, "chain_lower_bound",
                    lambda *args: math.inf):
                forced = TreeOptimizer(tree).optimize(Platform())
        assert forced.chains_pruned > 0
        assert forced.makespan_ns >= free.makespan_ns
