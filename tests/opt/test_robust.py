"""Robust (risk-objective) search over timing scenarios.

The contracts under test: ``scenarios == 0`` makes the robust search a
bit-identical wrapper around ``PrunedOptimizer``; the same seed always
reproduces the same scenario set, winner, risk and sensitivity ranking;
under ``risk="worst"`` the robust winner's worst-case is never beaten by
the nominal winner's worst-case (minimax optimality over the candidate
space); and the risk helpers themselves are exact on hand-computable
inputs.
"""

import math
import multiprocessing

import pytest

from repro.compiler import PremCompiler
from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.cache import PersistentCache
from repro.opt.pruned import PrunedOptimizer
from repro.opt.robust import (
    CandidateRisk,
    RobustOptimizer,
    cvar_tail_count,
    risk_value,
)
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker pool requires the fork start method")


def _component(kernel_name, preset, vars_):
    tree = LoopTree.build(make_kernel(kernel_name, preset))
    comp = component_at(tree, vars_)
    return comp, fit_component_model(comp)


@pytest.fixture(scope="module")
def lstm_small():
    return _component("lstm", "SMALL", ["s1_0", "p"])


@pytest.fixture(scope="module")
def rnn_small():
    return _component("rnn", "SMALL", ["s1", "p"])


def _record(result):
    """Everything the determinism contract covers, as one comparable."""
    robust = result.robust
    return (
        result.best.solution.key(), result.best.makespan_ns,
        robust.solution.key() if robust else None,
        robust.scenario_ns if robust else None,
        robust.risk_ns if robust else None,
        tuple((e.parameter, e.makespan_ns) for e in result.sensitivity),
    )


class TestRiskHelpers:
    def test_cvar_tail_count(self):
        assert cvar_tail_count(32, 0.9) == 4      # ceil(0.1 * 32)
        assert cvar_tail_count(32, 0.0) == 32     # mean
        assert cvar_tail_count(32, 0.99) == 1     # never empty
        assert cvar_tail_count(10, 0.75) == 3

    def test_worst_and_mean(self):
        values = [3.0, 1.0, 2.0]
        assert risk_value(values, "worst", 0.9) == 3.0
        assert risk_value(values, "mean", 0.9) == 2.0

    def test_cvar_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert risk_value(values, "cvar", 0.75) == 40.0      # tail of 1
        assert risk_value(values, "cvar", 0.5) == 35.0       # tail of 2
        assert risk_value(values, "cvar", 0.0) == 25.0       # == mean
        assert risk_value(values, "cvar", 0.0) == \
            risk_value(values, "mean", 0.0)

    def test_empty_is_infinite(self):
        assert math.isinf(risk_value([], "worst", 0.9))

    def test_unknown_risk_rejected(self):
        with pytest.raises(ValueError):
            risk_value([1.0], "median", 0.9)

    def test_candidate_risk_properties(self):
        record = CandidateRisk(solution=None, nominal_ns=5.0,
                               scenario_ns=(4.0, 8.0, 6.0), risk_ns=8.0)
        assert record.worst_ns == 8.0
        assert record.mean_ns == 6.0
        empty = CandidateRisk(solution=None, nominal_ns=5.0,
                              scenario_ns=(), risk_ns=5.0)
        assert empty.worst_ns == empty.mean_ns == 5.0


class TestValidation:
    def test_unknown_risk(self, rnn_small):
        comp, model = rnn_small
        with pytest.raises(ValueError):
            RobustOptimizer(comp, Platform(), model, risk="median")

    def test_alpha_out_of_range(self, rnn_small):
        comp, model = rnn_small
        with pytest.raises(ValueError):
            RobustOptimizer(comp, Platform(), model, alpha=1.0)
        with pytest.raises(ValueError):
            RobustOptimizer(comp, Platform(), model, alpha=-0.1)


class TestNominalDegradation:
    def test_zero_scenarios_matches_pruned_exactly(self, lstm_small):
        comp, model = lstm_small
        pruned = PrunedOptimizer(comp, Platform(), model).optimize(8)
        robust = RobustOptimizer(
            comp, Platform(), model, scenarios=0).optimize(8)
        assert robust.best.solution.key() == pruned.best.solution.key()
        assert robust.best.makespan_ns == pruned.best.makespan_ns
        assert robust.evaluations == pruned.evaluations
        assert robust.scenario_count == 0
        assert robust.robust is None and robust.nominal is None
        assert robust.sensitivity == ()
        assert robust.regret_ns == 0.0 and not robust.switched


class TestDeterminism:
    def test_same_seed_bit_identical(self, rnn_small):
        comp, model = rnn_small
        runs = [RobustOptimizer(comp, Platform(), model, scenarios=8,
                                seed=0).optimize(8)
                for _ in range(2)]
        assert _record(runs[0]) == _record(runs[1])

    def test_different_seed_changes_scenarios(self, rnn_small):
        comp, model = rnn_small
        a = RobustOptimizer(comp, Platform(), model, scenarios=8, seed=0)
        b = RobustOptimizer(comp, Platform(), model, scenarios=8, seed=1)
        assert a.scenarios != b.scenarios

    @needs_fork
    def test_jobs_do_not_change_the_winner(self, rnn_small):
        comp, model = rnn_small
        serial = RobustOptimizer(
            comp, Platform(), model, scenarios=6, seed=0).optimize(8)
        parallel = RobustOptimizer(
            comp, Platform(), model, scenarios=6, seed=0,
            jobs=2).optimize(8)
        assert _record(serial) == _record(parallel)


class TestRobustWinner:
    @pytest.mark.parametrize("fixture", ["lstm_small", "rnn_small"])
    def test_worst_case_winner_is_minimax(self, fixture, request):
        comp, model = request.getfixturevalue(fixture)
        result = RobustOptimizer(comp, Platform(), model, scenarios=8,
                                 seed=0, risk="worst").optimize(8)
        assert result.robust is not None and result.nominal is not None
        assert len(result.robust.scenario_ns) == 8
        # Minimax optimality over the whole candidate space implies in
        # particular: never worse than keeping the nominal winner.
        assert result.robust.worst_ns <= result.nominal.worst_ns
        assert result.regret_ns >= 0.0

    def test_cvar_winner_never_regresses_the_objective(self, rnn_small):
        comp, model = rnn_small
        result = RobustOptimizer(comp, Platform(), model, scenarios=8,
                                 seed=0, risk="cvar",
                                 alpha=0.9).optimize(8)
        assert result.robust.risk_ns <= result.nominal.risk_ns
        assert result.robust.risk_ns == risk_value(
            list(result.robust.scenario_ns), "cvar", 0.9)

    def test_best_is_the_nominal_outcome_of_the_robust_winner(
            self, rnn_small):
        comp, model = rnn_small
        result = RobustOptimizer(comp, Platform(), model, scenarios=8,
                                 seed=0).optimize(8)
        assert result.best.solution.key() == \
            result.robust.solution.key()
        assert result.best.makespan_ns == result.robust.nominal_ns
        assert result.best.plan is not None       # codegen-ready

    def test_sensitivity_ranked_by_impact(self, rnn_small):
        comp, model = rnn_small
        result = RobustOptimizer(comp, Platform(), model, scenarios=4,
                                 seed=0).optimize(8)
        deltas = [entry.delta_ns for entry in result.sensitivity]
        assert len(deltas) == 5
        assert deltas == sorted(deltas, reverse=True)
        # Adverse perturbations only ever add cost.
        assert all(delta >= 0.0 for delta in deltas)

    def test_infeasible_component_skips_scenario_phase(self):
        comp, model = _component("rnn", "SMALL", ["s1", "p"])
        # 16-byte SPM: nothing fits, so there is nothing to robustify.
        result = RobustOptimizer(
            comp, Platform(spm_bytes=16), model, scenarios=4).optimize(8)
        assert not result.feasible
        assert result.robust is None
        assert result.scenario_probes == 0


class TestPersistentCacheIntegration:
    def test_warm_run_replays_without_planning(self, tmp_path, rnn_small):
        comp, model = rnn_small

        def run():
            return RobustOptimizer(
                comp, Platform(), model, scenarios=6, seed=0,
                cache=PersistentCache(tmp_path)).optimize(8)

        cold = run()
        warm = run()
        assert _record(cold) == _record(warm)
        assert warm.evaluations == 0          # every probe was a hit
        assert warm.cache_hits > 0
        # Warm hits carry no plan by design; consumers that need one
        # re-plan the single winner (CompilationResult.plan_of).
        assert warm.best.from_cache

    def test_scenario_entries_do_not_alias_nominal(self, tmp_path,
                                                   rnn_small):
        comp, model = rnn_small
        RobustOptimizer(comp, Platform(), model, scenarios=4, seed=0,
                        cache=PersistentCache(tmp_path)).optimize(8)
        # A plain nominal search against the same cache dir must only
        # hit nominal entries — a scenario entry surfacing here would
        # corrupt the nominal winner.
        nominal = PrunedOptimizer(comp, Platform(), model).optimize(8)
        warm = PrunedOptimizer(
            comp, Platform(), model,
            cache=PersistentCache(tmp_path)).optimize(8)
        assert warm.best.solution.key() == nominal.best.solution.key()
        assert warm.best.makespan_ns == nominal.best.makespan_ns


class TestCompilerStrategy:
    def test_robust_strategy_end_to_end(self):
        kernel = make_kernel("lstm", "MINI")
        result = PremCompiler(seed=0).compile(
            kernel, strategy="robust", scenarios=4)
        assert result.feasible
        for choice in result.opt_result.choices:
            assert choice.result.scenario_count == 4
            assert choice.result.robust is not None
        # The functional VM still validates the chosen schedules.
        result.run_functional(seed=7)

    def test_zero_scenarios_reproduces_pruned_strategy(self):
        kernel = make_kernel("lstm", "MINI")
        pruned = PremCompiler().compile(kernel, strategy="pruned")
        robust = PremCompiler(seed=0).compile(
            kernel, strategy="robust", scenarios=0)
        assert robust.makespan_ns == pruned.makespan_ns
        assert [c.solution.key() for c in robust.components] == \
            [c.solution.key() for c in pruned.components]
