"""Parallel candidate-evaluation engine tests.

The load-bearing property is *bit-identical determinism*: for any jobs
count the optimizers must report the same best solution, the same
makespan, and the same evaluation count as a serial run.  Everything
else (metrics, chunking, the timeout path) hangs off that.
"""

import math
import multiprocessing
import os
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizerTimeout
from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.cache import PersistentCache
from repro.opt.component import ComponentOptimizer
from repro.opt.engine import EvaluationEngine, effective_jobs
from repro.opt.exhaustive import ExhaustiveOptimizer
from repro.opt.solution import Solution
from repro.schedule.makespan import MakespanEvaluator, MakespanResult
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker pool requires the fork start method")


def eight_cpus():
    """Lift the cpu-count clamp so pools really fork on small CI hosts.

    Workers on an oversubscribed host are slower, never wrong — exactly
    the situation the determinism guarantee must hold in."""
    return mock.patch.object(os, "cpu_count", lambda: 8)


@pytest.fixture(scope="module")
def lstm_tree():
    return LoopTree.build(make_kernel("lstm", "LARGE"))


@pytest.fixture(scope="module")
def b0(lstm_tree):
    comp = component_at(lstm_tree, ["b_0"])
    return comp, fit_component_model(comp)


@pytest.fixture(scope="module")
def two_level():
    tree = LoopTree.build(make_kernel("lstm", "SMALL"))
    comp = component_at(tree, ["s1_0", "p"])
    return comp, fit_component_model(comp)


class TestEffectiveJobs:
    def test_serial_requests_stay_serial(self):
        assert effective_jobs(None) == 1
        assert effective_jobs(0) == 1
        assert effective_jobs(1) == 1
        assert effective_jobs(-3) == 1

    def test_clamped_to_cpu_count(self):
        assert effective_jobs(10_000) <= (os.cpu_count() or 1)

    @needs_fork
    def test_parallel_allowed_with_fork(self):
        with eight_cpus():
            assert effective_jobs(2) == 2


class TestBestOf:
    def _result(self, comp, makespan, k, feasible=True):
        solution = Solution(comp, {"b_0": k}, {"b_0": 1})
        return MakespanResult(
            component=comp, solution=solution,
            makespan_ns=makespan, feasible=feasible)

    def test_tie_breaks_on_solution_key(self, b0):
        comp, _ = b0
        low_key = self._result(comp, 100.0, 2)
        high_key = self._result(comp, 100.0, 5)
        # Order of presentation must not matter.
        assert EvaluationEngine.best_of(
            [high_key, low_key]).solution.key() == low_key.solution.key()
        assert EvaluationEngine.best_of(
            [low_key, high_key]).solution.key() == low_key.solution.key()

    def test_skips_none_and_infeasible(self, b0):
        comp, _ = b0
        winner = self._result(comp, 50.0, 3)
        loser = self._result(comp, math.inf, 2, feasible=False)
        assert EvaluationEngine.best_of(
            [None, loser, winner]) is winner
        assert EvaluationEngine.best_of([None, loser]) is None
        assert EvaluationEngine.best_of([]) is None


class TestSerialEngine:
    def test_passthrough_counts_match_evaluator(self, b0):
        comp, model = b0
        evaluator = MakespanEvaluator(comp, Platform(), model)
        with EvaluationEngine(evaluator, jobs=1) as engine:
            assert not engine.parallel
            requests = [({"b_0": k}, {"b_0": 1}) for k in (2, 5, 10)]
            results = engine.evaluate_many(requests)
        assert len(results) == 3
        assert evaluator.evaluations == 3
        assert [r.solution.level("b_0").K for r in results] == [2, 5, 10]

    def test_duplicates_planned_once(self, b0):
        comp, model = b0
        evaluator = MakespanEvaluator(comp, Platform(), model)
        with EvaluationEngine(evaluator, jobs=1) as engine:
            chunk = [({"b_0": 5}, {"b_0": 1})] * 4
            results = engine.evaluate_chunks([chunk])[0]
        assert evaluator.evaluations == 1
        assert all(r.makespan_ns == results[0].makespan_ns
                   for r in results)

    def test_invalid_requests_counted(self, b0):
        comp, model = b0
        n = comp.nodes[0].N
        evaluator = MakespanEvaluator(comp, Platform(), model)
        with EvaluationEngine(evaluator, jobs=1) as engine:
            result = engine.evaluate_chunks(
                [[({"b_0": n + 1}, {"b_0": 1})]])[0][0]
        assert not result.feasible
        assert evaluator.evaluations == 1
        assert engine.metrics().invalid == 1


@needs_fork
class TestParallelEngine:
    def test_results_identical_to_serial(self, b0):
        comp, model = b0
        requests = [({"b_0": k}, {"b_0": r})
                    for k in (1, 2, 5, 10, 13, 25) for r in (1, 2, 4)]

        serial_eval = MakespanEvaluator(comp, Platform(), model)
        with EvaluationEngine(serial_eval, jobs=1) as engine:
            serial = engine.evaluate_many(requests)

        parallel_eval = MakespanEvaluator(comp, Platform(), model)
        with eight_cpus(), \
                EvaluationEngine(parallel_eval, jobs=4) as engine:
            assert engine.parallel
            parallel = engine.evaluate_many(requests)

        assert serial_eval.evaluations == parallel_eval.evaluations
        for left, right in zip(serial, parallel):
            assert left.makespan_ns == right.makespan_ns
            assert left.feasible == right.feasible
            assert left.solution.key() == right.solution.key()
            assert left.transferred_bytes == right.transferred_bytes
            assert left.spm_bytes_needed == right.spm_bytes_needed

    def test_metrics_account_for_dispatch(self, b0):
        comp, model = b0
        evaluator = MakespanEvaluator(comp, Platform(), model)
        requests = [({"b_0": k}, {"b_0": 1}) for k in (1, 2, 5, 10)]
        with eight_cpus(), \
                EvaluationEngine(evaluator, jobs=2) as engine:
            engine.evaluate_many(requests)
            metrics = engine.metrics()
        assert metrics.jobs == 2
        assert metrics.dispatched == 4
        assert metrics.evaluations == 4
        assert metrics.probes == 4
        assert 0.0 <= metrics.worker_utilization <= 1.0
        assert metrics.as_dict()["evaluations"] == 4

    def test_timeout_crosses_pool_boundary(self, b0):
        comp, model = b0
        evaluator = MakespanEvaluator(comp, Platform(), model)
        evaluator.set_deadline(0.0, "engine-test", 0.25)
        requests = [({"b_0": k}, {"b_0": 1}) for k in (1, 2, 5, 10)]
        with eight_cpus(), \
                EvaluationEngine(evaluator, jobs=2) as engine:
            with pytest.raises(OptimizerTimeout) as exc:
                engine.evaluate_many(requests)
        assert exc.value.stage == "engine-test"

    def test_warm_cache_skips_dispatch(self, b0, tmp_path):
        comp, model = b0
        requests = [({"b_0": k}, {"b_0": 1}) for k in (2, 5, 10)]

        cold_eval = MakespanEvaluator(
            comp, Platform(), model, cache=PersistentCache(tmp_path))
        with eight_cpus(), \
                EvaluationEngine(cold_eval, jobs=2) as engine:
            engine.evaluate_many(requests)
        assert cold_eval.evaluations == 3

        warm_eval = MakespanEvaluator(
            comp, Platform(), model, cache=PersistentCache(tmp_path))
        with eight_cpus(), \
                EvaluationEngine(warm_eval, jobs=2) as engine:
            warm = engine.evaluate_many(requests)
            metrics = engine.metrics()
        assert warm_eval.evaluations == 0
        assert warm_eval.cache_hits == 3
        assert metrics.dispatched == 0
        assert all(r.from_cache for r in warm)

    def test_close_never_tears_the_cache_log(self, b0, tmp_path):
        # close() drains workers instead of terminate()ing them, so no
        # worker can die mid-append to the shared JSONL log.  Cycle the
        # pool a few times with appends in flight right up to close.
        comp, model = b0
        for round_ in range(3):
            evaluator = MakespanEvaluator(
                comp, Platform(), model, cache=PersistentCache(tmp_path))
            requests = [({"b_0": k}, {"b_0": r})
                        for k in (1, 2, 5, 10, 13, 25)
                        for r in (1, 2, 4)][round_:]
            with eight_cpus(), \
                    EvaluationEngine(evaluator, jobs=4) as engine:
                engine.evaluate_many(requests)
        reloaded = PersistentCache(tmp_path)
        stats = reloaded.stats()
        assert stats["entries"] > 0
        assert reloaded.corrupt_lines == 0


@needs_fork
class TestOptimizerParity:
    def test_exhaustive_parity(self, two_level):
        comp, model = two_level
        serial = ExhaustiveOptimizer(
            comp, Platform(), model, jobs=1).optimize(8)
        with eight_cpus():
            parallel = ExhaustiveOptimizer(
                comp, Platform(), model, jobs=4).optimize(8)
        assert serial.evaluations == parallel.evaluations
        assert serial.makespan_ns == parallel.makespan_ns
        assert serial.best.solution.key() == parallel.best.solution.key()
        assert parallel.best.plan is not None

    def test_heuristic_parity(self, two_level):
        comp, model = two_level
        serial = ComponentOptimizer(
            comp, Platform(), model, jobs=1).optimize(8)
        with eight_cpus():
            parallel = ComponentOptimizer(
                comp, Platform(), model, jobs=4).optimize(8)
        assert serial.evaluations == parallel.evaluations
        assert serial.makespan_ns == parallel.makespan_ns
        assert serial.best.solution.key() == parallel.best.solution.key()

    @settings(max_examples=6, deadline=None)
    @given(
        jobs=st.integers(min_value=2, max_value=4),
        cores=st.sampled_from([2, 4, 8]),
        bus_div=st.sampled_from([1, 8, 64]),
    )
    def test_parity_property(self, b0, jobs, cores, bus_div):
        """Serial and parallel runs agree for any (jobs, platform)."""
        comp, model = b0
        platform = Platform().with_bus(16e9 / bus_div)
        serial = ExhaustiveOptimizer(
            comp, platform, model, jobs=1).optimize(cores)
        with eight_cpus():
            parallel = ExhaustiveOptimizer(
                comp, platform, model, jobs=jobs).optimize(cores)
        assert serial.evaluations == parallel.evaluations
        assert serial.makespan_ns == parallel.makespan_ns
        if serial.best is not None:
            assert serial.best.solution.key() == \
                parallel.best.solution.key()
