"""Tests for non-dominated thread groups and select_tile_sizes
(Algorithm 1's helper functions, against the paper's worked examples)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.threadgroups import (
    dominates,
    generate_nondominated_thread_groups,
    nondominated,
    valid_assignments,
)
from repro.opt.tilesizes import select_tile_sizes


class TestPaperExamples:
    def test_p10_two_parallel_levels(self):
        """Section 4.3's example: on P=10 the non-dominated assignments
        for two parallel levels are (10,1), (5,2), (3,3), (2,5), (1,10)."""
        assignments = nondominated(valid_assignments(10, [10, 10]))
        assert set(assignments) == {
            (10, 1), (5, 2), (3, 3), (2, 5), (1, 10)}

    def test_select_tile_sizes_n24_r4(self):
        """Algorithm 1's example: N=24, R=4 yields K in {1, 2, 3, 6}."""
        assert select_tile_sizes(24, 4) == [1, 2, 3, 6]

    def test_select_tile_sizes_r1_hits_sqrt_pattern(self):
        candidates = select_tile_sizes(100, 1)
        # Smallest K per distinct M=ceil(100/K): includes 1 and 100.
        assert candidates[0] == 1
        assert candidates[-1] == 100
        ms = [math.ceil(100 / k) for k in candidates]
        assert ms == sorted(set(ms), reverse=True)


class TestDominance:
    def test_dominates(self):
        assert dominates((4, 2), (4, 1))
        assert not dominates((4, 1), (4, 1))
        assert not dominates((4, 1), (1, 4))

    def test_nondominated_removes_dominated(self):
        survivors = nondominated([(2, 2), (2, 1), (1, 1), (4, 1)])
        assert set(survivors) == {(2, 2), (4, 1)}


class TestComponentIntegration:
    def test_lstm_component_groups(self):
        tree = LoopTree.build(make_kernel("lstm", "LARGE"))
        comp = component_at(tree, ["s1_0", "p"])
        groups = generate_nondominated_thread_groups(8, comp)
        # p is not parallelizable: only (R, 1) shapes survive.
        assert groups == [(8, 1)]

    def test_cnn_component_groups(self):
        tree = LoopTree.build(make_kernel("cnn", "LARGE"))
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        groups = generate_nondominated_thread_groups(8, comp)
        assert all(g[0] == 1 and g[4] == 1 for g in groups)   # n has N=1, c sequential
        assert (1, 8, 1, 1, 1) in groups
        assert (1, 2, 2, 2, 1) in groups
        for assignment in groups:
            product = 1
            for r in assignment:
                product *= r
            assert product <= 8


class TestValidation:
    def test_select_tile_sizes_validation(self):
        with pytest.raises(ValueError):
            select_tile_sizes(0, 1)
        with pytest.raises(ValueError):
            select_tile_sizes(5, 0)


@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=16))
def test_select_tile_sizes_invariants(n, r):
    candidates = select_tile_sizes(n, r)
    assert candidates[0] == 1
    assert all(1 <= k <= n for k in candidates)
    # Each candidate is the smallest K achieving its Z value.
    zs = [math.ceil(math.ceil(n / k) / r) for k in candidates]
    assert zs == sorted(set(zs), reverse=True)
    for k, z in zip(candidates, zs):
        if k > 1:
            prev_z = math.ceil(math.ceil(n / (k - 1)) / r)
            assert prev_z > z


@given(st.integers(min_value=1, max_value=12),
       st.lists(st.integers(min_value=1, max_value=12),
                min_size=1, max_size=3))
def test_valid_assignments_respect_budget(cores, maxima):
    for assignment in valid_assignments(cores, maxima):
        product = 1
        for r, cap in zip(assignment, maxima):
            assert 1 <= r <= cap
            product *= r
        assert product <= cores
