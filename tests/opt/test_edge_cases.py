"""Edge-case tests for the optimizers and timing model."""

import math

import numpy as np
import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.component import ComponentOptimizer
from repro.opt.greedy import GreedyOptimizer
from repro.sim.profiler import fit_component_model
from repro.timing.execmodel import design_matrix, fit_exec_model
from repro.timing.platform import Platform


class TestGreedyInfeasible:
    def test_no_level_fits_reports_infeasible(self):
        """With an absurdly small SPM even K=1 tiles overflow: greedy
        must report infeasibility instead of crashing."""
        tree = LoopTree.build(make_kernel("lstm", "LARGE"))
        comp = component_at(tree, ["s1_0", "p"])
        model = fit_component_model(comp)
        tiny = Platform(spm_bytes=256)
        result = GreedyOptimizer(comp, tiny, model).optimize(8)
        assert not result.feasible
        assert result.makespan_ns == math.inf

    def test_heuristic_infeasible_platform(self):
        tree = LoopTree.build(make_kernel("lstm", "LARGE"))
        comp = component_at(tree, ["s1_0", "p"])
        model = fit_component_model(comp)
        tiny = Platform(spm_bytes=256)
        result = ComponentOptimizer(comp, tiny, model).optimize(8)
        assert not result.feasible


class TestSingleLevelModel:
    def test_design_matrix_depth_one(self):
        matrix = design_matrix([(5,)])
        np.testing.assert_allclose(matrix, [[5.0, 1.0]])

    def test_fit_depth_one(self):
        samples = [(w,) for w in (1, 2, 4, 8, 16, 32)]
        measured = [100.0 + 7.0 * w for (w,) in samples]
        model = fit_exec_model(samples, measured)
        assert model.estimate((64,)) == pytest.approx(100 + 7 * 64,
                                                      rel=1e-6)
        assert model.overheads == (0.0,)


class TestSingleIterationLevels:
    def test_n_equals_one_level(self):
        """CNN's batch loop has N=1: K=R=1 is the only choice and the
        machinery must handle the degenerate level throughout."""
        tree = LoopTree.build(make_kernel("cnn", "SMALL"))
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        model = fit_component_model(comp)
        result = ComponentOptimizer(comp, Platform(), model).optimize(8)
        assert result.feasible
        level = result.best.solution.level("n")
        assert level.K == 1 and level.R == 1 and level.M == 1
