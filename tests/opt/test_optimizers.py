"""Algorithm 1 / Algorithm 2 / greedy optimizer behaviour tests."""

import itertools
import math

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt.component import ComponentOptimizer
from repro.opt.greedy import GreedyOptimizer
from repro.opt.ideal import ideal_makespan_ns
from repro.opt.solution import Solution
from repro.opt.tilesizes import select_tile_sizes
from repro.opt.tree import TreeOptimizer
from repro.schedule.makespan import MakespanEvaluator
from repro.sim.machine import MachineModel
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform


@pytest.fixture(scope="module")
def lstm_tree():
    return LoopTree.build(make_kernel("lstm", "LARGE"))


@pytest.fixture(scope="module")
def lstm_comp(lstm_tree):
    return component_at(lstm_tree, ["s1_0", "p"])


@pytest.fixture(scope="module")
def lstm_model(lstm_comp):
    return fit_component_model(lstm_comp)


class TestComponentOptimizer:
    def test_finds_feasible_solution(self, lstm_comp, lstm_model):
        optimizer = ComponentOptimizer(lstm_comp, Platform(), lstm_model)
        result = optimizer.optimize(8)
        assert result.feasible
        assert result.best.solution.threads <= 8
        assert result.evaluations > 0

    def test_close_to_exhaustive_on_small_component(self, lstm_tree):
        """The heuristic must land within 10% of the exhaustive optimum
        over its own candidate space (single level: convex search)."""
        comp = component_at(lstm_tree, ["b_0"])
        model = fit_component_model(comp)
        platform = Platform()
        evaluator = MakespanEvaluator(comp, platform, model)
        best = math.inf
        for r in (1, 2, 4, 8):
            for k in select_tile_sizes(comp.nodes[0].N, r):
                res = evaluator.evaluate_params({"b_0": k}, {"b_0": r})
                if res.feasible:
                    best = min(best, res.makespan_ns)
        optimizer = ComponentOptimizer(comp, platform, model)
        result = optimizer.optimize(8)
        assert result.makespan_ns <= best * 1.10

    def test_deterministic_given_seed(self, lstm_comp, lstm_model):
        a = ComponentOptimizer(
            lstm_comp, Platform(), lstm_model, seed=1).optimize(8)
        b = ComponentOptimizer(
            lstm_comp, Platform(), lstm_model, seed=1).optimize(8)
        assert a.best.solution.key() == b.best.solution.key()

    def test_single_core_forces_r1(self, lstm_comp, lstm_model):
        result = ComponentOptimizer(
            lstm_comp, Platform(), lstm_model).optimize(1)
        assert result.feasible
        assert result.best.solution.threads == 1

    def test_more_cores_never_worse(self, lstm_comp, lstm_model):
        one = ComponentOptimizer(
            lstm_comp, Platform(), lstm_model).optimize(1)
        eight = ComponentOptimizer(
            lstm_comp, Platform(), lstm_model).optimize(8)
        assert eight.makespan_ns <= one.makespan_ns * 1.01


class TestGreedy:
    def test_cnn_greedy_tiles_p(self):
        """Section 6.3.1: greedy cannot fit a k-level tile (inp_F's full
        c/p/q footprint), so it tiles p with k parallelized across cores
        and K_k = 1 per segment."""
        tree = LoopTree.build(make_kernel("cnn", "LARGE"))
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        model = fit_component_model(comp)
        result = GreedyOptimizer(comp, Platform(), model).optimize(8)
        assert result.feasible
        solution = result.best.solution
        assert solution.level("k").K == 1
        assert solution.level("k").R == 8
        # The paper reports K_p = 2; with our (slightly different) SPM
        # bookkeeping the largest fitting tile is within one of that.
        assert solution.level("p").K in (2, 3)
        assert solution.level("q").K == tree.node_by_var("q").N
        assert solution.level("c").K == tree.node_by_var("c").N

    def test_greedy_never_beats_heuristic_at_slow_bus(self):
        """Figure 6.1 / Section 6.3.1: at low bandwidth the heuristic wins
        decisively (paper reports ~10x on the GoogLeNet CNN layer)."""
        tree = LoopTree.build(make_kernel("cnn", "LARGE"))
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        model = fit_component_model(comp)
        slow = Platform().with_bus(1e9 / 32)
        greedy = GreedyOptimizer(comp, slow, model).optimize(8)
        heuristic = ComponentOptimizer(comp, slow, model).optimize(8)
        assert heuristic.makespan_ns < greedy.makespan_ns
        assert greedy.makespan_ns / heuristic.makespan_ns > 3.0

    def test_greedy_lstm_feasible(self, lstm_comp, lstm_model):
        result = GreedyOptimizer(
            lstm_comp, Platform(), lstm_model).optimize(8)
        assert result.feasible


class TestTreeOptimizer:
    def test_lstm_uses_children_decomposition(self, lstm_tree):
        optimizer = TreeOptimizer(lstm_tree)
        result = optimizer.optimize(Platform())
        labels = {c.component.label() for c in result.choices}
        assert labels == {"(s1_0, p)", "(s1_1, s2)", "(b_0)", "(b_1)"}

    def test_lstm_total_is_sum_of_components(self, lstm_tree):
        result = TreeOptimizer(lstm_tree).optimize(Platform())
        total = sum(c.total_makespan_ns for c in result.choices)
        assert result.makespan_ns == pytest.approx(total)

    def test_cnn_single_chain(self):
        tree = LoopTree.build(make_kernel("cnn", "LARGE"))
        result = TreeOptimizer(tree).optimize(Platform())
        assert len(result.choices) == 1
        assert result.choices[0].component.label() == "(n, k, p, q, c)"

    def test_exec_models_cached_across_platforms(self, lstm_tree):
        optimizer = TreeOptimizer(lstm_tree)
        optimizer.optimize(Platform())
        models_after_first = dict(optimizer._models)
        optimizer.optimize(Platform().with_bus(1e9))
        assert optimizer._models.keys() == models_after_first.keys()
        for key, model in models_after_first.items():
            assert optimizer._models[key] is model

    def test_describe(self, lstm_tree):
        result = TreeOptimizer(lstm_tree).optimize(Platform())
        text = result.describe()
        assert "lstm" in text
        assert "(s1_0, p)" in text


class TestIdeal:
    def test_positive_and_scales(self):
        platform = Platform()
        mini = ideal_makespan_ns(make_kernel("cnn", "MINI"), platform)
        small = ideal_makespan_ns(make_kernel("cnn", "SMALL"), platform)
        assert 0 < mini < small

    def test_any_schedule_at_least_ideal_over_cores(self):
        """Sanity: no PREM schedule can beat ideal work / P."""
        kernel = make_kernel("lstm", "LARGE")
        tree = LoopTree.build(kernel)
        platform = Platform()
        result = TreeOptimizer(tree).optimize(platform)
        ideal = ideal_makespan_ns(kernel, platform)
        assert result.makespan_ns >= ideal / platform.cores
