"""Profiling + fit quality tests (the paper's <=5% model-accuracy claim)."""

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.sim.machine import MachineModel
from repro.sim.profiler import (
    fit_component_model,
    profile_component,
    sample_widths,
    width_candidates,
)


@pytest.fixture(scope="module")
def lstm_comp():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    return component_at(tree, ["s1_0", "p"])


class TestSampling:
    def test_width_candidates_bounds(self):
        for n in (1, 2, 7, 24, 650):
            candidates = width_candidates(n)
            assert candidates[0] >= 1
            assert candidates[-1] == n
            assert candidates == sorted(set(candidates))

    def test_sample_cap(self, lstm_comp):
        samples = sample_widths(lstm_comp, max_samples=40)
        assert 0 < len(samples) <= 40
        assert all(len(w) == 2 for w in samples)

    def test_deep_component_capped(self):
        tree = LoopTree.build(make_kernel("cnn", "LARGE"))
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        samples = sample_widths(comp)
        assert len(samples) <= 256


class TestFitQuality:
    def test_measurements_never_exceed_estimate(self, lstm_comp):
        model = fit_component_model(lstm_comp)
        machine = MachineModel()
        samples, measured = profile_component(lstm_comp, machine)
        for widths, value in zip(samples, measured):
            assert model.estimate(widths) >= value - 1e-6

    def test_out_of_sample_accuracy(self, lstm_comp):
        """The analogue of the paper's <=5% timing-model validation, on
        width vectors the fit never saw."""
        model = fit_component_model(lstm_comp)
        machine = MachineModel()
        probes = [(13, 101), (37, 500), (109, 350), (217, 699), (5, 13)]
        for widths in probes:
            estimate = model.estimate(widths)
            actual = machine.tile_cost(lstm_comp, widths)
            assert estimate >= actual * 0.95
            assert estimate <= actual * 1.30

    def test_large_tiles_tightest(self, lstm_comp):
        """The W term dominates large tiles, where the fit must be tight."""
        model = fit_component_model(lstm_comp)
        machine = MachineModel()
        widths = (650, 700)
        ratio = model.estimate(widths) / machine.tile_cost(
            lstm_comp, widths)
        assert 1.0 <= ratio < 1.05
