"""Machine-model tests: closed form vs interpretation, kernel costs."""

import pytest

from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.builder import for_, kernel_, stmt_
from repro.loopir.component import component_at
from repro.poly.access import Array
from repro.prem.ranges import tile_box
from repro.sim.machine import CostTable, MachineModel


@pytest.fixture(scope="module")
def machine():
    return MachineModel()


def unguarded_kernel():
    a = Array("a", (6, 8))
    b = Array("b", (6, 8))
    s = stmt_("s", {"a": a, "b": b},
              writes={"a": ("i", "j")}, reads={"b": ("i", "j")}, flops=2)
    return kernel_("k2", [a, b], [for_("i", 6, for_("j", 8, s))])


class TestClosedFormVsInterpretation:
    def test_unguarded_component_exact(self, machine):
        tree = LoopTree.build(unguarded_kernel())
        comp = component_at(tree, ["i", "j"])
        for widths in [(1, 1), (2, 3), (6, 8), (5, 7)]:
            box = tile_box(comp, {"i": 0, "j": 0},
                           {"i": widths[0], "j": widths[1]})
            assert machine.tile_cost(comp, widths) == \
                machine.interpret_tile(comp, box)

    def test_cnn_folded_leaf_exact(self, machine):
        tree = LoopTree.build(make_kernel("cnn", "MINI"))
        comp = component_at(tree, ["n", "k", "p", "q", "c"])
        widths = (1, 2, 2, 2, 3)
        sizes = dict(zip(comp.band_vars, widths))
        box = tile_box(comp, {v: 0 for v in comp.band_vars}, sizes)
        assert machine.tile_cost(comp, widths) == \
            machine.interpret_tile(comp, box)

    def test_guarded_lstm_close(self, machine):
        """Guard averaging: the closed form charges the p==0 init once per
        full p sweep, so tiles containing p=0 are slightly underestimated
        and later tiles overestimated — within one init body per point."""
        tree = LoopTree.build(make_kernel("lstm", "MINI"))
        comp = component_at(tree, ["s1_0", "p"])
        widths = (2, 3)
        sizes = {"s1_0": 2, "p": 3}
        box = tile_box(comp, {"s1_0": 0, "p": 0}, sizes)
        closed = machine.tile_cost(comp, widths)
        exact = machine.interpret_tile(comp, box)
        assert abs(closed - exact) / exact < 0.5


class TestCostStructure:
    def test_monotone_in_widths(self, machine):
        tree = LoopTree.build(unguarded_kernel())
        comp = component_at(tree, ["i", "j"])
        assert machine.tile_cost(comp, (2, 2)) < \
            machine.tile_cost(comp, (2, 4)) < \
            machine.tile_cost(comp, (4, 4))

    def test_width_validation(self, machine):
        tree = LoopTree.build(unguarded_kernel())
        comp = component_at(tree, ["i", "j"])
        with pytest.raises(ValueError):
            machine.tile_cost(comp, (2,))
        with pytest.raises(ValueError):
            machine.tile_cost(comp, (0, 2))

    def test_custom_cost_table(self):
        cheap = MachineModel(CostTable(flop=1, load=1, store=1))
        default = MachineModel()
        tree = LoopTree.build(unguarded_kernel())
        comp = component_at(tree, ["i", "j"])
        assert cheap.tile_cost(comp, (4, 4)) < \
            default.tile_cost(comp, (4, 4))


class TestKernelCost:
    def test_matches_sum_of_tiles_plus_overheads(self, machine):
        """For an unguarded perfect nest, the whole-kernel cost equals one
        full-size tile minus the per-tile warm-up."""
        kernel = unguarded_kernel()
        tree = LoopTree.build(kernel)
        comp = component_at(tree, ["i", "j"])
        full = machine.tile_cost(comp, (6, 8))
        assert machine.kernel_cost(kernel) == \
            full - machine.costs.tile_warmup

    def test_guarded_loops_reduce_cost(self, machine):
        lstm_small = make_kernel("lstm", "MINI")
        cost = machine.kernel_cost(lstm_small)
        assert cost > 0
        # Removing the t>0 guards can only increase the count.
        for loop, _ in lstm_small.walk_loops():
            loop.guards.clear()
        assert machine.kernel_cost(lstm_small) > cost

    def test_scales_with_problem_size(self, machine):
        small = machine.kernel_cost(make_kernel("cnn", "MINI"))
        large = machine.kernel_cost(make_kernel("cnn", "SMALL"))
        assert large > small
