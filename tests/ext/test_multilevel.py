"""Tests for the two-level SPM streaming extension (Chapter 7)."""

import math

import pytest

from repro.ext.multilevel import (
    TwoLevelPlatform,
    best_block_size,
    evaluate_two_level,
)
from repro.kernels import make_kernel
from repro.loopir import LoopTree
from repro.loopir.component import component_at
from repro.opt import ComponentOptimizer, Solution
from repro.schedule.makespan import MakespanEvaluator
from repro.sim.profiler import fit_component_model
from repro.timing.platform import Platform


@pytest.fixture(scope="module")
def setup():
    tree = LoopTree.build(make_kernel("lstm", "LARGE"))
    comp = component_at(tree, ["s1_0", "p"])
    model = fit_component_model(comp)
    solution = Solution(comp, {"s1_0": 14, "p": 234}, {"s1_0": 8, "p": 1})
    return comp, model, solution


class TestModel:
    def test_l1_view_reprices_bus(self):
        platform = TwoLevelPlatform(
            Platform().with_bus(1e9), l2_bus_bytes_per_s=32e9)
        view = platform.l1_view()
        assert view.bus_bytes_per_s == 32e9
        assert platform.base.bus_bytes_per_s == 1e9

    def test_bulk_transfer_time(self):
        platform = TwoLevelPlatform(Platform().with_bus(1e9))
        # 1 MiB at 1 GB/s: 64-byte bursts of 64 ns each + one line setup.
        expected = 40.0 + (1 << 20) / 64 * 64.0
        assert platform.bulk_transfer_ns(1 << 20) == pytest.approx(expected)
        assert platform.bulk_transfer_ns(0) == 0.0

    def test_block_size_validation(self, setup):
        comp, model, solution = setup
        platform = TwoLevelPlatform(Platform())
        with pytest.raises(ValueError):
            evaluate_two_level(comp, solution, platform, model, 0)

    def test_l2_capacity_enforced(self, setup):
        comp, model, solution = setup
        platform = TwoLevelPlatform(Platform(), l2_bytes=1024)
        result = evaluate_two_level(comp, solution, platform, model, 4)
        assert not result.feasible
        assert "L2" in result.reason


class TestShape:
    def test_two_level_helps_at_slow_main_bus(self, setup):
        """The whole point of the extension: with a slow main memory and a
        fast L2 stage, bulk prefetching beats per-segment main-memory
        streaming."""
        comp, model, solution = setup
        slow_bus = Platform().with_bus(1e9 / 8)
        single = MakespanEvaluator(comp, slow_bus, model).evaluate(solution)
        platform = TwoLevelPlatform(slow_bus, l2_bus_bytes_per_s=32e9,
                                    l2_bytes=32 * 1024 * 1024)
        block, result = best_block_size(comp, solution, platform, model)
        assert result.feasible
        assert result.makespan_ns < single.makespan_ns

    def test_never_beats_main_bandwidth_floor(self, setup):
        """Bulk transfers still move every byte over the main bus."""
        comp, model, solution = setup
        slow_bus = Platform().with_bus(1e9 / 8)
        platform = TwoLevelPlatform(slow_bus, l2_bytes=32 * 1024 * 1024)
        result = evaluate_two_level(comp, solution, platform, model, 2)
        assert result.feasible
        assert result.makespan_ns >= result.bulk_transfer_ns_total * 0.5

    def test_block_one_close_to_single_level(self, setup):
        """With blocks of one segment, the model degenerates to staging
        every segment through L2; the makespan stays within the same
        order as the single-level schedule at equal bandwidths."""
        comp, model, solution = setup
        base = Platform()
        platform = TwoLevelPlatform(
            base, l2_bus_bytes_per_s=base.bus_bytes_per_s,
            l2_line_overhead_ns=base.dma_line_overhead_ns,
            l2_bytes=64 * 1024 * 1024)
        single = MakespanEvaluator(comp, base, model).evaluate(solution)
        staged = evaluate_two_level(comp, solution, platform, model, 1)
        assert staged.feasible
        assert staged.makespan_ns >= single.makespan_ns * 0.99
        assert staged.makespan_ns <= single.makespan_ns * 3.0

    def test_interior_block_size_optimum(self, setup):
        """Very small blocks waste line overheads, very large ones lose
        overlap: the best block size is usually interior."""
        comp, model, solution = setup
        platform = TwoLevelPlatform(
            Platform().with_bus(1e9 / 8), l2_bytes=64 * 1024 * 1024)
        results = {
            block: evaluate_two_level(
                comp, solution, platform, model, block)
            for block in (1, 2, 4, 8, 12)
        }
        feasible = {b: r for b, r in results.items() if r.feasible}
        assert feasible
        best_block = min(feasible, key=lambda b: feasible[b].makespan_ns)
        assert best_block >= 1
