#!/bin/bash
cd /root/repo
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output_new.txt > /dev/null
if grep -qE '17 passed' /root/repo/bench_output_new.txt; then
  mv /root/repo/bench_output_new.txt /root/repo/bench_output.txt
fi
echo DONE > /root/repo/.bench_clean_done
