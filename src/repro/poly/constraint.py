"""Affine constraints and conjunctive constraint systems.

A :class:`Constraint` is ``expr >= 0`` or ``expr == 0`` where *expr* is an
:class:`~repro.poly.affine.AffineExpr`.  A :class:`ConstraintSystem` is a
conjunction of constraints over a set of integer variables; it is the input
to the Fourier–Motzkin feasibility test in :mod:`repro.poly.fm` and the
representation of statement guards and dependence systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from .affine import AffineExpr, ExprLike, aff

GE = ">="
EQ = "=="


@dataclass(frozen=True)
class Constraint:
    """A single affine constraint ``expr >= 0`` or ``expr == 0``."""

    expr: AffineExpr
    kind: str = GE

    def __post_init__(self):
        if self.kind not in (GE, EQ):
            raise ValueError(f"unknown constraint kind {self.kind!r}")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def ge(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """lhs >= rhs."""
        return Constraint(aff(lhs) - aff(rhs), GE)

    @staticmethod
    def le(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """lhs <= rhs."""
        return Constraint(aff(rhs) - aff(lhs), GE)

    @staticmethod
    def gt(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """lhs > rhs (integer variables: lhs >= rhs + 1)."""
        return Constraint(aff(lhs) - aff(rhs) - 1, GE)

    @staticmethod
    def lt(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """lhs < rhs (integer variables: lhs <= rhs - 1)."""
        return Constraint(aff(rhs) - aff(lhs) - 1, GE)

    @staticmethod
    def eq(lhs: ExprLike, rhs: ExprLike = 0) -> "Constraint":
        """lhs == rhs."""
        return Constraint(aff(lhs) - aff(rhs), EQ)

    # -- observers -----------------------------------------------------------

    def variables(self) -> frozenset:
        return self.expr.variables()

    def satisfied(self, assignment: Mapping[str, int]) -> bool:
        value = self.expr.evaluate(assignment)
        return value == 0 if self.kind == EQ else value >= 0

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.kind)

    def substitute(self, bindings: Mapping[str, ExprLike]) -> "Constraint":
        return Constraint(self.expr.substitute(bindings), self.kind)

    def __repr__(self) -> str:
        op = "=" if self.kind == EQ else ">="
        return f"{self.expr!r} {op} 0"


class ConstraintSystem:
    """A conjunction of affine constraints over integer variables."""

    def __init__(self, constraints: Iterable[Constraint] = ()):
        self._constraints = list(constraints)

    @property
    def constraints(self) -> Sequence[Constraint]:
        return tuple(self._constraints)

    def add(self, constraint: Constraint) -> "ConstraintSystem":
        self._constraints.append(constraint)
        return self

    def extend(self, constraints: Iterable[Constraint]) -> "ConstraintSystem":
        self._constraints.extend(constraints)
        return self

    def variables(self) -> frozenset:
        names = set()
        for constraint in self._constraints:
            names |= constraint.variables()
        return frozenset(names)

    def satisfied(self, assignment: Mapping[str, int]) -> bool:
        return all(c.satisfied(assignment) for c in self._constraints)

    def copy(self) -> "ConstraintSystem":
        return ConstraintSystem(self._constraints)

    def conjoin(self, other: "ConstraintSystem") -> "ConstraintSystem":
        return ConstraintSystem([*self._constraints, *other.constraints])

    def rename(self, mapping: Mapping[str, str]) -> "ConstraintSystem":
        return ConstraintSystem(c.rename(mapping) for c in self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self):
        return iter(self._constraints)

    def __repr__(self) -> str:
        body = " and ".join(repr(c) for c in self._constraints) or "true"
        return f"ConstraintSystem({body})"


def box_constraints(box: Mapping[str, tuple]) -> ConstraintSystem:
    """Constraints for inclusive per-variable ranges ``lo <= v <= hi``."""
    system = ConstraintSystem()
    for var, (lo, hi) in box.items():
        system.add(Constraint.ge(var, lo))
        system.add(Constraint.le(var, hi))
    return system
