"""Iteration domains: rectangular boxes of named iterators plus guards.

The paper restricts input programs to loops with constant iteration ranges
and uniform strides (Section 3.2).  A statement's domain is therefore the
Cartesian product of per-loop ranges, optionally restricted by affine guard
constraints (e.g. the ``if (p == 0)`` guard on the LSTM initialisation
statement in Listing 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Sequence, Tuple

from .affine import AffineExpr
from .constraint import Constraint, ConstraintSystem, box_constraints


@dataclass(frozen=True)
class LoopRange:
    """One loop dimension: ``for (v = begin; v < begin + n*stride; v += stride)``."""

    var: str
    begin: int
    n: int
    stride: int = 1

    def __post_init__(self):
        if self.n < 0:
            raise ValueError(f"loop {self.var}: negative trip count {self.n}")
        if self.stride <= 0:
            raise ValueError(f"loop {self.var}: stride must be positive")

    @property
    def last(self) -> int:
        """The last iterator value (inclusive)."""
        return self.begin + self.stride * (self.n - 1)

    @property
    def bounds(self) -> Tuple[int, int]:
        """Inclusive [min, max] of the iterator."""
        return self.begin, self.last

    def values(self) -> range:
        return range(self.begin, self.last + 1, self.stride)

    def __contains__(self, value: int) -> bool:
        if value < self.begin or value > self.last:
            return False
        return (value - self.begin) % self.stride == 0


class Domain:
    """A rectangular iteration domain with optional affine guards.

    Iterator order is significant: it is the nesting order of the loops
    that surround the statement, outermost first.
    """

    def __init__(self, ranges: Sequence[LoopRange],
                 guards: ConstraintSystem | None = None):
        names = [r.var for r in ranges]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate iterator names in domain: {names}")
        self._ranges = tuple(ranges)
        self._guards = guards or ConstraintSystem()
        unknown = self._guards.variables() - set(names)
        if unknown:
            raise ValueError(f"guard references unknown iterators: {unknown}")

    # -- observers ---------------------------------------------------------

    @property
    def ranges(self) -> Tuple[LoopRange, ...]:
        return self._ranges

    @property
    def guards(self) -> ConstraintSystem:
        return self._guards

    @property
    def iterators(self) -> Tuple[str, ...]:
        return tuple(r.var for r in self._ranges)

    @property
    def dim(self) -> int:
        return len(self._ranges)

    def range_of(self, var: str) -> LoopRange:
        for loop_range in self._ranges:
            if loop_range.var == var:
                return loop_range
        raise KeyError(var)

    def box(self) -> Dict[str, Tuple[int, int]]:
        """Per-iterator inclusive bounds, ignoring guards."""
        return {r.var: r.bounds for r in self._ranges}

    def size(self) -> int:
        """Number of lattice points ignoring guards (paper: uniform tiles)."""
        total = 1
        for loop_range in self._ranges:
            total *= loop_range.n
        return total

    def contains(self, point: Mapping[str, int]) -> bool:
        for loop_range in self._ranges:
            if point[loop_range.var] not in loop_range:
                return False
        return self._guards.satisfied(point)

    # -- constraint view ------------------------------------------------------

    def constraints(self, prefix: str = "") -> ConstraintSystem:
        """The full conjunction describing the domain.

        With a *prefix*, iterators are renamed ``prefix + name`` — used to
        build dependence systems over two copies of the same domain.
        """
        system = ConstraintSystem()
        for loop_range in self._ranges:
            var = prefix + loop_range.var
            system.add(Constraint.ge(var, loop_range.begin))
            system.add(Constraint.le(var, loop_range.last))
        if prefix:
            mapping = {r.var: prefix + r.var for r in self._ranges}
            system.extend(self._guards.rename(mapping))
        else:
            system.extend(self._guards)
        return system

    # -- restriction / iteration ----------------------------------------------

    def restrict(self, sub_bounds: Mapping[str, Tuple[int, int]]) -> "Domain":
        """Clamp iterator ranges to sub-intervals (used to form tiles).

        The result keeps stride/alignment: the restricted begin is rounded
        up to the next on-stride value.
        """
        ranges = []
        for loop_range in self._ranges:
            if loop_range.var not in sub_bounds:
                ranges.append(loop_range)
                continue
            lo, hi = sub_bounds[loop_range.var]
            lo = max(lo, loop_range.begin)
            hi = min(hi, loop_range.last)
            if lo > hi:
                ranges.append(LoopRange(loop_range.var, lo, 0, loop_range.stride))
                continue
            offset = (lo - loop_range.begin) % loop_range.stride
            if offset:
                lo += loop_range.stride - offset
            count = 0 if lo > hi else (hi - lo) // loop_range.stride + 1
            ranges.append(LoopRange(loop_range.var, lo, count, loop_range.stride))
        return Domain(ranges, self._guards)

    def points(self) -> Iterator[Dict[str, int]]:
        """Enumerate lattice points honouring guards (tests & the VM only)."""
        def recurse(index: int, point: Dict[str, int]):
            if index == len(self._ranges):
                if self._guards.satisfied(point):
                    yield dict(point)
                return
            loop_range = self._ranges[index]
            for value in loop_range.values():
                point[loop_range.var] = value
                yield from recurse(index + 1, point)
            point.pop(loop_range.var, None)

        yield from recurse(0, {})

    def is_empty(self) -> bool:
        return any(r.n == 0 for r in self._ranges)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{r.begin}<={r.var}<={r.last}" +
            (f" step {r.stride}" if r.stride != 1 else "")
            for r in self._ranges
        )
        if len(self._guards):
            parts += f" | {self._guards!r}"
        return f"Domain({parts})"
