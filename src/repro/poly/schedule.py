"""Schedule tuples in the 2d+1 (Kelly) representation and tiling thereof.

A statement nested in ``d`` loops has the schedule
``Phi(S[i1..id]) = (b0, i1, b1, i2, ..., id, bd)`` where the ``b`` entries
are static positions within the enclosing body (Section 2.2.1 uses exactly
this interleaved form, e.g. ``Phi(Stmt3[i,j]) = (1, i, 1, j)`` plus the
trailing order constant).

Tiling a band of loops rewrites the schedule as in Section 5.2.2:
``(..., i1, ..., iL, rest...)`` becomes
``(..., floor(i1/K1), ..., floor(iL/KL), i1 mod K1, ..., iL mod KL, rest...)``.
Floor/mod make the tiled schedule non-affine, so it is evaluated pointwise;
the analytic legality question is answered by the permutable-band criterion
in :mod:`repro.loopir.validity`, and :func:`check_pairs_legal` re-verifies
Eq. 5.1 on concrete dependent pairs (used by the test-suite as an oracle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from .affine import lex_compare

CONST = "const"
ITER = "iter"


@dataclass(frozen=True)
class ScheduleDim:
    """One schedule dimension: a static constant or a loop iterator."""

    kind: str
    value: object  # int for CONST, iterator name for ITER

    @staticmethod
    def static(value: int) -> "ScheduleDim":
        return ScheduleDim(CONST, value)

    @staticmethod
    def loop(name: str) -> "ScheduleDim":
        return ScheduleDim(ITER, name)

    @property
    def is_iter(self) -> bool:
        return self.kind == ITER


class Schedule:
    """An ordered tuple of schedule dimensions for one statement."""

    def __init__(self, dims: Sequence[ScheduleDim]):
        self._dims = tuple(dims)

    @property
    def dims(self) -> Tuple[ScheduleDim, ...]:
        return self._dims

    def iterators(self) -> Tuple[str, ...]:
        return tuple(d.value for d in self._dims if d.is_iter)

    def evaluate(self, point: Mapping[str, int]) -> Tuple[int, ...]:
        """The concrete lexicographic timestamp of one statement instance."""
        values = []
        for dim in self._dims:
            if dim.is_iter:
                values.append(int(point[dim.value]))
            else:
                values.append(int(dim.value))
        return tuple(values)

    def statics_below(self, depth: int) -> Tuple[int, ...]:
        """Static (constant) dims after the first *depth* iterator dims.

        Used to decide textual order between two statements whose shared
        iterators are all equal (loop-independent dependences).
        """
        seen = 0
        statics = []
        for dim in self._dims:
            if dim.is_iter:
                seen += 1
                if seen > depth:
                    break
            elif seen >= depth:
                statics.append(int(dim.value))
        return tuple(statics)

    def __repr__(self) -> str:
        parts = [str(d.value) for d in self._dims]
        return "(" + ", ".join(parts) + ")"


class TiledSchedule:
    """A schedule with a band of iterators tiled (floor/mod expansion)."""

    def __init__(self, base: Schedule, band: Sequence[str],
                 tile_sizes: Mapping[str, int]):
        missing = [v for v in band if v not in tile_sizes]
        if missing:
            raise ValueError(f"missing tile sizes for band loops {missing}")
        self._base = base
        self._band = tuple(band)
        self._sizes = {v: int(tile_sizes[v]) for v in band}
        for var, size in self._sizes.items():
            if size <= 0:
                raise ValueError(f"tile size for {var} must be positive")

    def evaluate(self, point: Mapping[str, int]) -> Tuple[int, ...]:
        """Timestamp under the tiled schedule of Section 5.2.2.

        The band iterators are replaced in place by their tile indices and a
        block of intra-tile remainders is inserted right after the last band
        iterator; everything else keeps its relative position.
        """
        values = []
        remainders = []
        band_remaining = set(self._band)
        for dim in self._base.dims:
            if dim.is_iter and dim.value in self._sizes:
                size = self._sizes[dim.value]
                coord = int(point[dim.value])
                values.append(coord // size)
                remainders.append(coord % size)
                band_remaining.discard(dim.value)
                if not band_remaining:
                    values.extend(remainders)
            else:
                if dim.is_iter:
                    values.append(int(point[dim.value]))
                else:
                    values.append(int(dim.value))
        return tuple(values)


def check_pairs_legal(pairs, src_schedule, dst_schedule) -> bool:
    """Eq. 5.1 oracle: every (source, sink) pair keeps source strictly first.

    *pairs* is an iterable of ``(src_point, dst_point)`` dictionaries;
    the schedules may be :class:`Schedule` or :class:`TiledSchedule`.
    Timestamps of differing lengths are compared on their common prefix
    first (standard Kelly-tuple semantics: shorter tuples order before
    longer ones when the prefix ties).
    """
    for src_point, dst_point in pairs:
        src_ts = src_schedule.evaluate(src_point)
        dst_ts = dst_schedule.evaluate(dst_point)
        width = min(len(src_ts), len(dst_ts))
        cmp = lex_compare(src_ts[:width], dst_ts[:width])
        if cmp > 0:
            return False
        if cmp == 0 and len(src_ts) >= len(dst_ts) and src_ts == dst_ts:
            # identical timestamps: the pair no longer has a defined order
            return False
    return True
