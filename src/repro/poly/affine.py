"""Affine expressions over named integer iterators.

The polyhedral model used throughout this reproduction restricts programs to
rectangular iteration domains with affine array subscripts (the same
restriction the paper imposes in Section 3.2).  An :class:`AffineExpr` is an
exact integer-coefficient linear form ``c0 + sum_i c_i * x_i`` over named
iterator variables.  It is the atom from which access relations, guards and
dependence systems are built.

Expressions are immutable and hashable; arithmetic returns new objects.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Union

Number = Union[int, Fraction]
ExprLike = Union["AffineExpr", int, str]


class AffineExpr:
    """An immutable affine form ``const + sum(coeff[v] * v)``.

    Parameters
    ----------
    coeffs:
        Mapping from variable name to integer (or Fraction) coefficient.
        Zero coefficients are dropped.
    const:
        The constant term.
    """

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(self, coeffs: Mapping[str, Number] | None = None,
                 const: Number = 0):
        items = {}
        if coeffs:
            for var, coeff in coeffs.items():
                if coeff != 0:
                    items[var] = coeff
        self._coeffs = dict(sorted(items.items()))
        self._const = const
        self._hash = hash((tuple(self._coeffs.items()), const))

    # -- constructors -----------------------------------------------------

    @classmethod
    def var(cls, name: str) -> "AffineExpr":
        """The expression consisting of a single variable."""
        return cls({name: 1})

    @classmethod
    def const(cls, value: Number) -> "AffineExpr":
        """A constant expression."""
        return cls({}, value)

    @classmethod
    def coerce(cls, value: ExprLike) -> "AffineExpr":
        """Turn an int, a variable name or an AffineExpr into an AffineExpr."""
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, str):
            return cls.var(value)
        if isinstance(value, (int, Fraction)):
            return cls.const(value)
        raise TypeError(f"cannot coerce {value!r} to AffineExpr")

    # -- observers ---------------------------------------------------------

    @property
    def coeffs(self) -> Mapping[str, Number]:
        return dict(self._coeffs)

    @property
    def constant(self) -> Number:
        return self._const

    def coeff(self, var: str) -> Number:
        """Coefficient of *var* (0 if absent)."""
        return self._coeffs.get(var, 0)

    def variables(self) -> frozenset:
        """The set of variables with non-zero coefficient."""
        return frozenset(self._coeffs)

    def is_constant(self) -> bool:
        return not self._coeffs

    def is_single_var(self) -> bool:
        """True when the expression is exactly ``1 * v + c``."""
        return len(self._coeffs) == 1 and next(iter(self._coeffs.values())) == 1

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, assignment: Mapping[str, Number]) -> Number:
        """Evaluate under a full assignment of the expression's variables."""
        total = self._const
        for var, coeff in self._coeffs.items():
            total += coeff * assignment[var]
        return total

    def bounds(self, box: Mapping[str, tuple]) -> tuple:
        """Exact [min, max] over a box of per-variable inclusive ranges.

        For affine forms the extremes are attained at box corners, picked
        per-variable according to the coefficient sign.  Variables missing
        from *box* must not appear in the expression.
        """
        lo = hi = self._const
        for var, coeff in self._coeffs.items():
            vmin, vmax = box[var]
            if coeff >= 0:
                lo += coeff * vmin
                hi += coeff * vmax
            else:
                lo += coeff * vmax
                hi += coeff * vmin
        return lo, hi

    def substitute(self, bindings: Mapping[str, ExprLike]) -> "AffineExpr":
        """Replace variables by expressions (affine composition)."""
        result = AffineExpr.const(self._const)
        for var, coeff in self._coeffs.items():
            if var in bindings:
                result = result + AffineExpr.coerce(bindings[var]) * coeff
            else:
                result = result + AffineExpr({var: coeff})
        return result

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        """Rename variables (e.g. prime the sink iteration vector)."""
        return AffineExpr(
            {mapping.get(v, v): c for v, c in self._coeffs.items()},
            self._const,
        )

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: ExprLike) -> "AffineExpr":
        other = AffineExpr.coerce(other)
        coeffs = dict(self._coeffs)
        for var, coeff in other._coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + coeff
        return AffineExpr(coeffs, self._const + other._const)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr({v: -c for v, c in self._coeffs.items()}, -self._const)

    def __sub__(self, other: ExprLike) -> "AffineExpr":
        return self + (-AffineExpr.coerce(other))

    def __rsub__(self, other: ExprLike) -> "AffineExpr":
        return AffineExpr.coerce(other) + (-self)

    def __mul__(self, scalar: Number) -> "AffineExpr":
        if not isinstance(scalar, (int, Fraction)):
            raise TypeError("AffineExpr can only be scaled by a number")
        return AffineExpr(
            {v: c * scalar for v, c in self._coeffs.items()},
            self._const * scalar,
        )

    __rmul__ = __mul__

    # -- comparison / hashing -------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for var, coeff in self._coeffs.items():
            if coeff == 1:
                parts.append(var)
            elif coeff == -1:
                parts.append(f"-{var}")
            else:
                parts.append(f"{coeff}*{var}")
        if self._const != 0 or not parts:
            parts.append(str(self._const))
        text = " + ".join(parts).replace("+ -", "- ")
        return text


def aff(value: ExprLike) -> AffineExpr:
    """Shorthand coercion used pervasively by the kernel builder DSL."""
    return AffineExpr.coerce(value)


def parse_affine(text: str, constants: Mapping[str, int] | None = None) -> AffineExpr:
    """Parse a tiny affine expression grammar like ``"p + NR - r - 1"``.

    Supports ``+``, ``-``, integer literals, integer*var products and
    symbolic constants resolved through *constants*.  This mirrors the
    subscripts accepted by the paper's front end (pet) on the benchmark
    corpus.
    """
    constants = constants or {}
    expr = AffineExpr.const(0)
    token = ""
    sign = 1
    tokens = []
    for char in text.replace("-", " - ").replace("+", " + ").split():
        tokens.append(char)
    for tok in tokens:
        if tok == "+":
            sign = 1
            continue
        if tok == "-":
            sign = -1
            continue
        expr = expr + _parse_term(tok, constants) * sign
        sign = 1
    return expr


def _parse_term(token: str, constants: Mapping[str, int]) -> AffineExpr:
    if "*" in token:
        left, right = token.split("*", 1)
        left_e = _parse_atom(left, constants)
        right_e = _parse_atom(right, constants)
        if left_e.is_constant():
            return right_e * left_e.constant
        if right_e.is_constant():
            return left_e * right_e.constant
        raise ValueError(f"non-affine product: {token}")
    return _parse_atom(token, constants)


def _parse_atom(token: str, constants: Mapping[str, int]) -> AffineExpr:
    token = token.strip()
    if not token:
        raise ValueError("empty token in affine expression")
    try:
        return AffineExpr.const(int(token))
    except ValueError:
        pass
    if token in constants:
        return AffineExpr.const(constants[token])
    return AffineExpr.var(token)


def lex_compare(a: Iterable[Number], b: Iterable[Number]) -> int:
    """Lexicographic comparison of two numeric tuples: -1, 0 or +1."""
    a = tuple(a)
    b = tuple(b)
    if len(a) != len(b):
        raise ValueError("lexicographic comparison of unequal-length tuples")
    for x, y in zip(a, b):
        if x < y:
            return -1
        if x > y:
            return 1
    return 0
