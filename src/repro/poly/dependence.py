"""Value-flow dependence analysis via hierarchical direction vectors.

This module answers the two legality questions of Section 5.2.1 for the
restricted program class of Section 3.2 (rectangular domains, affine
accesses):

- which shared loop levels carry a dependence and with what sign
  (*direction vectors*), and
- whether a dependence can be *loop independent* (all shared levels equal,
  textual order decides).

The tester follows the classical Lamport/Banerjee scheme the paper refers
to: for each pair of accesses to the same array with at least one write,
build the affine system

    src in D_src  and  dst in D_dst  and  subscripts equal
    and the chosen direction prefix over the shared loops,

and decide feasibility with the rational Fourier–Motzkin test (plus a GCD
pre-test).  Directions are enumerated hierarchically outermost-first with
pruning, under the constraint that the first non-'=' level must be '<'
(source lexicographically before sink — pairs in ``Dep`` are ordered by the
original schedule).  The analysis is conservative: a rationally feasible
system is reported as a real dependence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as iter_product
from typing import Dict, FrozenSet, List, Sequence, Tuple

from .access import Access, Array
from .affine import AffineExpr
from .constraint import Constraint, ConstraintSystem
from .domain import Domain
from .fm import is_feasible
from .schedule import Schedule

#: Direction encodings for distance component t - s at a shared loop level.
LT = "<"   # t > s : positive distance, dependence flows forward
EQ_DIR = "="   # t == s
GT = ">"   # t < s : negative distance (legal only below a '<' level)

_SRC = "s$"
_DST = "t$"


def carried_level(direction: Tuple[str, ...]):
    """Index of the first non-'=' component, or None if loop independent.

    Every admissible vector's first non-'=' component is '<' (the
    enumeration in :class:`DependenceAnalyzer` only emits such vectors),
    so this is the level whose sequential loop orders the two instances.
    """
    for index, sign in enumerate(direction):
        if sign != EQ_DIR:
            return index
    return None


@dataclass(frozen=True)
class Dependence:
    """One dependence edge of the ``Dep`` set (Eq. 2.1), summarised.

    Attributes
    ----------
    src_stmt, dst_stmt:
        Names of the source and sink statements.
    array:
        Name of the array through which the dependence flows.
    kind:
        ``"RAW"``, ``"WAR"`` or ``"WAW"``.
    shared_loops:
        The loops shared by both statements, outermost first.
    directions:
        Every feasible direction vector over the shared loops.  The empty
        tuple set means the dependence exists only between instances with
        identical shared iterators (loop independent).
    loop_independent:
        Whether an all-'=' dependence (textual order) is feasible.
    """

    src_stmt: str
    dst_stmt: str
    array: str
    kind: str
    shared_loops: Tuple[str, ...]
    directions: FrozenSet[Tuple[str, ...]]
    loop_independent: bool

    def carried_by(self, loop: str) -> bool:
        """True when some direction vector is first-nonzero at *loop*."""
        if loop not in self.shared_loops:
            return False
        level = self.shared_loops.index(loop)
        for direction in self.directions:
            if direction[level] == LT and all(
                    d == EQ_DIR for d in direction[:level]):
                return True
        return False

    def component_signs(self, loop: str) -> FrozenSet[str]:
        """All direction symbols occurring at *loop* over feasible vectors."""
        if loop not in self.shared_loops:
            return frozenset()
        level = self.shared_loops.index(loop)
        return frozenset(d[level] for d in self.directions)

    def has_nonzero_at(self, loop: str) -> bool:
        """Paper's parallelization criterion: any non-'=' component at loop."""
        signs = self.component_signs(loop)
        return bool(signs - {EQ_DIR})

    def confined_above(self, loop: str) -> bool:
        """True when every instance pair lies in one iteration of *loop*'s
        ancestors — i.e. the dependence is carried strictly above *loop*.

        Such a dependence never relates instances from different
        iterations of any loop at or below *loop*, so a transform that
        only reorders statements within one iteration of the enclosing
        nest (loop fission at *loop*) cannot violate it.
        """
        if loop not in self.shared_loops:
            return False
        if self.loop_independent:
            return False
        level = self.shared_loops.index(loop)
        for direction in self.directions:
            carried = carried_level(direction)
            if carried is None or carried >= level:
                return False
        return True

    def __repr__(self) -> str:
        dirs = ",".join("".join(d) for d in sorted(self.directions)) or "-"
        li = "+LI" if self.loop_independent else ""
        return (f"Dep[{self.kind}] {self.src_stmt} -> {self.dst_stmt} "
                f"via {self.array} ({dirs}{li})")


@dataclass
class StatementInfo:
    """What the tester needs to know about one statement."""

    name: str
    domain: Domain
    schedule: Schedule
    accesses: Sequence[Access]


def shared_prefix(a: Sequence[str], b: Sequence[str]) -> Tuple[str, ...]:
    """Longest common prefix of two iterator name sequences."""
    out = []
    for x, y in zip(a, b):
        if x != y:
            break
        out.append(x)
    return tuple(out)


class DependenceAnalyzer:
    """Computes the ``Dep`` set for a list of statements."""

    def __init__(self, statements: Sequence[StatementInfo]):
        self._stmts = list(statements)

    def analyze(self) -> List[Dependence]:
        """All dependences between every ordered statement pair."""
        deps: List[Dependence] = []
        for src in self._stmts:
            for dst in self._stmts:
                deps.extend(self._pair_dependences(src, dst))
        return deps

    # -- one statement pair ----------------------------------------------

    def _pair_dependences(self, src: StatementInfo,
                          dst: StatementInfo) -> List[Dependence]:
        shared = shared_prefix(src.domain.iterators, dst.domain.iterators)
        deps = []
        for src_access in src.accesses:
            for dst_access in dst.accesses:
                if src_access.array.name != dst_access.array.name:
                    continue
                if src_access.is_read and dst_access.is_read:
                    continue
                kind = _dependence_kind(src_access, dst_access)
                dep = self._test_access_pair(
                    src, dst, src_access, dst_access, shared, kind)
                if dep is not None:
                    deps.append(dep)
        return deps

    def _test_access_pair(self, src, dst, src_access, dst_access,
                          shared, kind):
        base = self._base_system(src, dst, src_access, dst_access)
        if not is_feasible(base):
            return None

        loop_independent = self._loop_independent_feasible(
            src, dst, base, shared)

        directions = set()
        if shared:
            self._enumerate(base, shared, [], directions)

        if not directions and not loop_independent:
            return None
        return Dependence(
            src_stmt=src.name,
            dst_stmt=dst.name,
            array=src_access.array.name,
            kind=kind,
            shared_loops=shared,
            directions=frozenset(directions),
            loop_independent=loop_independent,
        )

    # -- system construction ------------------------------------------------

    def _base_system(self, src, dst, src_access, dst_access) -> ConstraintSystem:
        """Domains of both instances plus subscript equality."""
        system = ConstraintSystem()
        system.extend(src.domain.constraints(prefix=_SRC))
        system.extend(dst.domain.constraints(prefix=_DST))
        src_map = {v: _SRC + v for v in src.domain.iterators}
        dst_map = {v: _DST + v for v in dst.domain.iterators}
        for src_idx, dst_idx in zip(src_access.indices, dst_access.indices):
            lhs = src_idx.rename(src_map)
            rhs = dst_idx.rename(dst_map)
            system.add(Constraint.eq(lhs, rhs))
        return system

    def _loop_independent_feasible(self, src, dst, base, shared) -> bool:
        """All shared levels '=' and src textually precedes dst."""
        depth = len(shared)
        src_statics = src.schedule.statics_below(depth)
        dst_statics = dst.schedule.statics_below(depth)
        if src.name == dst.name:
            # Same instance: not a dependence between distinct instances.
            return False
        width = min(len(src_statics), len(dst_statics))
        from .affine import lex_compare
        if lex_compare(src_statics[:width], dst_statics[:width]) >= 0:
            return False
        system = base.copy()
        for var in shared:
            system.add(Constraint.eq(_SRC + var, AffineExpr.var(_DST + var)))
        return is_feasible(system)

    def _enumerate(self, base, shared, prefix, out):
        """Hierarchical direction enumeration with feasibility pruning."""
        level = len(prefix)
        if level == len(shared):
            if any(d == LT for d in prefix):
                out.add(tuple(prefix))
            return

        # Before the first '<', only '<' and '=' are admissible (the source
        # must precede the sink lexicographically).
        first_lt_seen = LT in prefix
        candidates = (LT, EQ_DIR, GT) if first_lt_seen else (LT, EQ_DIR)

        for direction in candidates:
            system = base.copy()
            ok = True
            for var, chosen in zip(shared, [*prefix, direction]):
                src_var = AffineExpr.var(_SRC + var)
                dst_var = AffineExpr.var(_DST + var)
                if chosen == LT:
                    system.add(Constraint.gt(dst_var, src_var))
                elif chosen == EQ_DIR:
                    system.add(Constraint.eq(dst_var, src_var))
                else:
                    system.add(Constraint.lt(dst_var, src_var))
            if is_feasible(system):
                self._enumerate(base, shared, [*prefix, direction], out)


def _dependence_kind(src_access: Access, dst_access: Access) -> str:
    if src_access.is_write and dst_access.is_write:
        return "WAW"
    if src_access.is_write:
        return "RAW"
    return "WAR"


def concrete_pairs(src: StatementInfo, dst: StatementInfo,
                   dependence: Dependence, limit: int = 2000):
    """Enumerate concrete (source point, sink point) dependent pairs.

    Brute-force over both domains; intended for small test kernels as an
    oracle against the analytic direction vectors and for the Eq. 5.1
    schedule-legality re-check.
    """
    src_access = _find_access(src, dependence, want_write=dependence.kind != "WAR")
    dst_access = _find_access(dst, dependence,
                              want_write=dependence.kind in ("WAW", "WAR"))
    pairs = []
    for src_point in src.domain.points():
        src_elem = src_access.element(src_point)
        for dst_point in dst.domain.points():
            if dst_access.element(dst_point) != src_elem:
                continue
            src_ts = src.schedule.evaluate(src_point)
            dst_ts = dst.schedule.evaluate(dst_point)
            width = min(len(src_ts), len(dst_ts))
            from .affine import lex_compare
            if lex_compare(src_ts[:width], dst_ts[:width]) < 0:
                pairs.append((src_point, dst_point))
                if len(pairs) >= limit:
                    return pairs
    return pairs


def dependence_graph(dependences: Sequence[Dependence]
                     ) -> Dict[Tuple[str, str], List[Dependence]]:
    """Group a ``Dep`` set into a statement graph keyed by (src, dst).

    The source analyzer's fission pass walks this as the edge set of the
    statement dependence graph; edges keep the analyzer's emission order
    so verdicts derived from them are deterministic.
    """
    graph: Dict[Tuple[str, str], List[Dependence]] = {}
    for dep in dependences:
        graph.setdefault((dep.src_stmt, dep.dst_stmt), []).append(dep)
    return graph


def _find_access(info: StatementInfo, dependence: Dependence,
                 want_write: bool) -> Access:
    for access in info.accesses:
        if access.array.name == dependence.array and \
                access.is_write == want_write:
            return access
    raise LookupError(
        f"statement {info.name} has no matching access to {dependence.array}")
