"""Fourier–Motzkin elimination for rational feasibility of affine systems.

The dependence tester (:mod:`repro.poly.dependence`) reduces "does a
dependence with this direction vector exist?" to the feasibility of a small
conjunction of affine constraints over the source and sink iteration
vectors.  We decide feasibility over the rationals with exact ``Fraction``
arithmetic; the test is *conservative* for the integer question in exactly
the way the paper requires ("the dependency analysis is conservative"):

- rationally infeasible  => no integer point          => independent
- rationally feasible    => assume a dependence exists

A GCD pre-test on equalities removes the most common spurious rational
solutions (strided accesses).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Tuple

from .affine import AffineExpr
from .constraint import EQ, GE, ConstraintSystem

# A linear inequality sum(coeffs[i] * x_i) + const >= 0 in dense form.
_Row = Tuple[Tuple[Fraction, ...], Fraction]


class FMResult:
    """Feasibility verdict with a human-readable reason (for diagnostics)."""

    def __init__(self, feasible: bool, reason: str):
        self.feasible = feasible
        self.reason = reason

    def __bool__(self) -> bool:
        return self.feasible

    def __repr__(self) -> str:
        verdict = "feasible" if self.feasible else "infeasible"
        return f"FMResult({verdict}: {self.reason})"


def is_feasible(system: ConstraintSystem) -> bool:
    """True when the system has a rational solution (conservative integer)."""
    return bool(check_feasibility(system))


def check_feasibility(system: ConstraintSystem) -> FMResult:
    """Run the GCD pre-test then rational Fourier–Motzkin elimination."""
    variables = sorted(system.variables())
    if not _gcd_test(system, variables):
        return FMResult(False, "gcd test refuted an equality")

    rows = _to_rows(system, variables)
    if rows is None:
        return FMResult(False, "constant constraint violated")
    return _eliminate(rows, len(variables))


def _gcd_test(system: ConstraintSystem, variables: List[str]) -> bool:
    """Classic GCD test: an equality sum(c_i x_i) = -c0 with integer x
    requires gcd(c_i) | c0.  Returns False when some equality is refuted.
    """
    for constraint in system:
        if constraint.kind != EQ:
            continue
        coeffs = [constraint.expr.coeff(v) for v in variables]
        coeffs = [c for c in coeffs if c != 0]
        const = constraint.expr.constant
        if not all(isinstance(c, int) for c in coeffs) or not isinstance(const, int):
            continue
        if not coeffs:
            if const != 0:
                return False
            continue
        divisor = 0
        for coeff in coeffs:
            divisor = math.gcd(divisor, abs(coeff))
        if divisor and const % divisor != 0:
            return False
    return True


def _to_rows(system: ConstraintSystem, variables: List[str]):
    """Densify to inequality rows; equalities become two inequalities.

    Returns None if a variable-free constraint is already violated.
    """
    index: Dict[str, int] = {v: i for i, v in enumerate(variables)}
    rows: List[_Row] = []
    for constraint in system:
        coeffs = [Fraction(0)] * len(variables)
        for var, coeff in constraint.expr.coeffs.items():
            coeffs[index[var]] = Fraction(coeff)
        const = Fraction(constraint.expr.constant)
        if all(c == 0 for c in coeffs):
            if constraint.kind == EQ and const != 0:
                return None
            if constraint.kind == GE and const < 0:
                return None
            continue
        rows.append((tuple(coeffs), const))
        if constraint.kind == EQ:
            rows.append((tuple(-c for c in coeffs), -const))
    return rows


def _eliminate(rows: List[_Row], nvars: int) -> FMResult:
    """Eliminate variables one by one, combining opposite-sign rows."""
    for var in range(nvars):
        positive: List[_Row] = []
        negative: List[_Row] = []
        neutral: List[_Row] = []
        for coeffs, const in rows:
            coeff = coeffs[var]
            if coeff > 0:
                positive.append((coeffs, const))
            elif coeff < 0:
                negative.append((coeffs, const))
            else:
                neutral.append((coeffs, const))

        new_rows = neutral
        for pos_coeffs, pos_const in positive:
            for neg_coeffs, neg_const in negative:
                # pos gives lower bound on x_var, neg gives upper bound;
                # combine so the variable cancels.
                scale_pos = -neg_coeffs[var]
                scale_neg = pos_coeffs[var]
                coeffs = tuple(
                    scale_pos * pc + scale_neg * nc
                    for pc, nc in zip(pos_coeffs, neg_coeffs)
                )
                const = scale_pos * pos_const + scale_neg * neg_const
                if all(c == 0 for c in coeffs):
                    if const < 0:
                        return FMResult(
                            False, f"contradiction eliminating var {var}")
                    continue
                new_rows.append((coeffs, const))
        rows = _dedupe(new_rows)
        if not rows:
            return FMResult(True, "all constraints eliminated")

    for coeffs, const in rows:
        if const < 0:
            return FMResult(False, "residual constant constraint violated")
    return FMResult(True, "system reduced to satisfiable constants")


def _dedupe(rows: List[_Row]) -> List[_Row]:
    """Normalize rows and drop duplicates / obviously dominated copies."""
    seen = {}
    for coeffs, const in rows:
        scale = None
        for coeff in coeffs:
            if coeff != 0:
                scale = abs(coeff)
                break
        if scale is None:
            scale = Fraction(1)
        key = tuple(c / scale for c in coeffs)
        value = const / scale
        # For identical left-hand sides keep the tightest (smallest) constant:
        # coeffs.x + const >= 0, smaller const is the stronger constraint.
        if key not in seen or value < seen[key]:
            seen[key] = value
    return [(coeffs, const) for coeffs, const in seen.items()]
