"""Polyhedral-lite substrate: affine forms, domains, accesses, dependences.

This subpackage replaces the paper's use of isl/pet/PPCG for the restricted
program class the paper targets (rectangular domains, uniform strides,
affine subscripts).  See DESIGN.md section 2 for the substitution argument.
"""

from .access import Access, Array, READ, WRITE, read, write
from .affine import AffineExpr, aff, lex_compare, parse_affine
from .constraint import Constraint, ConstraintSystem, box_constraints
from .dependence import (
    Dependence,
    DependenceAnalyzer,
    StatementInfo,
    concrete_pairs,
    shared_prefix,
)
from .domain import Domain, LoopRange
from .fm import check_feasibility, is_feasible
from .schedule import Schedule, ScheduleDim, TiledSchedule, check_pairs_legal

__all__ = [
    "Access", "Array", "READ", "WRITE", "read", "write",
    "AffineExpr", "aff", "lex_compare", "parse_affine",
    "Constraint", "ConstraintSystem", "box_constraints",
    "Dependence", "DependenceAnalyzer", "StatementInfo",
    "concrete_pairs", "shared_prefix",
    "Domain", "LoopRange",
    "check_feasibility", "is_feasible",
    "Schedule", "ScheduleDim", "TiledSchedule", "check_pairs_legal",
]
