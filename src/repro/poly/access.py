"""Array declarations and affine access relations.

An :class:`Array` is a rectangular row-major C array with an element type.
An :class:`Access` maps a statement's iteration vector to an array element
through a tuple of affine subscript expressions — the access relation
``A_a^Stmt = {Stmt(i,...) -> a(f1(i,...), ..., fn(i,...))}`` of Section 2.2.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from .affine import AffineExpr, ExprLike, aff

READ = "read"
WRITE = "write"

#: Element type name -> size in bytes (the corpus uses 4-byte elements).
ELEMENT_SIZES = {
    "int32_t": 4,
    "uint32_t": 4,
    "float": 4,
    "int64_t": 8,
    "uint64_t": 8,
    "double": 8,
}


@dataclass(frozen=True)
class Array:
    """A row-major C array ``etype name[shape[0]]...[shape[n-1]]``."""

    name: str
    shape: Tuple[int, ...]
    etype: str = "float"

    def __post_init__(self):
        if not self.shape:
            raise ValueError(f"array {self.name}: scalar arrays not supported")
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"array {self.name}: non-positive extent {self.shape}")
        if self.etype not in ELEMENT_SIZES:
            raise ValueError(f"array {self.name}: unknown element type {self.etype}")

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def element_size(self) -> int:
        return ELEMENT_SIZES[self.etype]

    @property
    def total_elements(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def total_bytes(self) -> int:
        return self.total_elements * self.element_size

    def linear_index(self, indices: Sequence[int]) -> int:
        """Row-major flat element offset for a full index tuple."""
        if len(indices) != self.ndim:
            raise ValueError(
                f"array {self.name}: expected {self.ndim} indices, "
                f"got {len(indices)}")
        offset = 0
        for index, extent in zip(indices, self.shape):
            if not 0 <= index < extent:
                raise IndexError(
                    f"array {self.name}: index {indices} out of bounds "
                    f"for shape {self.shape}")
            offset = offset * extent + index
        return offset

    def __repr__(self) -> str:
        dims = "".join(f"[{s}]" for s in self.shape)
        return f"{self.etype} {self.name}{dims}"


class Access:
    """An affine read or write access performed by a statement.

    Parameters
    ----------
    array:
        The accessed :class:`Array`.
    indices:
        One affine expression per array dimension, over the statement's
        iterators (strings and ints are coerced).
    kind:
        :data:`READ` or :data:`WRITE`.
    """

    __slots__ = ("array", "indices", "kind")

    def __init__(self, array: Array, indices: Sequence[ExprLike], kind: str):
        if kind not in (READ, WRITE):
            raise ValueError(f"access kind must be read/write, got {kind!r}")
        exprs = tuple(aff(e) for e in indices)
        if len(exprs) != array.ndim:
            raise ValueError(
                f"array {array.name} has {array.ndim} dims, "
                f"access supplies {len(exprs)} subscripts")
        self.array = array
        self.indices = exprs
        self.kind = kind

    @property
    def is_read(self) -> bool:
        return self.kind == READ

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE

    def variables(self) -> frozenset:
        names = frozenset()
        for expr in self.indices:
            names |= expr.variables()
        return names

    def element(self, point: Mapping[str, int]) -> Tuple[int, ...]:
        """The concrete element touched at an iteration point."""
        return tuple(int(expr.evaluate(point)) for expr in self.indices)

    def index_bounds(self, box: Mapping[str, Tuple[int, int]]):
        """Per-dimension inclusive [min, max] element indices over a box.

        This is the rectangular-hull computation behind the canonical data
        element ranges of Section 5.3.1 — exact for affine subscripts over
        rectangular tiles.
        """
        return tuple(expr.bounds(box) for expr in self.indices)

    def __repr__(self) -> str:
        subs = "".join(f"[{e!r}]" for e in self.indices)
        tag = "R" if self.is_read else "W"
        return f"{tag}:{self.array.name}{subs}"


def read(array: Array, *indices: ExprLike) -> Access:
    """Convenience constructor for a read access."""
    return Access(array, indices, READ)


def write(array: Array, *indices: ExprLike) -> Access:
    """Convenience constructor for a write access."""
    return Access(array, indices, WRITE)
