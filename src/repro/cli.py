"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tree``      print the loop tree of a kernel
``compile``   run the full pipeline and report the chosen schedule
``trace``     print the PREM API schedule trace of one component
``codegen``   emit the PREM-C of every compiled component
``gantt``     render the schedule timeline of the first component
``sweep``     makespan across bus speeds (mini Figure 6.1 for one kernel)
``pareto``    exact makespan/SPM/DMA/cores frontier per component
``analyze``   static PREM-compliance verification (no VM involved)
``faults``    seeded fault-injection campaign; injected vs detected
``cache``     persistent makespan-cache statistics / clearing / compaction
``shard``     sharded-compile coordination-log status
``shard-reduce``  merge shard results from the shared cache (exact winner)

Exit codes: 0 success, 1 expected failure (infeasible schedule,
error-severity diagnostics, missed faults), 2 bad invocation (unknown
kernel, preset, or fault kind).

Examples
--------
    python -m repro compile lstm --preset LARGE --bus 1
    python -m repro compile lstm --preset MINI --jobs 4 --cache-dir .cache
    python -m repro compile lstm --preset MINI --robust-timing \
        --scenarios 32 --risk cvar --alpha 0.9 --seed 0
    python -m repro compile cnn --preset MINI --verify-static
    python -m repro compile lstm --preset MINI --fission auto
    python -m repro compile lstm --preset SMALL --pareto
    python -m repro pareto lstm --preset SMALL --cores 8
    python -m repro pareto cnn --preset MINI \
        --weights 0.7,0.1,0.1,0.1 --weights 0.25,0.25,0.25,0.25
    python -m repro tree cnn
    python -m repro sweep rnn --cores 8
    python -m repro analyze cnn --preset MINI
    python -m repro analyze lstm --preset MINI --source
    python -m repro analyze cnn --preset SMALL --cores 1 --spm 8 --json
    python -m repro analyze cnn --selftest 200 --seed 7
    python -m repro faults lstm --seed 7
    python -m repro cache stats --cache-dir .cache
    python -m repro cache compact --cache-dir .cache
    python -m repro compile cnn --preset MINI --shard 1/3 --cache-dir .cache
    python -m repro shard-reduce cnn --preset MINI --cache-dir .cache
    python -m repro shard status --cache-dir .cache
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .compiler import PremCompiler
from .errors import KernelConfigError, ReproError
from .kernels import KERNELS, PRESET_NAMES, make_kernel
from .loopir import LoopTree
from .opt import ideal_makespan_ns
from .opt.cache import CACHE_ENV, PersistentCache, default_cache_dir
from .schedule.gantt import render_gantt
from .timing.platform import Platform


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel PREM compilation over nested loop structures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("kernel", choices=sorted(KERNELS))
        # Preset validation is deferred to make_kernel so a bad value
        # reports the offending token (argparse's choices= would hide it
        # behind a generic usage message).
        p.add_argument("--preset", default="LARGE", metavar="PRESET",
                       help="problem size preset: "
                            + ", ".join(PRESET_NAMES))
        p.add_argument("--cores", type=int, default=None)
        p.add_argument("--bus", type=float, default=16.0,
                       help="bus bandwidth in GB/s")
        p.add_argument("--spm", type=int, default=128,
                       help="per-core SPM size in KiB")
        p.add_argument("--greedy", action="store_true",
                       help="use the greedy baseline optimizer")
        p.add_argument("--pruned", action="store_true",
                       help="bound-driven exhaustive search (identical "
                            "winner, far fewer segment plans)")
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for candidate evaluation "
                            "(1 = serial; results are identical)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent makespan-cache directory (also "
                            f"honours ${CACHE_ENV})")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the persistent makespan cache")

    compile_cmd = sub.add_parser("compile", help="optimize and report")
    add_common(compile_cmd)
    compile_cmd.add_argument(
        "--robust", action="store_true",
        help="graceful degradation: exhaustive -> greedy -> sequential")
    compile_cmd.add_argument(
        "--stage-budget", type=float, default=10.0, metavar="S",
        help="wall-clock budget per --robust stage in seconds")
    compile_cmd.add_argument(
        "--robust-timing", action="store_true",
        help="rank candidates by a risk objective over seeded "
             "Monte-Carlo timing scenarios instead of the nominal "
             "makespan")
    compile_cmd.add_argument(
        "--scenarios", type=int, default=32, metavar="N",
        help="timing scenarios sampled for --robust-timing "
             "(0 = nominal winner)")
    compile_cmd.add_argument(
        "--risk", choices=("cvar", "worst", "mean"), default="cvar",
        help="risk objective over the scenario makespans")
    compile_cmd.add_argument(
        "--alpha", type=float, default=0.9,
        help="CVaR tail level (fraction of scenarios averaged: 1-alpha)")
    compile_cmd.add_argument(
        "--spread", type=float, default=0.2,
        help="half-width of the multiplicative timing noise interval")
    compile_cmd.add_argument(
        "--seed", type=int, default=0,
        help="scenario-sampling seed (same seed => identical winner)")
    compile_cmd.add_argument(
        "--pareto", action="store_true",
        help="keep every component's exact makespan/SPM/DMA/cores "
             "frontier and print it next to the chosen schedule")
    compile_cmd.add_argument(
        "--shard", default=None, metavar="I/N",
        help="score only shard I of N (1-based) of every component's "
             "candidate space against a shared --cache-dir; recover the "
             "exact winner afterwards with 'shard-reduce'")
    compile_cmd.add_argument(
        "--verify-static", action="store_true",
        help="gate the result on the static PREM-compliance verifier "
             "(exit 1 on any error-severity diagnostic)")
    compile_cmd.add_argument(
        "--fission", choices=("off", "auto"), default="off",
        help="run the dependence-verified loop-fission pre-pass before "
             "component extraction (auto = maximal legal distribution)")
    add_common(sub.add_parser("codegen", help="emit PREM-C"))
    add_common(sub.add_parser("trace", help="PREM API schedule trace"))
    add_common(sub.add_parser("gantt", help="schedule timeline"))

    tree_cmd = sub.add_parser("tree", help="print the loop tree")
    tree_cmd.add_argument("kernel", choices=sorted(KERNELS))
    tree_cmd.add_argument("--preset", default="LARGE", metavar="PRESET",
                          help="problem size preset: "
                               + ", ".join(PRESET_NAMES))

    sweep = sub.add_parser("sweep", help="makespan vs bus bandwidth")
    add_common(sweep)
    sweep.add_argument(
        "--speeds", default="0.0625,0.25,1,4,16",
        help="comma-separated bus speeds in GB/s")

    pareto = sub.add_parser(
        "pareto", help="exact multi-objective frontier per component")
    add_common(pareto)
    pareto.add_argument(
        "--weights", action="append", default=None, metavar="M,SPM,DMA,C",
        help="scalarization weight vector over (makespan, SPM bytes, "
             "DMA bytes, cores); repeatable, strictly positive; "
             "default: one emphasis per objective plus the balanced mix")

    analyze = sub.add_parser(
        "analyze", help="static PREM-compliance verification")
    add_common(analyze)
    analyze.add_argument(
        "--json", action="store_true",
        help="emit the diagnostics report as JSON")
    analyze.add_argument(
        "--source", action="store_true",
        help="analyze the loop IR itself (PREM5xx: structure, "
             "dependences, legality, fission) instead of compiling "
             "and verifying artifacts")
    analyze.add_argument(
        "--passes", default=None, metavar="NAMES",
        help="comma-separated analysis passes to run (default: all)")
    analyze.add_argument(
        "--selftest", type=int, default=0, metavar="N",
        help="also run an N-case seeded swap-corruption campaign and "
             "require >=90%% static detection of harmful cases")
    analyze.add_argument(
        "--seed", type=int, default=7,
        help="selftest campaign seed (deterministic per seed)")

    faults = sub.add_parser(
        "faults", help="seeded fault-injection campaign")
    add_common(faults)
    faults.set_defaults(preset="MINI")
    faults.add_argument("--seed", type=int, default=7,
                        help="campaign seed (deterministic per seed)")
    faults.add_argument("--per-kind", type=int, default=3, metavar="N",
                        help="faults injected per kind")
    faults.add_argument("--kinds", default=None,
                        help="comma-separated fault kinds (default: all)")

    cache_cmd = sub.add_parser(
        "cache", help="persistent makespan-cache maintenance")
    cache_cmd.add_argument("action", choices=("stats", "clear", "compact"))
    cache_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"cache directory (default: ${CACHE_ENV} or "
             f"the user cache dir)")

    reduce_cmd = sub.add_parser(
        "shard-reduce",
        help="merge shard results: exact winner from the shared cache")
    add_common(reduce_cmd)

    shard_cmd = sub.add_parser(
        "shard", help="sharded-compile coordination-log status")
    shard_cmd.add_argument("action", choices=("status",))
    shard_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"shared cache directory (also honours ${CACHE_ENV})")
    shard_cmd.add_argument(
        "--stale-s", type=float, default=600.0, metavar="S",
        help="claims older than this without a done record count "
             "as stale (reclaimable)")
    return parser


def _platform(args) -> Platform:
    return Platform(spm_bytes=args.spm * 1024).with_bus(args.bus * 1e9)


def _cache(args) -> Optional[PersistentCache]:
    """Persistent cache per the CLI flags, or None.

    The cache only activates when a directory is named explicitly
    (``--cache-dir`` or $REPRO_CACHE_DIR) so that plain runs never write
    outside the working tree."""
    if getattr(args, "no_cache", False):
        return None
    directory = getattr(args, "cache_dir", None) or os.environ.get(CACHE_ENV)
    if not directory:
        return None
    return PersistentCache(directory)


def _parse_shard(token: str):
    """``--shard I/N`` (1-based on the wire) -> zero-based (index, count).

    Malformed values are a bad invocation, so they raise
    KernelConfigError and exit 2 like an unknown preset does."""
    try:
        index_text, count_text = token.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise KernelConfigError(
            f"malformed --shard value {token!r}: expected I/N, e.g. 2/3")
    if count < 1 or not 1 <= index <= count:
        raise KernelConfigError(
            f"--shard {token!r}: need 1 <= I <= N")
    return index - 1, count


def _shards(args):
    """Validated ``shards`` tuple for the compiler, or None."""
    token = getattr(args, "shard", None)
    if token is None:
        return None
    shards = _parse_shard(token)
    if getattr(args, "greedy", False):
        raise KernelConfigError(
            "--shard partitions the exhaustive candidate space; it does "
            "not compose with --greedy")
    if _cache(args) is None:
        raise KernelConfigError(
            "--shard needs the shared persistent cache: pass --cache-dir "
            f"or set ${CACHE_ENV}")
    return shards


def _compile(args, use_cache: bool = True):
    kernel = make_kernel(args.kernel, args.preset)
    cache = _cache(args) if use_cache else None
    shards = _shards(args)
    fission = getattr(args, "fission", "off")
    if getattr(args, "robust_timing", False):
        # The compiler seed doubles as the scenario-sampling seed, so
        # --seed reaches the robust search without a second knob.
        compiler = PremCompiler(
            _platform(args), seed=args.seed,
            jobs=getattr(args, "jobs", 1), cache=cache)
        return compiler.compile(
            kernel, cores=args.cores, strategy="robust",
            scenarios=args.scenarios, risk=args.risk,
            alpha=args.alpha, spread=args.spread, shards=shards,
            fission=fission)
    compiler = PremCompiler(
        _platform(args), jobs=getattr(args, "jobs", 1), cache=cache)
    if getattr(args, "pareto", False):
        strategy = "pareto"
    elif getattr(args, "pruned", False):
        strategy = "pruned"
    elif args.greedy:
        strategy = "greedy"
    elif shards is not None:
        # A shard worker must walk the same sorted candidate list on
        # every host; the bound-driven search is that list's owner.
        strategy = "pruned"
    else:
        strategy = "heuristic"
    return compiler.compile(
        kernel, cores=args.cores, strategy=strategy, shards=shards,
        fission=fission)


def cmd_tree(args) -> int:
    kernel = make_kernel(args.kernel, args.preset)
    tree = LoopTree.build(kernel)
    print(tree.render())
    print(f"\ndependences: {len(tree.dependences)}")
    return 0


def cmd_compile(args) -> int:
    if args.robust and args.shard:
        raise KernelConfigError(
            "--shard does not compose with the staged --robust pipeline "
            "(shard the --pruned or --robust-timing search instead)")
    if args.robust:
        kernel = make_kernel(args.kernel, args.preset)
        compiler = PremCompiler(
            _platform(args), jobs=args.jobs, cache=_cache(args))
        result = compiler.compile_robust(
            kernel, cores=args.cores, stage_budget_s=args.stage_budget,
            fission=args.fission)
    else:
        result = _compile(args)
    if result.fission is not None:
        from .reporting import fission_note

        print(fission_note(result.fission))
    print(result.opt_result.describe())
    print(f"\nideal single-core : {result.ideal_ns:>16,.0f} ns")
    print(f"makespan          : {result.makespan_ns:>16,.0f} ns")
    if result.feasible:
        print(f"normalised        : {result.normalized_makespan:.4f}")
    opt = result.opt_result
    print(f"evaluations       : {opt.evaluations:>16,}")
    if opt.cache_hits:
        print(f"cache hits        : {opt.cache_hits:>16,} "
              f"({opt.cache_hit_rate:.1%} of probes)")
    if opt.pruned:
        print(f"pruned            : {opt.pruned:>16,}")
    if opt.bound_hits:
        print(f"bound hits        : {opt.bound_hits:>16,}")
    if opt.chains_pruned:
        print(f"chains pruned     : {opt.chains_pruned:>16,}")
    if args.robust:
        print(f"strategy          : {result.strategy}"
              + (" (degraded)" if result.degraded else ""))
        for attempt in result.attempts:
            print(f"  {attempt.describe()}")
    if args.robust_timing:
        from .reporting import robust_note

        for choice in result.opt_result.choices:
            if hasattr(choice.result, "scenario_count"):
                print(f"{choice.component.label()}: "
                      f"{robust_note(choice.result)}")
    if getattr(args, "pareto", False):
        _print_frontiers(result.opt_result)
    if args.verify_static:
        report = result.verify_static()
        merged = report.merged
        print(f"static analysis   : {len(merged.errors)} error(s), "
              f"{len(merged.warnings)} warning(s)")
        if merged:
            print(report.render_text())
        if report.has_errors:
            return 1
    if args.shard:
        # A shard slice may hold no feasible candidate at all — that is
        # expected, not an error; the winner is recovered at reduce time.
        print(f"shard             : {args.shard} "
              f"(merge with 'shard-reduce' on the shared cache)")
        if not result.feasible:
            print("shard slice infeasible (expected for some shards)")
        return 0
    return 0 if result.feasible else 1


def cmd_codegen(args) -> int:
    result = _compile(args)
    for label, source in result.generate_c().items():
        print(f"/* ===== component {label} ===== */")
        print(source)
        print()
    return 0


def cmd_trace(args) -> int:
    from .prem.macros import MacroBuilder, render_trace

    result = _compile(args)
    if not result.components:
        print("no feasible components", file=sys.stderr)
        return 1
    compiled = result.components[0]
    builder = MacroBuilder(compiled.component, compiled.solution)
    outer = {var: 0 for var in compiled.component.outer_vars()}
    print(f"component {compiled.component.label()} "
          f"({compiled.solution.describe()})")
    print(render_trace(builder.trace(0, outer=outer)))
    return 0


def cmd_gantt(args) -> int:
    # Rendering needs a full SegmentPlan; a warm-cache winner arrives
    # plan-less, so re-plan just the chosen solution instead of
    # bypassing the cache for the whole compilation.
    result = _compile(args)
    if not result.components:
        print("no feasible components", file=sys.stderr)
        return 1
    compiled = result.components[0]
    plan = result.plan_of(compiled)
    print(f"component {compiled.component.label()} "
          f"({compiled.solution.describe()})")
    print(render_gantt(plan.cores))
    return 0


def cmd_sweep(args) -> int:
    kernel = make_kernel(args.kernel, args.preset)
    tree = LoopTree.build(kernel)
    from .opt import GreedyOptimizer, TreeOptimizer

    optimizer = TreeOptimizer(tree)
    print(f"{'bus GB/s':>10}  {'makespan ns':>16}  {'normalised':>10}")
    for token in args.speeds.split(","):
        speed = float(token)
        platform = Platform(
            spm_bytes=args.spm * 1024).with_bus(speed * 1e9)
        if args.greedy:
            def optimize_fn(component, exec_model, _p=platform):
                return GreedyOptimizer(
                    component, _p, exec_model).optimize(
                        args.cores or _p.cores)
            result = optimizer.optimize(
                platform, cores=args.cores, optimize_fn=optimize_fn)
        else:
            result = optimizer.optimize(platform, cores=args.cores)
        ideal = ideal_makespan_ns(kernel, platform)
        print(f"{speed:>10.4f}  {result.makespan_ns:>16,.0f}  "
              f"{result.makespan_ns / ideal:>10.4f}")
    return 0


def _print_frontiers(opt_result) -> None:
    """Per-component frontier tables plus the composed kernel front."""
    from .opt import kernel_front
    from .reporting import pareto_note, pareto_table

    for choice in opt_result.choices:
        result = choice.result
        if not hasattr(result, "front"):
            continue
        print(f"\n{choice.component.label()}: {pareto_note(result)}")
        if result.front:
            print(pareto_table(result.front))
        for scalar in result.scalarized:
            weights = ",".join(f"{w:g}" for w in scalar.weights)
            print(f"  weights ({weights}) -> "
                  f"{scalar.point.makespan_ns:,.0f} ns, "
                  f"{scalar.point.spm_bytes:,} B SPM, "
                  f"{scalar.point.dma_bytes:,} B DMA, "
                  f"{scalar.point.cores} cores")
    composed = kernel_front(opt_result.choices)
    if composed and len(opt_result.choices) > 1:
        print()
        print(pareto_table(
            composed, title="kernel frontier (composed over components)"))


def _parse_weights(tokens):
    """``--weights`` vectors as float tuples; bad input exits 2."""
    vectors = []
    for token in tokens:
        parts = [part.strip() for part in token.split(",")]
        try:
            vector = tuple(float(part) for part in parts)
        except ValueError:
            raise KernelConfigError(
                f"malformed --weights value {token!r}: expected four "
                f"comma-separated numbers")
        if len(vector) != 4 or any(w <= 0 for w in vector):
            raise KernelConfigError(
                f"--weights {token!r}: need exactly four strictly "
                f"positive numbers (makespan, SPM, DMA, cores)")
        vectors.append(vector)
    return vectors


def cmd_pareto(args) -> int:
    from .opt import DEFAULT_WEIGHTS, ParetoOptimizer, TreeOptimizer
    from .opt.exhaustive import SearchSpaceTooLarge

    kernel = make_kernel(args.kernel, args.preset)
    platform = _platform(args)
    cache = _cache(args)
    weights = _parse_weights(args.weights) if args.weights \
        else DEFAULT_WEIGHTS
    tree = LoopTree.build(kernel)

    def optimize_fn(component, exec_model):
        optimizer = ParetoOptimizer(
            component, platform, exec_model,
            jobs=args.jobs, cache=cache, weights=weights)
        return optimizer.optimize(args.cores)

    try:
        result = TreeOptimizer(tree).optimize(
            platform, cores=args.cores, optimize_fn=optimize_fn)
    except SearchSpaceTooLarge as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(result.describe())
    _print_frontiers(result)
    return 0 if result.feasible else 1


def _analyze_source(args, passes) -> int:
    """``analyze --source``: PREM5xx loop-IR analysis, no compilation."""
    from .analysis import SOURCE_REGISTRY, analyze_source

    if passes:
        unknown = sorted(set(passes) - set(SOURCE_REGISTRY.names()))
        if unknown:
            print(f"unknown source passes: {', '.join(unknown)} "
                  f"(known: {', '.join(SOURCE_REGISTRY.names())})",
                  file=sys.stderr)
            return 2
    kernel = make_kernel(args.kernel, args.preset)
    report = analyze_source(kernel, passes=passes)
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def cmd_analyze(args) -> int:
    from .analysis import DEFAULT_REGISTRY

    passes = None
    if args.passes:
        passes = tuple(token.strip() for token in args.passes.split(","))
    if args.source:
        if args.selftest:
            raise KernelConfigError(
                "--selftest corrupts compiled artifacts; it does not "
                "compose with the source-level --source analysis")
        return _analyze_source(args, passes)
    if passes:
        unknown = sorted(set(passes) - set(DEFAULT_REGISTRY.names()))
        if unknown:
            print(f"unknown analysis passes: {', '.join(unknown)} "
                  f"(known: {', '.join(DEFAULT_REGISTRY.names())})",
                  file=sys.stderr)
            return 2
    result = _compile(args, use_cache=False)
    report = result.verify_static(passes=passes)
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text())
    status = 1 if report.has_errors else 0

    if args.selftest:
        from .faults import run_static_campaign

        strategy = "greedy" if args.greedy else "heuristic"
        campaign = run_static_campaign(
            args.kernel, preset=args.preset, seed=args.seed,
            cases=args.selftest, strategy=strategy,
            platform=_platform(args) if args.cores is None
            else _platform(args).with_cores(args.cores))
        print()
        print(campaign.describe())
        if campaign.detection_rate < 0.9:
            print(f"selftest FAILED: detection rate "
                  f"{campaign.detection_rate:.1%} below 90%",
                  file=sys.stderr)
            status = 1
    return status


def cmd_faults(args) -> int:
    from .faults import ALL_KINDS, run_campaign

    kinds = ALL_KINDS
    if args.kinds:
        kinds = tuple(token.strip() for token in args.kinds.split(","))
        unknown = sorted(set(kinds) - set(ALL_KINDS))
        if unknown:
            print(f"unknown fault kinds: {', '.join(unknown)} "
                  f"(known: {', '.join(ALL_KINDS)})", file=sys.stderr)
            return 2
    strategy = "greedy" if args.greedy else "heuristic"
    result = run_campaign(
        args.kernel, preset=args.preset, seed=args.seed, kinds=kinds,
        per_kind=args.per_kind, platform=_platform(args),
        strategy=strategy)
    print(result.describe())
    for outcome in result.outcomes:
        if outcome.missed:
            print(f"MISSED: {outcome.spec.describe()}", file=sys.stderr)
    return 0 if result.all_affecting_detected else 1


def cmd_cache(args) -> int:
    directory = args.cache_dir or os.environ.get(CACHE_ENV) \
        or default_cache_dir()
    cache = PersistentCache(directory)
    if args.action == "clear":
        removed = len(cache)
        cache.clear()
        print(f"cleared {removed} entries from {cache.path}")
        return 0
    if args.action == "compact":
        report = cache.compact()
        print(f"cache file : {cache.path}")
        print(f"lines      : {report['lines_before']:,} -> "
              f"{report['lines_after']:,} "
              f"({report['lines_reclaimed']:,} reclaimed)")
        print(f"bytes      : {report['bytes_before']:,} -> "
              f"{report['bytes_after']:,} "
              f"({report['bytes_reclaimed']:,} reclaimed)")
        return 0
    stats = cache.stats()
    print(f"cache file : {cache.path}")
    print(f"entries    : {len(cache):,}")
    print(f"size       : {stats['bytes']:,} bytes")
    return 0


def cmd_shard_reduce(args) -> int:
    """Merge shard results: one unsharded --pruned compile on the now
    warm shared cache.  Every candidate a shard scored is a cache hit
    (zero fresh segment plans) and the incumbent walk re-runs the exact
    serial rank, so the reported winner is bit-identical to a
    single-process compile."""
    if _cache(args) is None:
        raise KernelConfigError(
            "shard-reduce needs the shared cache the shard workers "
            f"wrote: pass --cache-dir or set ${CACHE_ENV}")
    args.pruned = True
    args.greedy = False
    result = _compile(args)
    print(result.opt_result.describe())
    opt = result.opt_result
    print(f"\nmakespan          : {result.makespan_ns:>16,.0f} ns")
    print(f"evaluations       : {opt.evaluations:>16,}")
    if opt.cache_hits:
        print(f"cache hits        : {opt.cache_hits:>16,} "
              f"({opt.cache_hit_rate:.1%} of probes)")
    return 0 if result.feasible else 1


def cmd_shard(args) -> int:
    from .opt.shard import ShardLog, space_statuses

    directory = args.cache_dir or os.environ.get(CACHE_ENV)
    if not directory:
        raise KernelConfigError(
            "shard status needs the shared cache directory: pass "
            f"--cache-dir or set ${CACHE_ENV}")
    log = ShardLog(directory)
    statuses = space_statuses(log, stale_s=args.stale_s)
    if not statuses:
        print(f"no shard coordination records in {log.path}")
        return 0
    for status in statuses.values():
        print(status.describe())
    return 0


COMMANDS = {
    "tree": cmd_tree,
    "compile": cmd_compile,
    "codegen": cmd_codegen,
    "trace": cmd_trace,
    "gantt": cmd_gantt,
    "sweep": cmd_sweep,
    "pareto": cmd_pareto,
    "analyze": cmd_analyze,
    "faults": cmd_faults,
    "cache": cmd_cache,
    "shard": cmd_shard,
    "shard-reduce": cmd_shard_reduce,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except KernelConfigError as error:
        # Bad invocation (unknown preset/kernel variant): the message
        # names the offending value — surface it and exit 2 like
        # argparse does for unparseable flags.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
