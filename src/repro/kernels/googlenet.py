"""GoogLeNet 3x3 convolution layer configurations (Section 6.3).

Table 6.6 studies the CNN kernel of Listing 6.1 under the 3x3-filter layer
shapes that occur in GoogLeNet, with batch size ``NN = 1`` and filter
stride 1.  :data:`GOOGLENET_3X3_LAYERS` lists the (NK, NP, NQ, NC) bounds
in the table's order; :func:`googlenet_cnn` instantiates the kernel.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..loopir.ast import Kernel
from .polybench import cnn

#: (NK, NP, NQ, NC) for each studied layer, in Table 6.6 order.
GOOGLENET_3X3_LAYERS: List[Tuple[int, int, int, int]] = [
    (128, 28, 28, 96),
    (192, 28, 28, 128),
    (208, 14, 14, 96),
    (320, 14, 14, 160),
    (320, 7, 7, 160),
    (384, 7, 7, 192),
]

#: The layer used for the in-depth study of Sections 6.3.1/6.3.2.
STUDY_LAYER: Tuple[int, int, int, int] = (128, 28, 28, 96)


def layer_sizes(bounds: Tuple[int, int, int, int]) -> Dict[str, int]:
    """Size mapping for a (NK, NP, NQ, NC) layer with 3x3 filters."""
    nk, np_, nq, nc = bounds
    return dict(NN=1, NK=nk, NP=np_, NQ=nq, NC=nc, NR=3, NS=3)


def googlenet_cnn(bounds: Tuple[int, int, int, int]) -> Kernel:
    """Instantiate the CNN kernel at one GoogLeNet layer shape."""
    return cnn(layer_sizes(bounds))


def bounds_label(bounds: Tuple[int, int, int, int]) -> str:
    """Human-readable label matching Table 6.6's first column."""
    return " / ".join(str(b) for b in bounds)
