"""PolyBench-NN forward-pass kernels transcribed into the loop IR.

The paper evaluates the five forward passes of PolyBench-NN [Vaidya et al.,
HiPC 2017]: CNN (Listing 6.1), LSTM (Listing 3.1), MaxPool, SumPool and
RNN, at the LARGE problem size (~25 MB working set).  Each factory below
takes a size mapping so the same kernel can be instantiated at paper scale
for the analytic pipeline and at miniature scale for the functional
simulators and tests.

Transcription notes
-------------------
- CNN is the exact Listing 6.1 code (filter stride 1, flipped kernel).
- LSTM is the exact Listing 3.1 code.
- MaxPool/SumPool use a 2x2 window with stride 2 (the PolyBench-NN
  pooling configuration); ``max`` is modelled as a read-modify-write of
  the output cell, like the paper's polyhedral front end sees it.
- RNN is an Elman-style recurrence whose hidden-state update is performed
  in place, making the state loop of its second component sequential —
  this reproduces the paper's observation that "one major component inside
  this kernel is not parallelizable".
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

import numpy as np

from ..errors import KernelConfigError
from ..loopir.ast import Kernel
from ..loopir.builder import for_, stmt_
from ..poly.access import Array
from ..poly.constraint import Constraint

SizeMap = Mapping[str, int]

#: Default problem sizes.  LARGE matches the paper's ~25 MB working sets;
#: MINI is small enough for exhaustive functional simulation in tests.
PRESETS: Dict[str, Dict[str, Dict[str, int]]] = {
    "cnn": {
        "MINI": dict(NN=1, NK=4, NP=4, NQ=4, NC=3, NR=2, NS=2),
        "SMALL": dict(NN=1, NK=16, NP=8, NQ=8, NC=8, NR=3, NS=3),
        "LARGE": dict(NN=1, NK=128, NP=28, NQ=28, NC=96, NR=3, NS=3),
    },
    "lstm": {
        "MINI": dict(NT=3, NS=4, NP=5),
        "SMALL": dict(NT=4, NS=32, NP=40),
        "LARGE": dict(NT=10, NS=650, NP=700),
    },
    "maxpool": {
        "MINI": dict(NN=1, NK=3, NP=4, NQ=4, NR=2, NS=2),
        "SMALL": dict(NN=1, NK=16, NP=16, NQ=16, NR=2, NS=2),
        "LARGE": dict(NN=1, NK=256, NP=112, NQ=112, NR=2, NS=2),
    },
    "sumpool": {
        "MINI": dict(NN=1, NK=3, NP=4, NQ=4, NR=2, NS=2),
        "SMALL": dict(NN=1, NK=16, NP=16, NQ=16, NR=2, NS=2),
        "LARGE": dict(NN=1, NK=256, NP=112, NQ=112, NR=2, NS=2),
    },
    "rnn": {
        "MINI": dict(NT=3, NS=4, NP=5),
        "SMALL": dict(NT=4, NS=32, NP=40),
        "LARGE": dict(NT=10, NS=800, NP=900),
    },
    "convrelu": {
        "MINI": dict(NN=1, NK=4, NP=4, NQ=4, NC=3, NR=2, NS=2),
        "SMALL": dict(NN=1, NK=8, NP=8, NQ=8, NC=4, NR=3, NS=3),
        "LARGE": dict(NN=1, NK=128, NP=28, NQ=28, NC=96, NR=3, NS=3),
    },
}


#: Every preset name any kernel defines — the CLI's ``--preset`` choices.
PRESET_NAMES: tuple = tuple(sorted(
    {preset for presets in PRESETS.values() for preset in presets}))


def preset_sizes(kernel: str, preset: str = "LARGE") -> Dict[str, int]:
    """The size mapping for a named kernel/preset pair."""
    try:
        presets = PRESETS[kernel]
    except KeyError as exc:
        raise KernelConfigError(
            f"unknown kernel {kernel!r}; known kernels: "
            f"{', '.join(sorted(PRESETS))}") from exc
    try:
        return dict(presets[preset])
    except KeyError as exc:
        raise KernelConfigError(
            f"no preset {preset!r} for kernel {kernel!r}; known presets: "
            f"{', '.join(PRESET_NAMES)}") from exc


# ---------------------------------------------------------------------------
# CNN — Listing 6.1


def cnn(sizes: SizeMap | None = None, etype: str = "float") -> Kernel:
    """The convolution kernel of Listing 6.1 (7 nested loops)."""
    sz = dict(sizes or preset_sizes("cnn"))
    NN, NK, NP, NQ = sz["NN"], sz["NK"], sz["NP"], sz["NQ"]
    NC, NR, NS = sz["NC"], sz["NR"], sz["NS"]

    out_f = Array("out_F", (NN, NK, NP, NQ), etype)
    weights = Array("W", (NK, NC, NR, NS), etype)
    inp_f = Array("inp_F", (NN, NC, NP + NR - 1, NQ + NS - 1), etype)
    arrays = {a.name: a for a in (out_f, weights, inp_f)}

    def compute(a, pt):
        n, k, p, q = pt["n"], pt["k"], pt["p"], pt["q"]
        c, r, s = pt["c"], pt["r"], pt["s"]
        a["out_F"][n, k, p, q] += (
            a["W"][k, c, r, s]
            * a["inp_F"][n, c, p + NR - r - 1, q + NS - s - 1])

    mac = stmt_(
        "cnn_mac", arrays,
        writes={"out_F": ("n", "k", "p", "q")},
        reads={
            "out_F": ("n", "k", "p", "q"),
            "W": ("k", "c", "r", "s"),
            "inp_F": ("n", "c", f"p + {NR - 1} - r", f"q + {NS - 1} - s"),
        },
        compute=compute, flops=2,
    )
    loops = for_("n", NN, for_("k", NK, for_("p", NP, for_("q", NQ, for_(
        "c", NC, for_("r", NR, for_("s", NS, mac)))))))
    return Kernel("cnn", list(arrays.values()), [loops], sz)


# ---------------------------------------------------------------------------
# ConvReLU — bias-initialized convolution with a fused leaky activation


def convrelu(sizes: SizeMap | None = None, etype: str = "float") -> Kernel:
    """Bias + convolution + leaky ReLU as one imperfect nest.

    The classic fused conv layer: each output cell is *initialized* from
    the bias vector, *accumulated* over the reduction nest, then pushed
    through a leaky activation — three statements sharing the ``(n, k,
    p, q)`` iteration space but sitting at different nest depths.  Every
    cross-statement dependence is loop-independent (the out cell of one
    ``(n, k, p, q)`` point never reaches another), so the fission
    pre-pass can distribute the whole nest into three perfect sibling
    nests — the canonical imperfect-to-perfect distribution example.
    """
    sz = dict(sizes or preset_sizes("convrelu"))
    NN, NK, NP, NQ = sz["NN"], sz["NK"], sz["NP"], sz["NQ"]
    NC, NR, NS = sz["NC"], sz["NR"], sz["NS"]

    out_f = Array("out_F", (NN, NK, NP, NQ), etype)
    weights = Array("W", (NK, NC, NR, NS), etype)
    inp_f = Array("inp_F", (NN, NC, NP + NR - 1, NQ + NS - 1), etype)
    bias = Array("bias", (NK,), etype)
    arrays = {a.name: a for a in (out_f, weights, inp_f, bias)}
    leak = np.float32(0.01) if etype == "float" else 0.01

    def init_compute(a, pt):
        n, k, p, q = pt["n"], pt["k"], pt["p"], pt["q"]
        a["out_F"][n, k, p, q] = a["bias"][(k,)]

    def mac_compute(a, pt):
        n, k, p, q = pt["n"], pt["k"], pt["p"], pt["q"]
        c, r, s = pt["c"], pt["r"], pt["s"]
        a["out_F"][n, k, p, q] += (
            a["W"][k, c, r, s]
            * a["inp_F"][n, c, p + NR - r - 1, q + NS - s - 1])

    def relu_compute(a, pt):
        n, k, p, q = pt["n"], pt["k"], pt["p"], pt["q"]
        value = a["out_F"][n, k, p, q]
        if value < 0:
            a["out_F"][n, k, p, q] = leak * value

    init = stmt_(
        "convrelu_init", arrays,
        writes={"out_F": ("n", "k", "p", "q")},
        reads={"bias": ("k",)},
        compute=init_compute, flops=0,
    )
    mac = stmt_(
        "convrelu_mac", arrays,
        writes={"out_F": ("n", "k", "p", "q")},
        reads={
            "out_F": ("n", "k", "p", "q"),
            "W": ("k", "c", "r", "s"),
            "inp_F": ("n", "c", f"p + {NR - 1} - r", f"q + {NS - 1} - s"),
        },
        compute=mac_compute, flops=2,
    )
    relu = stmt_(
        "convrelu_act", arrays,
        writes={"out_F": ("n", "k", "p", "q")},
        reads={"out_F": ("n", "k", "p", "q")},
        compute=relu_compute, flops=1,
    )
    loops = for_("n", NN, for_("k", NK, for_("p", NP, for_(
        "q", NQ,
        init,
        for_("c", NC, for_("r", NR, for_("s", NS, mac))),
        relu,
    ))))
    return Kernel("convrelu", list(arrays.values()), [loops], sz)


# ---------------------------------------------------------------------------
# LSTM — Listing 3.1


def lstm(sizes: SizeMap | None = None, etype: str = "float") -> Kernel:
    """The LSTM forward pass of Listing 3.1."""
    sz = dict(sizes or preset_sizes("lstm"))
    NT, NS, NP = sz["NT"], sz["NS"], sz["NP"]

    gates = [Array(g, (NS,), etype) for g in ("i", "f", "o", "g")]
    u_mats = [Array(f"U_{g}", (NS, NP), etype) for g in ("i", "f", "o", "g")]
    w_mats = [Array(f"W_{g}", (NS, NS), etype) for g in ("i", "f", "o", "g")]
    inp_f = Array("inp_F", (NT, NP), etype)
    s_f = Array("s_F", (NT, NS), etype)
    c_f = Array("c_F", (NT, NS), etype)
    all_arrays = [*gates, *u_mats, *w_mats, inp_f, s_f, c_f]
    arrays = {a.name: a for a in all_arrays}

    def init_compute(a, pt):
        s1 = pt["s1_0"]
        for gate in ("i", "f", "o", "g"):
            a[gate][(s1,)] = 0.0

    def mac_u_compute(a, pt):
        t, s1, p = pt["t"], pt["s1_0"], pt["p"]
        for gate in ("i", "f", "o", "g"):
            a[gate][(s1,)] += a[f"U_{gate}"][s1, p] * a["inp_F"][t, p]

    def mac_w_compute(a, pt):
        t, s1, s2 = pt["t"], pt["s1_1"], pt["s2"]
        for gate in ("i", "f", "o", "g"):
            a[gate][(s1,)] += a[f"W_{gate}"][s1, s2] * a["s_F"][t - 1, s2]

    def cell_compute(a, pt):
        t, b = pt["t"], pt["b_0"]
        a["c_F"][t, b] = (a["c_F"][t - 1, b] * a["f"][(b,)]
                          + a["g"][(b,)] * a["i"][(b,)])

    def state_compute(a, pt):
        t, b = pt["t"], pt["b_1"]
        a["s_F"][t, b] = a["c_F"][t, b] * a["o"][(b,)]

    gate_w = {g: ("s1_0",) for g in ("i", "f", "o", "g")}
    init = stmt_("lstm_init", arrays, writes=gate_w,
                 guards=[Constraint.eq("p", 0)],
                 compute=init_compute, flops=4)
    mac_u = stmt_(
        "lstm_mac_u", arrays,
        writes=gate_w,
        reads={**{g: ("s1_0",) for g in ("i", "f", "o", "g")},
               **{f"U_{g}": ("s1_0", "p") for g in ("i", "f", "o", "g")},
               "inp_F": ("t", "p")},
        compute=mac_u_compute, flops=8,
    )
    mac_w = stmt_(
        "lstm_mac_w", arrays,
        writes={g: ("s1_1",) for g in ("i", "f", "o", "g")},
        reads={**{g: ("s1_1",) for g in ("i", "f", "o", "g")},
               **{f"W_{g}": ("s1_1", "s2") for g in ("i", "f", "o", "g")},
               "s_F": ("t - 1", "s2")},
        compute=mac_w_compute, flops=8,
    )
    cell = stmt_(
        "lstm_cell", arrays,
        writes={"c_F": ("t", "b_0")},
        reads={"c_F": ("t - 1", "b_0"), "f": ("b_0",), "g": ("b_0",),
               "i": ("b_0",)},
        compute=cell_compute, flops=3,
    )
    state = stmt_(
        "lstm_state", arrays,
        writes={"s_F": ("t", "b_1")},
        reads={"c_F": ("t", "b_1"), "o": ("b_1",)},
        compute=state_compute, flops=1,
    )

    after_first = [Constraint.ge("t", 1)]
    t_loop = for_(
        "t", NT,
        for_("s1_0", NS, for_("p", NP, init, mac_u)),
        for_("s1_1", NS, for_("s2", NS, mac_w), guards=after_first),
        for_("b_0", NS, cell, guards=after_first),
        for_("b_1", NS, state),
    )
    return Kernel("lstm", all_arrays, [t_loop], sz)


# ---------------------------------------------------------------------------
# MaxPool / SumPool — 2x2 window, stride 2


def _pool(name: str, sizes: SizeMap | None, etype: str,
          reducer: str) -> Kernel:
    sz = dict(sizes or preset_sizes(name))
    NN, NK, NP, NQ = sz["NN"], sz["NK"], sz["NP"], sz["NQ"]
    NR, NS = sz["NR"], sz["NS"]
    stride_p, stride_q = NR, NS   # non-overlapping pooling windows

    out = Array("out_F", (NN, NK, NP, NQ), etype)
    inp = Array("inp_F", (NN, NK, NP * stride_p, NQ * stride_q), etype)
    arrays = {a.name: a for a in (out, inp)}

    def compute(a, pt):
        n, k, p, q = pt["n"], pt["k"], pt["p"], pt["q"]
        r, s = pt["r"], pt["s"]
        value = a["inp_F"][n, k, stride_p * p + r, stride_q * q + s]
        if reducer == "max":
            if r == 0 and s == 0:
                a["out_F"][n, k, p, q] = value
            else:
                a["out_F"][n, k, p, q] = max(a["out_F"][n, k, p, q], value)
        else:
            if r == 0 and s == 0:
                a["out_F"][n, k, p, q] = value
            else:
                a["out_F"][n, k, p, q] += value

    reduce_stmt = stmt_(
        f"{name}_reduce", arrays,
        writes={"out_F": ("n", "k", "p", "q")},
        reads={"out_F": ("n", "k", "p", "q"),
               "inp_F": ("n", "k", f"{stride_p}*p + r", f"{stride_q}*q + s")},
        compute=compute, flops=1,
    )
    loops = for_("n", NN, for_("k", NK, for_("p", NP, for_(
        "q", NQ, for_("r", NR, for_("s", NS, reduce_stmt))))))
    return Kernel(name, list(arrays.values()), [loops], sz)


def maxpool(sizes: SizeMap | None = None, etype: str = "float") -> Kernel:
    """Max pooling forward pass."""
    return _pool("maxpool", sizes, etype, "max")


def sumpool(sizes: SizeMap | None = None, etype: str = "float") -> Kernel:
    """Sum (average) pooling forward pass."""
    return _pool("sumpool", sizes, etype, "sum")


# ---------------------------------------------------------------------------
# RNN — Elman forward pass with in-place state update


def rnn(sizes: SizeMap | None = None, etype: str = "float") -> Kernel:
    """RNN forward pass.

    The input projection component ``(s1, p)`` is parallelizable over
    ``s1``; the recurrent update reads and writes the *same* state vector
    in place, so its state loop carries a dependence and cannot be
    parallelized — the paper's "one major component ... is not
    parallelizable".
    """
    sz = dict(sizes or preset_sizes("rnn"))
    NT, NS, NP = sz["NT"], sz["NS"], sz["NP"]

    h = Array("h", (NS,), etype)
    u_mat = Array("U", (NS, NP), etype)
    w_mat = Array("W", (NS, NS), etype)
    inp = Array("inp_F", (NT, NP), etype)
    out = Array("out_F", (NT, NS), etype)
    acc = Array("acc", (NS,), etype)
    all_arrays = [h, u_mat, w_mat, inp, out, acc]
    arrays = {a.name: a for a in all_arrays}

    def proj_init(a, pt):
        a["acc"][(pt["s1"],)] = 0.0

    def proj_mac(a, pt):
        t, s1, p = pt["t"], pt["s1"], pt["p"]
        a["acc"][(s1,)] += a["U"][s1, p] * a["inp_F"][t, p]

    def recur(a, pt):
        s2, s3 = pt["s2"], pt["s3"]
        if s3 == 0:
            a["h"][(s2,)] = a["acc"][(s2,)] + a["W"][s2, 0] * a["h"][(0,)]
        else:
            a["h"][(s2,)] += a["W"][s2, s3] * a["h"][(s3,)]

    def emit(a, pt):
        t, s4 = pt["t"], pt["s4"]
        a["out_F"][t, s4] = a["h"][(s4,)]

    init = stmt_("rnn_init", arrays, writes={"acc": ("s1",)},
                 guards=[Constraint.eq("p", 0)], compute=proj_init, flops=1)
    mac = stmt_(
        "rnn_mac", arrays,
        writes={"acc": ("s1",)},
        reads={"acc": ("s1",), "U": ("s1", "p"), "inp_F": ("t", "p")},
        compute=proj_mac, flops=2,
    )
    recur_stmt = stmt_(
        "rnn_recur", arrays,
        writes={"h": ("s2",)},
        reads={"h": [("s2",), ("s3",)], "acc": ("s2",), "W": ("s2", "s3")},
        compute=recur, flops=2,
    )
    emit_stmt = stmt_(
        "rnn_emit", arrays,
        writes={"out_F": ("t", "s4")},
        reads={"h": ("s4",)},
        compute=emit, flops=0,
    )

    t_loop = for_(
        "t", NT,
        for_("s1", NS, for_("p", NP, init, mac)),
        for_("s2", NS, for_("s3", NS, recur_stmt)),
        for_("s4", NS, emit_stmt),
    )
    return Kernel("rnn", all_arrays, [t_loop], sz)


#: Factory registry used by the benchmark harness.
KERNELS: Dict[str, Callable[..., Kernel]] = {
    "cnn": cnn,
    "convrelu": convrelu,
    "lstm": lstm,
    "maxpool": maxpool,
    "sumpool": sumpool,
    "rnn": rnn,
}


def make_kernel(name: str, preset: str = "LARGE",
                overrides: SizeMap | None = None) -> Kernel:
    """Instantiate a PolyBench-NN kernel at a preset size."""
    sizes = preset_sizes(name, preset)
    if overrides:
        sizes.update(overrides)
    return KERNELS[name](sizes)
