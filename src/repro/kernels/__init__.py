"""Benchmark kernels: PolyBench-NN transcriptions and GoogLeNet configs."""

from .googlenet import (
    GOOGLENET_3X3_LAYERS,
    STUDY_LAYER,
    bounds_label,
    googlenet_cnn,
    layer_sizes,
)
from .polybench import (
    KERNELS,
    PRESET_NAMES,
    PRESETS,
    cnn,
    convrelu,
    lstm,
    make_kernel,
    maxpool,
    preset_sizes,
    rnn,
    sumpool,
)

__all__ = [
    "GOOGLENET_3X3_LAYERS", "STUDY_LAYER", "bounds_label", "googlenet_cnn",
    "layer_sizes",
    "KERNELS", "PRESET_NAMES", "PRESETS", "cnn", "convrelu", "lstm",
    "make_kernel", "maxpool", "preset_sizes", "rnn", "sumpool",
]
