"""Tile-size profiling for the execution-model fit (Section 4.2).

The paper profiles the kernel "to obtain multiple samples for the
execution time under different (l_1.K, ..., l_L.K) values" and fits the
parametric model against them.  :func:`profile_component` does the same
against the gem5-substitute :class:`~repro.sim.machine.MachineModel`,
choosing a deterministic spread of tile widths per level.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..loopir.component import TilableComponent
from ..timing.execmodel import ExecModel, fit_exec_model
from .machine import MachineModel

#: Hard cap on fit samples: the design space is crossed per level, so the
#: per-level candidate lists are thinned until the product fits.
MAX_SAMPLES = 256


def width_candidates(n: int) -> List[int]:
    """A deterministic spread of widths for one level of trip count *n*."""
    raw = {1, 2, 3, n, max(1, n // 2), max(1, n // 4), max(1, _isqrt(n))}
    return sorted(w for w in raw if 1 <= w <= n)


def _isqrt(n: int) -> int:
    root = int(n ** 0.5)
    while root * root > n:
        root -= 1
    while (root + 1) * (root + 1) <= n:
        root += 1
    return root


def sample_widths(component: TilableComponent,
                  max_samples: int = MAX_SAMPLES) -> List[Tuple[int, ...]]:
    """Cross-product of per-level width candidates, thinned to the cap."""
    per_level = [width_candidates(node.N) for node in component.nodes]

    total = 1
    for candidates in per_level:
        total *= len(candidates)
    # Thin the longest candidate lists until the cross product fits.
    while total > max_samples:
        longest = max(range(len(per_level)), key=lambda i: len(per_level[i]))
        if len(per_level[longest]) <= 2:
            break
        removed = per_level[longest].pop(len(per_level[longest]) // 2)
        total = 1
        for candidates in per_level:
            total *= len(candidates)

    samples: List[Tuple[int, ...]] = []

    def recurse(level: int, chosen: List[int]):
        if len(samples) >= max_samples:
            return
        if level == len(per_level):
            samples.append(tuple(chosen))
            return
        for width in per_level[level]:
            recurse(level + 1, [*chosen, width])

    recurse(0, [])
    return samples


def profile_component(component: TilableComponent,
                      machine: MachineModel | None = None,
                      max_samples: int = MAX_SAMPLES
                      ) -> Tuple[List[Tuple[int, ...]], List[float]]:
    """Measure tile execution cycles for a spread of width vectors."""
    machine = machine or MachineModel()
    widths = sample_widths(component, max_samples)
    measured = [float(machine.tile_cost(component, w)) for w in widths]
    return widths, measured


def fit_component_model(component: TilableComponent,
                        machine: MachineModel | None = None,
                        max_samples: int = MAX_SAMPLES) -> ExecModel:
    """Profile and fit the parametric execution model in one call."""
    widths, measured = profile_component(component, machine, max_samples)
    return fit_exec_model(widths, measured)
