"""Architectural timing model — the gem5 substitute.

The paper measures execution-phase lengths by running tiles on gem5's ARM
``AtomicSimpleCPU`` and dumping statistics per segment.  This module plays
that role: :class:`MachineModel` is a deterministic in-order cost model
that "executes" one tile of a tilable component and returns a cycle count.

Its cost structure is deliberately *richer* than the analytic model of
Section 4.2 that gets fitted against it (per-loop entry costs, guard
evaluation, per-tile warm-up), so the constrained least-squares fit in
:mod:`repro.timing.execmodel` is a genuine approximation — mirroring the
relationship between gem5 measurements and the paper's parametric model.

For small kernels, :meth:`MachineModel.interpret_tile` also walks every
iteration point individually; the closed-form path is validated against it
in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import TileConfigError
from ..loopir.ast import Loop, Stmt
from ..loopir.component import TilableComponent
from ..poly.constraint import EQ


@dataclass(frozen=True)
class CostTable:
    """Per-operation cycle costs of the modelled in-order core."""

    flop: int = 4            # one arithmetic operation
    load: int = 6            # SPM read
    store: int = 6           # SPM write
    loop_iter: int = 3       # compare + increment + branch per iteration
    loop_entry: int = 8      # loop setup (bound computation, spill)
    guard_eval: int = 2      # conditional evaluation per visit
    stmt_dispatch: int = 1   # address generation / bookkeeping
    tile_warmup: int = 120   # per-segment pipeline/stack warm-up


class MachineModel:
    """Closed-form tile execution cost with an interpretive cross-check.

    *injector* (duck-typed, see :class:`repro.faults.FaultInjector`) may
    perturb the cycle count a tile "measures" — modelling a machine whose
    execution phases overrun the profiled worst case.  ``None`` (the
    default) keeps the model exactly deterministic.
    """

    def __init__(self, costs: CostTable | None = None, injector=None):
        self.costs = costs or CostTable()
        self.injector = injector

    # -- closed form -----------------------------------------------------

    def tile_cost(self, component: TilableComponent,
                  widths: Sequence[int]) -> int:
        """Cycles to execute one tile whose band levels have *widths*.

        Band loops contribute entry and per-iteration overhead; the body of
        the innermost band level (statements and folded loops) runs once
        per band point.
        """
        if len(widths) != component.depth:
            raise TileConfigError(
                f"expected {component.depth} widths, got {len(widths)}")
        if any(w <= 0 for w in widths):
            raise TileConfigError(
                f"tile widths must be positive, got {tuple(widths)}")

        total = self.costs.tile_warmup
        prefix = 1
        for width in widths:
            # Each entry to the loop at this level happens once per
            # iteration of the enclosing levels.
            total += prefix * self.costs.loop_entry
            prefix *= width
            total += prefix * self.costs.loop_iter

        band_widths = dict(zip(component.band_vars, widths))
        per_point = self._sequence_cost(
            component.nodes[-1].loop.body, band_widths)
        total += prefix * per_point
        if self.injector is not None:
            total = self.injector.tile_cycles(tuple(widths), total)
        return total

    def _sequence_cost(self, body, band_widths: Mapping[str, int]) -> int:
        total = 0
        for child in body:
            if isinstance(child, Loop):
                inner = self._sequence_cost(child.body, band_widths)
                total += self.costs.loop_entry
                total += child.n * (self.costs.loop_iter + inner)
            else:
                total += self._stmt_cost(child, band_widths)
        return total

    def _stmt_cost(self, stmt: Stmt, band_widths: Mapping[str, int]) -> int:
        """Expected cost of one visit to the statement's position.

        Guarded statements pay guard evaluation on every visit but their
        body only on the fraction of visits where the guard holds; for the
        corpus's single-iterator guards the fraction is computed from the
        guarded variable's width inside the tile (e.g. ``p == 0`` holds on
        one of ``w_p`` visits when the tile contains p = 0).
        """
        body = (stmt.flops * self.costs.flop
                + len(stmt.reads()) * self.costs.load
                + len(stmt.writes()) * self.costs.store
                + self.costs.stmt_dispatch)
        if not stmt.guards:
            return body
        cost = len(stmt.guards) * self.costs.guard_eval
        fraction_num, fraction_den = 1, 1
        for guard in stmt.guards:
            variables = sorted(guard.variables())
            if len(variables) == 1 and variables[0] in band_widths and \
                    guard.kind == EQ:
                # Holds for exactly one value of the guarded iterator;
                # whether the tile contains it is position dependent, so we
                # charge the average (one hit per full sweep of the level).
                fraction_den *= band_widths[variables[0]]
        return cost + (body * fraction_num + fraction_den - 1) // fraction_den

    # -- whole-kernel cost (ideal single-core baseline) --------------------

    def kernel_cost(self, kernel) -> int:
        """Cycles to run the untransformed kernel once on one core.

        This is the execution-time side of the paper's *ideal* baseline
        (Figure 6.1's normalisation): no tiling, unlimited local memory,
        zero-cost transfers.  Loop and statement execution counts honour
        the guards exactly (``l.I`` semantics).
        """
        from ..loopir.validity import count_guarded_executions

        total = 0
        for loop, ancestors in kernel.walk_loops():
            executions = count_guarded_executions(loop, ancestors)
            total += executions * (
                self.costs.loop_entry + loop.n * self.costs.loop_iter)
        for stmt, loops in kernel.walk_stmts():
            visits = self._stmt_visits(kernel, stmt, loops)
            instances = self._stmt_instances(kernel, stmt, loops)
            if stmt.guards:
                total += visits * len(stmt.guards) * self.costs.guard_eval
            total += instances * (
                stmt.flops * self.costs.flop
                + len(stmt.reads()) * self.costs.load
                + len(stmt.writes()) * self.costs.store
                + self.costs.stmt_dispatch)
        return total

    def _stmt_visits(self, kernel, stmt, loops) -> int:
        """Times the statement's position is reached (loop guards only)."""
        from ..loopir.validity import count_guarded_executions
        if not loops:
            return 1
        innermost = loops[-1]
        ancestors = loops[:-1]
        return count_guarded_executions(innermost, ancestors) * innermost.n

    def _stmt_instances(self, kernel, stmt, loops) -> int:
        """Times the statement actually executes (all guards)."""
        from ..loopir.ast import Loop
        from ..loopir.validity import count_guarded_executions
        if not loops:
            return 1
        # Treat the statement as a zero-trip pseudo-loop guarded by the
        # statement's own guards: count the guarded ancestor combinations.
        pseudo = Loop(var="@stmt", n=1, body=[], guards=list(stmt.guards))
        return count_guarded_executions(pseudo, tuple(loops))

    # -- interpretive cross-check -------------------------------------------

    def interpret_tile(self, component: TilableComponent,
                       box: Mapping[str, Tuple[int, int]]) -> int:
        """Walk every iteration point of a concrete tile box (tests only)."""
        total = self.costs.tile_warmup
        order = list(component.band_vars)
        total += self._interpret_loops(
            component, order, 0, {}, dict(box))
        return total

    def _interpret_loops(self, component, order, depth, point, box) -> int:
        if depth == len(order):
            return self._interpret_body(
                component.nodes[-1].loop.body, point, box)
        var = order[depth]
        lo, hi = box[var]
        node = component.nodes[depth]
        total = self.costs.loop_entry
        for value in range(lo, hi + 1, node.S):
            point[var] = value
            total += self.costs.loop_iter
            total += self._interpret_loops(
                component, order, depth + 1, point, box)
        del point[var]
        return total

    def _interpret_body(self, body, point, box) -> int:
        total = 0
        for child in body:
            if isinstance(child, Loop):
                total += self.costs.loop_entry
                for value in child.loop_range.values():
                    point[child.var] = value
                    total += self.costs.loop_iter
                    total += self._interpret_body(child.body, point, box)
                del point[child.var]
            else:
                total += self._interpret_stmt(child, point)
        return total

    def _interpret_stmt(self, stmt: Stmt, point) -> int:
        total = 0
        if stmt.guards:
            total += len(stmt.guards) * self.costs.guard_eval
            if not all(g.satisfied(point) for g in stmt.guards):
                return total
        total += (stmt.flops * self.costs.flop
                  + len(stmt.reads()) * self.costs.load
                  + len(stmt.writes()) * self.costs.store
                  + self.costs.stmt_dispatch)
        return total
