"""Gem5-substitute timing simulation and tile profiling."""

from .machine import CostTable, MachineModel
from .profiler import (
    fit_component_model,
    profile_component,
    sample_widths,
    width_candidates,
)

__all__ = [
    "CostTable", "MachineModel",
    "fit_component_model", "profile_component", "sample_widths",
    "width_candidates",
]
