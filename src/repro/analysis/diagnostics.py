"""The unified diagnostics framework of the static verifier.

Every finding any analysis pass (or the dynamic invariant checker in
``repro.faults``) produces is a :class:`Diagnostic`: a stable ``PREMxxx``
code, a severity, a human message, the artifact coordinates that pin the
finding to a core / segment / DMA slot / array / component, and an
optional fix hint.  Codes are registered once in :data:`CODE_TABLE` so
renderers, docs and tests agree on their meaning; the numeric bands
group them:

- ``PREM0xx`` — schedule well-formedness and artifact consistency
- ``PREM1xx`` — inter-core races on main memory
- ``PREM2xx`` — double-buffer / streaming hazards on the SPM
- ``PREM3xx`` — SPM capacity and buffer lifetime
- ``PREM4xx`` — dynamic findings (VM-trace and timing replay diffs)
- ``PREM5xx`` — source-level loop-IR findings (structure, legality,
  fission) from ``repro.analysis.source``

:class:`DiagnosticBag` collects findings across passes and renders them
as aligned text or JSON for the ``analyze`` CLI command.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Sort rank of each severity (most severe first).
_SEVERITY_RANK: Mapping[str, int] = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry of one stable diagnostic code."""

    code: str        # "PREM203"
    name: str        # stable machine-readable slug ("uncovered-read")
    severity: str    # default severity
    summary: str     # one-line meaning, quoted by docs and --list-codes


#: Every stable diagnostic code the toolchain can emit.
CODE_TABLE: Dict[str, CodeInfo] = {
    info.code: info for info in (
        # -- PREM0xx: schedule well-formedness -------------------------
        CodeInfo("PREM001", "swap-order", ERROR,
                 "swap-event segments are not strictly increasing within "
                 "1..n_segments"),
        CodeInfo("PREM002", "missing-load", ERROR,
                 "a segment reads an array before any load bound data to "
                 "its buffer"),
        CodeInfo("PREM003", "plan-shape", ERROR,
                 "a core schedule's exec/DMA-slot arrays disagree with its "
                 "segment count"),
        CodeInfo("PREM004", "dep-order", ERROR,
                 "a segment awaits a DMA slot that does not precede it"),
        CodeInfo("PREM005", "negative-time", ERROR,
                 "an execution phase or DMA op has negative length"),
        CodeInfo("PREM006", "slot-range", ERROR,
                 "a DMA transfer sits outside the round-robin slot range "
                 "1..n_segments+2"),
        CodeInfo("PREM007", "dangling-dep", ERROR,
                 "a segment awaits a DMA slot that carries no transfer"),
        CodeInfo("PREM008", "plan-consistency", ERROR,
                 "the planned core schedule and the swap plan disagree "
                 "(segments, slot times, transferred bytes, or deps)"),
        CodeInfo("PREM009", "api-accounting", ERROR,
                 "the initialisation segment's dispatch/end_segment/alloc "
                 "API accounting does not match the swap plan"),
        # -- PREM1xx: inter-core races ---------------------------------
        CodeInfo("PREM101", "write-write-race", ERROR,
                 "two concurrently schedulable segments on different cores "
                 "write overlapping main-memory ranges"),
        CodeInfo("PREM102", "read-write-race", ERROR,
                 "a segment reads a main-memory range another core's "
                 "concurrently schedulable segment writes"),
        # -- PREM2xx: double-buffer / streaming hazards ----------------
        CodeInfo("PREM201", "late-transfer", ERROR,
                 "a load lands in a DMA slot after its data's first "
                 "consumer segment"),
        CodeInfo("PREM202", "double-buffer-clobber", ERROR,
                 "a DMA transfer touches an SPM buffer region a "
                 "concurrently executing segment still uses"),
        CodeInfo("PREM203", "uncovered-read", ERROR,
                 "a segment reads SPM locations its swap plan never "
                 "loaded"),
        CodeInfo("PREM204", "unload-before-last-write", ERROR,
                 "a range is unloaded before its last writer segment "
                 "finished"),
        CodeInfo("PREM205", "missing-unload", ERROR,
                 "a written range is never unloaded back to main memory"),
        CodeInfo("PREM206", "duplicate-transfer", WARNING,
                 "the same range is transferred more than once"),
        CodeInfo("PREM207", "uncovered-write", ERROR,
                 "a segment writes SPM locations outside its bound buffer "
                 "range"),
        CodeInfo("PREM208", "dirty-clobber", ERROR,
                 "a load overwrites a dirty buffer before its unload "
                 "saved the written data"),
        CodeInfo("PREM209", "stale-unload", ERROR,
                 "an unload runs after its buffer was rebound, writing "
                 "the wrong range back to main memory"),
        # -- PREM3xx: SPM capacity / lifetime --------------------------
        CodeInfo("PREM301", "spm-overflow", ERROR,
                 "live buffer allocation exceeds the SPM partition"),
        CodeInfo("PREM302", "buffer-lifetime", ERROR,
                 "allocate_buffer/deallocate pairing broken (early "
                 "dealloc, double dealloc, or leak)"),
        # -- PREM4xx: dynamic (VM trace / timing replay) ---------------
        CodeInfo("PREM401", "dropped-swap", ERROR,
                 "a planned DMA transfer never happened at run time"),
        CodeInfo("PREM402", "duplicate-swap", ERROR,
                 "an unplanned extra DMA transfer ran"),
        CodeInfo("PREM403", "delayed-swap", ERROR,
                 "a DMA transfer ran in a different slot than planned"),
        CodeInfo("PREM404", "stale-range", ERROR,
                 "a segment executed with a buffer bound to the wrong "
                 "range"),
        CodeInfo("PREM405", "poison-read", ERROR,
                 "a segment executed on a buffer poisoned since its last "
                 "load"),
        CodeInfo("PREM411", "dma-order", ERROR,
                 "a faulted DMA op overran the next op's static start "
                 "(round-robin order broken)"),
        CodeInfo("PREM412", "late-transfer-timing", ERROR,
                 "a faulted transfer finished after its consumer "
                 "segment's static start"),
        CodeInfo("PREM413", "exec-overrun", ERROR,
                 "a faulted execution phase overran a dependent "
                 "operation's static start"),
        # -- PREM5xx: source-level loop-IR findings --------------------
        CodeInfo("PREM501", "guard-scope", ERROR,
                 "a guard references a variable that is not an ancestor "
                 "loop iterator"),
        CodeInfo("PREM502", "chain-structure", ERROR,
                 "a loop-carried dependence names a loop outside the "
                 "statements' shared nest (inconsistent chain structure)"),
        CodeInfo("PREM503", "empty-domain", WARNING,
                 "a statement's guarded iteration domain is empty (the "
                 "statement never executes)"),
        CodeInfo("PREM511", "illegal-tiling", ERROR,
                 "a loop level claimed tilable carries a backward "
                 "dependence below its chain head"),
        CodeInfo("PREM512", "illegal-parallel", ERROR,
                 "a loop level claimed parallelizable carries a "
                 "dependence"),
        CodeInfo("PREM513", "guard-approx", WARNING,
                 "a guarded execution count fell back to a conservative "
                 "upper bound (domain too large to enumerate)"),
        CodeInfo("PREM521", "illegal-fission", ERROR,
                 "a requested loop distribution separates statements "
                 "joined by a backward dependence"),
    )
}

#: Name -> code lookup (slugs are unique by construction).
NAME_TO_CODE: Dict[str, str] = {
    info.name: info.code for info in CODE_TABLE.values()
}

#: Codes whose findings concern the *semantics* of the swap plan — the
#: subset the static fault campaign scores detection on (consistency
#: cross-checks like PREM008 would otherwise trivially flag any
#: corruption).
RACE_HAZARD_CODES: Tuple[str, ...] = tuple(
    code for code in CODE_TABLE
    if code.startswith(("PREM1", "PREM2"))
) + ("PREM001", "PREM002", "PREM006")


def code_info(code: str) -> CodeInfo:
    try:
        return CODE_TABLE[code]
    except KeyError as exc:
        raise KeyError(f"unknown diagnostic code {code!r}") from exc


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static verifier or the dynamic checker."""

    code: str
    message: str
    severity: str = ""            # defaults to the code's registry entry
    core: Optional[int] = None
    segment: Optional[int] = None
    slot: Optional[int] = None
    array: Optional[str] = None
    component: Optional[str] = None
    hint: str = ""
    source: str = ""              # pass / checker that emitted it

    def __post_init__(self):
        info = code_info(self.code)    # unknown codes fail fast
        if not self.severity:
            object.__setattr__(self, "severity", info.severity)
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    # -- identity ------------------------------------------------------

    @property
    def name(self) -> str:
        """Stable machine-readable slug of the code."""
        return code_info(self.code).name

    @property
    def kind(self) -> str:
        """Legacy alias used by the fault-campaign scorers."""
        return self.name

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    # -- rendering -----------------------------------------------------

    def location(self) -> str:
        parts = [
            f"{label}={value}"
            for label, value in (
                ("component", self.component), ("core", self.core),
                ("segment", self.segment), ("slot", self.slot),
                ("array", self.array))
            if value is not None
        ]
        return ", ".join(parts)

    def describe(self) -> str:
        where = self.location()
        text = f"{self.code} {self.severity} [{self.name}]"
        if where:
            text += f" {where}"
        text += f": {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_json(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["name"] = self.name
        return {k: v for k, v in payload.items() if v not in (None, "")}


class DiagnosticBag:
    """An ordered collection of diagnostics with severity bookkeeping."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self._items: List[Diagnostic] = list(diagnostics)

    # -- collection ----------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> None:
        self._items.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self._items.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    # -- queries -------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self._items if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self._items if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self._items)

    def by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self._items:
            counts[diagnostic.code] = counts.get(diagnostic.code, 0) + 1
        return counts

    def with_codes(self, codes: Iterable[str]) -> List[Diagnostic]:
        wanted = set(codes)
        return [d for d in self._items if d.code in wanted]

    def sorted(self) -> List[Diagnostic]:
        """Most severe first, then by code and coordinates."""
        return sorted(
            self._items,
            key=lambda d: (_SEVERITY_RANK[d.severity], d.code,
                           d.core if d.core is not None else -1,
                           d.segment if d.segment is not None else -1,
                           d.slot if d.slot is not None else -1,
                           d.array or ""))

    # -- rendering -----------------------------------------------------

    def render_text(self) -> str:
        if not self._items:
            return "no diagnostics"
        lines = [d.describe() for d in self.sorted()]
        lines.append(
            f"{len(self._items)} diagnostic(s): "
            f"{len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)")
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "diagnostics": [d.to_json() for d in self.sorted()],
            "counts": {
                "total": len(self._items),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "by_code": self.by_code(),
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)
