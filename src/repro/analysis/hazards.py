"""Double-buffer / streaming hazard analysis (PREM2xx, PREM002).

The slot convention under analysis: the DMA op in slot ``s`` runs
between the end of exec ``s-2`` and the start of exec ``s``, overlapping
exec ``s-1``.  From it the safety rules below follow; each is checked
per (core, array) swap model:

- **coverage** — event ``x`` (first consumed by segment ``c_x``) needs a
  binding load, and its earliest load must land in a slot ``<= c_x``;
  otherwise the consumer races the DMA (PREM002 / PREM207 when missing,
  PREM201 when late).
- **binding correctness** — at both ends of an event's consumer window
  the *last* load bound to its buffer must be the event's own; a stray
  transfer rebinding the buffer mid-window leaves consumers on the
  wrong range (PREM203 / PREM207).
- **clobber windows** — a load may reuse a buffer no earlier than slot
  ``last_use(prev) + 2``: slot ``last_use+1`` overlaps the occupant's
  final consumer segment.  Two data-moving transfers in one slot on one
  buffer have no defined order (both PREM202).
- **write-back** — every written event needs an unload (PREM205), no
  earlier than ``last_write + 2`` (PREM204: slot ``last_write+1``
  overlaps the writer), no later than the buffer's next rebinding
  (PREM209: the unload would save the *next* range — for RW the unload
  may share the next load's combined slot, for WO it must precede the
  next occupant's first writer segment), and the next load must not
  land before the dirty data was saved (PREM208, same-slot combined
  unload+load is the legal limit).
"""

from __future__ import annotations

from typing import List, Optional

from ..prem.segments import RW, WO
from .diagnostics import Diagnostic
from .model import LOAD, UNLOAD, AnalysisContext, ArraySwapModel, Transfer

SOURCE = "hazards"


def check_hazards(ctx: AnalysisContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for core in ctx.cores():
        for name, model in sorted(ctx.models[core].items()):
            out.extend(_check_coverage(ctx, model))
            out.extend(_check_buffer_bindings(ctx, model))
            out.extend(_check_clobber_windows(ctx, model))
            if model.mode in (WO, RW):
                out.extend(_check_writeback(ctx, model))
    return out


def _diag(code: str, message: str, ctx: AnalysisContext,
          model: ArraySwapModel, *, segment: Optional[int] = None,
          slot: Optional[int] = None, hint: str = "") -> Diagnostic:
    return Diagnostic(
        code, message, core=model.core, segment=segment, slot=slot,
        array=model.array_name, component=ctx.label, hint=hint,
        source=SOURCE)


def _check_coverage(ctx: AnalysisContext,
                    model: ArraySwapModel) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    reads = model.mode != WO
    for event in model.events:
        binds = model.of_event(LOAD, event.index)
        if not binds:
            if reads:
                out.append(_diag(
                    "PREM002",
                    f"segment {event.segment} consumes range "
                    f"{event.crange!r} but no load ever binds it to "
                    f"buffer {event.buffer}",
                    ctx, model, segment=event.segment,
                    hint="every swap event needs a load (or WO rebind) "
                         "before its first consumer"))
            else:
                out.append(_diag(
                    "PREM207",
                    f"segment {event.segment} writes range "
                    f"{event.crange!r} but buffer {event.buffer} is "
                    f"never rebound to it",
                    ctx, model, segment=event.segment))
            continue
        earliest = min(t.slot for t in binds)
        if earliest > event.segment:
            out.append(_diag(
                "PREM201",
                f"load of event {event.index} lands in DMA slot "
                f"{earliest} but segment {event.segment} already "
                f"consumes the range",
                ctx, model, segment=event.segment, slot=earliest,
                hint="a transfer in slot s completes before exec s "
                     "starts; the load must sit in a slot <= its first "
                     "consumer segment"))
        if len(binds) > 1:
            out.append(_diag(
                "PREM206",
                f"event {event.index} is transferred "
                f"{len(binds)} times (slots "
                f"{sorted(t.slot for t in binds)})",
                ctx, model, segment=event.segment,
                slot=max(t.slot for t in binds)))
    return out


def _binding_at(loads: List[Transfer], buffer: int,
                segment: int) -> Optional[Transfer]:
    """The load owning *buffer* when segment *segment* executes: the one
    with the highest (slot, sequence) among loads issued in slots
    ``<= segment``."""
    owner: Optional[Transfer] = None
    for t in loads:
        if t.buffer != buffer or t.slot > segment:
            continue
        if owner is None or (t.slot, t.sequence) > (owner.slot,
                                                    owner.sequence):
            owner = t
    return owner


def _check_buffer_bindings(ctx: AnalysisContext,
                           model: ArraySwapModel) -> List[Diagnostic]:
    """The binding visible at an event's first and last consumer segment
    must be the event's own load."""
    out: List[Diagnostic] = []
    loads = model.loads()
    code = "PREM203" if model.mode != WO else "PREM207"
    verb = "reads" if model.mode != WO else "writes"
    for event in model.events:
        for segment in {event.segment, model.last_use(event.index)}:
            owner = _binding_at(loads, event.buffer, segment)
            if owner is None or owner.event_index == event.index:
                continue   # missing loads are PREM002/PREM207 above
            out.append(_diag(
                code,
                f"segment {segment} {verb} event {event.index}'s range "
                f"but buffer {event.buffer} was last bound to event "
                f"{owner.event_index} (slot {owner.slot})",
                ctx, model, segment=segment, slot=owner.slot,
                hint="a stray transfer rebound the buffer inside the "
                     "event's consumer window"))
    return out


def _check_clobber_windows(ctx: AnalysisContext,
                           model: ArraySwapModel) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for buffer in (1, 2):
        queue = sorted(
            (t for t in model.loads() if t.buffer == buffer),
            key=lambda t: (t.slot, t.sequence))
        for prev, cur in zip(queue, queue[1:]):
            if cur.slot == prev.slot and (cur.moves_data or
                                          prev.moves_data):
                out.append(_diag(
                    "PREM202",
                    f"loads of events {prev.event_index} and "
                    f"{cur.event_index} share DMA slot {cur.slot} on "
                    f"buffer {buffer}; their order is undefined",
                    ctx, model, slot=cur.slot))
                continue
            if not cur.moves_data:
                continue   # WO rebinds move no bytes
            free_from = model.last_use(prev.event_index) + 2
            if cur.slot < free_from:
                out.append(_diag(
                    "PREM202",
                    f"load of event {cur.event_index} (slot {cur.slot}) "
                    f"overwrites buffer {buffer} while segment "
                    f"{model.last_use(prev.event_index)} still uses "
                    f"event {prev.event_index}'s range",
                    ctx, model,
                    segment=model.last_use(prev.event_index),
                    slot=cur.slot,
                    hint=f"the buffer is free from slot {free_from} "
                         f"(last consumer + 2)"))
    return out


def _check_writeback(ctx: AnalysisContext,
                     model: ArraySwapModel) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    loads = model.loads()
    for event in model.events:
        unloads = model.of_event(UNLOAD, event.index)
        if not unloads:
            out.append(_diag(
                "PREM205",
                f"segments {event.segment}..{model.last_use(event.index)} "
                f"write event {event.index}'s range but it is never "
                f"unloaded to main memory",
                ctx, model, segment=event.segment))
            continue
        if len(unloads) > 1:
            out.append(_diag(
                "PREM206",
                f"event {event.index} is unloaded {len(unloads)} times "
                f"(slots {sorted(t.slot for t in unloads)})",
                ctx, model, segment=event.segment,
                slot=max(t.slot for t in unloads)))
        last_write = model.last_use(event.index)
        # The buffer's next occupant bounds how late the unload may run.
        successors = [e for e in model.events
                      if e.buffer == event.buffer and e.index > event.index]
        nxt = min(successors, key=lambda e: e.index) if successors else None
        next_load = None
        if nxt is not None:
            nxt_binds = [t for t in loads if t.event_index == nxt.index]
            if nxt_binds:
                next_load = min(nxt_binds, key=lambda t: t.slot)
        for unload in unloads:
            if unload.slot < last_write + 2:
                out.append(_diag(
                    "PREM204",
                    f"event {event.index}'s range is unloaded in slot "
                    f"{unload.slot} while segment {last_write} still "
                    f"writes it",
                    ctx, model, segment=last_write, slot=unload.slot,
                    hint=f"the unload may start in slot "
                         f"{last_write + 2} at the earliest"))
            if nxt is None:
                continue
            if model.mode == RW:
                if next_load is not None and unload.slot > next_load.slot:
                    out.append(_diag(
                        "PREM209",
                        f"event {event.index}'s unload (slot "
                        f"{unload.slot}) runs after buffer "
                        f"{event.buffer} is reloaded for event "
                        f"{nxt.index} (slot {next_load.slot}); it would "
                        f"write back the wrong range",
                        ctx, model, slot=unload.slot,
                        hint="the unload may at latest share the next "
                             "load's combined DMA op"))
                if next_load is not None and next_load.slot < unload.slot:
                    out.append(_diag(
                        "PREM208",
                        f"load of event {nxt.index} (slot "
                        f"{next_load.slot}) overwrites buffer "
                        f"{event.buffer} before event {event.index}'s "
                        f"dirty data is unloaded (slot {unload.slot})",
                        ctx, model, slot=next_load.slot,
                        hint="unload and reload must share one combined "
                             "DMA op, or the unload must come first"))
            else:   # WO: content is overwritten by the next writer
                if unload.slot > nxt.segment:
                    out.append(_diag(
                        "PREM209",
                        f"event {event.index}'s unload (slot "
                        f"{unload.slot}) runs after segment "
                        f"{nxt.segment} starts overwriting buffer "
                        f"{event.buffer} with event {nxt.index}'s data",
                        ctx, model, segment=nxt.segment,
                        slot=unload.slot))
    return out
