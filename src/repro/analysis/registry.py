"""The analysis pass registry.

Passes are plain callables ``AnalysisContext -> List[Diagnostic]``
registered with the codes they may emit; the registry validates the
codes against :data:`~repro.analysis.diagnostics.CODE_TABLE` at
registration time, runs selected subsets (the fault campaign skips the
plan-consistency cross-checks, for instance), and stamps every emitted
diagnostic with its pass name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .capacity import check_capacity
from .diagnostics import CODE_TABLE, Diagnostic, DiagnosticBag
from .hazards import check_hazards
from .races import check_races
from .wellformed import check_wellformed

#: Passes take whatever context their registry's caller built — the
#: artifact verifier's :class:`AnalysisContext` for the default
#: registry, a :class:`repro.analysis.source.SourceContext` for the
#: source registry — and return diagnostics.
PassFn = Callable[[Any], List[Diagnostic]]


@dataclass(frozen=True)
class AnalysisPass:
    """One registered static-analysis pass."""

    name: str
    title: str
    codes: Tuple[str, ...]
    run: PassFn


class PassRegistry:
    """Ordered registry of analysis passes."""

    def __init__(self) -> None:
        self._passes: Dict[str, AnalysisPass] = {}

    def register(self, name: str, title: str, codes: Iterable[str],
                 run: PassFn) -> AnalysisPass:
        if name in self._passes:
            raise ValueError(f"pass {name!r} registered twice")
        codes = tuple(codes)
        unknown = [code for code in codes if code not in CODE_TABLE]
        if unknown:
            raise ValueError(
                f"pass {name!r} declares unknown codes {unknown}")
        entry = AnalysisPass(name=name, title=title, codes=codes, run=run)
        self._passes[name] = entry
        return entry

    def names(self) -> List[str]:
        return list(self._passes)

    def passes(self) -> List[AnalysisPass]:
        return list(self._passes.values())

    def get(self, name: str) -> AnalysisPass:
        try:
            return self._passes[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown analysis pass {name!r}; registered: "
                f"{', '.join(self._passes)}") from exc

    def run(self, ctx: Any,
            names: Optional[Iterable[str]] = None) -> DiagnosticBag:
        selected = [self.get(n) for n in names] if names is not None \
            else self.passes()
        bag = DiagnosticBag()
        for entry in selected:
            for diagnostic in entry.run(ctx):
                if diagnostic.code not in entry.codes:
                    raise ValueError(
                        f"pass {entry.name!r} emitted undeclared code "
                        f"{diagnostic.code}")
                bag.add(diagnostic)
        return bag


def default_registry() -> PassRegistry:
    registry = PassRegistry()
    registry.register(
        "wellformed", "schedule well-formedness",
        ("PREM001", "PREM003", "PREM004", "PREM005", "PREM006",
         "PREM007", "PREM008", "PREM009"),
        check_wellformed)
    registry.register(
        "hazards", "double-buffer hazards",
        ("PREM002", "PREM201", "PREM202", "PREM203", "PREM204",
         "PREM205", "PREM206", "PREM207", "PREM208", "PREM209"),
        check_hazards)
    registry.register(
        "races", "inter-core races",
        ("PREM101", "PREM102"),
        check_races)
    registry.register(
        "capacity", "SPM capacity and buffer lifetime",
        ("PREM301", "PREM302"),
        check_capacity)
    return registry


#: The registry the verifier and the CLI use.
DEFAULT_REGISTRY = default_registry()

#: The passes that judge swap-plan *semantics* — what the static fault
#: campaign re-runs on corrupted models (plan cross-checks excluded, they
#: would flag any model mutation trivially).
SEMANTIC_PASSES: Tuple[str, ...] = ("wellformed", "hazards", "capacity")
