"""Inter-core race detection on main memory (PREM1xx).

Concurrency model: the schedule orders segments *within* one core (and
serialises DMA ops through the single round-robin engine), but it never
synchronises execution phases **across** cores — any segment of core
``i`` may overlap any segment of core ``j != i``.  Race freedom must
therefore hold for the cores' *entire* footprints: the per-core,
per-array read/write hulls from :meth:`AnalysisContext.array_footprints`
(derived from the tiling solution, independently of the swap planner).

Two cores conflict on an array when a write hull of one overlaps —
under the conservative symbolic test of
:func:`repro.prem.ranges.ranges_overlap` — a write hull (PREM101) or a
read hull (PREM102) of the other.  Symbolically-offset hulls such as
LSTM's ``c_F[t]`` written against ``c_F[t-1]`` read compare exactly:
matching outer coefficients reduce the test to constant intervals.

One diagnostic is reported per (array, core pair, kind); cores rarely
conflict on just one tile, and a per-hull report would drown the
signal.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

from ..prem.ranges import ranges_overlap
from .diagnostics import Diagnostic
from .model import AnalysisContext

SOURCE = "races"


def check_races(ctx: AnalysisContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    footprints = ctx.array_footprints()
    cores = sorted(footprints)
    names = sorted(ctx.component.arrays())
    for name in names:
        for a, b in combinations(cores, 2):
            fp_a = footprints[a].get(name)
            fp_b = footprints[b].get(name)
            if fp_a is None or fp_b is None:
                continue
            conflict = _first_overlap(fp_a.writes, fp_b.writes)
            if conflict is not None:
                out.append(Diagnostic(
                    "PREM101",
                    f"cores {a} and {b} both write {conflict[0]!r} / "
                    f"{conflict[1]!r}; their segments are not ordered "
                    f"across cores",
                    core=a, array=name, component=ctx.label,
                    hint="tile boundaries must separate written ranges "
                         "across thread groups",
                    source=SOURCE))
            conflict = _first_overlap(fp_a.writes, fp_b.reads) or \
                _first_overlap(fp_b.writes, fp_a.reads)
            if conflict is not None:
                out.append(Diagnostic(
                    "PREM102",
                    f"one of cores {a}/{b} writes {conflict[0]!r} while "
                    f"the other reads {conflict[1]!r} concurrently",
                    core=a, array=name, component=ctx.label,
                    hint="cross-core read-after-write needs a component "
                         "boundary, not a segment boundary",
                    source=SOURCE))
    return out


def _first_overlap(writes, others):
    for w in writes:
        for o in others:
            if ranges_overlap(w, o):
                return w, o
    return None
