"""Static PREM-compliance verification (no VM execution involved).

The subsystem proves schedule safety from the compiled artifacts alone:
inter-core race freedom, double-buffer hazard freedom, SPM capacity and
buffer lifetime, and schedule well-formedness — all reported through a
unified diagnostics framework with stable ``PREMxxx`` codes.
"""

from .capacity import check_capacity
from .diagnostics import (
    CODE_TABLE,
    ERROR,
    INFO,
    NAME_TO_CODE,
    RACE_HAZARD_CODES,
    WARNING,
    CodeInfo,
    Diagnostic,
    DiagnosticBag,
    code_info,
)
from .hazards import check_hazards
from .model import (
    LOAD,
    UNLOAD,
    AnalysisContext,
    ArraySwapModel,
    EventModel,
    Footprint,
    Transfer,
    build_context,
)
from .races import check_races
from .registry import (
    DEFAULT_REGISTRY,
    SEMANTIC_PASSES,
    AnalysisPass,
    PassRegistry,
    default_registry,
)
from .source import (
    SOURCE_REGISTRY,
    SourceContext,
    SourceReport,
    analyze_source,
    build_source_context,
    source_registry,
)
from .verifier import AnalysisReport, ComponentReport, StaticVerifier
from .wellformed import check_wellformed

__all__ = [
    "CODE_TABLE",
    "DEFAULT_REGISTRY",
    "ERROR",
    "INFO",
    "LOAD",
    "NAME_TO_CODE",
    "RACE_HAZARD_CODES",
    "SEMANTIC_PASSES",
    "SOURCE_REGISTRY",
    "UNLOAD",
    "WARNING",
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "ArraySwapModel",
    "CodeInfo",
    "ComponentReport",
    "Diagnostic",
    "DiagnosticBag",
    "EventModel",
    "Footprint",
    "PassRegistry",
    "SourceContext",
    "SourceReport",
    "StaticVerifier",
    "Transfer",
    "analyze_source",
    "build_context",
    "build_source_context",
    "check_capacity",
    "check_hazards",
    "check_races",
    "check_wellformed",
    "code_info",
    "default_registry",
    "source_registry",
]
