"""SPM capacity and buffer-lifetime analysis (PREM3xx).

The generated code double-buffers every streamed array: two buffers of
the array's bounding-box size are allocated in the initialisation
segment and deallocated by the ``dealloc_segments`` schedule (the
second-to-last buffer as soon as its final consumer ends, the last at
the end of the component).  This pass checks, per core:

- **PREM301** — peak live allocation (all buffers are live right after
  initialisation) must fit the SPM; the planner's own
  ``spm_bytes_needed`` must agree with the platform too.
- **PREM302** — the allocate/deallocate pairing: exactly one dealloc
  per buffer, inside the segment range, and never before the buffer's
  last consumer segment.
"""

from __future__ import annotations

from typing import Dict, List

from .diagnostics import Diagnostic
from .model import AnalysisContext, ArraySwapModel

SOURCE = "capacity"


def check_capacity(ctx: AnalysisContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for core in ctx.cores():
        models = ctx.models[core]
        live = 0
        for name, model in sorted(models.items()):
            if model.events:
                live += 2 * ctx.bounding_bytes[name]
        if live > ctx.platform.spm_bytes:
            out.append(Diagnostic(
                "PREM301",
                f"core {core} allocates {live} B of SPM buffers but the "
                f"platform provides {ctx.platform.spm_bytes} B",
                core=core, component=ctx.label,
                hint="shrink tile sizes or stream fewer arrays at once",
                source=SOURCE))
        for name, model in sorted(models.items()):
            out.extend(_check_lifetime(
                ctx, model, ctx.dealloc_segments[core].get(name, [])))
    if ctx.plan is not None and \
            ctx.plan.spm_bytes_needed > ctx.platform.spm_bytes:
        out.append(Diagnostic(
            "PREM301",
            f"the plan needs {ctx.plan.spm_bytes_needed} B of SPM "
            f"(> {ctx.platform.spm_bytes} B)",
            component=ctx.label, source=SOURCE))
    return out


def _check_lifetime(ctx: AnalysisContext, model: ArraySwapModel,
                    deallocs) -> List[Diagnostic]:
    if not model.events:
        return []
    out: List[Diagnostic] = []
    n = model.n_segments
    last_use: Dict[int, int] = {1: 0, 2: 0}
    for event in model.events:
        last_use[event.buffer] = max(
            last_use[event.buffer], model.last_use(event.index))
    seen: Dict[int, int] = {}
    for segment, buffer in deallocs:
        if buffer not in (1, 2):
            out.append(_lifetime_diag(
                ctx, model, segment,
                f"deallocates unknown buffer {buffer}"))
            continue
        if buffer in seen:
            out.append(_lifetime_diag(
                ctx, model, segment,
                f"buffer {buffer} deallocated twice (segments "
                f"{seen[buffer]} and {segment})"))
            continue
        seen[buffer] = segment
        if not 1 <= segment <= n:
            out.append(_lifetime_diag(
                ctx, model, segment,
                f"buffer {buffer} deallocated in segment {segment}, "
                f"outside 1..{n}"))
        elif segment < last_use[buffer]:
            out.append(_lifetime_diag(
                ctx, model, segment,
                f"buffer {buffer} deallocated in segment {segment} but "
                f"segment {last_use[buffer]} still uses it"))
    for buffer in (1, 2):
        if buffer not in seen:
            out.append(_lifetime_diag(
                ctx, model, None,
                f"buffer {buffer} is allocated but never deallocated"))
    return out


def _lifetime_diag(ctx: AnalysisContext, model: ArraySwapModel,
                   segment, message: str) -> Diagnostic:
    return Diagnostic(
        "PREM302", message, core=model.core, segment=segment,
        array=model.array_name, component=ctx.label, source=SOURCE)
