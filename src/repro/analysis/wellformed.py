"""Schedule well-formedness checks (PREM0xx).

Two layers of checks share this pass:

- **Model-level** (always available): swap events must advance strictly
  monotonically through the segment range (PREM001) and every DMA
  transfer must sit inside the round-robin slot range ``1..n+2``
  (PREM006).
- **Plan-level** (when a :class:`~repro.prem.segments.ComponentPlan` is
  attached): the planned core schedules must be shaped consistently
  (PREM003), free of negative durations (PREM005), and their dependency
  slots must point backwards onto slots that actually carry a transfer
  (PREM004 / PREM007).  Finally the plan is cross-validated against the
  independently built swap models: per-slot DMA times, transferred byte
  totals, and dependency slots are *recomputed* from the models and
  compared (PREM008), as is the initialisation segment's API accounting
  (PREM009).  The planner and the macro builder derive their schedules
  through different code paths (structural rollover walk vs. hull
  comparison), so agreement here is a real cross-check, not a tautology.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..prem.segments import RO, RW, WO, CoreSchedule, swap_api_name
from .diagnostics import Diagnostic
from .model import LOAD, UNLOAD, AnalysisContext, ArraySwapModel

SOURCE = "wellformed"


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=1e-6, abs_tol=1e-3)


def check_wellformed(ctx: AnalysisContext) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for core in ctx.cores():
        for name, model in sorted(ctx.models[core].items()):
            out.extend(_check_events(ctx, model))
            out.extend(_check_slot_ranges(ctx, model))
    if ctx.plan is not None:
        schedules = {sched.core: sched for sched in ctx.plan.cores}
        for core in ctx.cores():
            sched = schedules.get(core)
            if sched is None:
                out.append(Diagnostic(
                    "PREM003", f"core {core} has swap models but no "
                    "planned schedule", core=core,
                    component=ctx.label, source=SOURCE))
                continue
            out.extend(_check_schedule_shape(ctx, sched))
            out.extend(_check_plan_consistency(ctx, core, sched))
            out.extend(_check_init_api(ctx, core, sched))
    return out


# -- model-level -----------------------------------------------------------


def _check_events(ctx: AnalysisContext,
                  model: ArraySwapModel) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    previous = 0
    for event in model.events:
        if event.segment <= previous or event.segment > model.n_segments:
            out.append(Diagnostic(
                "PREM001",
                f"swap event {event.index} targets segment "
                f"{event.segment} (previous event at {previous}, "
                f"core has {model.n_segments} segments)",
                core=model.core, segment=event.segment,
                array=model.array_name, component=ctx.label,
                hint="swap-event segments must increase strictly within "
                     "1..n_segments",
                source=SOURCE))
        previous = event.segment
    return out


def _check_slot_ranges(ctx: AnalysisContext,
                       model: ArraySwapModel) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    last_slot = model.n_segments + 2
    for transfer in model.transfers:
        if 1 <= transfer.slot <= last_slot:
            continue
        out.append(Diagnostic(
            "PREM006",
            f"{transfer.op} of event {transfer.event_index} sits in DMA "
            f"slot {transfer.slot}, outside 1..{last_slot}",
            core=model.core, slot=transfer.slot,
            array=model.array_name, component=ctx.label,
            hint="the round-robin DMA sequence ends two slots after the "
                 "last segment",
            source=SOURCE))
    return out


# -- plan-level ------------------------------------------------------------


def _check_schedule_shape(ctx: AnalysisContext,
                          sched: CoreSchedule) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    n = sched.n_segments

    def shape(field: str, got: int, want: int) -> None:
        out.append(Diagnostic(
            "PREM003",
            f"{field} has {got} entries for {n} segments (expected "
            f"{want})",
            core=sched.core, component=ctx.label, source=SOURCE))

    if len(sched.exec_ns) != n:
        shape("exec_ns", len(sched.exec_ns), n)
    if len(sched.mem_slot_ns) != n + 2:
        shape("mem_slot_ns", len(sched.mem_slot_ns), n + 2)
    if len(sched.dep_slot) != n:
        shape("dep_slot", len(sched.dep_slot), n)

    if sched.init_api_ns < 0:
        out.append(Diagnostic(
            "PREM005", f"negative init API time {sched.init_api_ns}",
            core=sched.core, component=ctx.label, source=SOURCE))
    for idx, value in enumerate(sched.exec_ns):
        if value < 0:
            out.append(Diagnostic(
                "PREM005",
                f"segment {idx + 1} has negative execution time {value}",
                core=sched.core, segment=idx + 1, component=ctx.label,
                source=SOURCE))
    for idx, value in enumerate(sched.mem_slot_ns):
        if value < 0:
            out.append(Diagnostic(
                "PREM005",
                f"DMA slot {idx + 1} has negative length {value}",
                core=sched.core, slot=idx + 1, component=ctx.label,
                source=SOURCE))

    for idx, dep in enumerate(sched.dep_slot[:len(sched.mem_slot_ns)]):
        segment = idx + 1
        if dep == 0:
            continue
        if dep < 0 or dep > segment:
            out.append(Diagnostic(
                "PREM004",
                f"segment {segment} awaits DMA slot {dep}, which does "
                f"not precede it",
                core=sched.core, segment=segment, slot=dep,
                component=ctx.label,
                hint="a segment may only await slots <= its own index",
                source=SOURCE))
        elif dep <= len(sched.mem_slot_ns) and \
                sched.mem_slot_ns[dep - 1] <= 0:
            out.append(Diagnostic(
                "PREM007",
                f"segment {segment} awaits DMA slot {dep}, which "
                f"carries no transfer",
                core=sched.core, segment=segment, slot=dep,
                component=ctx.label, source=SOURCE))
    return out


def _check_plan_consistency(ctx: AnalysisContext, core: int,
                            sched: CoreSchedule) -> List[Diagnostic]:
    """Recompute the core schedule's DMA facts from the swap models."""
    out: List[Diagnostic] = []
    models = ctx.models[core]
    n = max(
        [sched.n_segments] + [m.n_segments for m in models.values()])

    model_segments = {m.n_segments for m in models.values()}
    if model_segments and model_segments != {sched.n_segments}:
        out.append(Diagnostic(
            "PREM008",
            f"planned schedule has {sched.n_segments} segments but the "
            f"swap models cover {sorted(model_segments)}",
            core=core, component=ctx.label, source=SOURCE))
        return out   # slot arrays are incomparable past this point

    mem_slot = [0.0] * (n + 2)
    load_bytes = 0
    unload_bytes = 0
    dep_slot = [0] * n
    for name, model in sorted(models.items()):
        for transfer in model.transfers:
            if not transfer.moves_data:
                continue
            if not 1 <= transfer.slot <= n + 2:
                continue   # PREM006 already reported
            event = model.event(transfer.event_index)
            if event.crange is not None:
                mem_slot[transfer.slot - 1] += \
                    event.crange.transfer_ns(ctx.platform)
            if transfer.op == LOAD:
                load_bytes += event.payload_bytes
            else:
                unload_bytes += event.payload_bytes
        for transfer in model.loads():
            if not transfer.moves_data:
                continue
            event = model.event(transfer.event_index)
            if 1 <= event.segment <= n and 1 <= transfer.slot:
                dep_slot[event.segment - 1] = max(
                    dep_slot[event.segment - 1], transfer.slot)
        if model.mode in (WO, RW):
            for event in model.events:
                if event.index < 3:
                    continue
                unloads = model.of_event(UNLOAD, event.index - 2)
                if unloads and 1 <= event.segment <= n:
                    dep_slot[event.segment - 1] = max(
                        dep_slot[event.segment - 1],
                        min(t.slot for t in unloads))

    if sched.load_bytes != load_bytes or \
            sched.unload_bytes != unload_bytes:
        out.append(Diagnostic(
            "PREM008",
            f"planned transfer totals (load {sched.load_bytes} B, "
            f"unload {sched.unload_bytes} B) disagree with the swap "
            f"models (load {load_bytes} B, unload {unload_bytes} B)",
            core=core, component=ctx.label, source=SOURCE))
    for slot in range(1, n + 3):
        planned = sched.mem_slot_ns[slot - 1] \
            if slot <= len(sched.mem_slot_ns) else 0.0
        if not _close(planned, mem_slot[slot - 1]):
            out.append(Diagnostic(
                "PREM008",
                f"DMA slot {slot} planned at {planned:.1f} ns but the "
                f"swap models transfer {mem_slot[slot - 1]:.1f} ns",
                core=core, slot=slot, component=ctx.label,
                source=SOURCE))
    for idx in range(min(n, len(sched.dep_slot))):
        if sched.dep_slot[idx] != dep_slot[idx]:
            out.append(Diagnostic(
                "PREM008",
                f"segment {idx + 1} planned to await slot "
                f"{sched.dep_slot[idx]} but the swap models require "
                f"slot {dep_slot[idx]}",
                core=core, segment=idx + 1, component=ctx.label,
                source=SOURCE))
    return out


def _check_init_api(ctx: AnalysisContext, core: int,
                    sched: CoreSchedule) -> List[Diagnostic]:
    """Recompute the initialisation segment's API accounting (PREM009)."""
    platform = ctx.platform
    models = ctx.models[core]
    expected = platform.api_cost("dispatch") + \
        platform.api_cost("end_segment")
    slot1_busy = False
    for name, model in models.items():
        if not model.events:
            continue
        expected += 2 * platform.api_cost("allocate_buffer")
        array = ctx.component.arrays()[name]
        swap_cost = platform.api_cost(swap_api_name(array.ndim))
        expected += swap_cost * min(len(model.events), 2)
        if model.mode in (RO, RW) and any(
                t.slot == 1 and t.moves_data for t in model.loads()):
            slot1_busy = True
    if slot1_busy:
        expected += platform.api_cost("DMA_int_handler")
    if not _close(expected, sched.init_api_ns):
        return [Diagnostic(
            "PREM009",
            f"initialisation segment accounts {sched.init_api_ns:.1f} ns "
            f"of API time but the swap plan requires {expected:.1f} ns",
            core=core, component=ctx.label,
            hint="dispatch + end_segment + 2 allocs per streamed array "
                 "+ the first two swap calls (+ DMA handler when slot 1 "
                 "is busy)",
            source=SOURCE)]
    return []
