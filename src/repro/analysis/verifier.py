"""The static PREM-compliance verifier facade.

:class:`StaticVerifier` takes compiled artifacts — a
:class:`~repro.compiler.CompilationResult` (duck-typed; only
``components``, ``platform``, ``kernel`` and ``strategy`` are touched)
or a bare (component, solution) pair — builds the analysis model, and
runs the registered passes.  No VM execution is involved anywhere.

Compiled components carry no :class:`~repro.prem.segments.ComponentPlan`
(plans are an optimizer-internal artifact), so the verifier re-plans
each component with a **null execution model**: every fact the passes
inspect (swap events, DMA slot assignment, transfer times, API
accounting, dependencies) is independent of execution-phase estimates,
which makes the re-planned schedule byte-identical to the optimizer's
in everything that matters statically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..loopir.component import TilableComponent
from ..opt.solution import Solution
from ..prem.segments import ComponentPlan, PlanError, SegmentPlanner
from ..timing.platform import Platform
from .diagnostics import Diagnostic, DiagnosticBag
from .model import AnalysisContext, build_context
from .registry import DEFAULT_REGISTRY, PassRegistry


class _NullExecModel:
    """Execution-phase estimates are irrelevant to static checking."""

    def estimate(self, widths: Tuple[int, ...]) -> float:
        return 0.0


@dataclass
class ComponentReport:
    """Verification outcome of one compiled component."""

    label: str
    context: Optional[AnalysisContext]
    diagnostics: DiagnosticBag

    @property
    def has_errors(self) -> bool:
        return self.diagnostics.has_errors


class AnalysisReport:
    """Verification outcome of a whole compilation."""

    def __init__(self, kernel_name: str, strategy: str,
                 components: List[ComponentReport]):
        self.kernel_name = kernel_name
        self.strategy = strategy
        self.components = components

    @property
    def merged(self) -> DiagnosticBag:
        bag = DiagnosticBag()
        for report in self.components:
            bag.extend(report.diagnostics)
        return bag

    @property
    def has_errors(self) -> bool:
        return any(r.has_errors for r in self.components)

    def render_text(self) -> str:
        lines = [
            f"static analysis of {self.kernel_name} "
            f"({self.strategy}): {len(self.components)} component(s)"
        ]
        for report in self.components:
            lines.append(f"-- {report.label}")
            lines.append(report.diagnostics.render_text())
        return "\n".join(lines)

    def render_json(self) -> str:
        import json
        payload = {
            "kernel": self.kernel_name,
            "strategy": self.strategy,
            "components": {
                report.label: {
                    "diagnostics": [
                        d.to_json() for d in report.diagnostics.sorted()
                    ],
                    "errors": len(report.diagnostics.errors),
                    "warnings": len(report.diagnostics.warnings),
                }
                for report in self.components
            },
            "counts": {
                "total": len(self.merged),
                "errors": len(self.merged.errors),
                "warnings": len(self.merged.warnings),
                "by_code": self.merged.by_code(),
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


class StaticVerifier:
    """Runs every registered analysis pass over compiled artifacts."""

    def __init__(self, platform: Platform,
                 registry: Optional[PassRegistry] = None):
        self.platform = platform
        self.registry = registry or DEFAULT_REGISTRY

    # -- component-level ---------------------------------------------------

    def build_context(self, component: TilableComponent,
                      solution: Solution,
                      plan: Optional[ComponentPlan] = None
                      ) -> AnalysisContext:
        if plan is None:
            planner = SegmentPlanner(
                component, self.platform, _NullExecModel())
            plan = planner.plan(solution)
        return build_context(
            component, solution, self.platform, plan=plan)

    def verify_component(self, component: TilableComponent,
                         solution: Solution,
                         plan: Optional[ComponentPlan] = None,
                         passes: Optional[Iterable[str]] = None
                         ) -> ComponentReport:
        try:
            ctx = self.build_context(component, solution, plan)
        except PlanError as exc:
            bag = DiagnosticBag()
            bag.add(Diagnostic(
                "PREM003",
                f"the solution cannot be planned: {exc}",
                component=component.label(), source="verifier"))
            return ComponentReport(
                label=component.label(), context=None, diagnostics=bag)
        return self.verify_context(ctx, passes=passes)

    def verify_context(self, ctx: AnalysisContext,
                       passes: Optional[Iterable[str]] = None
                       ) -> ComponentReport:
        bag = self.registry.run(ctx, names=passes)
        return ComponentReport(
            label=ctx.label, context=ctx, diagnostics=bag)

    # -- compilation-level -------------------------------------------------

    def verify_compilation(self, result,
                           passes: Optional[Iterable[str]] = None
                           ) -> AnalysisReport:
        """Verify every component of a compiled kernel.

        *result* is duck-typed on ``components`` (items exposing
        ``component`` and ``solution``), ``kernel.name`` and
        ``strategy`` so the analysis layer needs no compiler import.
        """
        reports = [
            self.verify_component(
                compiled.component, compiled.solution, passes=passes)
            for compiled in result.components
        ]
        return AnalysisReport(
            kernel_name=result.kernel.name,
            strategy=getattr(result, "strategy", "?"),
            components=reports)
