"""The artifact model the static verifier analyzes.

The verifier never runs the VM; it works on a self-contained mirror of
the compiled artifacts:

- :class:`ArraySwapModel` — one core's streaming plan for one array,
  built from the :class:`~repro.prem.macros.ArraySwapSchedule` the macro
  builder derives.  Unlike the schedule (whose slots are computed
  properties), the model materialises every DMA **transfer** as data, so
  a fault campaign can corrupt it (drop / delay / duplicate a transfer)
  and re-run the passes — the static analogue of
  :class:`~repro.faults.FaultInjector`.
- :class:`AnalysisContext` — the full bundle for one component: per-core
  swap models, the planned :class:`~repro.prem.segments.ComponentPlan`
  (re-planned on demand when a warm cache returned a plan-less result),
  buffer geometry, and lazily computed per-core read/write footprints
  for the race detector.

The model layer knows nothing about ``repro.faults`` — the import points
the other way (``faults.staticdet`` drives the corruption methods), so
the dynamic checker can emit the same ``Diagnostic`` objects without an
import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from ..loopir.component import TilableComponent
from ..opt.solution import Solution
from ..prem.macros import ArraySwapSchedule, MacroBuilder
from ..prem.ranges import CanonicalRange, access_range, tile_box
from ..prem.segments import RO, RW, WO, ArrayGeometry, ComponentPlan
from ..prem.swapgen import validate_swap_call
from ..timing.platform import Platform

LOAD = "load"
UNLOAD = "unload"


@dataclass(frozen=True)
class EventModel:
    """The x-th range change of one array on one core (execution side).

    Execution phases consume ranges by this table regardless of what the
    DMA actually transferred — exactly how the generated code behaves —
    so corrupting the transfer list below never changes what segments
    *expect*, only what they would really find in the SPM.
    """

    index: int                         # x, 1-based
    segment: int                       # first consumer segment
    buffer: int                        # 1 or 2
    crange: Optional[CanonicalRange]   # None only in synthetic tests

    @property
    def payload_bytes(self) -> int:
        return self.crange.bytes if self.crange is not None else 0


@dataclass(frozen=True)
class Transfer:
    """One DMA operation (or WO buffer rebind) of the modelled plan."""

    op: str              # LOAD | UNLOAD
    event_index: int     # which EventModel it serves
    slot: int            # round-robin DMA slot
    buffer: int
    moves_data: bool     # False for WO rebinds (no bytes move)
    sequence: int        # insertion order; breaks same-slot ties


class ArraySwapModel:
    """Mutable per-(core, array) streaming plan the passes inspect."""

    def __init__(self, array_name: str, mode: str, core: int,
                 n_segments: int, events: List[EventModel],
                 transfers: List[Transfer]):
        self.array_name = array_name
        self.mode = mode
        self.core = core
        self.n_segments = n_segments
        self.events = events
        self.transfers = transfers

    @classmethod
    def from_schedule(cls, schedule: ArraySwapSchedule) -> "ArraySwapModel":
        events = [
            EventModel(index=e.index, segment=e.segment,
                       buffer=e.buffer, crange=e.crange)
            for e in schedule.events
        ]
        transfers: List[Transfer] = []
        loads_move = schedule.mode in (RO, RW)
        unloads = schedule.mode in (WO, RW)
        for e in schedule.events:
            transfers.append(Transfer(
                op=LOAD, event_index=e.index,
                slot=schedule.transfer_slot(e.index), buffer=e.buffer,
                moves_data=loads_move, sequence=len(transfers)))
            if unloads:
                transfers.append(Transfer(
                    op=UNLOAD, event_index=e.index,
                    slot=schedule.unload_slot(e.index), buffer=e.buffer,
                    moves_data=True, sequence=len(transfers)))
        return cls(
            array_name=schedule.array_name, mode=schedule.mode,
            core=schedule.core, n_segments=schedule.n_segments,
            events=events, transfers=transfers)

    def clone(self) -> "ArraySwapModel":
        return ArraySwapModel(
            array_name=self.array_name, mode=self.mode, core=self.core,
            n_segments=self.n_segments, events=list(self.events),
            transfers=list(self.transfers))

    # -- queries -------------------------------------------------------

    def event(self, index: int) -> EventModel:
        for event in self.events:
            if event.index == index:
                return event
        raise KeyError(
            f"{self.array_name}: no swap event with index {index}")

    def last_use(self, index: int) -> int:
        """Last segment consuming the *index*-th event's range."""
        later = [e.segment for e in self.events if e.index == index + 1]
        return later[0] - 1 if later else self.n_segments

    def loads(self) -> List[Transfer]:
        return [t for t in self.transfers if t.op == LOAD]

    def unloads(self) -> List[Transfer]:
        return [t for t in self.transfers if t.op == UNLOAD]

    def of_event(self, op: str, index: int) -> List[Transfer]:
        return [t for t in self.transfers
                if t.op == op and t.event_index == index]

    # -- corruption (the static fault campaign's injection surface) ----

    def drop_transfer(self, op: str, index: int) -> None:
        """Remove the earliest matching transfer (a vanished DMA op)."""
        victims = self.of_event(op, index)
        if not victims:
            raise KeyError(
                f"{self.array_name}: no {op} transfer for event {index}")
        self.transfers.remove(min(victims, key=lambda t: t.slot))

    def delay_transfer(self, op: str, index: int, slots: int) -> None:
        """Shift the earliest matching transfer *slots* slots later."""
        victims = self.of_event(op, index)
        if not victims:
            raise KeyError(
                f"{self.array_name}: no {op} transfer for event {index}")
        victim = min(victims, key=lambda t: t.slot)
        where = self.transfers.index(victim)
        self.transfers[where] = replace(
            victim, slot=victim.slot + max(int(slots), 0))

    def duplicate_transfer(self, op: str, index: int, offset: int) -> None:
        """Append a second copy of a transfer *offset* slots later."""
        victims = self.of_event(op, index)
        if not victims:
            raise KeyError(
                f"{self.array_name}: no {op} transfer for event {index}")
        original = min(victims, key=lambda t: t.slot)
        self.transfers.append(replace(
            original, slot=original.slot + max(int(offset), 1),
            sequence=len(self.transfers)))


@dataclass(frozen=True)
class Footprint:
    """Deduplicated main-memory hulls one core touches in one array."""

    reads: Tuple[CanonicalRange, ...]
    writes: Tuple[CanonicalRange, ...]


@dataclass
class AnalysisContext:
    """Everything the analysis passes need about one compiled component."""

    component: TilableComponent
    solution: Solution
    platform: Platform
    modes: Dict[str, str]
    models: Dict[int, Dict[str, ArraySwapModel]]   # core -> array -> model
    bounding_bytes: Dict[str, int]
    dealloc_segments: Dict[int, Dict[str, List[Tuple[int, int]]]]
    plan: Optional[ComponentPlan] = None
    footprints: Optional[Dict[int, Dict[str, Footprint]]] = field(
        default=None, repr=False)

    @property
    def label(self) -> str:
        return self.component.label()

    def cores(self) -> List[int]:
        return sorted(self.models)

    def with_models(self, models: Dict[int, Dict[str, ArraySwapModel]]
                    ) -> "AnalysisContext":
        """A shallow copy analysing *models* instead (fault campaigns)."""
        return replace(self, models=models, footprints=self.footprints)

    def clone_models(self) -> Dict[int, Dict[str, ArraySwapModel]]:
        return {
            core: {name: model.clone() for name, model in per_core.items()}
            for core, per_core in self.models.items()
        }

    def array_footprints(self) -> Dict[int, Dict[str, Footprint]]:
        """Per-core, per-array read/write hulls (computed once, cached).

        Footprints are derived from the tiling solution directly — not
        from the swap events — so the race detector cross-checks the
        planner instead of trusting it.  Tile indices are projected onto
        each array's key variables before hull construction; tiles equal
        under the projection share one hull.
        """
        if self.footprints is None:
            self.footprints = _compute_footprints(
                self.component, self.solution, self.platform, self.modes)
        return self.footprints


def _compute_footprints(component: TilableComponent, solution: Solution,
                        platform: Platform, modes: Mapping[str, str]
                        ) -> Dict[int, Dict[str, Footprint]]:
    geometry = ArrayGeometry(component, platform, exec_model=None)
    names = list(component.arrays())
    sizes = solution.tile_sizes
    out: Dict[int, Dict[str, Footprint]] = {}
    hull_cache: Dict[Tuple, Tuple] = {}
    for core in range(solution.threads):
        per_core: Dict[str, Footprint] = {}
        tiles = list(solution.core_tiles(core))
        for name in names:
            key_vars = geometry.key_vars(name)
            reads: List[CanonicalRange] = []
            writes: List[CanonicalRange] = []
            seen = set()
            for indices in tiles:
                projected = tuple(indices[v] for v in key_vars)
                if projected in seen:
                    continue
                seen.add(projected)
                cache_key = (name, projected)
                hulls = hull_cache.get(cache_key)
                if hulls is None:
                    box = tile_box(component, indices, sizes)
                    hulls = (
                        access_range(component, name, box,
                                     reads=True, writes=False),
                        access_range(component, name, box,
                                     reads=False, writes=True),
                    )
                    hull_cache[cache_key] = hulls
                read_hull, write_hull = hulls
                if read_hull is not None:
                    reads.append(read_hull)
                if write_hull is not None:
                    writes.append(write_hull)
            per_core[name] = Footprint(
                reads=_dedupe(reads), writes=_dedupe(writes))
        out[core] = per_core
    return out


def _dedupe(hulls: List[CanonicalRange]) -> Tuple[CanonicalRange, ...]:
    unique: List[CanonicalRange] = []
    for hull in hulls:
        if not any(hull.same_as(kept) for kept in unique):
            unique.append(hull)
    return tuple(unique)


def build_context(component: TilableComponent, solution: Solution,
                  platform: Platform,
                  plan: Optional[ComponentPlan] = None,
                  modes: Optional[Mapping[str, str]] = None,
                  builder: Optional[MacroBuilder] = None
                  ) -> AnalysisContext:
    """Build the analysis model of one compiled component."""
    builder = builder or MacroBuilder(
        component, solution, modes=dict(modes) if modes else None)
    models: Dict[int, Dict[str, ArraySwapModel]] = {}
    deallocs: Dict[int, Dict[str, List[Tuple[int, int]]]] = {}
    for core in range(solution.threads):
        schedules = builder.core_schedules(core)
        for name, schedule in schedules.items():
            for event in schedule.events:
                problems = validate_swap_call(
                    event.call, event.crange,
                    builder.bounding_shapes[name])
                if problems:
                    raise ValueError(
                        f"core {core}: inconsistent swap call — "
                        + "; ".join(problems))
        models[core] = {
            name: ArraySwapModel.from_schedule(schedule)
            for name, schedule in schedules.items()
        }
        deallocs[core] = {
            name: list(schedule.dealloc_segments())
            for name, schedule in schedules.items()
        }
    bounding_bytes = {
        name: _shape_bytes(component, name, builder.bounding_shapes[name])
        for name in component.arrays()
    }
    return AnalysisContext(
        component=component,
        solution=solution,
        platform=platform,
        modes=dict(builder.modes),
        models=models,
        bounding_bytes=bounding_bytes,
        dealloc_segments=deallocs,
        plan=plan,
    )


def _shape_bytes(component: TilableComponent, name: str,
                 shape: Tuple[int, ...]) -> int:
    total = component.arrays()[name].element_size
    for extent in shape:
        total *= extent
    return total
