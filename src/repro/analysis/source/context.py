"""Shared input of every source-level analysis pass.

A :class:`SourceContext` is built once per kernel and handed to every
registered pass: the kernel itself, its chain-head map, the per-loop
guarded execution counts (with exactness flags), the exact dependence
set, the folded loop tree, and the maximal legal fission plan.  The
build is *total*: malformed kernels do not raise out of
:func:`build_source_context` — typed
:class:`repro.errors.SourceAnalysisError` failures are captured on the
context (``guard_errors`` / ``build_error``) so the ``structure`` pass
can report them as PREM5xx diagnostics instead of a traceback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...errors import GuardScopeError, SourceAnalysisError
from ...loopir.ast import Kernel
from ...loopir.fission import FissionSplit, fission_kernel
from ...loopir.looptree import LoopTree, analyze_dependences
from ...loopir.validity import chain_heads, \
    count_guarded_executions_detailed
from ...poly.dependence import Dependence


@dataclass
class SourceContext:
    """Everything the source-level passes read."""

    kernel: Kernel
    heads: Dict[str, str] = field(default_factory=dict)
    #: loop var -> (guarded execution count, count is exact)
    loop_counts: Dict[str, Tuple[int, bool]] = field(default_factory=dict)
    #: (owner name, offending guard variable) pairs, discovery order
    guard_errors: List[Tuple[str, str]] = field(default_factory=list)
    dependences: Tuple[Dependence, ...] = ()
    tree: Optional[LoopTree] = None
    build_error: Optional[SourceAnalysisError] = None
    splits: Tuple[FissionSplit, ...] = ()

    @property
    def well_formed(self) -> bool:
        return not self.guard_errors and self.build_error is None


def build_source_context(kernel: Kernel) -> SourceContext:
    """Analyze *kernel* into a :class:`SourceContext` (never raises)."""
    ctx = SourceContext(kernel=kernel, heads=chain_heads(kernel))

    # Structural scan first: guard scoping must hold before the domains
    # handed to the dependence tester are even constructible.
    for loop, ancestors in kernel.walk_loops():
        scope = {a.var for a in ancestors}
        bad = False
        for guard in loop.guards:
            for var in sorted(guard.variables() - scope):
                ctx.guard_errors.append((loop.var, var))
                bad = True
        if bad:
            continue
        try:
            ctx.loop_counts[loop.var] = \
                count_guarded_executions_detailed(loop, ancestors)
        except GuardScopeError as exc:
            ctx.guard_errors.append((exc.loop_var, exc.guard_var))
    iterators_of = {
        stmt.name: {loop.var for loop in loops}
        for stmt, loops in kernel.walk_stmts()
    }
    for stmt, loops in kernel.walk_stmts():
        scope = iterators_of[stmt.name]
        for guard in stmt.guards:
            for var in sorted(guard.variables() - scope):
                ctx.guard_errors.append((stmt.name, var))
    if ctx.guard_errors:
        return ctx

    ctx.dependences = tuple(analyze_dependences(kernel))
    try:
        ctx.tree = LoopTree.build(kernel, ctx.dependences)
        ctx.splits = fission_kernel(kernel, ctx.dependences).splits
    except SourceAnalysisError as exc:
        ctx.build_error = exc
    return ctx
