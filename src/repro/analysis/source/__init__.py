"""Source-level polyhedral dataflow analysis over the loop IR (PREM5xx).

Four passes share the artifact verifier's registry/diagnostics
machinery but read the *loop IR* instead of compiled schedules:

- ``structure`` — guard scoping, loop-tree buildability, empty guarded
  domains, conservative execution-count fallbacks (PREM501/502/503/513)
- ``deps`` — consistency of the exact affine dependence set (PREM502)
- ``legality`` — per-level tilability/parallelizability claims
  cross-checked against the dependences (PREM511/512)
- ``fission`` — legality of loop-distribution plans (PREM521)

The loop-fission pre-pass (:mod:`repro.loopir.fission`) is the first
transform gated on these verdicts.
"""

from .context import SourceContext, build_source_context
from .passes import (
    check_source_deps,
    check_source_fission,
    check_source_legality,
    check_source_structure,
    verify_fission_groups,
    verify_fission_plan,
)
from .registry import SOURCE_REGISTRY, source_registry
from .report import SourceReport, analyze_source

__all__ = [
    "SOURCE_REGISTRY",
    "SourceContext",
    "SourceReport",
    "analyze_source",
    "build_source_context",
    "check_source_deps",
    "check_source_fission",
    "check_source_legality",
    "check_source_structure",
    "source_registry",
    "verify_fission_groups",
    "verify_fission_plan",
]
