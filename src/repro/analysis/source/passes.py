"""The source-level analysis passes (PREM5xx).

Each pass is a pure function ``SourceContext -> List[Diagnostic]``
registered in :mod:`repro.analysis.source.registry`.  On a well-formed
kernel whose loop tree was built by this toolchain every pass returns
the empty list — the corpus gate in CI asserts exactly that — so any
PREM5xx finding flags either a malformed kernel (``structure``), a
legality claim the dependence set contradicts (``legality``), or a
requested distribution the dependences cannot prove safe (``fission``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ...errors import ChainConsistencyError
from ...loopir.fission import FissionSplit
from ...loopir.validity import parallel_blockers, tiling_blockers
from ...poly.constraint import ConstraintSystem
from ...poly.dependence import Dependence, carried_level
from ...poly.fm import is_feasible
from ..diagnostics import Diagnostic
from .context import SourceContext


def check_source_structure(ctx: SourceContext) -> List[Diagnostic]:
    """PREM501/502/503/513 — guard scoping, buildability, empty domains."""
    out: List[Diagnostic] = []
    for owner, var in ctx.guard_errors:
        out.append(Diagnostic(
            code="PREM501",
            message=f"guard on {owner} references {var!r}, which is not "
                    f"an ancestor loop iterator",
            component=owner, array=None,
            hint="guards may only constrain enclosing iterators"))
    if ctx.build_error is not None:
        out.append(Diagnostic(
            code=ctx.build_error.code,
            message=f"loop-tree construction failed: {ctx.build_error}",
            component=ctx.kernel.name))
    for var, (count, exact) in sorted(ctx.loop_counts.items()):
        if count == 0:
            out.append(Diagnostic(
                code="PREM503",
                message=f"loop {var} has an empty guarded domain and "
                        f"never executes",
                component=var))
        elif not exact:
            out.append(Diagnostic(
                code="PREM513",
                message=f"execution count of loop {var} is a "
                        f"conservative upper bound ({count}); the "
                        f"multi-iterator guard domain is too large to "
                        f"enumerate",
                component=var,
                hint="makespan estimates treat the bound as safe"))
    if ctx.well_formed:
        for stmt, _ in ctx.kernel.walk_stmts():
            domain = ctx.kernel.stmt_domain(stmt.name)
            system = ConstraintSystem()
            system.extend(domain.constraints())
            if not is_feasible(system):
                out.append(Diagnostic(
                    code="PREM503",
                    message=f"statement {stmt.name} has an empty guarded "
                            f"domain and never executes",
                    component=stmt.name))
    return out


def check_source_deps(ctx: SourceContext) -> List[Diagnostic]:
    """PREM502 — the dependence set must be chain-consistent.

    Every direction vector's first non-'=' component must be '<' (the
    analyzer's enumeration invariant), and every loop level must find
    its chain head among each touching dependence's shared loops.  Both
    hold by construction for analyzer-produced sets; violations mean a
    hand-built or corrupted ``Dep`` set.
    """
    out: List[Diagnostic] = []
    for dep in ctx.dependences:
        for direction in sorted(dep.directions):
            level = carried_level(direction)
            if level is not None and direction[level] != "<":
                out.append(Diagnostic(
                    code="PREM502",
                    message=f"dependence {dep.src_stmt}->{dep.dst_stmt} "
                            f"on {dep.array} has inadmissible direction "
                            f"({', '.join(direction)}): first non-'=' "
                            f"component must be '<'",
                    array=dep.array))
    for var in sorted(ctx.heads):
        try:
            tiling_blockers(var, ctx.dependences, ctx.heads)
            parallel_blockers(var, ctx.dependences, ctx.heads)
        except ChainConsistencyError as exc:
            out.append(Diagnostic(
                code="PREM502",
                message=str(exc),
                component=var))
    return out


def check_source_legality(ctx: SourceContext) -> List[Diagnostic]:
    """PREM511/512 — tree claims must match the dependence verdicts.

    The folded tree's per-node ``tilable``/``parallel`` flags are
    re-derived from the dependence set; only *optimistic* claims (the
    tree says legal, the dependences say otherwise) are errors — a
    pessimistic tree merely wastes optimization opportunity.
    """
    if ctx.tree is None:
        return []
    out: List[Diagnostic] = []
    for root in ctx.tree.roots:
        for node in root.walk():
            try:
                tiling = tiling_blockers(
                    node.var, ctx.dependences, ctx.heads)
                parallel = parallel_blockers(
                    node.var, ctx.dependences, ctx.heads)
            except ChainConsistencyError:
                continue   # reported by the deps pass
            if node.tilable and tiling:
                out.append(Diagnostic(
                    code="PREM511",
                    message=f"level {node.var} is claimed tilable but "
                            f"{tiling[0].describe()} blocks tiling",
                    component=node.var,
                    array=tiling[0].dependence.array))
            if node.parallel and parallel:
                out.append(Diagnostic(
                    code="PREM512",
                    message=f"level {node.var} is claimed parallel but "
                            f"{parallel[0].describe()} is carried",
                    component=node.var,
                    array=parallel[0].dependence.array))
    return out


def verify_fission_groups(var: str,
                          groups: Sequence[Sequence[str]],
                          dependences: Sequence[Dependence]
                          ) -> List[Diagnostic]:
    """PREM521 findings for one requested distribution of loop *var*.

    *groups* lists the statement names of each resulting loop in textual
    order.  The distribution is legal iff no dependence that is not
    confined strictly above *var* flows from a later group to an earlier
    one (such an edge would invert under order-preserving fission).
    """
    group_of: Dict[str, int] = {}
    for index, names in enumerate(groups):
        for name in names:
            group_of[name] = index
    out: List[Diagnostic] = []
    for dep in dependences:
        src = group_of.get(dep.src_stmt)
        dst = group_of.get(dep.dst_stmt)
        if src is None or dst is None or src <= dst:
            continue
        if dep.confined_above(var):
            continue
        out.append(Diagnostic(
            code="PREM521",
            message=f"distributing {var} separates {dep.src_stmt} "
                    f"(group {src}) from {dep.dst_stmt} (group {dst}) "
                    f"across a backward {dep.kind} dependence on "
                    f"{dep.array}",
            component=var,
            array=dep.array,
            hint="merge the two groups or keep the loop fused"))
    return out


def verify_fission_plan(splits: Sequence[FissionSplit],
                        dependences: Sequence[Dependence]
                        ) -> List[Diagnostic]:
    """PREM521 findings for a whole requested fission plan."""
    out: List[Diagnostic] = []
    for split in splits:
        out.extend(
            verify_fission_groups(split.var, split.groups, dependences))
    return out


def check_source_fission(ctx: SourceContext) -> List[Diagnostic]:
    """PREM521 — the computed maximal plan must itself verify.

    The planner only emits splits its blocker analysis proved safe, so
    this is a self-check; it exists so externally supplied plans (tests,
    future ``--fission-plan`` inputs) share one verification path.
    """
    return verify_fission_plan(ctx.splits, ctx.dependences)
