"""Registry of the source-level (PREM5xx) analysis passes.

Reuses the artifact verifier's :class:`~repro.analysis.registry.
PassRegistry` machinery — declared-code validation at registration,
undeclared-emission rejection at run time — over
:class:`~repro.analysis.source.context.SourceContext` inputs.
"""

from __future__ import annotations

from ..registry import PassRegistry
from .passes import (
    check_source_deps,
    check_source_fission,
    check_source_legality,
    check_source_structure,
)


def source_registry() -> PassRegistry:
    registry = PassRegistry()
    registry.register(
        "structure", "loop-IR structural well-formedness",
        ("PREM501", "PREM502", "PREM503", "PREM513"),
        check_source_structure)
    registry.register(
        "deps", "dependence-set consistency",
        ("PREM502",),
        check_source_deps)
    registry.register(
        "legality", "tiling/parallelization legality claims",
        ("PREM511", "PREM512"),
        check_source_legality)
    registry.register(
        "fission", "loop-distribution legality",
        ("PREM521",),
        check_source_fission)
    return registry


#: The registry ``analyze --source`` runs.
SOURCE_REGISTRY = source_registry()
