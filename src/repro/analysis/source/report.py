"""The ``analyze --source`` report: verdicts, plan, diagnostics.

:func:`analyze_source` is the facade the CLI (and tests) call: build a
:class:`SourceContext`, run the PREM5xx registry over it, and wrap the
results with deterministic text/JSON renderers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ...errors import ChainConsistencyError
from ...loopir.ast import Kernel
from ...loopir.validity import level_parallel, level_tilable
from ..diagnostics import DiagnosticBag
from ..registry import PassRegistry
from .context import SourceContext, build_source_context
from .registry import SOURCE_REGISTRY


@dataclass
class SourceReport:
    """Outcome of the source-level analysis of one kernel."""

    context: SourceContext
    diagnostics: DiagnosticBag

    @property
    def kernel(self) -> Kernel:
        return self.context.kernel

    @property
    def ok(self) -> bool:
        return not self.diagnostics.has_errors

    # -- level verdicts ------------------------------------------------

    def level_verdicts(self) -> List[Dict[str, object]]:
        """Per-loop tilability/parallelizability, nesting order."""
        ctx = self.context
        rows: List[Dict[str, object]] = []
        for loop, _ in ctx.kernel.walk_loops():
            var = loop.var
            try:
                tilable = level_tilable(var, ctx.dependences, ctx.heads)
                parallel = level_parallel(var, ctx.dependences, ctx.heads)
            except ChainConsistencyError:
                tilable = parallel = False
            count = ctx.loop_counts.get(var, (0, True))
            rows.append({
                "var": var,
                "head": ctx.heads.get(var, var),
                "N": loop.n,
                "I": count[0],
                "exact": count[1],
                "tilable": tilable,
                "parallel": parallel,
            })
        return rows

    # -- rendering -----------------------------------------------------

    def render_text(self) -> str:
        ctx = self.context
        kinds: Dict[str, int] = {}
        for dep in ctx.dependences:
            kinds[dep.kind] = kinds.get(dep.kind, 0) + 1
        dep_line = f"dependences: {len(ctx.dependences)}"
        if kinds:
            dep_line += " (" + ", ".join(
                f"{k} {kinds[k]}" for k in sorted(kinds)) + ")"
        lines = [
            f"source analysis: {ctx.kernel.name}",
            f"statements : "
            f"{sum(1 for _ in ctx.kernel.walk_stmts())}",
            dep_line,
        ]
        lines.append("levels:")
        for row in self.level_verdicts():
            flags = []
            if row["tilable"]:
                flags.append("tilable")
            if row["parallel"]:
                flags.append("parallel")
            if not row["exact"]:
                flags.append("I~approx")
            tag = " ".join(flags) or "sequential"
            lines.append(
                f"  {row['var']}: N={row['N']} I={row['I']} "
                f"head={row['head']} [{tag}]")
        if ctx.splits:
            lines.append(
                f"fission: {len(ctx.splits)} loop(s) distributable")
            for split in ctx.splits:
                lines.append(f"  {split.describe()}")
        else:
            lines.append("fission: no legal distribution")
        lines.append(self.diagnostics.render_text())
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        ctx = self.context
        return {
            "kernel": ctx.kernel.name,
            "statements": sum(1 for _ in ctx.kernel.walk_stmts()),
            "dependences": [repr(dep) for dep in ctx.dependences],
            "levels": self.level_verdicts(),
            "fission": [
                {"var": s.var,
                 "new_vars": list(s.new_vars),
                 "groups": [list(g) for g in s.groups]}
                for s in ctx.splits
            ],
            "diagnostics": json.loads(self.diagnostics.render_json()),
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def analyze_source(kernel: Kernel,
                   passes: Optional[Iterable[str]] = None,
                   registry: Optional[PassRegistry] = None
                   ) -> SourceReport:
    """Run the PREM5xx passes over *kernel* and wrap the findings."""
    registry = registry or SOURCE_REGISTRY
    context = build_source_context(kernel)
    bag = registry.run(context, passes)
    return SourceReport(context=context, diagnostics=bag)
