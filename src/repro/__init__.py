"""repro — parallel PREM compilation over nested loop structures.

A from-scratch Python reproduction of Gu & Pellizzoni, "Optimizing
parallel PREM compilation over nested loop structures" (DAC 2022) and the
accompanying thesis.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record.

Quick start::

    from repro import PremCompiler, Platform, make_kernel

    kernel = make_kernel("lstm", "LARGE")
    result = PremCompiler(Platform()).compile(kernel)
    print(result.normalized_makespan)
    print(result.opt_result.describe())
"""

from .analysis import (
    Diagnostic,
    DiagnosticBag,
    StaticVerifier,
)
from .compiler import (
    FALLBACK_CHAIN,
    CompilationResult,
    CompiledComponent,
    PremCompiler,
    StageAttempt,
)
from .errors import (
    CompilationError,
    InfeasibleScheduleError,
    InvariantViolationError,
    KernelConfigError,
    OptimizerError,
    OptimizerTimeout,
    PremVmError,
    ReproError,
    SpmAccessError,
    TileConfigError,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PremInvariantChecker,
    run_campaign,
    run_static_campaign,
)
from .kernels import make_kernel
from .loopir import Kernel, Loop, LoopTree, Stmt, for_, kernel_, stmt_
from .loopir.component import TilableComponent, component_at
from .opt import (
    ComponentOptimizer,
    GreedyOptimizer,
    Solution,
    TreeOptimizer,
    ideal_makespan_ns,
)
from .poly import Access, AffineExpr, Array, Constraint, read, write
from .prem import CodeGenerator, MacroBuilder, PremRuntime
from .schedule import MakespanEvaluator
from .sim import MachineModel, fit_component_model
from .timing import ExecModel, Platform, bus_speed_gb

__version__ = "0.1.0"

__all__ = [
    "Diagnostic", "DiagnosticBag", "StaticVerifier",
    "CompilationResult", "CompiledComponent", "FALLBACK_CHAIN",
    "PremCompiler", "StageAttempt",
    "CompilationError", "InfeasibleScheduleError",
    "InvariantViolationError", "KernelConfigError", "OptimizerError",
    "OptimizerTimeout", "PremVmError", "ReproError", "SpmAccessError",
    "TileConfigError",
    "FaultInjector", "FaultPlan", "FaultSpec", "PremInvariantChecker",
    "run_campaign", "run_static_campaign",
    "make_kernel",
    "Kernel", "Loop", "LoopTree", "Stmt", "for_", "kernel_", "stmt_",
    "TilableComponent", "component_at",
    "ComponentOptimizer", "GreedyOptimizer", "Solution", "TreeOptimizer",
    "ideal_makespan_ns",
    "Access", "AffineExpr", "Array", "Constraint", "read", "write",
    "CodeGenerator", "MacroBuilder", "PremRuntime",
    "MakespanEvaluator",
    "MachineModel", "fit_component_model",
    "ExecModel", "Platform", "bus_speed_gb",
    "__version__",
]
