"""Ideal single-core baseline (Figure 6.1's normalisation case).

The paper normalises every makespan by an ideal single-core execution:
unlimited SPM, zero-time data transfers, no tiling.  Under those
assumptions the makespan is exactly the untransformed kernel's execution
time, which the gem5-substitute machine model computes in closed form.
"""

from __future__ import annotations

from ..loopir.ast import Kernel
from ..sim.machine import MachineModel
from ..timing.platform import Platform


def ideal_makespan_ns(kernel: Kernel, platform: Platform,
                      machine: MachineModel | None = None) -> float:
    """Execution time of the untransformed kernel on one core, in ns."""
    machine = machine or MachineModel()
    cycles = machine.kernel_cost(kernel)
    return cycles * platform.ns_per_cycle
