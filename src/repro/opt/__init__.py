"""Schedule optimization: Algorithm 1, Algorithm 2, greedy and ideal."""

from .component import ComponentOptResult, ComponentOptimizer
from .greedy import GreedyOptimizer
from .ideal import ideal_makespan_ns
from .solution import LevelParams, Solution
from .threadgroups import (
    dominates,
    generate_nondominated_thread_groups,
    nondominated,
    valid_assignments,
)
from .tilesizes import select_tile_sizes
from .tree import ComponentChoice, TreeOptResult, TreeOptimizer

__all__ = [
    "ComponentOptResult", "ComponentOptimizer",
    "GreedyOptimizer",
    "ideal_makespan_ns",
    "LevelParams", "Solution",
    "dominates", "generate_nondominated_thread_groups", "nondominated",
    "valid_assignments",
    "select_tile_sizes",
    "ComponentChoice", "TreeOptResult", "TreeOptimizer",
]
