"""Schedule optimization: Algorithm 1, Algorithm 2, greedy and ideal."""

from .bounds import BoundCalculator, chain_lower_bound, flatten_key
from .cache import PersistentCache, context_fingerprint, solution_digest
from .component import ComponentOptResult, ComponentOptimizer
from .engine import EngineMetrics, EvaluationEngine, effective_jobs
from .exhaustive import (
    ExhaustiveOptimizer,
    SearchSpaceTooLarge,
    search_space_size,
)
from .greedy import GreedyOptimizer
from .ideal import ideal_makespan_ns
from .pareto import (
    DEFAULT_WEIGHTS,
    OBJECTIVES,
    ComposedPoint,
    ParetoComponentResult,
    ParetoOptimizer,
    ParetoPoint,
    ScalarizedPoint,
    compose_fronts,
    dominates_vector,
    kernel_front,
    pareto_front,
    scalarize,
)
from .pruned import DEFAULT_PRUNED_MAX_POINTS, PrunedOptimizer, validate_shard
from .robust import (
    RISK_OBJECTIVES,
    CandidateRisk,
    RobustComponentResult,
    RobustOptimizer,
    SensitivityEntry,
    cvar_tail_count,
    risk_value,
)
from .shard import (
    ShardCoordinator,
    ShardIncompleteError,
    ShardLog,
    ShardReducer,
    ShardWorker,
    SpaceStatus,
    StaticShardExchange,
    space_statuses,
    static_space_id,
)
from .solution import LevelParams, Solution
from .threadgroups import (
    dominates,
    generate_nondominated_thread_groups,
    nondominated,
    valid_assignments,
)
from .tilesizes import select_tile_sizes
from .tree import ComponentChoice, TreeOptResult, TreeOptimizer
from .vectorized import DEFAULT_MAX_CELLS, BatchEvaluator

__all__ = [
    "BoundCalculator", "chain_lower_bound", "flatten_key",
    "PersistentCache", "context_fingerprint", "solution_digest",
    "ComponentOptResult", "ComponentOptimizer",
    "EngineMetrics", "EvaluationEngine", "effective_jobs",
    "ExhaustiveOptimizer", "SearchSpaceTooLarge", "search_space_size",
    "GreedyOptimizer",
    "ideal_makespan_ns",
    "DEFAULT_WEIGHTS", "OBJECTIVES", "ComposedPoint",
    "ParetoComponentResult", "ParetoOptimizer", "ParetoPoint",
    "ScalarizedPoint", "compose_fronts", "dominates_vector",
    "kernel_front", "pareto_front", "scalarize",
    "DEFAULT_PRUNED_MAX_POINTS", "PrunedOptimizer", "validate_shard",
    "ShardCoordinator", "ShardIncompleteError", "ShardLog",
    "ShardReducer", "ShardWorker", "SpaceStatus", "StaticShardExchange",
    "space_statuses", "static_space_id",
    "RISK_OBJECTIVES", "CandidateRisk", "RobustComponentResult",
    "RobustOptimizer", "SensitivityEntry", "cvar_tail_count", "risk_value",
    "LevelParams", "Solution",
    "dominates", "generate_nondominated_thread_groups", "nondominated",
    "valid_assignments",
    "select_tile_sizes",
    "ComponentChoice", "TreeOptResult", "TreeOptimizer",
    "DEFAULT_MAX_CELLS", "BatchEvaluator",
]
