"""Exhaustive search over the Algorithm-1 candidate space.

Section 4.3 motivates the heuristic by noting that searching the whole
space "would take unacceptable time, usually more than 20 hours" for the
deep CNN component.  This module implements that exhaustive search over
exactly the same candidate space (non-dominated thread groups ×
``select_tile_sizes`` lists) so that, on *small* components, the
heuristic's optimality gap can be measured — see the optimality-gap
ablation bench.

The search size is guarded: by default it refuses spaces above
``max_points`` evaluations instead of silently running for hours.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from itertools import product
from typing import List, Optional, Sequence, Tuple

from ..errors import OptimizerError
from ..loopir.component import TilableComponent
from ..schedule.makespan import (
    DEFAULT_SEGMENT_CAP,
    MakespanEvaluator,
    MakespanResult,
)
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .cache import PersistentCache
from .component import ComponentOptResult
from .engine import EngineMetrics, EvaluationEngine
from .threadgroups import generate_nondominated_thread_groups
from .tilesizes import select_tile_sizes


class SearchSpaceTooLarge(OptimizerError, RuntimeError):
    """The exhaustive space exceeds the configured evaluation budget."""


def space_size_of(component: TilableComponent,
                  assignments: Sequence[Tuple[int, ...]]) -> int:
    """Candidate points of an already-generated assignment list."""
    total = 0
    for assignment in assignments:
        points = 1
        for node, groups in zip(component.nodes, assignment):
            points *= len(select_tile_sizes(node.N, groups))
        total += points
    return total


def search_space_size(component: TilableComponent, cores: int) -> int:
    """Number of (R, K) points Algorithm 1's candidate space contains."""
    return space_size_of(
        component, generate_nondominated_thread_groups(cores, component))


def assignment_candidates(component: TilableComponent,
                          assignment: Tuple[int, ...]
                          ) -> Tuple[dict, List[List[int]]]:
    """One assignment's thread-group map and per-level tile-size lists.

    Shared by the exhaustive and the bound-driven search so both
    enumerate exactly the same candidate points in the same order."""
    groups = {
        node.var: r for node, r in zip(component.nodes, assignment)}
    candidate_lists = [
        select_tile_sizes(node.N, r)
        for node, r in zip(component.nodes, assignment)
    ]
    return groups, candidate_lists


class ExhaustiveOptimizer:
    """Evaluate every candidate point and return the true optimum.

    With ``jobs > 1`` candidate evaluation fans out over the
    :class:`~repro.opt.engine.EvaluationEngine` worker pool, chunked by
    thread-group assignment; the reduction tie-breaks on the solution
    key, so serial and parallel runs return identical results."""

    def __init__(self, component: TilableComponent, platform: Platform,
                 exec_model: ExecModel,
                 segment_cap: int = DEFAULT_SEGMENT_CAP,
                 max_points: int = 20_000,
                 deadline: float | None = None, budget_s: float = 0.0,
                 jobs: int = 1, cache: Optional[PersistentCache] = None,
                 vectorize: bool = False):
        self.component = component
        self.platform = platform
        self.exec_model = exec_model
        self.max_points = max_points
        self.jobs = jobs
        #: Batch-exact scoring through the evaluation engine.  Off by
        #: default: the exhaustive search is the *reference* arm of the
        #: parity benches, whose plan-count accounting assumes one
        #: ``SegmentPlanner.plan`` per fresh candidate.
        self.vectorize = vectorize
        self.evaluator = MakespanEvaluator(
            component, platform, exec_model, segment_cap, cache=cache)
        if deadline is not None:
            self.evaluator.set_deadline(deadline, "exhaustive", budget_s)
        self.metrics: Optional[EngineMetrics] = None

    def optimize(self, cores: Optional[int] = None) -> ComponentOptResult:
        cores = cores if cores is not None else self.platform.cores
        started = time.perf_counter()
        # The assignment list is generated exactly once: the space-size
        # guard and the search loop both derive from it.
        assignments = generate_nondominated_thread_groups(
            cores, self.component)
        size = space_size_of(self.component, assignments)
        if size > self.max_points:
            raise SearchSpaceTooLarge(
                f"{size} candidate points exceed the budget of "
                f"{self.max_points}; use the heuristic (Algorithm 1)")

        chunks = []
        for assignment in assignments:
            groups, candidate_lists = assignment_candidates(
                self.component, assignment)
            chunks.append([
                ({node.var: k
                  for node, k in zip(self.component.nodes, sizes)}, groups)
                for sizes in product(*candidate_lists)
            ])

        with EvaluationEngine(self.evaluator, jobs=self.jobs,
                              stage="exhaustive",
                              vectorize=self.vectorize) as engine:
            evaluated = engine.evaluate_chunks(chunks)
            best: Optional[MakespanResult] = engine.best_of(
                result for chunk in evaluated for result in chunk)
            best = engine.finalize(best)
            self.metrics = engine.metrics()
        return ComponentOptResult(
            component=self.component,
            best=best,
            evaluations=self.evaluator.evaluations,
            elapsed_s=time.perf_counter() - started,
            assignments_tried=len(assignments),
            cache_hits=self.evaluator.cache_hits,
            batched=self.metrics.batched,
            batch_fallbacks=self.metrics.batch_fallbacks,
            exec_model=self.exec_model,
        )
