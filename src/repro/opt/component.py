"""Algorithm 1 — optimize the schedule of one tilable component.

For every non-dominated thread-group assignment, run a coordinate-descent
search over the per-level tile-size candidate lists: starting from a
(seeded-)random solution, repeatedly sweep the levels and replace each
level's tile size by the one minimising the makespan with the other levels
fixed.  The paper observes the per-level makespan function is convex in
the tile size, so ``find_minimum`` is a discrete ternary search; a full
scan is used for short candidate lists.  ``max_iter`` defaults to 3 sweeps
as in the paper.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..loopir.component import TilableComponent
from ..schedule.makespan import (
    DEFAULT_SEGMENT_CAP,
    MakespanEvaluator,
    MakespanResult,
)
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .cache import PersistentCache
from .engine import EvaluationEngine
from .solution import Solution
from .threadgroups import generate_nondominated_thread_groups
from .tilesizes import select_tile_sizes

#: Candidate lists at most this long are scanned exhaustively instead of
#: ternary-searched (the scan is cheap and immune to convexity violations).
FULL_SCAN_LIMIT = 8


@dataclass
class ComponentOptResult:
    """Outcome of Algorithm 1 on one component."""

    component: TilableComponent
    best: Optional[MakespanResult]
    evaluations: int
    elapsed_s: float
    assignments_tried: int
    cache_hits: int = 0
    pruned: int = 0               # candidates discarded on an admissible bound
    bound_hits: int = 0           # pruned candidates already in the cache
    batched: int = 0              # candidates decided by the vector engine
    batch_fallbacks: int = 0      # batch candidates routed to the simulator
    #: The fitted model the search ranked candidates under; lets late
    #: consumers (gantt/report on a cache-hit winner) re-plan the best
    #: solution without re-deriving the model.
    exec_model: Optional[ExecModel] = None

    @property
    def feasible(self) -> bool:
        return self.best is not None and self.best.feasible

    @property
    def makespan_ns(self) -> float:
        return self.best.makespan_ns if self.best else math.inf

    @property
    def total_makespan_ns(self) -> float:
        return self.best.total_makespan_ns if self.best else math.inf


class ComponentOptimizer:
    """Runs Algorithm 1 for one component on one platform."""

    def __init__(self, component: TilableComponent, platform: Platform,
                 exec_model: ExecModel, max_iter: int = 3, seed: int = 0,
                 segment_cap: int = DEFAULT_SEGMENT_CAP, restarts: int = 3,
                 deadline: float | None = None, budget_s: float = 0.0,
                 jobs: int = 1, cache: Optional[PersistentCache] = None):
        self.component = component
        self.platform = platform
        self.exec_model = exec_model
        self.max_iter = max_iter
        self.seed = seed
        self.segment_cap = segment_cap
        self.restarts = restarts
        self.jobs = jobs
        self.evaluator = MakespanEvaluator(
            component, platform, exec_model, segment_cap, cache=cache)
        if deadline is not None:
            self.evaluator.set_deadline(deadline, "heuristic", budget_s)
        self._engine: Optional[EvaluationEngine] = None

    # -- Algorithm 1 --------------------------------------------------------

    def optimize(self, cores: Optional[int] = None) -> ComponentOptResult:
        cores = cores if cores is not None else self.platform.cores
        rng = random.Random(self.seed)
        started = time.perf_counter()
        assignments = generate_nondominated_thread_groups(
            cores, self.component)

        best: Optional[MakespanResult] = None
        with EvaluationEngine(self.evaluator, jobs=self.jobs,
                              stage="heuristic") as engine:
            self._engine = engine
            try:
                for assignment in assignments:
                    result = self._descend(assignment, rng)
                    if result is None:
                        continue
                    if best is None or \
                            result.makespan_ns < best.makespan_ns:
                        best = result
                # A pool- or cache-computed winner carries no plan; a
                # freshly-evaluated one gets its plan re-attached so the
                # result matches a serial cold run bit for bit.
                if best is not None:
                    best = engine.finalize(best)
            finally:
                self._engine = None
        elapsed = time.perf_counter() - started
        return ComponentOptResult(
            component=self.component,
            best=best,
            evaluations=self.evaluator.evaluations,
            elapsed_s=elapsed,
            assignments_tried=len(assignments),
            cache_hits=self.evaluator.cache_hits,
            exec_model=self.exec_model,
        )

    def _descend(self, assignment: Sequence[int],
                 rng: random.Random) -> Optional[MakespanResult]:
        """Coordinate descent over tile sizes for one R assignment.

        Coordinate descent with per-level convex search can trap in joint
        local optima (e.g. a tiny innermost tile blocking a larger one
        elsewhere through the SPM constraint), so each assignment is
        restarted from a few independent random solutions; results are
        memoized, so repeat visits to the same point are free.
        """
        nodes = self.component.nodes
        groups = {node.var: r for node, r in zip(nodes, assignment)}
        candidates = [
            select_tile_sizes(node.N, r)
            for node, r in zip(nodes, assignment)
        ]

        best_result: Optional[MakespanResult] = None
        for _ in range(max(1, self.restarts)):
            current = [rng.choice(options) for options in candidates]
            for _ in range(self.max_iter):
                for level, options in enumerate(candidates):
                    best_k, result = self._find_minimum(
                        current, level, options, groups)
                    current[level] = best_k
                    if result is not None and result.feasible and (
                            best_result is None
                            or result.makespan_ns <
                            best_result.makespan_ns):
                        best_result = result
            final = self._evaluate(current, groups)
            if final.feasible and (
                    best_result is None
                    or final.makespan_ns < best_result.makespan_ns):
                best_result = final
        return best_result

    def _find_minimum(self, current: List[int], level: int,
                      options: Sequence[int], groups: Dict[str, int]
                      ) -> Tuple[int, Optional[MakespanResult]]:
        """Discrete ternary search (full scan for short lists)."""
        def value(index: int) -> float:
            probe = list(current)
            probe[level] = options[index]
            return self._evaluate(probe, groups).makespan_ns

        if len(options) <= FULL_SCAN_LIMIT:
            engine = self._engine
            if engine is not None and engine.parallel:
                # Batch the whole scan through the worker pool.  The
                # same candidate set is evaluated as in the serial scan
                # and ties resolve to the lowest index, so the chosen
                # tile size (and the evaluation count) is identical.
                requests = []
                for index in range(len(options)):
                    probe = list(current)
                    probe[level] = options[index]
                    requests.append((
                        {node.var: k for node, k
                         in zip(self.component.nodes, probe)}, groups))
                values = [r.makespan_ns
                          for r in engine.evaluate_many(requests)]
                best_index = min(range(len(options)),
                                 key=lambda i: (values[i], i))
            else:
                best_index = min(range(len(options)), key=value)
        else:
            lo, hi = 0, len(options) - 1
            scanned = False
            while hi - lo > 2:
                third = (hi - lo) // 3
                m1, m2 = lo + third, hi - third
                v1, v2 = value(m1), value(m2)
                if math.isinf(v1) and math.isinf(v2):
                    # Flat infeasible plateau: convexity gives no gradient
                    # (SPM overflow at large K, segment cap at tiny K), so
                    # fall back to scanning the remaining window.
                    scanned = True
                    break
                if v1 < v2:
                    hi = m2 - 1
                else:
                    lo = m1 + 1
            best_index = min(range(lo, hi + 1), key=value)
            del scanned

        probe = list(current)
        probe[level] = options[best_index]
        result = self._evaluate(probe, groups)
        if not math.isfinite(result.makespan_ns):
            return options[best_index], None
        return options[best_index], result

    def _evaluate(self, tile_sizes: List[int],
                  groups: Dict[str, int]) -> MakespanResult:
        sizes = {
            node.var: k
            for node, k in zip(self.component.nodes, tile_sizes)
        }
        return self.evaluator.evaluate_params(sizes, groups)
