"""Algorithm 2 — decompose the loop tree and compute the kernel makespan.

``extract_component`` walks the loop tree depth first, growing a perfectly
nested chain.  At a leaf the chain is optimized as one tilable component
(Algorithm 1) and its makespan is multiplied by ``first(L).I``.  At a node
with several children (or with statements mixed alongside a child loop)
the algorithm takes the better of two alternatives: tile the chain ending
here, treating everything below as the tile body, or recurse into each
child and sum their makespans.

Execution models are fitted once per chain (Section 4.2's profiling step)
and cached, so a bus-speed or SPM sweep re-optimizes without re-profiling.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..loopir.component import TilableComponent
from ..loopir.looptree import LoopTree, LoopTreeNode
from ..loopir.validity import is_chain_extendable
from ..schedule.makespan import DEFAULT_SEGMENT_CAP
from ..sim.machine import MachineModel
from ..sim.profiler import fit_component_model
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .bounds import chain_lower_bound
from .component import ComponentOptResult, ComponentOptimizer


@dataclass
class ComponentChoice:
    """One component the final plan actually schedules."""

    result: ComponentOptResult

    @property
    def component(self) -> TilableComponent:
        return self.result.component

    @property
    def total_makespan_ns(self) -> float:
        return self.result.total_makespan_ns


@dataclass
class TreeOptResult:
    """Outcome of Algorithm 2 on a whole kernel."""

    tree: LoopTree
    makespan_ns: float
    choices: List[ComponentChoice]
    elapsed_s: float
    evaluations: int
    cache_hits: int = 0
    pruned: int = 0               # candidate points bound-pruned (all comps)
    bound_hits: int = 0           # pruned points the persistent cache knew
    chains_pruned: int = 0        # parent chains never optimized at all

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.makespan_ns)

    @property
    def probes(self) -> int:
        """Fresh evaluations plus persistent-cache hits (chosen comps)."""
        return self.evaluations + self.cache_hits

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.probes if self.probes else 0.0

    def describe(self) -> str:
        lines = [f"kernel {self.tree.kernel.name}: "
                 f"makespan {self.makespan_ns:,.0f} ns"]
        for choice in self.choices:
            result = choice.result
            solution = result.best.solution if result.best else None
            lines.append(
                f"  component {choice.component.label()} x "
                f"{choice.component.executions}: "
                f"{result.total_makespan_ns:,.0f} ns  "
                + (solution.describe() if solution else "(infeasible)"))
        return "\n".join(lines)


OptimizeFn = Callable[[TilableComponent, ExecModel], ComponentOptResult]


class TreeOptimizer:
    """Runs Algorithm 2; pluggable per-component optimizer (heuristic or
    greedy) and cached execution-model fits."""

    def __init__(self, tree: LoopTree, machine: MachineModel | None = None,
                 max_iter: int = 3, seed: int = 0,
                 segment_cap: int = DEFAULT_SEGMENT_CAP):
        self.tree = tree
        self.machine = machine or MachineModel()
        self.max_iter = max_iter
        self.seed = seed
        self.segment_cap = segment_cap
        self._models: Dict[Tuple[str, ...], ExecModel] = {}
        self._platform: Optional[Platform] = None
        self._cores = 0
        self._chains_pruned = 0

    def exec_model_for(self, component: TilableComponent) -> ExecModel:
        key = component.band_vars
        model = self._models.get(key)
        if model is None:
            model = fit_component_model(component, self.machine)
            self._models[key] = model
        return model

    # -- Algorithm 2 ---------------------------------------------------------

    def optimize(self, platform: Platform,
                 cores: Optional[int] = None,
                 optimize_fn: OptimizeFn | None = None,
                 jobs: int = 1, cache=None) -> TreeOptResult:
        """Run Algorithm 2.

        *jobs*/*cache* configure the default per-component optimizer's
        evaluation engine (worker pool fan-out and persistent makespan
        cache); custom *optimize_fn* callbacks configure their own."""
        cores = cores if cores is not None else platform.cores
        started = time.perf_counter()
        evaluations = 0
        self._platform = platform
        self._cores = cores
        self._chains_pruned = 0
        if optimize_fn is None:
            def optimize_fn(component, exec_model):
                optimizer = ComponentOptimizer(
                    component, platform, exec_model,
                    max_iter=self.max_iter, seed=self.seed,
                    segment_cap=self.segment_cap,
                    jobs=jobs, cache=cache)
                return optimizer.optimize(cores)

        total = 0.0
        choices: List[ComponentChoice] = []
        for root in self.tree.roots:
            makespan, chosen = self._extract(root, [], optimize_fn)
            total += makespan
            choices.extend(chosen)
        evaluations = sum(c.result.evaluations for c in choices)
        return TreeOptResult(
            tree=self.tree,
            makespan_ns=total,
            choices=choices,
            elapsed_s=time.perf_counter() - started,
            evaluations=evaluations,
            cache_hits=sum(c.result.cache_hits for c in choices),
            pruned=sum(c.result.pruned for c in choices),
            bound_hits=sum(c.result.bound_hits for c in choices),
            chains_pruned=self._chains_pruned,
        )

    def _extract(self, node: LoopTreeNode, chain: List[LoopTreeNode],
                 optimize_fn: OptimizeFn
                 ) -> Tuple[float, List[ComponentChoice]]:
        chain = [*chain, node]

        if not node.children:
            makespan, choice = self._optimize_chain(chain, optimize_fn)
            return makespan, [choice]

        extendable = is_chain_extendable(node.loop) and \
            len(node.children) == 1
        if extendable:
            return self._extract(node.children[0], chain, optimize_fn)

        # Children first: their makespan gives an incumbent the parent
        # chain must beat, so a closed-form floor on the chain can skip
        # Algorithm 1 on the parent entirely.
        children_makespan = 0.0
        children_choices: List[ComponentChoice] = []
        for child in node.children:
            child_makespan, chosen = self._extract(child, [], optimize_fn)
            children_makespan += child_makespan
            children_choices.extend(chosen)
        children_makespan += self._stray_stmt_cost(node)

        component = TilableComponent(self.tree, tuple(chain))
        exec_model = self.exec_model_for(component)
        floor = chain_lower_bound(
            component, self._platform, exec_model,
            self._cores) * component.executions
        if floor > children_makespan:
            # No candidate of the chain can reach children_makespan, and
            # the tie rule prefers the parent only on *equality* — which
            # the strict comparison excludes — so the decision matches
            # the unpruned walk exactly.
            self._chains_pruned += 1
            return children_makespan, children_choices

        result = optimize_fn(component, exec_model)
        parent_makespan = result.total_makespan_ns
        parent_choice = ComponentChoice(result)

        if parent_makespan <= children_makespan:
            return parent_makespan, [parent_choice]
        return children_makespan, children_choices

    def _optimize_chain(self, chain: List[LoopTreeNode],
                        optimize_fn: OptimizeFn
                        ) -> Tuple[float, ComponentChoice]:
        component = TilableComponent(self.tree, tuple(chain))
        exec_model = self.exec_model_for(component)
        result = optimize_fn(component, exec_model)
        return result.total_makespan_ns, ComponentChoice(result)

    def _stray_stmt_cost(self, node: LoopTreeNode) -> float:
        """Sequential cost of statements directly in a branch node's body.

        The benchmark corpus has none; when present they run untiled on one
        core and their machine-model cost is added to the children option.
        """
        total = 0.0
        for child in node.loop.body:
            if hasattr(child, "accesses"):    # a Stmt
                cost = self.machine.costs.stmt_dispatch
                cost += child.flops * self.machine.costs.flop
                cost += len(child.reads()) * self.machine.costs.load
                cost += len(child.writes()) * self.machine.costs.store
                total += cost * max(1, node.I) * node.N
        return total
