"""Vectorized batch makespan evaluation over candidate arrays.

Every optimizer in this package ultimately scores candidates one at a
time: ``SegmentPlanner.plan`` walks each core's odometer in Python and
``evaluate_pipeline`` replays the event-driven recurrence per solution.
This module evaluates *batches* of candidates instead: a whole slice of
the search space (tile-size points sharing one thread-group assignment)
is materialized as numpy tensors of shape ``(candidates, cores, slots)``
and the planner's slot-assignment rules plus the pipeline recurrence run
once over the whole batch.

The vector model is **exact**, not a bound (contrast ``repro.opt.bounds``
which re-associates sums into closed forms and therefore needs a safety
factor): every floating-point accumulation replicates the serial
operation order — per-array API charges in array-dict order, loads
before unloads, the handler pass last, ``max`` then ``add`` in the
recurrence — and IEEE-754 elementwise numpy arithmetic equals Python
float arithmetic operation for operation.  Transfer times and execution
estimates come out of the *same* memoized :class:`ArrayGeometry` the
serial planner uses, so batch and serial scoring are bit-identical, not
merely close (DESIGN.md §11 states the argument; the hypothesis parity
tests enforce it).

Exactness contract: a candidate is scored by the vector engine whenever
its padded tensor slice fits the cell budget (``cores * (segments + 2)
<= max_cells``); preflight-infeasible candidates (segment cap, SPM,
overlap legality) are decided exactly via
:meth:`SegmentPlanner.preflight` with the planner's own error strings.
Anything else — in practice only absurdly segment-heavy candidates under
a tiny budget — falls back to the event-driven simulator.  The per-call
``exactness_mask`` records the routing and ``fallbacks`` counts it;
fallbacks are never silent.

Results are adopted through :meth:`MakespanEvaluator.record_local`, so
memo, persistent cache and the ``evaluations`` counter behave exactly
as if the serial loop had run: warm re-runs still perform zero fresh
evaluations and cold/warm searches see identical incumbent histories.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import OptimizerTimeout
from ..prem.segments import RO, RW, PlanError
from ..schedule.makespan import MakespanEvaluator, MakespanResult
from .solution import Solution

#: Cell budget of one batch tensor (candidates × cores × padded slots).
#: At float64 this caps each of the ~8 live tensors near 4 MiB; a single
#: candidate at the default 8192-segment evaluation cap still fits.
DEFAULT_MAX_CELLS = 1 << 19


class BatchEvaluator:
    """Bit-exact batched twin of :meth:`MakespanEvaluator.evaluate`.

    ``evaluate_batch(solutions)`` returns results aligned with the
    input, with the same values, cache entries and counter movements a
    serial ``[evaluator.evaluate(s) for s in solutions]`` loop would
    produce — only faster, because candidates sharing a thread-group
    assignment are scored as one array program."""

    def __init__(self, evaluator: MakespanEvaluator,
                 max_cells: int = DEFAULT_MAX_CELLS):
        self.evaluator = evaluator
        self.max_cells = int(max_cells)
        #: Candidates decided by the vector engine (exact), lifetime.
        self.scored = 0
        #: Candidates routed to the event-driven simulator, lifetime.
        self.fallbacks = 0
        #: Preflight-exact infeasible candidates, lifetime.
        self.infeasible = 0
        #: Batch tensor programs executed, lifetime.
        self.batches = 0
        #: Per-candidate routing of the most recent call: True when the
        #: vector model decided the candidate (including cache hits and
        #: preflight-exact infeasibles), False for simulator fallbacks.
        self.exactness_mask: List[bool] = []
        # Preflight memos (see _preflight): array plans and the SPM sum
        # depend only on the tile-size vector, separating-dimension
        # legality only on (array, level, K) — candidate batches revisit
        # both constantly.
        self._plans_memo: Dict[tuple, tuple] = {}
        self._sep_memo: Dict[tuple, bool] = {}
        # (array, K vector, remainder submask) -> (transfer_ns, bytes);
        # chunks with different R assignments revisit the same tile-size
        # points, and this skips even the shared geometry memo's
        # dict-building on those repeats.
        self._range_memo: Dict[tuple, tuple] = {}

    # -- public ------------------------------------------------------------

    def evaluate_batch(self, solutions: Sequence[Solution]
                       ) -> List[MakespanResult]:
        """Evaluate every solution; results align with the input order."""
        results: List[Optional[MakespanResult]] = [None] * len(solutions)
        exact: List[bool] = [True] * len(solutions)
        fresh: Dict[tuple, List[int]] = {}
        order: List[Tuple[tuple, Solution]] = []
        for i, solution in enumerate(solutions):
            key = solution.key()
            if key in fresh:
                fresh[key].append(i)     # duplicate: resolved post-score
                continue
            hit = self.evaluator.peek(solution)
            if hit is not None:
                results[i] = hit
                continue
            fresh[key] = [i]
            order.append((key, solution))
        if order:
            self.evaluator.check_deadline()
            self._score_fresh(order, fresh, results, exact, solutions)
        # In-batch duplicates memo-hit exactly like a serial loop would.
        for key, places in fresh.items():
            for i in places[1:]:
                results[i] = self.evaluator.peek(solutions[i])
                exact[i] = exact[places[0]]
        self.exactness_mask = exact
        return results                                   # type: ignore

    # -- routing -----------------------------------------------------------

    def _place(self, results, fresh: Dict[tuple, List[int]], key: tuple,
               result: MakespanResult) -> None:
        results[fresh[key][0]] = result

    def _batch_segments(self, solutions: List[Solution]) -> np.ndarray:
        """``max_segments_per_core()`` for solutions sharing one R vector.

        The core -> group map depends only on the shared thread-group
        assignment, so one gather of (M, Z) per solution replaces
        ``cores`` Python-level odometer walks per candidate."""
        sol0 = solutions[0]
        depth = len(sol0.levels)
        cores = sol0.threads
        B = len(solutions)
        M = np.empty((B, depth), np.int64)
        Z = np.empty((B, depth), np.int64)
        for bi, solution in enumerate(solutions):
            for j, level in enumerate(solution.levels):
                M[bi, j] = level.M
                Z[bi, j] = level.Z
        gid = np.array([sol0.group_ids(i) for i in range(cores)], np.int64)
        first = gid[None, :, :] * Z[:, None, :]
        cnt = np.maximum(
            np.minimum(first + Z[:, None, :], M[:, None, :]) - first, 0)
        return cnt.prod(axis=2).max(axis=1)

    def _preflight(self, solution: Solution, segs: int) -> tuple:
        """Memoized twin of :meth:`SegmentPlanner.preflight`.

        Raises :class:`PlanError` with the exact serial message in the
        exact serial precedence (segment cap, SPM, write disjointness);
        returns ``(array_plans, spm_bytes)``.  *segs* is the candidate's
        ``max_segments_per_core()``, precomputed vectorized.  The heavy
        pieces are memoized across the whole batch: array plans and the
        SPM sum by the tile-size vector, the structural
        separating-dimension test by ``(array, level, K)``."""
        planner = self.evaluator.planner
        cap = self.evaluator.segment_cap
        if cap is not None and segs > cap:
            raise PlanError(
                f"{segs} segments/core exceeds "
                f"the evaluation cap {cap}")
        sizes_key = tuple(level.K for level in solution.levels)
        entry = self._plans_memo.get(sizes_key)
        if entry is None:
            plans = planner._array_plans(solution)
            entry = (plans,
                     2 * sum(p.bounding_bytes for p in plans.values()))
            self._plans_memo[sizes_key] = entry
        plans, spm = entry
        if spm > planner.platform.spm_bytes:
            raise PlanError(
                f"solution needs {spm} B of SPM "
                f"(> {planner.platform.spm_bytes} B)")
        band = planner.component.band_vars
        for name, plan in plans.items():
            if plan.mode == RO:
                continue
            relevant = set(plan.relevant_levels)
            for level_idx, level in enumerate(solution.levels):
                if level.R > 1 and level_idx not in relevant:
                    raise PlanError(
                        f"array {name} is written identically by all "
                        f"thread groups of level {level.var}")
            for level_idx in plan.relevant_levels:
                level = solution.levels[level_idx]
                if level.M == 1 and level.R == 1:
                    continue
                sep_key = (name, level_idx, level.K)
                ok = self._sep_memo.get(sep_key)
                if ok is None:
                    ok = planner._has_separating_dim(
                        name, band[level_idx], level.K, solution)
                    self._sep_memo[sep_key] = ok
                if not ok:
                    raise PlanError(
                        f"written array {name} has overlapping but "
                        f"unequal ranges across tiles of level "
                        f"{band[level_idx]}")
        return plans, spm

    def _score_fresh(self, order, fresh, results, exact, solutions) -> None:
        evaluator = self.evaluator
        by_r: Dict[Tuple[int, ...], List[tuple]] = {}
        for key, solution in order:
            rkey = tuple(level.R for level in solution.levels)
            by_r.setdefault(rkey, []).append((key, solution))
        segs_by_key: Dict[tuple, int] = {}
        for group in by_r.values():
            counts = self._batch_segments([s for _, s in group])
            for (key, _sol), segs in zip(group, counts):
                segs_by_key[key] = int(segs)
        batches: Dict[Tuple[int, ...], List[tuple]] = {}
        for key, solution in order:
            segs = segs_by_key[key]
            try:
                plans, spm = self._preflight(solution, segs)
            except PlanError as error:
                self.scored += 1
                self.infeasible += 1
                self._place(results, fresh, key, evaluator.record_local(
                    solution, math.inf, False, str(error)))
                continue
            cells = solution.threads * (segs + 2)
            if cells > self.max_cells:
                self.fallbacks += 1
                for i in fresh[key]:
                    exact[i] = False
                self._place(results, fresh, key,
                            evaluator.evaluate(solution))
                continue
            rkey = tuple(level.R for level in solution.levels)
            batches.setdefault(rkey, []).append(
                (key, solution, plans, spm, segs, cells))
        for entries in batches.values():
            entries.sort(key=lambda e: e[4])   # pad less: chunk by size
            pos = 0
            while pos < len(entries):
                end = pos + 1
                worst = entries[end - 1][4]
                width = entries[0][1].threads
                while end < len(entries):
                    nxt = max(worst, entries[end][4])
                    if (end - pos + 1) * width * (nxt + 2) > self.max_cells:
                        break
                    worst = nxt
                    end += 1
                chunk = entries[pos:end]
                makespans, transferred = self._score_chunk(chunk)
                for (key, solution, _plans, spm, _s, _c), ms, xfer in zip(
                        chunk, makespans, transferred):
                    self.scored += 1
                    self._place(results, fresh, key, evaluator.record_local(
                        solution, float(ms), True,
                        spm_bytes=spm, transferred_bytes=int(xfer)))
                pos = end

    # -- the tensor program ------------------------------------------------

    def _score_chunk(self, entries: List[tuple]
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact makespans of candidates sharing one R-assignment.

        Returns ``(makespan_ns, transferred_bytes)`` arrays aligned with
        *entries*.  Every accumulation mirrors the order
        :meth:`SegmentPlanner._assign_slots` and ``evaluate_pipeline``
        use, which is what makes the result bit-identical."""
        evaluator = self.evaluator
        platform = evaluator.platform
        geometry = evaluator.geometry
        modes = evaluator.planner.modes
        self.batches += 1

        sol0 = entries[0][1]
        depth = len(sol0.levels)
        cores = sol0.threads
        B = len(entries)

        K = np.empty((B, depth), np.int64)
        M = np.empty((B, depth), np.int64)
        Z = np.empty((B, depth), np.int64)
        rem = np.empty((B, depth), np.int64)
        for bi, (_key, solution, *_rest) in enumerate(entries):
            for j, level in enumerate(solution.levels):
                K[bi, j] = level.K
                M[bi, j] = level.M
                Z[bi, j] = level.Z
                rem[bi, j] = level.remainder_width
        # The core -> group map depends only on the shared R vector.
        gid = np.array([sol0.group_ids(i) for i in range(cores)], np.int64)

        first = gid[None, :, :] * Z[:, None, :]
        last = np.minimum(first + Z[:, None, :], M[:, None, :])
        cnt = np.maximum(last - first, 0)                  # (B, P, d)
        has_rem = (cnt > 0) & (last == M[:, None, :]) \
            & (rem[:, None, :] != K[:, None, :])

        names = list(entries[0][2])
        skeys = [tuple(lv.K for lv in entry[1].levels) for entry in entries]

        # A core's whole event structure — odometer masks, rollovers,
        # event slots, API charges, dependencies — is a function of its
        # per-level (count, has-remainder) row plus which levels are
        # relevant to each array.  Cores repeat those rows heavily (all
        # cores of a candidate often share one), so the structure is
        # computed once per *unique row* and expanded by gather.
        relids: Dict[tuple, int] = {}
        relcol = np.empty(B, np.int64)
        for bi, entry in enumerate(entries):
            plans = entry[2]
            rk = tuple(plans[name].relevant_levels for name in names)
            relcol[bi] = relids.setdefault(rk, len(relids))
        rows = np.concatenate([
            cnt.reshape(B * cores, depth),
            has_rem.reshape(B * cores, depth).astype(np.int64),
            np.repeat(relcol, cores)[:, None],
        ], axis=1)
        urows, uidx, uinv = np.unique(
            rows, axis=0, return_index=True, return_inverse=True)
        U = len(urows)
        u_of = uinv.reshape(B, cores)
        rep_b = uidx // cores          # representative candidate per row

        cnt_u = urows[:, :depth]
        has_rem_u = urows[:, depth:2 * depth].astype(bool)
        cnt_safe = np.maximum(cnt_u, 1)
        stride = np.ones((U, depth), np.int64)
        for j in range(depth - 2, -1, -1):
            stride[:, j] = stride[:, j + 1] * cnt_safe[:, j + 1]
        n_pc_u = cnt_u.prod(axis=1)                        # (U,)
        active_u = n_pc_u > 0
        S = int(n_pc_u.max())
        pos = np.arange(S, dtype=np.int64)
        pos_valid = active_u[:, None] & (pos[None, :] < n_pc_u[:, None])
        pos_zero = pos[None, :] == 0

        # Remainder bitmask and rollover level per odometer position.
        # rollover(p>=1) is the unique level j with p % stride_j == 0 and
        # z_j(p) != 0 — the level the serial walk increments at p.
        mask_u = np.zeros((U, S), np.int64)
        roll = np.full((U, S), -1, np.int64)
        for j in range(depth):
            q = pos[None, :] // stride[:, j:j + 1]
            zj = q % cnt_safe[:, j:j + 1]
            at_rem = (zj == cnt_u[:, j:j + 1] - 1) & has_rem_u[:, j:j + 1]
            mask_u |= at_rem.astype(np.int64) << j
            advanced = (q * stride[:, j:j + 1] == pos[None, :]) & (zj != 0)
            roll = np.where(advanced, j, roll)
        roll_c = np.clip(roll, 0, depth - 1)

        dispatch, end_segment, alloc, dealloc, handler = platform.api_costs(
            "dispatch", "end_segment", "allocate_buffer",
            "deallocate_buffer", "DMA_int_handler")
        init_u = np.full(U, dispatch + end_segment)
        api_u = np.full((U, S), end_segment)
        dep_u = np.zeros((U, S), np.int64)
        mem = np.zeros((B, cores, S + 2))
        load_total = np.zeros(B, np.int64)
        unload_total = np.zeros(B, np.int64)
        b_col = np.arange(B)[:, None, None]

        for name in names:
            rel_u = np.zeros((U, depth), bool)
            for u in range(U):
                plans = entries[rep_b[u]][2]
                for r in plans[name].relevant_levels:
                    rel_u[u, r] = True
            swap_cost = platform.api_cost(entries[0][2][name].swap_api)
            loads = modes[name] in (RO, RW)
            unloads = not loads or modes[name] == RW

            # changed(rollover): a relevant level at/after the rollover
            # actually advances on this core (count > 1 or == rollover).
            multi = rel_u & (cnt_u > 1)
            tail = np.zeros((U, depth + 1), bool)
            for r in range(depth - 1, -1, -1):
                tail[:, r] = tail[:, r + 1] | multi[:, r]
            changed = rel_u | tail[:, 1:]
            changed_at = np.take_along_axis(changed, roll_c, axis=1)
            flag = pos_valid & (pos_zero | ((roll >= 0) & changed_at))
            m_u = flag.sum(axis=1)                         # (U,)
            if not m_u.any():
                continue

            # np.nonzero walks row-major, so events arrive grouped by
            # row in increasing odometer position: the within-group
            # ordinal and the previous/next event position are
            # one-dimensional shifts along the event vector.
            eu, ep = np.nonzero(flag)
            ne = len(eu)
            gidx = np.arange(ne, dtype=np.int64)
            new_grp = np.empty(ne, bool)
            new_grp[0] = True
            np.not_equal(eu[1:], eu[:-1], out=new_grp[1:])
            e_idx = gidx - np.maximum.accumulate(
                np.where(new_grp, gidx, 0))
            e_prev = np.empty(ne, np.int64)
            e_prev[0] = -1
            e_prev[1:] = ep[:-1]
            e_prev[new_grp] = -1
            last_grp = np.empty(ne, bool)
            last_grp[-1] = True
            last_grp[:-1] = new_grp[1:]
            e_next = np.empty(ne, np.int64)
            e_next[-1] = S + 2
            e_next[:-1] = ep[1:]
            e_next[last_grp] = S + 2
            e_m = m_u[eu]
            e_n = n_pc_u[eu]

            # Transfer values via the shared geometry memo: the range
            # key only involves the array's key variables, so the
            # submask below addresses exactly the serial cache entries.
            # Values depend on the candidate (through its tile sizes)
            # and the remainder submask — a (candidate, submask) table
            # bridges the row-level structure and per-candidate bytes.
            kv = set(geometry.key_vars(name))
            keymask = 0
            for j, level in enumerate(sol0.levels):
                if level.var in kv:
                    keymask |= 1 << j
            e_sub = mask_u[eu, ep] & keymask
            sub_vals, e_scol = np.unique(e_sub, return_inverse=True)
            nsv = len(sub_vals)
            t_table = np.zeros((B, nsv + 1))      # last column: no event
            p_table = np.zeros((B, nsv), np.int64)
            for bi, (_key, solution, *_rest) in enumerate(entries):
                sk = skeys[bi]
                for ci, sub in enumerate(sub_vals):
                    sub = int(sub)
                    mkey = (name, sk, sub)
                    hit = self._range_memo.get(mkey)
                    if hit is None:
                        widths = {
                            level.var: level.remainder_width
                            for j, level in enumerate(solution.levels)
                            if (sub >> j) & 1
                        }
                        _shape, t_ns, nbytes = geometry.range_entry(
                            name, solution.tile_sizes, widths)
                        hit = (t_ns, nbytes)
                        self._range_memo[mkey] = hit
                    t_table[bi, ci], p_table[bi, ci] = hit

            # Initialisation-segment API charges, in serial order:
            # 2×allocate, then the first two swaps.
            init_u = init_u + np.where(m_u > 0, 2 * alloc, 0.0)
            init_u = init_u + np.where(m_u >= 1, swap_cost, 0.0)
            init_u = init_u + np.where(m_u >= 2, swap_cost, 0.0)

            # Event slots become per-row templates of submask columns
            # (sentinel ``nsv`` = no event, transfer 0.0); expanding a
            # template through ``u_of`` and the value table adds every
            # core's transfers in one gather.  Slots within each pass
            # are pairwise distinct per row, so plain assignment works.
            counts = np.bincount(
                eu * nsv + e_scol, minlength=U * nsv).reshape(U, nsv)
            per_cand = counts[u_of].sum(axis=1)            # (B, nsv)
            dep_val = np.zeros(ne, np.int64)
            if loads:
                slot = np.where(e_idx == 0, 1,
                                np.where(e_idx == 1, ep + 1, e_prev + 2))
                tmpl = np.full((U, S + 2), nsv, np.int64)
                tmpl[eu, slot - 1] = e_scol
                mem += t_table[b_col, tmpl[u_of]]
                load_total += (per_cand * p_table).sum(axis=1)
                dep_val = slot
            if unloads:
                dep_val = np.maximum(
                    dep_val, np.where(e_idx >= 2, e_prev + 2, 0))
            dep_u[eu, ep] = np.maximum(dep_u[eu, ep], dep_val)

            late = e_idx >= 2
            if late.any():
                api_u[eu[late], e_prev[late] - 1] += swap_cost
            if unloads:
                uslot = np.where(e_idx + 1 < e_m, e_next + 2, e_n + 2)
                tmpl = np.full((U, S + 2), nsv, np.int64)
                tmpl[eu, uslot - 1] = e_scol
                mem += t_table[b_col, tmpl[u_of]]
                unload_total += (per_cand * p_table).sum(axis=1)

            # Deallocation charges hang off each row's last event: two
            # singles when it had several events, one doubled charge
            # when it had exactly one.
            many = last_grp & (e_m >= 2)
            if many.any():
                api_u[eu[many], ep[many] - 1] += dealloc
                api_u[eu[many], e_n[many] - 1] += dealloc
            single = last_grp & (e_m == 1)
            if single.any():
                api_u[eu[single], e_n[single] - 1] += 2 * dealloc

        # Expand the row-level structure to (candidate, core) tensors.
        n_pc = n_pc_u[u_of]                                # (B, P)
        active = n_pc > 0
        init = init_u[u_of]
        api = api_u[u_of]
        dep = dep_u[u_of]
        mask_t = mask_u[u_of]

        # DMA completion interrupts, charged after every array (the
        # serial handler pass runs last): slot 1 lands on the
        # initialisation segment, slot s on segment s - 2 when it exists.
        has_mem = mem > 0.0
        init = init + np.where(has_mem[:, :, 0], handler, 0.0)
        if S >= 1:
            slots = np.arange(2, S + 3, dtype=np.int64)
            cond = has_mem[:, :, 1:] & ((slots - 2)[None, None, :]
                                        < n_pc[:, :, None])
            api = api + np.where(cond[:, :, :S], handler, 0.0)

        # Execution phases: the §4.2 model at the masked widths, scaled
        # to ns exactly like ArrayGeometry.exec_estimate.
        width_arrays = []
        for j in range(depth):
            bit = ((mask_t >> j) & 1).astype(bool)
            width_arrays.append(np.where(
                bit, rem[:, None, j:j + 1], K[:, None, j:j + 1]))
        cycles = evaluator.exec_model.estimate_batch(width_arrays)
        exec_ns = cycles * platform.ns_per_cycle + api

        # Event-driven recurrence, all candidates in lockstep.  The DMA
        # clock chains through (slot, core) in round-robin order, so
        # that double loop stays in Python; everything inside it is a
        # (B,)-vector op on candidate-contiguous views.  Lanes without a
        # DMA op in a slot carry ``gate = -inf`` and ``length = 0``,
        # which leaves their clock bitwise unchanged (``max(c, -inf) +
        # 0.0 == c`` for ``c >= 0``) without a per-lane select.  The
        # pipeline's clamp of the gate index to the built prefix of the
        # exec chain is equivalent to reading the forward-filled
        # ``e_hist[s - 2]`` column: past a core's last segment the
        # columns repeat its final value.
        slot_idx = np.arange(1, S + 3, dtype=np.int64)
        valid_T = np.ascontiguousarray(
            (active[:, :, None] & has_mem
             & (slot_idx[None, None, :] <= n_pc[:, :, None] + 2)
             ).transpose(1, 2, 0))                         # (P, S+2, B)
        length_T = np.where(valid_T, mem.transpose(1, 2, 0), 0.0)
        valid_any = valid_T.any(axis=2)                    # (P, S + 2)
        valid_e_T = np.ascontiguousarray(
            (active[:, :, None]
             & (np.arange(1, S + 1)[None, None, :] <= n_pc[:, :, None])
             ).transpose(1, 2, 0))                         # (P, S, B)
        exec_T = np.ascontiguousarray(exec_ns.transpose(1, 2, 0))
        dep_T = np.ascontiguousarray(dep.transpose(1, 2, 0))

        e_hist = np.zeros((cores, S + 1, B))
        e_hist[:, 0, :] = np.where(active, init, 0.0).T
        slot_end = np.zeros((cores, S + 3, B))
        # Flat-index gather table for the exec-pass dependency lookup:
        # slot_end[i, d, b] lives at ((i * (S + 3)) + d) * B + b.
        slot_end_flat = slot_end.reshape(-1)
        dep_flat = (np.arange(cores, dtype=np.int64)[:, None, None]
                    * (S + 3) + dep_T) * B \
            + np.arange(B, dtype=np.int64)[None, None, :]
        dma_clock = np.zeros(B)
        for s in range(1, S + 3):
            for i in range(cores):
                if not valid_any[i, s - 1]:
                    continue
                gate = np.where(
                    valid_T[i, s - 1], e_hist[i, max(s - 2, 0)], -np.inf)
                np.maximum(dma_clock, gate, out=dma_clock)
                dma_clock += length_T[i, s - 1]
                # The unmasked store is safe: a lane's clock is
                # non-decreasing and dependency lookups only read slots
                # where that lane had its own DMA op, so stale lanes
                # never observe a value the masked store would hide and
                # the final per-lane max is the lane's last clock either
                # way.
                slot_end[i, s] = dma_clock
            if s <= S:
                ready = np.maximum(
                    e_hist[:, s - 1],
                    np.take(slot_end_flat, dep_flat[:, s - 1]))
                e_hist[:, s] = np.where(
                    valid_e_T[:, s - 1], ready + exec_T[:, s - 1],
                    e_hist[:, s - 1])

        makespan = np.maximum(
            e_hist[:, S, :].max(axis=0), slot_end.max(axis=(0, 1)))
        return makespan, load_total + unload_total


__all__ = ["BatchEvaluator", "DEFAULT_MAX_CELLS", "OptimizerTimeout"]
