"""Content-addressed persistent makespan cache.

Planning a PREM segment schedule for one candidate solution is the hot
operation of every optimizer in this package; re-running a bench or a CI
job re-pays that cost for a search space that has not changed at all.
This module memoizes :class:`~repro.schedule.makespan.MakespanResult`
outcomes *across processes and runs*: entries are keyed by a stable
SHA-256 digest of everything the makespan depends on — component
structure, platform parameters, fitted execution model, segment cap,
planner modes, and the solution key — and stored append-only as JSON
lines, so concurrent readers never see a torn entry and a corrupted
line degrades to a cache miss instead of an error.

The cache stores only the *outcome* (makespan, feasibility, reason,
transfer/SPM totals), never the plan object itself: a warm hit skips
planning entirely, which is exactly what re-runs of the Figure 6.1 /
Table 6.5 benches need.  Callers that need the full plan of a chosen
winner re-plan that single solution.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

try:
    import fcntl
except ImportError:                          # pragma: no cover - non-POSIX
    fcntl = None

#: Environment override for the default cache directory.
CACHE_ENV = "REPRO_CACHE_DIR"

#: File holding the append-only entry log inside the cache directory.
CACHE_FILENAME = "makespan-cache.jsonl"

#: Sibling lockfile serialising appends across concurrent writers.
LOCK_FILENAME = "makespan-cache.lock"

#: Bumped whenever the entry layout or fingerprint recipe changes;
#: entries from other versions are ignored on load.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


# ---------------------------------------------------------------------------
# fingerprinting


def _component_payload(component) -> List[Any]:
    """Deterministic structural description of a tilable component."""
    nodes = [[node.var, node.N, node.I, bool(node.parallel)]
             for node in component.nodes]
    inner = sorted(
        (var, list(bounds))
        for var, bounds in component.full_inner_box().items())
    stmts = []
    for stmt in component.stmts():
        accesses = [
            [access.kind, access.array.name, list(access.array.shape),
             access.array.etype, [repr(expr) for expr in access.indices]]
            for access in stmt.accesses
        ]
        guards = [repr(guard) for guard in stmt.guards]
        stmts.append([stmt.name, stmt.flops, accesses, guards])
    return [nodes, inner, stmts]


def _platform_payload(platform) -> List[Any]:
    return [
        platform.cores, platform.freq_hz, platform.spm_bytes,
        platform.bus_bytes_per_s, platform.burst_bytes,
        platform.dma_line_overhead_ns,
        sorted(platform.api_wcet_ns.items()),
    ]


def _exec_model_payload(exec_model) -> List[Any]:
    return [list(exec_model.overheads), exec_model.work,
            exec_model.intercept]


def context_fingerprint(component, platform, exec_model,
                        segment_cap: int,
                        modes: Optional[Mapping[str, str]] = None,
                        scenario: Optional[str] = None) -> str:
    """Digest of everything a makespan depends on except the solution.

    *scenario* is the :meth:`TimingScenario.digest` of the timing
    scenario the platform/model were perturbed under, when any; it is
    folded into the fingerprint so robust-search outcomes can never
    alias nominal ones, even where a perturbed parameter happens to
    round back onto its nominal value.  Nominal contexts omit the key
    entirely, keeping their fingerprints identical to pre-robust runs.
    """
    payload = {
        "v": CACHE_VERSION,
        "component": _component_payload(component),
        "platform": _platform_payload(platform),
        "model": _exec_model_payload(exec_model),
        "segment_cap": segment_cap,
        "modes": sorted(modes.items()) if modes else [],
    }
    if scenario is not None:
        payload["scenario"] = scenario
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def solution_digest(context_hash: str, key: Tuple) -> str:
    """Full cache key: context fingerprint + solution identity."""
    blob = json.dumps([context_hash, [list(part) if isinstance(part, tuple)
                                      else part for part in key]],
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# the store


class PersistentCache:
    """Append-only JSONL store of makespan outcomes, loaded lazily.

    Entries are plain dicts ``{"k": digest, "v": version, "m": makespan
    or None, "f": feasible, "r": reason, "spm": bytes, "xfer": bytes}``;
    an infeasible outcome stores ``m: None`` (JSON has no infinity) and
    is mapped back to ``math.inf`` on load.
    """

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self.path = self.directory / CACHE_FILENAME
        self.lock_path = self.directory / LOCK_FILENAME
        #: In-memory fingerprint index: digest -> last entry.  Built by
        #: parsing the JSONL exactly once, on the first lookup or store;
        #: every later ``get``/``put``/``stats`` is a dict operation —
        #: the log file is never re-scanned per lookup.
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._bound_count = 0
        self._loaded = False
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_lines = 0

    # -- loading ----------------------------------------------------------

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                # Torn line from a crash-interrupted writer: degrade to
                # a miss for that entry, keep everything else.
                self.corrupt_lines += 1
                continue
            if not isinstance(entry, dict) or \
                    entry.get("v") != CACHE_VERSION:
                continue
            digest = entry.get("k")
            if isinstance(digest, str):
                self._entries[digest] = entry
        # Last line wins above, so the bound tally must come after the
        # whole log is folded — an upgraded digest counts as a result.
        self._bound_count = sum(
            1 for entry in self._entries.values() if "f" not in entry)
        if self.corrupt_lines:
            warnings.warn(
                f"persistent cache {self.path} contained "
                f"{self.corrupt_lines} corrupt line(s); skipped",
                RuntimeWarning, stacklevel=2)

    def __len__(self) -> int:
        self._load()
        return len(self._entries)

    # -- lookup / store ---------------------------------------------------

    def get(self, digest: str) -> Optional[Dict[str, Any]]:
        """The stored entry for *digest*, or None (counts hit/miss)."""
        self._load()
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def peek_entry(self, digest: str) -> Optional[Dict[str, Any]]:
        """The stored entry without touching the hit/miss counters.

        The shard reducer classifies every candidate on the list (full
        result, bound-only, missing); those taxonomy probes are not
        cache *lookups* and must not skew the hit-rate accounting."""
        self._load()
        return self._entries.get(digest)

    def get_result(self, digest: str) -> Optional[Dict[str, Any]]:
        """Like :meth:`get`, but only full *result* entries count.

        Bound-only entries (pruned candidates, see :meth:`put_bound`)
        carry no makespan outcome and must read as a miss to the
        evaluator."""
        self._load()
        entry = self._entries.get(digest)
        if entry is not None and "f" in entry:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, digest: str, *, makespan_ns: float, feasible: bool,
            reason: str = "", spm_bytes: int = 0,
            transferred_bytes: int = 0) -> None:
        """Record one outcome; duplicate *result* digests are ignored.

        A bound-only entry for the same digest is upgraded: the new
        result line is appended and shadows it (last line wins on
        load)."""
        self._load()
        existing = self._entries.get(digest)
        if existing is not None and "f" in existing:
            return
        entry = {
            "k": digest,
            "v": CACHE_VERSION,
            "m": makespan_ns if math.isfinite(makespan_ns) else None,
            "f": bool(feasible),
            "r": reason,
            "spm": int(spm_bytes),
            "xfer": int(transferred_bytes),
        }
        self._append(digest, entry)

    def put_bound(self, digest: str, bound_ns: float) -> bool:
        """Record an admissible lower bound for a pruned candidate.

        Never overwrites anything: a digest that is already known (as a
        result or a bound) is left alone.  Returns True when the entry
        is new, False when the digest was already present — the caller's
        *bound hit* signal."""
        self._load()
        if digest in self._entries:
            return False
        entry = {
            "k": digest,
            "v": CACHE_VERSION,
            "b": bound_ns if math.isfinite(bound_ns) else None,
        }
        self._append(digest, entry)
        return True

    @contextmanager
    def _locked(self):
        """Hold the sibling lockfile for the duration of one append.

        Serialises concurrent writers (parallel benches, CI shards on a
        shared cache dir) so partial lines can never interleave.  On
        platforms without ``fcntl`` the append falls back to unlocked
        single-``write`` mode, which POSIX appends keep atomic for the
        short lines written here."""
        if fcntl is None:
            yield
            return
        with open(self.lock_path, "a") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock, fcntl.LOCK_UN)

    def _append(self, digest: str, entry: Dict[str, Any]) -> None:
        # Keep the index (and its bound tally) coherent before touching
        # the disk: a result entry shadowing a bound-only one is the
        # ``put``-after-``put_bound`` upgrade path.
        prev = self._entries.get(digest)
        if prev is not None and "f" not in prev:
            self._bound_count -= 1
        if "f" not in entry:
            self._bound_count += 1
        self._entries[digest] = entry
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with self._locked():
                with open(self.path, "a") as handle:
                    handle.write(
                        json.dumps(entry, sort_keys=True,
                                   separators=(",", ":")) + "\n")
        except OSError:
            return              # cache is best-effort; keep computing
        self.stores += 1

    @staticmethod
    def makespan_of(entry: Mapping[str, Any]) -> float:
        value = entry.get("m")
        return float(value) if value is not None else math.inf

    # -- maintenance ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """O(1) snapshot — the bound tally is maintained incrementally
        by the index, not recounted per call."""
        self._load()
        size = self.path.stat().st_size if self.path.exists() else 0
        return {
            "path": str(self.path),
            "entries": len(self._entries),
            "bound_entries": self._bound_count,
            "bytes": size,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def reload(self) -> None:
        """Drop the in-memory index and re-read the log on next access.

        Concurrent processes append entries this process's index has
        never seen; the shard reducer calls this before merging so the
        fold covers every worker's published lines."""
        self._entries = {}
        self._bound_count = 0
        self._loaded = False
        self.corrupt_lines = 0

    def compact(self) -> Dict[str, int]:
        """Rewrite the log keeping one line per digest; report savings.

        The append-only file grows without bound across warm runs:
        every bound-only entry later upgraded to a full result leaves
        its superseded line behind, and corrupt (torn) lines linger
        forever.  Compaction re-reads the file *inside* the writer lock
        — so lines appended since this process last loaded are folded,
        not lost — rewrites the surviving entry per digest to a
        temporary sibling, and atomically replaces the log.  Readers
        mid-``read_text`` see either the old or the new file, never a
        mix.  Returns ``lines``/``bytes`` before/after and the
        reclaimed difference."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with self._locked():
            try:
                text = self.path.read_text()
            except OSError:
                text = ""
            bytes_before = len(text.encode())
            lines_before = sum(1 for line in text.splitlines()
                               if line.strip())
            entries: Dict[str, Dict[str, Any]] = {}
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(entry, dict) or \
                        entry.get("v") != CACHE_VERSION:
                    continue
                digest = entry.get("k")
                if isinstance(digest, str):
                    entries[digest] = entry
            compacted = "".join(
                json.dumps(entry, sort_keys=True, separators=(",", ":"))
                + "\n" for entry in entries.values())
            temp = self.path.with_suffix(".jsonl.compact")
            temp.write_text(compacted)
            os.replace(temp, self.path)
            # Adopt the folded view: it is at least as fresh as the
            # in-memory index (the lock held off concurrent appends).
            self._entries = entries
            self._bound_count = sum(
                1 for entry in entries.values() if "f" not in entry)
            self._loaded = True
            self.corrupt_lines = 0
        return {
            "lines_before": lines_before,
            "lines_after": len(entries),
            "lines_reclaimed": lines_before - len(entries),
            "bytes_before": bytes_before,
            "bytes_after": len(compacted.encode()),
            "bytes_reclaimed": bytes_before - len(compacted.encode()),
        }

    def clear(self) -> int:
        """Delete the store; returns the number of entries removed."""
        self._load()
        removed = len(self._entries)
        self._entries = {}
        self._bound_count = 0
        if self.path.exists():
            self.path.unlink()
        return removed
