"""Scenario-based robust search over the Algorithm-1 candidate space.

The nominal optimizers rank candidates by one number — the makespan at
the fitted §4.2 model and the measured platform parameters.  That number
is a point estimate: the model is a constrained least-squares fit and
the DMA/bus/API costs are measurements, so a candidate that wins by 1%
nominally can lose badly when the real parameters drift.  This module
re-ranks the same candidate space by a *risk objective* over K seeded
Monte-Carlo timing scenarios (:mod:`repro.faults.scenarios`):

``worst``
    the maximum makespan over the scenario set (minimax);
``cvar``
    CVaR-α — the mean of the worst ``ceil((1 - α)·K)`` scenario
    makespans, interpolating between ``mean`` (α = 0) and ``worst``
    (α → 1) without the minimax's all-or-nothing focus on one draw;
``mean``
    the plain scenario average.

The K×M scenario-candidate product is kept tractable by the same
branch-and-bound machinery as :class:`~repro.opt.pruned.PrunedOptimizer`,
made admissible for risk objectives through the *envelope* bound: a
closed-form lower bound computed at the componentwise most optimistic
parameters of the whole scenario set.  Bound at envelope ≤ bound at any
scenario ≤ makespan at that scenario, so it lower-bounds the *minimum*
scenario makespan — and therefore every coordinatewise-monotone risk
objective.  Candidates are screened best-bound-first against the nominal
winner's risk (the initial incumbent), survivors are scored scenario by
scenario through the parallel evaluation engine, and partially-scored
candidates are dropped as soon as their completed values plus the
envelope bound for the rest already lose to the incumbent.

Feasibility never varies across scenarios — perturbations touch timing
only, never cores/SPM/burst — so a candidate feasible at nominal
parameters is feasible everywhere and vice versa; only its makespan
moves.  Determinism: the scenario set is a pure function of
``(count, seed, spread)``, scenario makespans are accumulated in fixed
scenario order, risk sums use ``math.fsum`` over deterministically
sorted values, and every tie breaks on the flattened solution key — the
winner is bit-identical across re-runs and ``jobs`` settings.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.scenarios import (
    DEFAULT_SPREAD,
    PARAMETERS,
    TimingScenario,
    adverse_scenario,
    envelope_scenario,
    sample_scenarios,
)
from ..loopir.component import TilableComponent
from ..schedule.makespan import DEFAULT_SEGMENT_CAP, MakespanEvaluator
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .bounds import BoundCalculator, flatten_key
from .cache import PersistentCache
from .component import ComponentOptResult
from .engine import EngineMetrics, EvaluationEngine, effective_jobs
from .pruned import (
    DEFAULT_PRUNED_MAX_POINTS,
    PrunedOptimizer,
    enumerate_candidates,
    validate_shard,
)
from .solution import Solution
from .threadgroups import generate_nondominated_thread_groups
from .vectorized import BatchEvaluator

#: The supported risk objectives.
RISK_OBJECTIVES: Tuple[str, ...] = ("worst", "cvar", "mean")

#: Deadline poll stride for the bound-only screening walk.
_DEADLINE_STRIDE = 512


def cvar_tail_count(count: int, alpha: float) -> int:
    """Scenarios in the CVaR-α tail: ``max(1, ceil((1 - α)·count))``."""
    return max(1, math.ceil((1.0 - alpha) * count))


def risk_value(values: Sequence[float], risk: str, alpha: float) -> float:
    """The risk objective over one candidate's scenario makespans.

    Coordinatewise monotone in *values* for every supported objective —
    the property the envelope bound's admissibility argument rests on.
    Sums go through ``math.fsum`` over deterministically ordered values,
    so the result is bit-stable across runs."""
    if not values:
        return math.inf
    if risk == "worst":
        return max(values)
    if risk == "mean":
        return math.fsum(values) / len(values)
    if risk == "cvar":
        tail = sorted(values, reverse=True)[:cvar_tail_count(
            len(values), alpha)]
        return math.fsum(tail) / len(tail)
    raise ValueError(
        f"unknown risk objective {risk!r} (known: {RISK_OBJECTIVES})")


@dataclass(frozen=True)
class SensitivityEntry:
    """Makespan of the winner under one parameter's adverse perturbation."""

    parameter: str
    makespan_ns: float
    delta_ns: float               # vs the winner's nominal makespan

    @property
    def relative(self) -> float:
        base = self.makespan_ns - self.delta_ns
        return self.delta_ns / base if base > 0 else 0.0


@dataclass(frozen=True)
class CandidateRisk:
    """One candidate's full robustness record."""

    solution: Solution
    nominal_ns: float
    scenario_ns: Tuple[float, ...]    # in scenario-index order
    risk_ns: float

    @property
    def worst_ns(self) -> float:
        return max(self.scenario_ns) if self.scenario_ns \
            else self.nominal_ns

    @property
    def mean_ns(self) -> float:
        if not self.scenario_ns:
            return self.nominal_ns
        return math.fsum(self.scenario_ns) / len(self.scenario_ns)


@dataclass
class RobustComponentResult(ComponentOptResult):
    """Algorithm-1 result enriched with the robust-search outcome.

    ``best`` is the robust winner's *nominal-parameter* makespan result
    (what codegen, the VM and tree composition consume); the scenario
    record of the winner and of the nominal incumbent live in
    :attr:`robust` and :attr:`nominal`.
    """

    risk: str = "cvar"
    alpha: float = 0.9
    spread: float = DEFAULT_SPREAD
    seed: int = 0
    scenario_count: int = 0
    finalists: int = 0            # candidates that entered scenario scoring
    scenario_probes: int = 0      # (candidate, scenario) makespans obtained
    robust: Optional[CandidateRisk] = None
    nominal: Optional[CandidateRisk] = None
    sensitivity: Tuple[SensitivityEntry, ...] = ()

    @property
    def regret_ns(self) -> float:
        """Risk the nominal winner would have carried over the robust one."""
        if self.robust is None or self.nominal is None:
            return 0.0
        return self.nominal.risk_ns - self.robust.risk_ns

    @property
    def switched(self) -> bool:
        """True when the robust winner differs from the nominal one."""
        return (self.robust is not None and self.nominal is not None
                and self.robust.solution.key()
                != self.nominal.solution.key())


class RobustOptimizer:
    """Risk-objective twin of :class:`~repro.opt.pruned.PrunedOptimizer`.

    Phase A finds the nominal winner (plain pruned search) and scores it
    under every scenario — the initial incumbent.  Phase B screens the
    whole candidate space with envelope-admissible bounds, best-bound
    first, pruning the sorted tail in one step exactly like the nominal
    search.  Phase C scores the survivors scenario-major through the
    evaluation engine, dropping candidates whose partial risk floor
    already loses.  ``scenarios == 0`` degrades to the nominal search:
    the returned winner is bit-identical to ``PrunedOptimizer``'s.
    """

    def __init__(self, component: TilableComponent, platform: Platform,
                 exec_model: ExecModel,
                 segment_cap: int = DEFAULT_SEGMENT_CAP,
                 scenarios: int = 32, seed: int = 0,
                 spread: float = DEFAULT_SPREAD,
                 risk: str = "cvar", alpha: float = 0.9,
                 max_points: int = DEFAULT_PRUNED_MAX_POINTS,
                 deadline: float | None = None, budget_s: float = 0.0,
                 jobs: int = 1, cache: Optional[PersistentCache] = None,
                 vectorize: bool = True,
                 shard_of: Optional[Tuple[int, int]] = None):
        if risk not in RISK_OBJECTIVES:
            raise ValueError(
                f"unknown risk objective {risk!r} "
                f"(known: {RISK_OBJECTIVES})")
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must lie in [0, 1)")
        self.component = component
        self.platform = platform
        self.exec_model = exec_model
        self.segment_cap = segment_cap
        self.risk = risk
        self.alpha = alpha
        self.seed = seed
        self.spread = spread
        self.jobs = jobs
        self.cache = cache
        self.deadline = deadline
        self.budget_s = budget_s
        self.vectorize = vectorize
        #: Restrict phases A and B to shard *i* of *n* of the sorted
        #: candidate list.  Unlike the nominal search, shards exchange
        #: no incumbents here — each shard robustifies its own slice,
        #: and the reducer takes the best published risk rank.
        self.shard_of = validate_shard(shard_of)
        self.scenarios: Tuple[TimingScenario, ...] = \
            sample_scenarios(scenarios, seed, spread) if scenarios else ()
        #: Phase A — the nominal search, shared guard and counters.
        self._nominal_search = PrunedOptimizer(
            component, platform, exec_model, segment_cap=segment_cap,
            max_points=max_points, deadline=deadline, budget_s=budget_s,
            jobs=jobs, cache=cache, vectorize=vectorize,
            shard_of=shard_of)
        self._scenario_evaluators: List[MakespanEvaluator] = []
        self.metrics: Optional[EngineMetrics] = None
        self._engine_metrics: List[EngineMetrics] = []
        self._pruned = 0
        self._probes = 0
        self._batched = 0
        self._batch_fallbacks = 0

    # -- scenario plumbing -------------------------------------------------

    def _evaluator_for(self, scenario: TimingScenario) -> MakespanEvaluator:
        evaluator = MakespanEvaluator(
            self.component,
            scenario.apply_platform(self.platform),
            scenario.apply_exec_model(self.exec_model),
            self.segment_cap,
            cache=self.cache,
            scenario=scenario.digest(),
        )
        if self.deadline is not None:
            evaluator.set_deadline(self.deadline, "robust", self.budget_s)
        return evaluator

    def _scenario_values(self, solution: Solution) -> Tuple[float, ...]:
        """One candidate's makespan under every scenario, in order."""
        values = []
        for evaluator in self._scenario_evaluators:
            values.append(evaluator.evaluate(solution).makespan_ns)
            self._probes += 1
        return tuple(values)

    def _risk(self, values: Sequence[float]) -> float:
        return risk_value(values, self.risk, self.alpha)

    # -- search ------------------------------------------------------------

    def optimize(self, cores: Optional[int] = None
                 ) -> RobustComponentResult:
        cores = cores if cores is not None else self.platform.cores
        started = time.perf_counter()
        self._pruned = 0
        self._probes = 0
        self._batched = 0
        self._batch_fallbacks = 0
        self._engine_metrics = []
        self._scenario_evaluators = []
        nominal = self._nominal_search.optimize(cores)

        if not self.scenarios or nominal.best is None \
                or not nominal.best.feasible:
            # No scenarios (plain nominal semantics, bit-identical to the
            # pruned search) or no feasible candidate at all — timing
            # perturbations cannot create feasibility, so there is
            # nothing to robustify.
            return self._wrap(nominal, started, robust=None,
                              nominal_risk=None, sensitivity=())

        self._scenario_evaluators = [
            self._evaluator_for(s) for s in self.scenarios]

        # Initial incumbent: the nominal winner's risk.
        nominal_values = self._scenario_values(nominal.best.solution)
        nominal_risk = CandidateRisk(
            solution=nominal.best.solution,
            nominal_ns=nominal.best.makespan_ns,
            scenario_ns=nominal_values,
            risk_ns=self._risk(nominal_values),
        )
        incumbent_rank = (nominal_risk.risk_ns,
                          flatten_key(nominal.best.solution.key()))

        finalists = self._screen(cores, incumbent_rank)
        winner_key, winner_values = self._score(finalists, incumbent_rank)

        if winner_key is None:
            robust = nominal_risk
        else:
            solution = finalists[winner_key][1]
            robust = CandidateRisk(
                solution=solution,
                nominal_ns=self._nominal_search.evaluator
                    .evaluate(solution).makespan_ns,
                scenario_ns=winner_values,
                risk_ns=self._risk(winner_values),
            )
        sensitivity = self._sensitivity(robust)
        return self._wrap(nominal, started, robust=robust,
                          nominal_risk=nominal_risk,
                          sensitivity=sensitivity,
                          finalists=len(finalists))

    # -- phase B: envelope screening ---------------------------------------

    def _screen(self, cores: int, incumbent_rank: tuple
                ) -> Dict[Tuple[int, ...], Tuple[float, Solution]]:
        """Candidates no envelope-admissible bound could eliminate.

        Returns ``flat key -> (refined envelope bound, solution)`` in
        insertion order (sorted best-bound-first), including the nominal
        winner itself (its memoized scenario values make re-scoring it
        free)."""
        envelope = envelope_scenario(self.scenarios)
        bounds = BoundCalculator(
            self.component,
            envelope.apply_platform(self.platform),
            envelope.apply_exec_model(self.exec_model),
            self.segment_cap,
            modes=self._nominal_search.evaluator.planner.modes,
        )
        check = self._nominal_search.evaluator.check_deadline
        assignments = generate_nondominated_thread_groups(
            cores, self.component)
        nodes = self.component.nodes

        candidates, groups_maps, pruned = enumerate_candidates(
            self.component, assignments, bounds, check,
            vectorize=self.vectorize)
        self._pruned += pruned
        if self.shard_of is not None:
            # Same round-robin slice as the nominal search: sorted, so
            # the tail prune below stays valid within the shard.
            index, count = self.shard_of
            candidates = candidates[index::count]

        finalists: Dict[Tuple[int, ...], Tuple[float, Solution]] = {}
        for pos, (bound, flat, sizes, ai) in enumerate(candidates):
            if pos % _DEADLINE_STRIDE == 0:
                check()
            if (bound, flat) >= incumbent_rank:
                # Sorted tail: everything from here on is at or past the
                # incumbent's (risk, key) rank too.
                self._pruned += len(candidates) - pos
                break
            refined = bounds.refine(bound, sizes, assignments[ai])
            if math.isinf(refined) or (refined, flat) >= incumbent_rank:
                self._pruned += 1
                continue
            finalists[flat] = (refined, Solution(
                self.component,
                {node.var: k for node, k in zip(nodes, sizes)},
                groups_maps[ai]))
        return finalists

    # -- phase C: scenario-major scoring -----------------------------------

    def _score(self, finalists: Dict[Tuple[int, ...],
                                     Tuple[float, Solution]],
               incumbent_rank: tuple
               ) -> Tuple[Optional[Tuple[int, ...]],
                          Tuple[float, ...]]:
        """Score the finalists scenario by scenario; return the winner.

        After each scenario, a candidate whose *risk floor* — the risk
        of its completed values padded with its envelope bound for the
        missing ones (each true value is ≥ the bound, and the objective
        is coordinatewise monotone) — ranks at or past the incumbent is
        dropped before the next scenario is paid for."""
        count = len(self.scenarios)
        alive: List[Tuple[Tuple[int, ...], float, Solution]] = [
            (flat, bound, solution)
            for flat, (bound, solution) in finalists.items()]
        vectors: Dict[Tuple[int, ...], List[float]] = {
            flat: [] for flat, _, _ in alive}

        for index, evaluator in enumerate(self._scenario_evaluators):
            if not alive:
                break
            if self.vectorize and effective_jobs(self.jobs) <= 1:
                # Scenario-major batch: the whole surviving cohort is
                # scored as one tensor program per scenario, through
                # the scenario's own evaluator (bit-identical results
                # and counter movements to the per-candidate engine).
                batch = BatchEvaluator(evaluator)
                results = batch.evaluate_batch(
                    [solution for _, _, solution in alive])
                self._batched += batch.scored
                self._batch_fallbacks += batch.fallbacks
            else:
                with EvaluationEngine(evaluator, jobs=self.jobs,
                                      stage="robust") as engine:
                    results = engine.evaluate_many([
                        (solution.tile_sizes, solution.thread_groups)
                        for _, _, solution in alive])
                    self._engine_metrics.append(engine.metrics())
            self._probes += len(alive)
            survivors = []
            remaining = count - index - 1
            for (flat, bound, solution), result in zip(alive, results):
                values = vectors[flat]
                values.append(result.makespan_ns)
                floor = self._risk(values + [bound] * remaining)
                if (floor, flat) >= incumbent_rank:
                    self._pruned += 1
                    continue
                survivors.append((flat, bound, solution))
            alive = survivors

        best_key: Optional[Tuple[int, ...]] = None
        best_rank = incumbent_rank
        for flat, _, _ in alive:
            values = vectors[flat]
            rank = (self._risk(values), flat)
            if rank < best_rank:
                best_key, best_rank = flat, rank
        if best_key is None:
            return None, ()
        return best_key, tuple(vectors[best_key])

    # -- sensitivity ranking -----------------------------------------------

    def _sensitivity(self, winner: CandidateRisk
                     ) -> Tuple[SensitivityEntry, ...]:
        """One-at-a-time adverse perturbations of the winner, ranked by
        impact — which parameter's drift moves the makespan most."""
        entries = []
        for parameter in PARAMETERS:
            evaluator = self._evaluator_for(
                adverse_scenario(parameter, self.spread))
            makespan = evaluator.evaluate(winner.solution).makespan_ns
            self._probes += 1
            entries.append(SensitivityEntry(
                parameter=parameter,
                makespan_ns=makespan,
                delta_ns=makespan - winner.nominal_ns,
            ))
        entries.sort(key=lambda e: (-e.delta_ns, e.parameter))
        return tuple(entries)

    # -- assembly ----------------------------------------------------------

    def _merged_metrics(self) -> Optional[EngineMetrics]:
        """Counter-summing aggregate over every engine this search ran.

        Phase A's engine metrics, each phase-C scenario engine's
        dispatch/timing/batch counters, the serial-path batch counts,
        and the screening prunes are *summed* (never last-writer-wins),
        so ``reporting.engine_note`` of a robust run reports all the
        work done.  Scenario-evaluator probe counters are taken from
        the evaluators themselves — each engine snapshot would
        otherwise re-count its evaluator's cumulative totals."""
        metrics = self._nominal_search.metrics
        if metrics is None:
            return None
        extra = EngineMetrics(
            jobs=metrics.jobs,
            evaluations=sum(
                e.evaluations for e in self._scenario_evaluators),
            memo_hits=sum(
                e.memo_hits for e in self._scenario_evaluators),
            cache_hits=sum(
                e.cache_hits for e in self._scenario_evaluators),
            pruned=self._pruned,
            batched=self._batched,
            batch_fallbacks=self._batch_fallbacks,
        )
        for snapshot in self._engine_metrics:
            extra.jobs = max(extra.jobs, snapshot.jobs)
            extra.dispatched += snapshot.dispatched
            extra.chunks += snapshot.chunks
            extra.elapsed_s += snapshot.elapsed_s
            extra.busy_s += snapshot.busy_s
            extra.batched += snapshot.batched
            extra.batch_fallbacks += snapshot.batch_fallbacks
        return metrics.merge(extra)

    def _wrap(self, nominal: ComponentOptResult, started: float,
              robust: Optional[CandidateRisk],
              nominal_risk: Optional[CandidateRisk],
              sensitivity: Tuple[SensitivityEntry, ...],
              finalists: int = 0) -> RobustComponentResult:
        best = nominal.best
        if robust is not None and nominal_risk is not None and \
                robust.solution.key() != nominal_risk.solution.key():
            # The robust winner differs: the result's ``best`` becomes
            # its nominal-parameter outcome so downstream consumers
            # (codegen, VM, tree composition) see consistent units.
            evaluator = self._nominal_search.evaluator
            best = evaluator.evaluate(robust.solution)
            if not best.from_cache and best.plan is None:
                best = evaluator.attach_plan(best)
        evaluations = nominal.evaluations + sum(
            e.evaluations for e in self._scenario_evaluators)
        cache_hits = nominal.cache_hits + sum(
            e.cache_hits for e in self._scenario_evaluators)
        self.metrics = self._merged_metrics()
        return RobustComponentResult(
            component=self.component,
            best=best,
            evaluations=evaluations,
            elapsed_s=time.perf_counter() - started,
            assignments_tried=nominal.assignments_tried,
            cache_hits=cache_hits,
            pruned=nominal.pruned + self._pruned,
            bound_hits=nominal.bound_hits,
            batched=nominal.batched + self._batched,
            batch_fallbacks=nominal.batch_fallbacks + self._batch_fallbacks,
            exec_model=self.exec_model,
            risk=self.risk,
            alpha=self.alpha,
            spread=self.spread,
            seed=self.seed,
            scenario_count=len(self.scenarios),
            finalists=finalists,
            scenario_probes=self._probes,
            robust=robust,
            nominal=nominal_risk,
            sensitivity=sensitivity,
        )
