"""Multi-objective Pareto-frontier search over the Algorithm-1 space.

Real PREM deployments do not minimize makespan alone: a schedule that is
2% slower but halves the SPM footprint, the DMA-bandwidth demand, or the
core count is often the one that ships.  This module emits, per tilable
component, the *exact* non-dominated front over four simultaneously
minimized objectives — every quantity the evaluator already computes per
candidate:

1. ``makespan_ns``       — the pipeline simulation's component makespan;
2. ``spm_bytes``         — the planner's double-buffered SPM requirement;
3. ``dma_bytes``         — total bytes moved over the shared DMA engine;
4. ``cores``             — ``prod(l_j.R)``, the cores the schedule occupies.

The search walks the same candidate space as :class:`~repro.opt.pruned.
PrunedOptimizer` (non-dominated thread groups × ``select_tile_sizes``),
but a scalar incumbent cannot prune for a front, so the bound tier is a
*vector*: each candidate gets an admissible **bound vector** — the
refined makespan lower bound, the exact SPM requirement, and the
shared-DMA byte floor (all from :class:`~repro.opt.bounds.
BoundCalculator`), plus the exact core count.

Dominance-pruning soundness (the full argument is DESIGN.md §12): a
candidate is skipped only when some *achieved* feasible vector ``a``
weakly dominates its *bound* vector ``b`` (``a <= b`` componentwise with
at least one strict coordinate).  The candidate's true vector ``t``
satisfies ``b <= t`` componentwise because every bound is admissible, so
``a`` strictly dominates ``t`` — the candidate can never join the front.
Conversely a candidate whose true vector lies on the front can never be
pruned: its pruner ``a`` would dominate the front vector too.  The front
is therefore a pure function of the candidate space — bit-identical
regardless of *which* dominated candidates happen to be pruned, i.e.
across ``jobs``, ``vectorize``, and cold/warm persistent-cache runs.

Surviving candidates are scored in doubling windows through the
:class:`~repro.opt.engine.EvaluationEngine` (worker pool, batch-exact
vector scoring, or plain serial — all bit-identical), and memo/cache
hits occupy window slots exactly like the pruned search so a warm run
walks the identical archive trajectory as the cold one.

The second method, **weighted scalarization**, minimizes a positive
weighted sum of the front-range-normalised objectives over every scored
candidate; with strictly positive weights a dominated candidate scores
strictly worse than its dominator, so every scalarized winner provably
lies on the sweep front — :func:`scalarize` verifies that membership.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import OptimizerError
from ..loopir.component import TilableComponent
from ..schedule.makespan import (
    DEFAULT_SEGMENT_CAP,
    MakespanEvaluator,
    MakespanResult,
)
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .bounds import BoundCalculator
from .cache import PersistentCache
from .component import ComponentOptResult
from .engine import EngineMetrics, EvaluationEngine
from .exhaustive import SearchSpaceTooLarge, space_size_of
from .pruned import (
    _BATCH_WINDOW,
    _FIRST_WINDOW,
    DEFAULT_PRUNED_MAX_POINTS,
    enumerate_candidates,
    validate_shard,
)
from .solution import Solution
from .threadgroups import generate_nondominated_thread_groups

#: Objective order of every vector in this module.
OBJECTIVES: Tuple[str, ...] = (
    "makespan_ns", "spm_bytes", "dma_bytes", "cores")

#: Default scalarization weight vectors: one leaning on each objective
#: plus the balanced compromise.  Every weight is strictly positive —
#: a zero weight would let an off-front candidate tie a front member
#: and void the winner-on-front guarantee.
DEFAULT_WEIGHTS: Tuple[Tuple[float, float, float, float], ...] = (
    (0.85, 0.05, 0.05, 0.05),
    (0.05, 0.85, 0.05, 0.05),
    (0.05, 0.05, 0.85, 0.05),
    (0.05, 0.05, 0.05, 0.85),
    (0.25, 0.25, 0.25, 0.25),
)

#: (makespan ns, SPM bytes, DMA bytes, cores) — all minimized.
ObjectiveVector = Tuple[float, int, int, int]


def dominates_vector(a: Sequence[float], b: Sequence[float]) -> bool:
    """Weak Pareto dominance: ``a <= b`` componentwise, somewhere strict."""
    return tuple(a) != tuple(b) and all(x <= y for x, y in zip(a, b))


@dataclass(frozen=True, eq=False)
class ParetoPoint:
    """One achieved (evaluated, feasible) candidate of the sweep."""

    result: MakespanResult
    flat: Tuple[int, ...]         # flattened solution key (tie-break)
    makespan_ns: float
    spm_bytes: int
    dma_bytes: int
    cores: int

    @property
    def objectives(self) -> ObjectiveVector:
        return (self.makespan_ns, self.spm_bytes,
                self.dma_bytes, self.cores)

    @property
    def solution(self) -> Solution:
        return self.result.solution

    def describe(self) -> str:
        return self.solution.describe()


@dataclass(frozen=True, eq=False)
class ScalarizedPoint:
    """One weighted-scalarization winner, verified on the sweep front."""

    weights: Tuple[float, float, float, float]
    point: ParetoPoint
    score: float                  # normalised weighted sum at the winner


@dataclass(frozen=True, eq=False)
class ComposedPoint:
    """One point of a kernel-level front composed across components.

    Components execute one after another on the same platform, so
    makespans and DMA bytes add (scaled by each component's execution
    count) while the SPM requirement and the core count are maxima.
    ``picks`` records the chosen flattened solution key per component,
    in composition order."""

    makespan_ns: float
    spm_bytes: int
    dma_bytes: int
    cores: int
    picks: Tuple[Tuple[int, ...], ...]

    @property
    def objectives(self) -> ObjectiveVector:
        return (self.makespan_ns, self.spm_bytes,
                self.dma_bytes, self.cores)

    def describe(self) -> str:
        return " | ".join(
            "(" + ",".join(str(x) for x in pick) + ")"
            for pick in self.picks)


def pareto_front(points: Iterable[ParetoPoint]) -> Tuple[ParetoPoint, ...]:
    """The exact non-dominated subset of *points*, deterministically.

    Duplicate objective vectors keep the representative with the
    smallest flattened key; the result is sorted by ``(objectives,
    flat)``.  Sorting makes the filter one-directional: a dominator is
    componentwise ``<=`` its victim and differs somewhere, so it sorts
    strictly before it — checking each point against the already
    accepted prefix suffices."""
    by_vector: Dict[ObjectiveVector, ParetoPoint] = {}
    for point in points:
        kept = by_vector.get(point.objectives)
        if kept is None or point.flat < kept.flat:
            by_vector[point.objectives] = point
    front: List[ParetoPoint] = []
    for point in sorted(by_vector.values(),
                        key=lambda p: (p.objectives, p.flat)):
        if not any(dominates_vector(kept.objectives, point.objectives)
                   for kept in front):
            front.append(point)
    return tuple(front)


def scalarize(front: Sequence[ParetoPoint],
              candidates: Sequence[ParetoPoint],
              weights: Sequence[float]) -> ScalarizedPoint:
    """Weighted-sum winner over *candidates*, verified to lie on *front*.

    Objectives are normalised by the front's per-objective range (every
    per-objective minimum appears on the front, so the ranges — and the
    winner — are as deterministic as the front itself); a degenerate
    range falls back to an absolute offset, which preserves strictness.
    All weights must be strictly positive: that is what makes a
    dominated candidate score strictly worse than its dominator and
    pins the winner onto the sweep front."""
    weights = tuple(float(w) for w in weights)
    if len(weights) != len(OBJECTIVES):
        raise ValueError(
            f"need {len(OBJECTIVES)} weights {OBJECTIVES}, "
            f"got {len(weights)}")
    if any(w <= 0.0 for w in weights):
        raise ValueError(
            "scalarization weights must be strictly positive "
            "(a zero weight voids the winner-on-front guarantee)")
    if not front or not candidates:
        raise ValueError("cannot scalarize an empty front")
    los = [min(p.objectives[i] for p in front)
           for i in range(len(OBJECTIVES))]
    his = [max(p.objectives[i] for p in front)
           for i in range(len(OBJECTIVES))]
    spans = [hi - lo if hi > lo else 1.0 for lo, hi in zip(los, his)]

    def score(point: ParetoPoint) -> float:
        return math.fsum(
            w * (obj - lo) / span for w, obj, lo, span
            in zip(weights, point.objectives, los, spans))

    winner = min(candidates, key=lambda p: (score(p), p.flat))
    if not any(member.flat == winner.flat for member in front):
        raise OptimizerError(
            f"scalarization winner {winner.flat} with objectives "
            f"{winner.objectives} is not on the sweep front — "
            f"non-positive weights or an inadmissible bound")
    return ScalarizedPoint(weights, winner, score(winner))


def compose_fronts(parts: Sequence[Tuple[Sequence[ParetoPoint], int]]
                   ) -> Tuple[ComposedPoint, ...]:
    """Kernel-level front from per-component ``(front, executions)``.

    The composition operators are monotone in every objective (sums and
    maxima), so filtering each intermediate product to its non-dominated
    subset loses no final front member; tied intermediate vectors keep
    the lexicographically smallest ``picks``, which makes the composed
    front deterministic.  A component with an empty front (no feasible
    candidate) makes the whole kernel infeasible: the result is empty."""
    acc: List[ComposedPoint] = [ComposedPoint(0.0, 0, 0, 0, ())]
    for front, executions in parts:
        if not front:
            return ()
        merged: Dict[ObjectiveVector, Tuple[Tuple[int, ...], ...]] = {}
        for prefix in acc:
            for point in front:
                vector = (
                    prefix.makespan_ns + point.makespan_ns * executions,
                    max(prefix.spm_bytes, point.spm_bytes),
                    prefix.dma_bytes + point.dma_bytes * executions,
                    max(prefix.cores, point.cores),
                )
                picks = prefix.picks + (point.flat,)
                kept = merged.get(vector)
                if kept is None or picks < kept:
                    merged[vector] = picks
        survivors: List[Tuple[ObjectiveVector,
                              Tuple[Tuple[int, ...], ...]]] = []
        for vector, picks in sorted(merged.items()):
            if not any(dominates_vector(kept, vector)
                       for kept, _ in survivors):
                survivors.append((vector, picks))
        acc = [ComposedPoint(*vector, picks=picks)
               for vector, picks in survivors]
    return tuple(acc)


def kernel_front(choices) -> Tuple[ComposedPoint, ...]:
    """Composed front of a tree-optimizer result's chosen components.

    Every choice must carry a :class:`ParetoComponentResult` (the
    compiler's ``pareto`` strategy guarantees this)."""
    parts = []
    for choice in choices:
        front = getattr(choice.result, "front", None)
        if front is None:
            raise ValueError(
                f"component {choice.component.label()} was not optimized "
                f"by the pareto strategy; kernel_front needs per-"
                f"component fronts")
        parts.append((front, choice.component.executions))
    return compose_fronts(parts)


@dataclass
class ParetoComponentResult(ComponentOptResult):
    """Sweep outcome of one component.

    ``best`` is the front's makespan-optimal member (its makespan equals
    the nominal single-objective optimum, so
    :class:`~repro.opt.tree.TreeOptimizer` chain assembly composes the
    same decisions as the pruned strategy); the full trade-off surface
    lives in :attr:`front` and the default scalarized winners in
    :attr:`scalarized`."""

    front: Tuple[ParetoPoint, ...] = ()
    scalarized: Tuple[ScalarizedPoint, ...] = ()
    candidates: int = 0           # candidate points in the space
    scored: int = 0               # candidates screened into scoring windows
    dominance_pruned: int = 0     # skipped via bound-vector dominance

    @property
    def front_size(self) -> int:
        return len(self.front)

    @property
    def pruned_fraction(self) -> float:
        """Fraction of the candidate space no evaluation was paid for."""
        return self.pruned / self.candidates if self.candidates else 0.0


class ParetoOptimizer:
    """Exact multi-objective twin of :class:`~repro.opt.pruned.
    PrunedOptimizer`.

    Same candidate space, same enumeration order; instead of a scalar
    incumbent the search keeps an archive of achieved non-dominated
    objective vectors and prunes candidates whose admissible *bound
    vector* is weakly dominated by an achieved one (see the module
    docstring for why the front cannot lose a member to this).  With
    ``prune=False`` every finite-bound candidate is scored — the
    reference arm of the front-parity tests."""

    def __init__(self, component: TilableComponent, platform: Platform,
                 exec_model: ExecModel,
                 segment_cap: int = DEFAULT_SEGMENT_CAP,
                 max_points: int = DEFAULT_PRUNED_MAX_POINTS,
                 deadline: float | None = None, budget_s: float = 0.0,
                 jobs: int = 1, cache: Optional[PersistentCache] = None,
                 vectorize: bool = True, prune: bool = True,
                 weights: Sequence[Sequence[float]] = DEFAULT_WEIGHTS,
                 shard_of: Optional[Tuple[int, int]] = None):
        self.component = component
        self.platform = platform
        self.exec_model = exec_model
        self.max_points = max_points
        self.jobs = jobs
        self.vectorize = vectorize
        self.prune = prune
        #: Restrict the sweep to shard *i* of *n* of the sorted list.
        #: Fronts compose by union + re-dominance (``pareto_front`` over
        #: the concatenated shard fronts equals the unsharded front),
        #: so no incumbent exchange is needed or possible here.
        self.shard_of = validate_shard(shard_of)
        self.weights = tuple(tuple(float(w) for w in ws) for ws in weights)
        self.evaluator = MakespanEvaluator(
            component, platform, exec_model, segment_cap, cache=cache)
        if deadline is not None:
            self.evaluator.set_deadline(deadline, "pareto", budget_s)
        self.bounds = BoundCalculator(
            component, platform, exec_model, segment_cap,
            modes=self.evaluator.planner.modes,
            geometry=self.evaluator.geometry)
        self.metrics: Optional[EngineMetrics] = None
        self._vars = [node.var for node in component.nodes]
        self._assignments: List[Tuple[int, ...]] = []
        self._pruned = 0
        self._bound_hits = 0
        self._dominance_pruned = 0

    # -- search ------------------------------------------------------------

    def optimize(self, cores: Optional[int] = None) -> ParetoComponentResult:
        cores = cores if cores is not None else self.platform.cores
        started = time.perf_counter()
        self._pruned = 0
        self._bound_hits = 0
        self._dominance_pruned = 0
        self._assignments = generate_nondominated_thread_groups(
            cores, self.component)
        size = space_size_of(self.component, self._assignments)
        if size > self.max_points:
            raise SearchSpaceTooLarge(
                f"{size} candidate points exceed the pareto-search budget "
                f"of {self.max_points}; use the heuristic (Algorithm 1)")
        candidates, groups_maps, enum_pruned = enumerate_candidates(
            self.component, self._assignments, self.bounds,
            self.evaluator.check_deadline, vectorize=self.vectorize)
        self._pruned += enum_pruned
        if self.shard_of is not None:
            shard_index, shard_count = self.shard_of
            candidates = candidates[shard_index::shard_count]

        achieved: List[ParetoPoint] = []
        with EvaluationEngine(self.evaluator, jobs=self.jobs,
                              stage="pareto",
                              vectorize=self.vectorize) as engine:
            engine.note_pruned(enum_pruned)   # enumeration-time drops
            scored = self._sweep(engine, candidates, groups_maps, achieved)
            front = pareto_front(achieved)
            best: Optional[MakespanResult] = None
            if front:
                top = min(front, key=lambda p: (p.makespan_ns, p.flat))
                best = engine.finalize(top.result)
            self.metrics = engine.metrics()
        scalarized = tuple(
            scalarize(front, achieved, weights)
            for weights in self.weights) if front else ()
        return ParetoComponentResult(
            component=self.component,
            best=best,
            evaluations=self.evaluator.evaluations,
            elapsed_s=time.perf_counter() - started,
            assignments_tried=len(self._assignments),
            cache_hits=self.evaluator.cache_hits,
            pruned=self._pruned,
            bound_hits=self._bound_hits,
            batched=self.metrics.batched,
            batch_fallbacks=self.metrics.batch_fallbacks,
            exec_model=self.exec_model,
            front=front,
            scalarized=scalarized,
            candidates=size,
            scored=scored,
            dominance_pruned=self._dominance_pruned,
        )

    def _sweep(self, engine: EvaluationEngine, candidates,
               groups_maps: List[Dict[str, int]],
               achieved: List[ParetoPoint]) -> int:
        """Windowed archive walk; returns the number of scored candidates.

        The archive advances only at window boundaries and memo/cache
        hits occupy window slots, so the screen-decision sequence — and
        with it the scored/pruned split, not just the front — is a pure
        function of the candidate list: identical across ``jobs``,
        ``vectorize``, and cold/warm cache runs."""
        evaluator = self.evaluator
        archive: List[ObjectiveVector] = []
        scored = 0
        pos, total = 0, len(candidates)
        limit = _FIRST_WINDOW
        while pos < total:
            evaluator.check_deadline()
            #: (flat key, cached result or None, fresh solution or None)
            window: List[tuple] = []
            while pos < total and len(window) < limit:
                bound, flat, sizes, ai = candidates[pos]
                pos += 1
                solution = self._solution(sizes, groups_maps[ai])
                hit = evaluator.peek(solution)
                if hit is not None:
                    window.append((flat, hit, None))
                    continue
                vector = self._bound_vector(bound, sizes, ai, solution)
                if vector is None:    # refined bound proves infeasibility
                    self._prune_one(engine, solution.key(), math.inf)
                    continue
                if self.prune and any(
                        dominates_vector(kept, vector)
                        for kept in archive):
                    self._dominance_pruned += 1
                    self._prune_one(engine, solution.key(), vector[0])
                    continue
                window.append((flat, None, solution))
            limit = min(limit * 2, _BATCH_WINDOW)
            if not window:
                continue
            fresh = [(entry[2].tile_sizes, entry[2].thread_groups)
                     for entry in window if entry[1] is None]
            scored += len(window)     # hits included: cold ≡ warm
            results = iter(engine.evaluate_many(fresh) if fresh else ())
            for flat, hit, _solution in window:
                result = hit if hit is not None else next(results)
                if not result.feasible:
                    continue
                point = ParetoPoint(
                    result=result, flat=flat,
                    makespan_ns=result.makespan_ns,
                    spm_bytes=result.spm_bytes_needed,
                    dma_bytes=result.transferred_bytes,
                    cores=result.solution.threads)
                achieved.append(point)
                self._archive_add(archive, point.objectives)
        return scored

    # -- helpers -----------------------------------------------------------

    def _solution(self, sizes: Tuple[int, ...],
                  groups: Dict[str, int]) -> Solution:
        return Solution(
            self.component, dict(zip(self._vars, sizes)), groups)

    def _bound_vector(self, quick: float, sizes: Tuple[int, ...], ai: int,
                      solution: Solution) -> Optional[ObjectiveVector]:
        """Admissible componentwise floor on the candidate's objectives.

        Makespan is the refined (DMA-path + exact-SPM) bound; SPM is the
        planner's exact requirement (falling back to the closed-form
        floor when geometry cannot resolve); DMA bytes is the swap-event
        byte floor; the core count is exact by construction.  ``None``
        means the refined bound proved the candidate infeasible."""
        assignment = self._assignments[ai]
        refined = self.bounds.refine(quick, sizes, assignment)
        if math.isinf(refined):
            return None
        sizes_map = solution.tile_sizes
        spm = self.bounds.spm_bytes_exact(sizes_map)
        if spm is None:
            spm = self.bounds.spm_bytes_floor(sizes)
        dma = self.bounds.dma_bytes_floor(sizes, assignment, sizes_map)
        return (refined, spm, dma, solution.threads)

    def _prune_one(self, engine: EvaluationEngine, key: tuple,
                   bound: float) -> None:
        self._pruned += 1
        engine.note_pruned()
        if self.evaluator.persist_bound(key, bound):
            self._bound_hits += 1
            engine.note_bound_hit()

    @staticmethod
    def _archive_add(archive: List[ObjectiveVector],
                     vector: ObjectiveVector) -> None:
        """Keep the archive the non-dominated subset of achieved vectors."""
        for kept in archive:
            if kept == vector or dominates_vector(kept, vector):
                return
        archive[:] = [kept for kept in archive
                      if not dominates_vector(vector, kept)]
        archive.append(vector)
