"""Greedy PREM compilation baseline (Section 6.2, approach of [29]).

The greedy rule: find the *outermost* loop level of the component that can
be tiled such that the resulting segments fit in the SPM, and tile only at
that level with the largest allowed tile size.  Levels above the tiled one
iterate one iteration per segment (K = 1) and, where the parallelization
attribute allows it, their iterations are spread across the cores,
assigning parallelism outermost-first.  Levels below the tiled one stay
untiled (K = N).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

from ..loopir.component import TilableComponent
from ..schedule.makespan import (
    DEFAULT_SEGMENT_CAP,
    MakespanEvaluator,
    MakespanResult,
)
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .bounds import BoundCalculator
from .cache import PersistentCache
from .component import ComponentOptResult
from .tilesizes import select_tile_sizes


class GreedyOptimizer:
    """Greedy single-level tiling with maximal fitting tile size."""

    def __init__(self, component: TilableComponent, platform: Platform,
                 exec_model: ExecModel,
                 segment_cap: int = DEFAULT_SEGMENT_CAP,
                 deadline: float | None = None, budget_s: float = 0.0,
                 cache: Optional[PersistentCache] = None):
        self.component = component
        self.platform = platform
        self.exec_model = exec_model
        self.evaluator = MakespanEvaluator(
            component, platform, exec_model, segment_cap, cache=cache)
        if deadline is not None:
            self.evaluator.set_deadline(deadline, "greedy", budget_s)
        self.bounds = BoundCalculator(
            component, platform, exec_model, segment_cap,
            modes=self.evaluator.planner.modes,
            geometry=self.evaluator.geometry)
        self._pruned = 0

    def optimize(self, cores: Optional[int] = None) -> ComponentOptResult:
        cores = cores if cores is not None else self.platform.cores
        started = time.perf_counter()
        self._pruned = 0
        best: Optional[MakespanResult] = None
        nodes = self.component.nodes

        for tiled_level in range(len(nodes)):
            groups = self._assign_parallelism(tiled_level, cores)
            max_k = self._largest_fitting_k(tiled_level, groups)
            if max_k is None:
                continue
            sizes = self._tile_sizes(tiled_level, max_k)
            result = self.evaluator.evaluate_params(sizes, groups)
            if result.feasible:
                best = result
                break

        return ComponentOptResult(
            component=self.component,
            best=best,
            evaluations=self.evaluator.evaluations,
            elapsed_s=time.perf_counter() - started,
            assignments_tried=1,
            cache_hits=self.evaluator.cache_hits,
            pruned=self._pruned,
            exec_model=self.exec_model,
        )

    # -- helpers ---------------------------------------------------------

    def _tile_sizes(self, tiled_level: int, k: int) -> Dict[str, int]:
        sizes = {}
        for index, node in enumerate(self.component.nodes):
            if index < tiled_level:
                sizes[node.var] = 1
            elif index == tiled_level:
                sizes[node.var] = k
            else:
                sizes[node.var] = node.N
        return sizes

    def _assign_parallelism(self, tiled_level: int,
                            cores: int) -> Dict[str, int]:
        """Outermost-first parallelization of levels at/above the tiled one."""
        groups: Dict[str, int] = {}
        remaining = cores
        for index, node in enumerate(self.component.nodes):
            if index > tiled_level or not node.parallel or remaining <= 1:
                groups[node.var] = 1
                continue
            r = min(remaining, node.N)
            groups[node.var] = r
            remaining //= r
        return groups

    def _largest_fitting_k(self, tiled_level: int,
                           groups: Dict[str, int]) -> Optional[int]:
        """Largest K whose plan fits the SPM.

        Feasibility is *not* monotone in K: SPM pressure grows with K
        (infeasible above some k_max) but the per-core segment count
        shrinks with K, so the segment cap can make *tiny* K infeasible
        too — the feasible region is an interval ``[k_min, k_max]``.
        When ``fits(1)`` holds the lower boundary is trivial and a
        binary search finds ``k_max``; when it fails the monotone
        precondition is gone, so probe the candidate-size list from the
        largest size downwards instead of giving up on the level."""
        node = self.component.nodes[tiled_level]

        def fits(k: int) -> bool:
            sizes = self._tile_sizes(tiled_level, k)
            # Exact-implication precheck: every reason the bound tier can
            # give is a condition the evaluator is guaranteed to reject
            # too, so skipping the plan cannot change any greedy decision.
            if self.bounds.exact_infeasible(sizes, groups) is not None:
                self._pruned += 1
                return False
            return self.evaluator.evaluate_params(sizes, groups).feasible

        lo = 1
        if not fits(lo):
            groups_here = groups.get(node.var, 1)
            candidates = set(select_tile_sizes(node.N, groups_here))
            candidates.add(node.N)
            for k in sorted(candidates, reverse=True):
                if k > 1 and fits(k):
                    return k
            return None
        hi = node.N
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if fits(mid):
                lo = mid
            else:
                hi = mid - 1
        return lo
