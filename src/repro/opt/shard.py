"""Sharded distributed candidate evaluation over the persistent cache.

The vectorized engine made single-host scoring fast; this module makes
the *host count* the scaling axis.  Several worker processes — possibly
on different machines — share nothing but a directory: the persistent
JSONL makespan cache (``makespan-cache.jsonl``) plus one sibling
coordination log (``shard-coord.jsonl``).  There is no server and no
wire protocol; every coordination primitive is an fcntl-locked append to
the log, exactly the discipline :class:`~repro.opt.cache.PersistentCache`
already uses for result entries.

Protocol (DESIGN.md §13)
------------------------

partition
    :class:`ShardCoordinator` enumerates the component's candidate space
    through :func:`~repro.opt.pruned.enumerate_candidates` — the same
    quick-bound screen and the same global best-bound-first sort as the
    single-host pruned search — and cuts the sorted list into contiguous
    chunks.  The partition is a pure function of the candidate space:
    every coordinator on every host derives the identical chunk list,
    and both the space and each chunk carry a content-addressed SHA-256
    id, so two hosts whose inputs differ in *any* way can never mistake
    each other's records for their own.

claim
    A worker claims a chunk by appending ``{"t": "claim", ...}`` inside
    one exclusive-lock critical section that re-reads the log first —
    read-decide-append is atomic, so exactly one claimer wins a chunk
    and the loser simply scans on to the next unclaimed one.  A claim
    older than ``stale_s`` with no matching ``done`` record is presumed
    crashed and is reclaimable (crash recovery by age).

publish
    Workers score their chunks through the existing evaluation stack
    (:class:`~repro.opt.engine.EvaluationEngine` /
    :class:`~repro.opt.vectorized.BatchEvaluator`) against the shared
    :class:`PersistentCache`, publishing full result entries for
    evaluated candidates and bound-only entries for pruned ones —
    byte-for-byte what the single-host pruned search publishes.
    Feasible local winners are additionally published as ``winner``
    records; other workers adopt the best published rank as their seed
    incumbent, which only ever *increases* pruning.

reduce
    :class:`ShardReducer` re-reads the cache and takes the minimum
    ``(makespan, flat key)`` rank over the full feasible entries of the
    candidate list.  Soundness: every published makespan is exact, and a
    candidate is only ever pruned against the rank of some *true
    feasible* incumbent — if the global winner ``w`` were pruned, then
    ``(bound_w, flat_w) >= (m_i, flat_i)`` for a feasible ``i``; but
    ``bound_w <= m_w`` gives ``(bound_w, flat_w) <= (m_w, flat_w) <=
    (m_i, flat_i)``, with equality throughout only when ``i`` *is* ``w``
    — already evaluated and published.  So the winner always has a full
    entry and the reduce is bit-identical to the serial
    :class:`~repro.opt.pruned.PrunedOptimizer` winner, cold or warm.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import OptimizerError
from ..loopir.component import TilableComponent
from ..schedule.makespan import (
    DEFAULT_SEGMENT_CAP,
    MakespanEvaluator,
    MakespanResult,
)
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .bounds import BoundCalculator, flatten_key
from .cache import PersistentCache, solution_digest
from .engine import EngineMetrics, EvaluationEngine
from .exhaustive import SearchSpaceTooLarge, space_size_of
from .pruned import DEFAULT_PRUNED_MAX_POINTS, enumerate_candidates
from .solution import Solution
from .threadgroups import generate_nondominated_thread_groups

try:
    import fcntl
except ImportError:                          # pragma: no cover - non-POSIX
    fcntl = None

#: Coordination log (claims, completions, winners) inside the cache dir.
SHARD_LOG_FILENAME = "shard-coord.jsonl"

#: Sibling lockfile serialising read-decide-append claim transactions.
SHARD_LOCK_FILENAME = "shard-coord.lock"

#: Candidates per claimable chunk.  Small enough that a late-joining
#: worker still finds work, large enough to amortize one claim append.
DEFAULT_CHUNK_SIZE = 64

#: A claim this old with no matching done record is presumed crashed
#: and may be re-claimed by any worker.
DEFAULT_STALE_S = 600.0

#: A feasible ``(makespan, flat key)`` rank.
Rank = Tuple[float, Tuple[int, ...]]


def _rank_of(record: Dict[str, Any]) -> Optional[Rank]:
    makespan = record.get("m")
    flat = record.get("key")
    if makespan is None or not isinstance(flat, list):
        return None
    return float(makespan), tuple(int(x) for x in flat)


def merge_ranks(*ranks: Optional[Rank]) -> Optional[Rank]:
    """The best (minimum) of several optional incumbent ranks."""
    best: Optional[Rank] = None
    for rank in ranks:
        if rank is not None and (best is None or rank < best):
            best = rank
    return best


def static_space_id(context_hash: str, count: int) -> str:
    """Space id of a static ``shard_of=(i, n)`` compile (no chunk log).

    Static workers do not enumerate through a coordinator, so their
    space identity is the evaluator's context fingerprint plus the shard
    count — enough that incumbents are only ever exchanged between
    workers splitting the *same* component the *same* way."""
    return f"static:{context_hash}:{count}"


class ShardLog:
    """Append-only JSONL coordination log with an fcntl transaction lock.

    The log is the only shared mutable state of the shard protocol; all
    reads used for *decisions* (claiming, winner publication) happen
    inside :meth:`transact`, so read-decide-append is one atomic step
    per writer.  Plain :meth:`records` reads (status display, reduce
    completeness checks) take the lock only for the read."""

    def __init__(self, directory: os.PathLike):
        self.directory = Path(directory)
        self.path = self.directory / SHARD_LOG_FILENAME
        self.lock_path = self.directory / SHARD_LOCK_FILENAME

    @contextmanager
    def transact(self):
        """Exclusive read-decide-append critical section."""
        self.directory.mkdir(parents=True, exist_ok=True)
        if fcntl is None:                    # pragma: no cover - non-POSIX
            yield self._read()
            return
        with open(self.lock_path, "a") as lock:
            fcntl.flock(lock, fcntl.LOCK_EX)
            try:
                yield self._read()
            finally:
                fcntl.flock(lock, fcntl.LOCK_UN)

    def _read(self) -> List[Dict[str, Any]]:
        if not self.path.exists():
            return []
        try:
            text = self.path.read_text()
        except OSError:
            return []
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue      # torn line: skip, like the cache does
            if isinstance(record, dict):
                records.append(record)
        return records

    def records(self, space: Optional[str] = None) -> List[Dict[str, Any]]:
        """A consistent snapshot of the log (optionally one space's)."""
        with self.transact() as records:
            pass
        if space is None:
            return records
        return [r for r in records if r.get("s") == space]

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record; callers needing atomic read-decide-append
        must write from inside :meth:`transact` instead."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(
                record, sort_keys=True, separators=(",", ":")) + "\n")

    # -- winner records (shared incumbent snapshots) -----------------------

    def best_winner(self, space: str) -> Optional[Rank]:
        """The best published ``(makespan, flat key)`` rank, or None."""
        best: Optional[Rank] = None
        for record in self.records(space):
            if record.get("t") != "winner":
                continue
            best = merge_ranks(best, _rank_of(record))
        return best

    def publish_winner(self, space: str, worker: str,
                       makespan_ns: float, flat: Sequence[int]) -> bool:
        """Publish a feasible rank if it beats every published one.

        The compare-and-append runs inside one transaction, so two
        workers racing with different ranks converge on the minimum and
        equal-rank duplicates are suppressed."""
        rank: Rank = (float(makespan_ns), tuple(int(x) for x in flat))
        with self.transact() as records:
            for record in records:
                if record.get("t") != "winner" or record.get("s") != space:
                    continue
                seen = _rank_of(record)
                if seen is not None and seen <= rank:
                    return False
            self.append({
                "t": "winner", "s": space, "w": worker,
                "m": rank[0], "key": list(rank[1]), "ts": time.time(),
            })
        return True


@dataclass(frozen=True)
class ShardChunk:
    """One claimable contiguous slice of the sorted candidate list."""

    index: int
    chunk_id: str             # sha256 over (space id, index, flat keys)
    start: int                # position in the sorted candidate list
    count: int


@dataclass
class SpaceStatus:
    """Claim/progress snapshot of one candidate space."""

    space: str
    component: str = ""
    chunks: int = 0
    candidates: int = 0
    done: int = 0
    claimed: int = 0          # live claims (not done, not stale)
    stale: int = 0            # reclaimable claims
    claims: int = 0           # claim records appended in total
    workers: Tuple[str, ...] = ()
    winner: Optional[Rank] = None

    @property
    def complete(self) -> bool:
        return self.chunks > 0 and self.done >= self.chunks

    def describe(self) -> str:
        parts = [f"{self.done}/{self.chunks} chunks done"]
        if self.claimed:
            parts.append(f"{self.claimed} in flight")
        if self.stale:
            parts.append(f"{self.stale} stale")
        if self.winner is not None:
            parts.append(f"best {self.winner[0]:,.0f} ns")
        return ", ".join(parts)


@dataclass
class ShardWorkerResult:
    """One worker's run: chunks drained, counters, best feasible rank."""

    worker: str
    chunks_done: int = 0
    candidates: int = 0       # candidates in the drained chunks
    scored: int = 0           # fresh evaluations + adopted hits
    pruned: int = 0
    bound_hits: int = 0
    contention: int = 0       # chunks skipped because another worker held them
    elapsed_s: float = 0.0
    best: Optional[Rank] = None
    metrics: Optional[EngineMetrics] = None


@dataclass
class ShardReduceResult:
    """The merged outcome over every shard's published entries."""

    best: Optional[MakespanResult]
    rank: Optional[Rank]
    results: int = 0          # full entries found on the candidate list
    bounds: int = 0           # bound-only entries (pruned candidates)
    missing: int = 0          # candidates with no published entry
    elapsed_s: float = 0.0
    status: Optional[SpaceStatus] = None

    @property
    def feasible(self) -> bool:
        return self.best is not None and self.best.feasible


class ShardIncompleteError(OptimizerError):
    """Raised when reducing a space whose chunks are not all done."""


class ShardCoordinator:
    """Deterministic partition of one component's candidate space.

    Every participating process builds its own coordinator from the same
    component/platform/model/cache-directory inputs and derives the
    identical chunk list; the shared state lives entirely in the cache
    directory.  The coordinator is also the query surface: claim a chunk
    for a worker, publish/fetch incumbent snapshots, inspect progress.
    """

    def __init__(self, component: TilableComponent, platform: Platform,
                 exec_model: ExecModel, cache: PersistentCache,
                 segment_cap: int = DEFAULT_SEGMENT_CAP,
                 cores: Optional[int] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 stale_s: float = DEFAULT_STALE_S,
                 max_points: int = DEFAULT_PRUNED_MAX_POINTS,
                 vectorize: bool = True):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.component = component
        self.platform = platform
        self.exec_model = exec_model
        self.cache = cache
        self.cores = cores if cores is not None else platform.cores
        self.chunk_size = chunk_size
        self.stale_s = stale_s
        self.vectorize = vectorize
        self.evaluator = MakespanEvaluator(
            component, platform, exec_model, segment_cap, cache=cache)
        self.bounds = BoundCalculator(
            component, platform, exec_model, segment_cap,
            modes=self.evaluator.planner.modes,
            geometry=self.evaluator.geometry)
        self.log = ShardLog(cache.directory)
        self._vars = [node.var for node in component.nodes]
        self.assignments = generate_nondominated_thread_groups(
            self.cores, component)
        size = space_size_of(component, self.assignments)
        if size > max_points:
            raise SearchSpaceTooLarge(
                f"{size} candidate points exceed the shard-search budget "
                f"of {max_points}; use the heuristic (Algorithm 1)")
        self.candidates, self.groups_maps, self.enum_pruned = \
            enumerate_candidates(
                component, self.assignments, self.bounds,
                self.evaluator.check_deadline, vectorize=vectorize)
        self.space_id = self._space_digest()
        self.chunks = self._partition()

    # -- content addressing ------------------------------------------------

    def _space_digest(self) -> str:
        digest = hashlib.sha256()
        digest.update(str(self.evaluator.context_hash).encode())
        digest.update(json.dumps(
            [self.cores, self.chunk_size, len(self.candidates)]).encode())
        for _bound, flat, _sizes, _ai in self.candidates:
            digest.update(json.dumps(list(flat)).encode())
        return digest.hexdigest()

    def _partition(self) -> List[ShardChunk]:
        chunks = []
        for index, start in enumerate(
                range(0, len(self.candidates), self.chunk_size)):
            count = min(self.chunk_size, len(self.candidates) - start)
            digest = hashlib.sha256()
            digest.update(self.space_id.encode())
            digest.update(str(index).encode())
            for _bound, flat, _sizes, _ai in \
                    self.candidates[start:start + count]:
                digest.update(json.dumps(list(flat)).encode())
            chunks.append(ShardChunk(
                index=index, chunk_id=digest.hexdigest(),
                start=start, count=count))
        return chunks

    def solution_at(self, position: int) -> Solution:
        _bound, _flat, sizes, ai = self.candidates[position]
        return Solution(self.component, dict(zip(self._vars, sizes)),
                        self.groups_maps[ai])

    # -- claim / complete --------------------------------------------------

    def announce(self, worker: str) -> None:
        """Record the space's shape once, for progress inspection."""
        with self.log.transact() as records:
            for record in records:
                if record.get("t") == "space" and \
                        record.get("s") == self.space_id:
                    return
            self.log.append({
                "t": "space", "s": self.space_id, "w": worker,
                "chunks": len(self.chunks),
                "candidates": len(self.candidates),
                "component": self.component.label(),
                "ts": time.time(),
            })

    def claim(self, worker: str) -> Tuple[Optional[ShardChunk], int]:
        """Atomically claim the first available chunk.

        Returns ``(chunk, contention)`` where *contention* counts chunks
        skipped because another worker's live claim held them; ``(None,
        contention)`` means the space is drained (or fully in flight).
        A stale claim — older than ``stale_s`` with no done record — is
        overwritten by a fresh claim record, so a crashed worker's chunk
        is re-scored instead of lost."""
        contention = 0
        with self.log.transact() as records:
            done = set()
            latest_claim: Dict[str, Tuple[float, str]] = {}
            for record in records:
                if record.get("s") != self.space_id:
                    continue
                if record.get("t") == "done":
                    done.add(record.get("c"))
                elif record.get("t") == "claim":
                    latest_claim[record.get("c")] = (
                        float(record.get("ts", 0.0)),
                        str(record.get("w", "")))
            now = time.time()
            for chunk in self.chunks:
                if chunk.chunk_id in done:
                    continue
                claim = latest_claim.get(chunk.chunk_id)
                if claim is not None:
                    age = now - claim[0]
                    if age < self.stale_s:
                        contention += 1
                        continue
                self.log.append({
                    "t": "claim", "s": self.space_id, "c": chunk.chunk_id,
                    "i": chunk.index, "w": worker, "ts": now,
                })
                return chunk, contention
        return None, contention

    def complete(self, chunk: ShardChunk, worker: str, scored: int,
                 pruned: int, elapsed_s: float) -> None:
        self.log.append({
            "t": "done", "s": self.space_id, "c": chunk.chunk_id,
            "i": chunk.index, "w": worker, "scored": scored,
            "pruned": pruned, "elapsed_s": round(elapsed_s, 6),
            "ts": time.time(),
        })

    # -- incumbents --------------------------------------------------------

    def best_published(self) -> Optional[Rank]:
        return self.log.best_winner(self.space_id)

    def publish_winner(self, worker: str, rank: Rank) -> bool:
        return self.log.publish_winner(
            self.space_id, worker, rank[0], rank[1])

    # -- inspection --------------------------------------------------------

    def status(self) -> SpaceStatus:
        return space_statuses(
            self.log, stale_s=self.stale_s).get(
                self.space_id,
                SpaceStatus(space=self.space_id,
                            component=self.component.label(),
                            chunks=len(self.chunks),
                            candidates=len(self.candidates)))


def space_statuses(log: ShardLog,
                   stale_s: float = DEFAULT_STALE_S
                   ) -> Dict[str, SpaceStatus]:
    """Per-space claim/progress summary of one coordination log."""
    statuses: Dict[str, SpaceStatus] = {}
    claims: Dict[str, Dict[str, float]] = {}
    done: Dict[str, set] = {}
    workers: Dict[str, set] = {}

    def entry(space: str) -> SpaceStatus:
        if space not in statuses:
            statuses[space] = SpaceStatus(space=space)
            claims[space] = {}
            done[space] = set()
            workers[space] = set()
        return statuses[space]

    for record in log.records():
        space = record.get("s")
        if not isinstance(space, str):
            continue
        status = entry(space)
        kind = record.get("t")
        worker = record.get("w")
        if isinstance(worker, str) and worker:
            workers[space].add(worker)
        if kind == "space":
            status.chunks = int(record.get("chunks", status.chunks))
            status.candidates = int(
                record.get("candidates", status.candidates))
            status.component = str(
                record.get("component", status.component))
        elif kind == "claim":
            status.claims += 1
            claims[space][record.get("c")] = float(record.get("ts", 0.0))
        elif kind == "done":
            done[space].add(record.get("c"))
        elif kind == "winner":
            status.winner = merge_ranks(status.winner, _rank_of(record))
    now = time.time()
    for space, status in statuses.items():
        status.done = len(done[space])
        live = stale = 0
        for chunk_id, ts in claims[space].items():
            if chunk_id in done[space]:
                continue
            if now - ts < stale_s:
                live += 1
            else:
                stale += 1
        status.claimed = live
        status.stale = stale
        status.workers = tuple(sorted(workers[space]))
    return statuses


class StaticShardExchange:
    """Coordination-log adapter for static ``shard_of`` compile workers.

    A ``compile --shard I/N`` worker partitions by slicing the sorted
    candidate list (no chunk claims), but it still shares the log:
    :meth:`seed` reads the best incumbent any sibling shard of the same
    component (and the same shard count) has published, and
    :meth:`publish` appends the shard's claim/done progress records —
    so ``shard status`` sees static compiles too — plus a winner
    record when this shard found a feasible best."""

    def __init__(self, directory: os.PathLike, context_hash: str,
                 shards: Tuple[int, int]):
        self.log = ShardLog(directory)
        self.index, self.count = int(shards[0]), int(shards[1])
        self.space = static_space_id(context_hash, self.count)
        self.worker = f"shard{self.index + 1}of{self.count}-{os.getpid()}"

    def seed(self) -> Optional[Rank]:
        return self.log.best_winner(self.space)

    def publish(self, component: TilableComponent, result,
                winner: bool = True) -> None:
        chunk_id = f"{self.space}:{self.index}"
        with self.log.transact() as records:
            if not any(r.get("t") == "space" and r.get("s") == self.space
                       for r in records):
                self.log.append({
                    "t": "space", "s": self.space, "w": self.worker,
                    "chunks": self.count, "candidates": 0,
                    "component": component.label(), "ts": time.time(),
                })
            now = time.time()
            self.log.append({
                "t": "claim", "s": self.space, "c": chunk_id,
                "i": self.index, "w": self.worker, "ts": now,
            })
            self.log.append({
                "t": "done", "s": self.space, "c": chunk_id,
                "i": self.index, "w": self.worker,
                "scored": result.evaluations, "pruned": result.pruned,
                "elapsed_s": round(result.elapsed_s, 6), "ts": now,
            })
        if winner and result.best is not None and result.best.feasible:
            self.log.publish_winner(
                self.space, self.worker, result.best.makespan_ns,
                flatten_key(result.best.solution.key()))


class ShardWorker:
    """Claim-score-publish loop over one coordinator's chunks.

    Scores exactly like the single-host pruned search: peek the shared
    cache first, refine the quick bound against the freshest incumbent
    (published snapshots merged with the local best), persist bound-only
    entries for pruned candidates, and batch the survivors through one
    :class:`EvaluationEngine` (vectorized or pooled per *jobs*).  Every
    entry it publishes is exact, so any subset of workers — in any
    interleaving, crashing and resuming included — leaves the cache in a
    state the reducer folds to the serial winner."""

    def __init__(self, coordinator: ShardCoordinator,
                 worker_id: Optional[str] = None, jobs: int = 1):
        self.coordinator = coordinator
        self.worker = worker_id or f"w{os.getpid()}"
        self.jobs = jobs
        self._bound_hits = 0

    def run(self, max_chunks: Optional[int] = None) -> ShardWorkerResult:
        coordinator = self.coordinator
        started = time.perf_counter()
        out = ShardWorkerResult(worker=self.worker)
        coordinator.announce(self.worker)
        best: Optional[Rank] = coordinator.best_published()
        with EvaluationEngine(coordinator.evaluator, jobs=self.jobs,
                              stage="shard",
                              vectorize=coordinator.vectorize) as engine:
            while max_chunks is None or out.chunks_done < max_chunks:
                chunk, contention = coordinator.claim(self.worker)
                out.contention += contention
                if chunk is None:
                    break
                best = merge_ranks(best, coordinator.best_published())
                chunk_started = time.perf_counter()
                scored, pruned, best = self._score_chunk(
                    engine, chunk, best)
                out.scored += scored
                out.pruned += pruned
                out.candidates += chunk.count
                coordinator.complete(
                    chunk, self.worker, scored, pruned,
                    time.perf_counter() - chunk_started)
                if best is not None:
                    coordinator.publish_winner(self.worker, best)
                out.chunks_done += 1
            out.metrics = engine.metrics()
        out.bound_hits = self._bound_hits
        out.best = best
        out.elapsed_s = time.perf_counter() - started
        return out

    def _score_chunk(self, engine: EvaluationEngine, chunk: ShardChunk,
                     best: Optional[Rank]
                     ) -> Tuple[int, int, Optional[Rank]]:
        """Score one chunk; returns (scored, pruned, best rank)."""
        coordinator = self.coordinator
        evaluator = coordinator.evaluator
        bounds = coordinator.bounds
        scored = pruned = 0
        fresh: List[Tuple[Solution, Tuple[int, ...]]] = []
        for position in range(chunk.start, chunk.start + chunk.count):
            bound, flat, sizes, ai = coordinator.candidates[position]
            if best is not None and (bound, flat) >= best:
                # The chunk is a contiguous slice of the globally
                # sorted list: the rest of it is at or past the
                # incumbent's rank too.
                remaining = chunk.start + chunk.count - position
                pruned += remaining
                engine.note_pruned(remaining)
                break
            solution = coordinator.solution_at(position)
            hit = evaluator.peek(solution)
            if hit is not None:
                scored += 1
                if hit.feasible:
                    best = merge_ranks(best, (hit.makespan_ns, flat))
                continue
            refined = bounds.refine(
                bound, sizes, coordinator.assignments[ai])
            if math.isinf(refined) or (
                    best is not None and (refined, flat) >= best):
                pruned += 1
                engine.note_pruned()
                if evaluator.persist_bound(solution.key(), refined):
                    self._bound_hits += 1
                    engine.note_bound_hit()
                continue
            fresh.append((solution, flat))
        if fresh:
            results = engine.evaluate_many([
                (solution.tile_sizes, solution.thread_groups)
                for solution, _flat in fresh])
            for (solution, flat), result in zip(fresh, results):
                scored += 1
                if result.feasible:
                    best = merge_ranks(best, (result.makespan_ns, flat))
        return scored, pruned, best


class ShardReducer:
    """Pure ``(makespan, flat key)`` merge over the published entries.

    Performs zero fresh plans: the winner comes back as a plan-less
    cache hit, exactly like any warm-cache winner (callers needing the
    segment schedule re-plan that single solution)."""

    def __init__(self, coordinator: ShardCoordinator):
        self.coordinator = coordinator

    def reduce(self, require_complete: bool = True) -> ShardReduceResult:
        coordinator = self.coordinator
        started = time.perf_counter()
        status = coordinator.status()
        if require_complete and not status.complete:
            raise ShardIncompleteError(
                f"shard space {coordinator.space_id[:12]} is not fully "
                f"scored ({status.describe()}); run more workers or "
                f"reduce with require_complete=False")
        # Other processes appended entries after this process first read
        # the log; fold the file again so the merge sees all of them.
        coordinator.cache.reload()
        context_hash = coordinator.evaluator.context_hash
        assert context_hash is not None
        results = bounds = missing = 0
        best_rank: Optional[Rank] = None
        best_position: Optional[int] = None
        for position, (_bound, flat, sizes, ai) in enumerate(
                coordinator.candidates):
            key = tuple(
                (var, k, r) for var, k, r in zip(
                    coordinator._vars, sizes,
                    coordinator.assignments[ai]))
            entry = coordinator.cache.peek_entry(
                solution_digest(context_hash, key))
            if entry is None:
                missing += 1
                continue
            if "f" not in entry:
                bounds += 1
                continue
            results += 1
            if not entry.get("f"):
                continue
            rank: Rank = (PersistentCache.makespan_of(entry), flat)
            if best_rank is None or rank < best_rank:
                best_rank, best_position = rank, position
        best: Optional[MakespanResult] = None
        if best_position is not None:
            # A pure cache read — from_cache=True, no plan constructed.
            best = coordinator.evaluator.peek(
                coordinator.solution_at(best_position))
        return ShardReduceResult(
            best=best,
            rank=best_rank,
            results=results,
            bounds=bounds,
            missing=missing,
            elapsed_s=time.perf_counter() - started,
            status=status,
        )
