"""Bound-driven branch-and-bound search over the Algorithm-1 space.

Same candidate space, same winner as :class:`ExhaustiveOptimizer` — the
point is what is *not* paid for.  Every candidate first gets a cheap
closed-form admissible lower bound (``repro.opt.bounds``); the search
then walks candidates best-bound-first with an incumbent:

1. candidates whose quick bound is infinite (provably infeasible) are
   dropped during enumeration;
2. once the sorted walk reaches a candidate whose ``(bound, key)`` rank
   is at or past the incumbent's ``(makespan, key)`` rank, *every*
   remaining candidate is pruned in one step — the sort makes the tail
   monotone;
3. survivors are refined with the DMA-path bound and the exact SPM test
   (tier 2, memoized geometry shared with the planner) and pruned
   individually when the refined rank cannot beat the incumbent;
4. only what is left pays a fresh ``SegmentPlanner.plan``.

Because every bound is admissible (a true lower bound on the candidate's
makespan) and the prune comparisons reuse the exhaustive search's
``(makespan, solution key)`` tie-break rank, the winner is bit-identical
to the unpruned search — including the no-feasible-candidate case.  The
evaluation *count* is exactly what pruning reduces, so it is not part of
the parity contract; with ``jobs > 1`` the count may additionally vary
with worker timing (workers re-check bounds against a live incumbent),
while the winner still cannot change.

Pruned candidates are recorded in the persistent cache as bound-only
entries; re-encountering one on a warm run counts as a *bound hit*.
"""

from __future__ import annotations

import math
import time
from collections import deque
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..loopir.component import TilableComponent
from ..schedule.makespan import (
    DEFAULT_SEGMENT_CAP,
    MakespanEvaluator,
    MakespanResult,
)
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .bounds import BoundCalculator
from .cache import PersistentCache
from .component import ComponentOptResult
from .engine import EngineMetrics, EvaluationEngine
from .exhaustive import (
    SearchSpaceTooLarge,
    assignment_candidates,
    space_size_of,
)
from .solution import Solution
from .threadgroups import generate_nondominated_thread_groups
from .vectorized import BatchEvaluator

#: The pruned path affords a far larger space than the exhaustive
#: guard's 20k: most candidates cost one closed-form bound, not a plan.
DEFAULT_PRUNED_MAX_POINTS = 500_000

#: Candidates per worker task; small keeps the shipped incumbent fresh.
_CHUNK_SIZE = 8

#: Deadline poll stride for the bound-only phases.
_DEADLINE_STRIDE = 512

#: Candidates per batch-exact window of the vectorized serial walk.  The
#: incumbent advances only at window boundaries, so the window bounds how
#: many candidates can be batch-scored that a per-candidate walk would
#: have pruned against a fresher incumbent.
_BATCH_WINDOW = 256

#: Size of the *first* window; windows double up to ``_BATCH_WINDOW``.
#: Candidates are sorted best-bound-first, so a small opening window
#: usually lands a near-optimal incumbent immediately and lets the bound
#: tier prune even spaces smaller than one full window.
_FIRST_WINDOW = 16

#: Candidate record: (quick bound, flat key, tile sizes, assignment idx).
_Candidate = Tuple[float, Tuple[int, ...], Tuple[int, ...], int]


def validate_shard(shard_of: Optional[Tuple[int, int]]
                   ) -> Optional[Tuple[int, int]]:
    """Normalize/validate a ``(index, count)`` shard restriction."""
    if shard_of is None:
        return None
    try:
        index, count = int(shard_of[0]), int(shard_of[1])
    except (IndexError, TypeError, ValueError):
        raise ValueError(
            f"shard_of must be (index, count); got {shard_of!r}")
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard_of must be (index, count) with 0 <= index < count; "
            f"got {shard_of!r}")
    return index, count


def enumerate_candidates(component: TilableComponent,
                         assignments: Sequence[Tuple[int, ...]],
                         bounds: BoundCalculator,
                         check: Callable[[], None],
                         vectorize: bool = True
                         ) -> Tuple[List[_Candidate],
                                    List[Dict[str, int]], int]:
    """Quick-bound every candidate point; sort survivors best-bound-first.

    Returns ``(candidates, groups_maps, pruned)`` where *pruned* counts
    the provably infeasible points (quick bound of +inf) that never
    entered the list.  The vectorized path screens each assignment's
    whole tile-size grid through :meth:`BoundCalculator.
    quick_bound_array` — bitwise the same bounds, so the same candidate
    list and the same pruned count as the scalar loop.  Shared by the
    nominal and the robust (envelope-bound) searches."""
    candidates: List[_Candidate] = []
    groups_maps: List[Dict[str, int]] = []
    pruned = 0
    seen = 0
    for ai, assignment in enumerate(assignments):
        groups, candidate_lists = assignment_candidates(
            component, assignment)
        groups_maps.append(groups)
        if vectorize:
            check()
            bound_arr = bounds.quick_bound_array(candidate_lists, assignment)
            finite = np.flatnonzero(np.isfinite(bound_arr))
            pruned += len(bound_arr) - len(finite)
            if not len(finite):
                continue
            shape = tuple(len(lst) for lst in candidate_lists)
            multi = np.unravel_index(finite, shape)
            for t in range(len(finite)):
                if t % _DEADLINE_STRIDE == 0:
                    check()
                sizes = tuple(
                    lst[axis[t]]
                    for lst, axis in zip(candidate_lists, multi))
                flat = tuple(
                    x for k, r in zip(sizes, assignment) for x in (k, r))
                candidates.append(
                    (float(bound_arr[finite[t]]), flat, sizes, ai))
        else:
            for sizes in product(*candidate_lists):
                seen += 1
                if seen % _DEADLINE_STRIDE == 0:
                    check()
                bound = bounds.quick_bound(sizes, assignment)
                if math.isinf(bound):
                    pruned += 1
                    continue
                flat = tuple(
                    x for k, r in zip(sizes, assignment) for x in (k, r))
                candidates.append((bound, flat, sizes, ai))
    candidates.sort()
    return candidates, groups_maps, pruned


class PrunedOptimizer:
    """Branch-and-bound twin of :class:`ExhaustiveOptimizer`.

    Returns the identical winner while planning only the candidates no
    admissible bound could eliminate; ``result.pruned`` counts the
    evaluations avoided and ``result.bound_hits`` how many of those the
    persistent cache had already seen."""

    def __init__(self, component: TilableComponent, platform: Platform,
                 exec_model: ExecModel,
                 segment_cap: int = DEFAULT_SEGMENT_CAP,
                 max_points: int = DEFAULT_PRUNED_MAX_POINTS,
                 deadline: float | None = None, budget_s: float = 0.0,
                 jobs: int = 1, cache: Optional[PersistentCache] = None,
                 vectorize: bool = True,
                 shard_of: Optional[Tuple[int, int]] = None,
                 incumbent: Optional[Tuple[float, Tuple[int, ...]]] = None):
        self.component = component
        self.platform = platform
        self.exec_model = exec_model
        self.max_points = max_points
        self.jobs = jobs
        self.vectorize = vectorize
        #: Restrict the walk to shard *i* of *n*: every n-th candidate
        #: of the globally sorted list, starting at i.  The union over
        #: all shards is the whole space, and any true feasible
        #: incumbent may seed any shard (see ``incumbent``), so the
        #: minimum rank over the shard winners is the unsharded winner.
        self.shard_of = validate_shard(shard_of)
        #: Optional seed ``(makespan, flat key)`` incumbent rank — a
        #: *true feasible* rank published by another shard.  Seeding
        #: can only prune candidates that cannot beat that rank, so the
        #: shard's own winner may come back None; the seed's publisher
        #: already holds the corresponding full result.
        self.incumbent = (float(incumbent[0]), tuple(incumbent[1])) \
            if incumbent is not None else None
        self.evaluator = MakespanEvaluator(
            component, platform, exec_model, segment_cap, cache=cache)
        if deadline is not None:
            self.evaluator.set_deadline(deadline, "pruned", budget_s)
        self.bounds = BoundCalculator(
            component, platform, exec_model, segment_cap,
            modes=self.evaluator.planner.modes,
            geometry=self.evaluator.geometry)
        self.batch = BatchEvaluator(self.evaluator) if vectorize else None
        self.metrics: Optional[EngineMetrics] = None
        self._vars = [node.var for node in component.nodes]
        self._assignments: List[Tuple[int, ...]] = []
        self._pruned = 0
        self._bound_hits = 0

    # -- search ------------------------------------------------------------

    def optimize(self, cores: Optional[int] = None) -> ComponentOptResult:
        cores = cores if cores is not None else self.platform.cores
        started = time.perf_counter()
        self._pruned = 0
        self._bound_hits = 0
        self._assignments = generate_nondominated_thread_groups(
            cores, self.component)
        size = space_size_of(self.component, self._assignments)
        if size > self.max_points:
            raise SearchSpaceTooLarge(
                f"{size} candidate points exceed the pruned-search budget "
                f"of {self.max_points}; use the heuristic (Algorithm 1)")

        batch_scored0 = self.batch.scored if self.batch else 0
        batch_fell0 = self.batch.fallbacks if self.batch else 0
        candidates, groups_maps = self._enumerate()
        with EvaluationEngine(self.evaluator, jobs=self.jobs,
                              stage="pruned") as engine:
            engine.note_pruned(self._pruned)   # enumeration-time drops
            if engine.parallel:
                best = self._search_parallel(engine, candidates, groups_maps)
            else:
                best = self._search_serial(engine, candidates, groups_maps)
            best = engine.finalize(best)
            self.metrics = engine.metrics()
        if self.batch is not None:
            # The serial-batched walk scores through ``self.batch``,
            # which the engine never sees; fold its counters in so
            # ``metrics.batched``/``batch_fallbacks`` survive the shard
            # and scenario merge paths.  Worker-side batch counts are
            # already in the engine metrics and the two paths never
            # overlap, so this is a sum, not a double-count.
            self.metrics.batched += self.batch.scored - batch_scored0
            self.metrics.batch_fallbacks += \
                self.batch.fallbacks - batch_fell0
        return ComponentOptResult(
            component=self.component,
            best=best,
            evaluations=self.evaluator.evaluations,
            elapsed_s=time.perf_counter() - started,
            assignments_tried=len(self._assignments),
            cache_hits=self.evaluator.cache_hits,
            pruned=self._pruned,
            bound_hits=self._bound_hits,
            batched=(self.batch.scored - batch_scored0
                     if self.batch else 0),
            batch_fallbacks=(self.batch.fallbacks - batch_fell0
                             if self.batch else 0),
            exec_model=self.exec_model,
        )

    # -- enumeration (tier-1 bounds) ---------------------------------------

    def _enumerate(self) -> Tuple[List[_Candidate], List[Dict[str, int]]]:
        """Bound every candidate point and sort best-bound-first.

        Provably infeasible points (quick bound of +inf) never enter the
        list: an admissible bound of infinity means the planner is
        guaranteed to reject them, so they cannot be the winner — the
        exhaustive search evaluates them only to learn the same thing.
        With vectorization the bounds come out of
        :meth:`BoundCalculator.quick_bound_array` (bitwise the scalar
        values, so the same list and the same pruned count)."""
        candidates, groups_maps, pruned = enumerate_candidates(
            self.component, self._assignments, self.bounds,
            self.evaluator.check_deadline, vectorize=self.vectorize)
        self._pruned += pruned
        if self.shard_of is not None:
            # Round-robin over the *sorted* list: each shard's slice is
            # itself sorted (tail pruning stays valid) and the best
            # bounds spread evenly, so every shard lands a competitive
            # incumbent early.  Dropped candidates belong to other
            # shards — they are not "pruned" work.
            index, count = self.shard_of
            candidates = candidates[index::count]
        return candidates, groups_maps

    def _solution(self, sizes: Tuple[int, ...],
                  groups: Dict[str, int]) -> Solution:
        return Solution(
            self.component, dict(zip(self._vars, sizes)), groups)

    def _prune_one(self, engine: EvaluationEngine, key: tuple,
                   bound: float) -> None:
        self._pruned += 1
        engine.note_pruned()
        if self.evaluator.persist_bound(key, bound):
            self._bound_hits += 1
            engine.note_bound_hit()

    # -- serial walk -------------------------------------------------------

    def _search_serial(self, engine: EvaluationEngine,
                       candidates: List[_Candidate],
                       groups_maps: List[Dict[str, int]]
                       ) -> Optional[MakespanResult]:
        if self.batch is not None:
            return self._search_serial_batched(
                engine, candidates, groups_maps)
        evaluator = self.evaluator
        best: Optional[MakespanResult] = None
        best_rank: Optional[tuple] = self.incumbent
        for pos, (bound, flat, sizes, ai) in enumerate(candidates):
            if pos % _DEADLINE_STRIDE == 0:
                evaluator.check_deadline()
            if best_rank is not None and (bound, flat) >= best_rank:
                # The list is sorted by (bound, flat): everything from
                # here on is at or past the incumbent's rank too.
                remaining = len(candidates) - pos
                self._pruned += remaining
                engine.note_pruned(remaining)
                break
            solution = self._solution(sizes, groups_maps[ai])
            result = evaluator.peek(solution)
            if result is None:
                refined = self.bounds.refine(
                    bound, sizes, self._assignments[ai])
                if math.isinf(refined) or (
                        best_rank is not None and
                        (refined, flat) >= best_rank):
                    self._prune_one(engine, solution.key(), refined)
                    continue
                result = evaluator.evaluate(solution)
            if result.feasible:
                rank = (result.makespan_ns, flat)
                if best_rank is None or rank < best_rank:
                    best, best_rank = result, rank
        return best

    def _search_serial_batched(self, engine: EvaluationEngine,
                               candidates: List[_Candidate],
                               groups_maps: List[Dict[str, int]]
                               ) -> Optional[MakespanResult]:
        """The serial walk with batch-exact scoring per window.

        Candidates are collected into windows (``_FIRST_WINDOW`` slots,
        doubling to ``_BATCH_WINDOW``); every window
        is scored by one :class:`BatchEvaluator` tensor program and the
        incumbent advances only at window boundaries.  Memo/cache hits
        occupy window slots and adopt at the boundary too, so a warm
        re-run sees the *identical* incumbent trajectory as the cold run
        — the same candidates are pruned, the same bounds persisted
        (the warm-bound-hits accounting relies on this).  Versus the
        per-candidate walk, the winner is bit-identical (every prune is
        still admissible); only the evaluated/pruned split can differ,
        bounded by the window size."""
        evaluator = self.evaluator
        batch = self.batch
        best: Optional[MakespanResult] = None
        best_rank: Optional[tuple] = self.incumbent
        pos = 0
        total = len(candidates)
        limit = _FIRST_WINDOW
        while pos < total:
            evaluator.check_deadline()
            #: (flat key, cached result or None, fresh solution or None)
            window: List[tuple] = []
            while pos < total and len(window) < limit:
                bound, flat, sizes, ai = candidates[pos]
                if best_rank is not None and (bound, flat) >= best_rank:
                    remaining = total - pos
                    self._pruned += remaining
                    engine.note_pruned(remaining)
                    pos = total
                    break
                pos += 1
                solution = self._solution(sizes, groups_maps[ai])
                hit = evaluator.peek(solution)
                if hit is not None:
                    window.append((flat, hit, None))
                    continue
                refined = self.bounds.refine(
                    bound, sizes, self._assignments[ai])
                if math.isinf(refined) or (
                        best_rank is not None and
                        (refined, flat) >= best_rank):
                    self._prune_one(engine, solution.key(), refined)
                    continue
                window.append((flat, None, solution))
            limit = min(limit * 2, _BATCH_WINDOW)
            if not window:
                continue
            scored = iter(batch.evaluate_batch(
                [solution for _, hit, solution in window
                 if hit is None]))
            for flat, hit, _solution in window:
                result = hit if hit is not None else next(scored)
                if result.feasible:
                    rank = (result.makespan_ns, flat)
                    if best_rank is None or rank < best_rank:
                        best, best_rank = result, rank
        return best

    # -- windowed parallel walk --------------------------------------------

    def _search_parallel(self, engine: EvaluationEngine,
                         candidates: List[_Candidate],
                         groups_maps: List[Dict[str, int]]
                         ) -> Optional[MakespanResult]:
        """Sliding-window dispatch: screen candidates in sorted order,
        keep a bounded number of chunks in flight, harvest strictly in
        submission order.  Workers re-check each candidate's bound
        against the freshest incumbent (shipped rank + shared cell), so
        chunks screened against a stale incumbent still skip planning.
        The winner matches the serial walk bit for bit; only the
        evaluated/pruned split depends on timing."""
        evaluator = self.evaluator
        window = engine.jobs * 2
        pending: deque = deque()
        best: Optional[MakespanResult] = None
        best_rank: Optional[tuple] = self.incumbent
        pos = 0
        total = len(candidates)
        exhausted = False

        def adopt(result: Optional[MakespanResult],
                  flat: Tuple[int, ...]) -> None:
            nonlocal best, best_rank
            if result is None or not result.feasible:
                return
            rank = (result.makespan_ns, flat)
            if best_rank is None or rank < best_rank:
                best, best_rank = result, rank
                engine.publish_incumbent(result.makespan_ns)

        while not exhausted or pending:
            while not exhausted and len(pending) < window:
                requests: List[tuple] = []
                entries: List[tuple] = []
                while pos < total and len(requests) < _CHUNK_SIZE:
                    bound, flat, sizes, ai = candidates[pos]
                    if best_rank is not None and (bound, flat) >= best_rank:
                        remaining = total - pos
                        self._pruned += remaining
                        engine.note_pruned(remaining)
                        pos = total
                        break
                    pos += 1
                    solution = self._solution(sizes, groups_maps[ai])
                    hit = evaluator.peek(solution)
                    if hit is not None:
                        adopt(hit, flat)
                        continue
                    refined = self.bounds.refine(
                        bound, sizes, self._assignments[ai])
                    if math.isinf(refined) or (
                            best_rank is not None and
                            (refined, flat) >= best_rank):
                        self._prune_one(engine, solution.key(), refined)
                        continue
                    requests.append((solution.tile_sizes,
                                     solution.thread_groups, refined, flat))
                    entries.append((solution, flat, refined))
                if pos >= total:
                    exhausted = True
                if requests:
                    evaluator.check_deadline()
                    pending.append((
                        engine.submit_bounded(requests, best_rank), entries))
                elif exhausted:
                    break
            if pending:
                reply, entries = pending.popleft()
                results = engine.harvest_bounded(
                    reply, [entry[0] for entry in entries])
                for (solution, flat, refined), result in zip(
                        entries, results):
                    if result is None:
                        # Worker-side prune; the engine counted it.
                        self._pruned += 1
                        if evaluator.persist_bound(solution.key(), refined):
                            self._bound_hits += 1
                            engine.note_bound_hit()
                    else:
                        adopt(result, flat)
        return best
