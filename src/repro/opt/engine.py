"""Parallel candidate-evaluation engine.

Every optimizer in this package boils down to probing many ``(R, K)``
candidates through :meth:`MakespanEvaluator.evaluate_params`; Section
4.3 motivates the heuristic precisely because that probing is the cost
that "would take unacceptable time" at scale.  This module fans those
probes out over a ``multiprocessing`` worker pool while keeping the
serial semantics bit-for-bit:

* the parent evaluator stays authoritative — candidates are deduplicated
  against its memo and the persistent cache *before* dispatch, each
  dispatched candidate is adopted back exactly once, so the evaluation
  counts match a serial run regardless of worker scheduling;
* the reduction (:meth:`EvaluationEngine.best_of`) orders candidates by
  ``(makespan, solution key)``, so the winner is independent of worker
  completion order and of ``jobs``;
* workers receive the component / platform / exec-model once, at pool
  start (the pool uses the ``fork`` start method, so the unpicklable
  statement compute closures are inherited, not serialized); task
  payloads are just tile-size/thread-group dicts and results are plain
  scalars.

On platforms without ``fork`` (or with ``jobs <= 1``) the engine
degrades to inline evaluation — same results, same counts, one process.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import OptimizerTimeout
from ..schedule.makespan import MakespanEvaluator, MakespanResult
from .solution import Solution
from .vectorized import BatchEvaluator

#: One evaluation request: (tile_sizes, thread_groups or None).
Request = Tuple[Mapping[str, int], Optional[Mapping[str, int]]]

#: Candidates per worker-side vector batch: big enough to amortize the
#: tensor setup, small enough that a deadline still fires promptly.
_WORKER_SUBBATCH = 48

#: Seconds a closing engine waits for workers to drain before falling
#: back to terminate().  Workers only ever hold short tasks (one chunk),
#: so the graceful path resolves in milliseconds; the fallback exists
#: for wedged workers only.
_CLOSE_GRACE_S = 5.0

# ---------------------------------------------------------------------------
# worker side

_WORKER: Dict[str, object] = {}


def _init_worker(component, platform, exec_model, segment_cap, modes,
                 deadline, stage, budget_s, incumbent=None,
                 vectorize=False) -> None:
    """Pool initializer: build this process's evaluator once.

    Under the fork start method the arguments are inherited by memory
    copy, so the component's compute closures never need pickling.
    ``perf_counter`` is CLOCK_MONOTONIC on Linux and therefore
    comparable across the fork, which keeps the parent's deadline
    meaningful inside workers.  *incumbent* is a shared double holding
    the parent's best makespan so far (inf when none), read by the
    bounded-evaluation path.  With *vectorize* the worker scores its
    chunks through a :class:`BatchEvaluator` (bit-identical outcomes,
    one tensor program per sub-batch instead of one plan per
    candidate)."""
    evaluator = MakespanEvaluator(
        component, platform, exec_model, segment_cap, modes)
    if deadline is not None:
        evaluator.set_deadline(deadline, stage, budget_s)
    _WORKER["evaluator"] = evaluator
    _WORKER["incumbent"] = incumbent
    _WORKER["batch"] = BatchEvaluator(evaluator) if vectorize else None


def _slim(result: MakespanResult) -> Tuple[float, bool, str, int, int]:
    return (result.makespan_ns, result.feasible, result.reason,
            result.spm_bytes_needed, result.transferred_bytes)


def _eval_chunk(requests: Sequence[Request]) -> Dict:
    """Evaluate one chunk of fresh candidates; return slim outcomes."""
    evaluator = _WORKER["evaluator"]
    batch = _WORKER.get("batch")
    started = time.perf_counter()
    outcomes: List[Tuple[float, bool, str, int, int]] = []
    timeout: Optional[Tuple[str, float]] = None
    batched = fallbacks = 0

    solutions: Optional[List[Solution]] = None
    if batch is not None:
        solutions = []
        for tile_sizes, thread_groups in requests:
            try:
                solutions.append(Solution(
                    evaluator.component, tile_sizes, thread_groups))
            except ValueError:
                solutions = None      # invalid probe: per-candidate path
                break

    if solutions is not None:
        # Sub-batches keep the deadline responsive: each one is preceded
        # by a clock check, and a timeout ships the completed outcomes
        # so no finished tensor program is wasted.
        for start in range(0, len(solutions), _WORKER_SUBBATCH):
            sub = solutions[start:start + _WORKER_SUBBATCH]
            try:
                evaluator.check_deadline()
                results = batch.evaluate_batch(sub)
            except OptimizerTimeout as error:
                timeout = (error.stage, error.budget_s)
                break
            for result, exact in zip(results, batch.exactness_mask):
                outcomes.append(_slim(result))
                if exact:
                    batched += 1
                else:
                    fallbacks += 1
    else:
        for tile_sizes, thread_groups in requests:
            try:
                result = evaluator.evaluate_params(tile_sizes, thread_groups)
            except OptimizerTimeout as error:
                # OptimizerTimeout's two-argument constructor does not
                # survive pickling across the pool; ship a sentinel
                # instead.
                timeout = (error.stage, error.budget_s)
                break
            outcomes.append(_slim(result))
    return {
        "outcomes": outcomes,
        "busy_s": time.perf_counter() - started,
        "timeout": timeout,
        "batched": batched,
        "batch_fallbacks": fallbacks,
    }


def _eval_bounded_chunk(payload: Dict) -> Dict:
    """Evaluate one chunk of bounded candidates, re-checking bounds.

    The payload carries per-candidate admissible lower bounds and the
    incumbent rank ``(makespan, flat key)`` current at submission time.
    Several chunks are in flight at once, so by the time a worker picks
    one up the parent may already hold a better incumbent than the one
    these candidates were screened against; the shared-memory incumbent
    (updated by the parent on every improvement) lets the re-check skip
    planning for candidates another in-flight chunk has since beaten.
    Both checks are sound — an admissible bound at or above a feasible
    makespan rank can never belong to the winner — so only the *counts*
    depend on worker timing, never the result.  Skipped candidates
    return a ``None`` outcome slot; the parent counts them as pruned."""
    evaluator = _WORKER["evaluator"]
    shared = _WORKER.get("incumbent")
    incumbent = payload["incumbent"]
    started = time.perf_counter()
    outcomes: List[Optional[Tuple[float, bool, str, int, int]]] = []
    timeout: Optional[Tuple[str, float]] = None
    for tile_sizes, thread_groups, bound_ns, flat in payload["requests"]:
        if incumbent is not None and (bound_ns, flat) >= tuple(incumbent):
            outcomes.append(None)
            continue
        if shared is not None and bound_ns > shared.value:
            outcomes.append(None)
            continue
        try:
            result = evaluator.evaluate_params(tile_sizes, thread_groups)
        except OptimizerTimeout as error:
            timeout = (error.stage, error.budget_s)
            break
        outcomes.append((
            result.makespan_ns, result.feasible, result.reason,
            result.spm_bytes_needed, result.transferred_bytes,
        ))
    return {
        "outcomes": outcomes,
        "busy_s": time.perf_counter() - started,
        "timeout": timeout,
    }


# ---------------------------------------------------------------------------
# parent side


@dataclass
class EngineMetrics:
    """Counters the engine exposes for reporting/benchmarks."""

    jobs: int = 1
    evaluations: int = 0          # fresh plans (serial-equivalent count)
    memo_hits: int = 0
    cache_hits: int = 0           # persistent-cache hits
    invalid: int = 0
    dispatched: int = 0           # candidates sent to workers
    chunks: int = 0
    elapsed_s: float = 0.0        # wall-clock inside evaluate calls
    busy_s: float = 0.0           # summed worker compute time
    pruned: int = 0               # candidates discarded on a bound
    bound_hits: int = 0           # pruned candidates already in the cache
    batched: int = 0              # candidates decided by the vector engine
    batch_fallbacks: int = 0      # batch candidates simulator-scored

    @property
    def probes(self) -> int:
        return self.evaluations + self.memo_hits + self.cache_hits

    @property
    def evaluations_per_s(self) -> float:
        return self.evaluations / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.probes if self.probes else 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of the pool's capacity spent computing."""
        if self.jobs <= 1 or self.elapsed_s <= 0.0:
            return 1.0 if self.busy_s else 0.0
        return min(1.0, self.busy_s / (self.elapsed_s * self.jobs))

    def merge(self, other: "EngineMetrics") -> "EngineMetrics":
        """Counter-summing combine for the shard/scenario merge paths.

        Every additive counter — evaluations, hits, ``pruned``,
        ``bound_hits``, ``batched``, ``batch_fallbacks`` — is *summed*,
        never last-writer-wins, so an aggregate over several engines
        (one per shard worker, one per timing scenario) reports the
        work all of them did.  ``jobs`` takes the widest pool; derived
        rates recompute from the summed raw counters.  Only merge
        metrics of engines with *distinct* evaluators: two snapshots of
        one evaluator would double-count its cumulative counters."""
        return EngineMetrics(
            jobs=max(self.jobs, other.jobs),
            evaluations=self.evaluations + other.evaluations,
            memo_hits=self.memo_hits + other.memo_hits,
            cache_hits=self.cache_hits + other.cache_hits,
            invalid=self.invalid + other.invalid,
            dispatched=self.dispatched + other.dispatched,
            chunks=self.chunks + other.chunks,
            elapsed_s=self.elapsed_s + other.elapsed_s,
            busy_s=self.busy_s + other.busy_s,
            pruned=self.pruned + other.pruned,
            bound_hits=self.bound_hits + other.bound_hits,
            batched=self.batched + other.batched,
            batch_fallbacks=self.batch_fallbacks + other.batch_fallbacks,
        )

    def __add__(self, other: "EngineMetrics") -> "EngineMetrics":
        if not isinstance(other, EngineMetrics):
            return NotImplemented
        return self.merge(other)

    def __radd__(self, other) -> "EngineMetrics":
        if other == 0:          # lets sum(list_of_metrics) start from 0
            return self
        return NotImplemented

    def as_dict(self) -> Dict[str, float]:
        return {
            "jobs": self.jobs,
            "evaluations": self.evaluations,
            "memo hits": self.memo_hits,
            "cache hits": self.cache_hits,
            "invalid": self.invalid,
            "dispatched": self.dispatched,
            "evaluations/s": round(self.evaluations_per_s, 1),
            "cache hit rate": round(self.cache_hit_rate, 4),
            "worker utilization": round(self.worker_utilization, 4),
            "pruned": self.pruned,
            "bound hits": self.bound_hits,
            "batched": self.batched,
            "batch fallbacks": self.batch_fallbacks,
        }


def effective_jobs(jobs: Optional[int]) -> int:
    """Clamp a jobs request to something the host can actually run."""
    if not jobs or jobs <= 1:
        return 1
    if "fork" not in multiprocessing.get_all_start_methods():
        return 1        # spawn cannot ship compute closures; stay serial
    return max(1, min(jobs, os.cpu_count() or 1))


class EvaluationEngine:
    """Fan ``evaluate_params`` probes over a worker pool, deterministically.

    The engine wraps an existing :class:`MakespanEvaluator` (sharing its
    memo, persistent cache, deadline, and evaluation counter) so it can
    be dropped into any optimizer without changing its accounting."""

    def __init__(self, evaluator: MakespanEvaluator, jobs: int = 1,
                 stage: str = "engine", vectorize: bool = False):
        self.evaluator = evaluator
        self.requested_jobs = jobs
        self.jobs = effective_jobs(jobs)
        self.stage = stage
        self.vectorize = vectorize
        self._pool = None
        self._dispatched = 0
        self._chunks = 0
        self._elapsed_s = 0.0
        self._busy_s = 0.0
        self._invalid = 0
        self._pruned = 0
        self._bound_hits = 0
        self._batched = 0
        self._batch_fallbacks = 0
        self._batch: Optional[BatchEvaluator] = None   # serial vector path
        self._incumbent_cell = None   # shared double for bounded dispatch

    # -- lifecycle --------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            evaluator = self.evaluator
            self._incumbent_cell = context.Value("d", float("inf"))
            self._pool = context.Pool(
                self.jobs,
                initializer=_init_worker,
                initargs=(evaluator.component, evaluator.platform,
                          evaluator.exec_model, evaluator.segment_cap,
                          evaluator.modes, evaluator.deadline,
                          evaluator.stage, evaluator.budget_s,
                          self._incumbent_cell, self.vectorize),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down without corrupting the shared cache.

        ``terminate()`` kills workers at an arbitrary bytecode, which
        can land mid-append to the persistent cache's JSONL log and
        leave a torn line for every later run to skip over.  Workers
        are drained gracefully instead — ``close()`` lets in-flight
        tasks finish their appends, ``join()`` reaps them — with
        ``terminate()`` kept only as a bounded-wait fallback for a
        wedged worker."""
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        pool.close()
        waiter = threading.Thread(target=pool.join, daemon=True)
        waiter.start()
        waiter.join(_CLOSE_GRACE_S)
        if waiter.is_alive():
            pool.terminate()
            waiter.join(1.0)

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- evaluation -------------------------------------------------------

    def evaluate_params(self, tile_sizes, thread_groups=None
                        ) -> MakespanResult:
        """Single-probe passthrough (always inline)."""
        return self.evaluator.evaluate_params(tile_sizes, thread_groups)

    def evaluate_chunks(self, chunks: Sequence[Sequence[Request]]
                        ) -> List[List[MakespanResult]]:
        """Evaluate request chunks; results align with the inputs.

        Chunks are the dispatch granularity — callers group candidates
        by thread-group assignment so one task carries one assignment's
        tile-size products.  Cached / invalid / duplicate candidates are
        resolved in the parent; only genuinely fresh solutions travel to
        the pool."""
        started = time.perf_counter()
        results: List[List[Optional[MakespanResult]]] = [
            [None] * len(chunk) for chunk in chunks]
        # (chunk index, request index, solution) per fresh candidate,
        # deduplicated by solution key across the whole batch.
        fresh: Dict[tuple, List[Tuple[int, int]]] = {}
        fresh_solutions: Dict[tuple, Solution] = {}

        for ci, chunk in enumerate(chunks):
            for ri, (tile_sizes, thread_groups) in enumerate(chunk):
                try:
                    solution = Solution(
                        self.evaluator.component, tile_sizes, thread_groups)
                except ValueError:
                    self._invalid += 1
                    results[ci][ri] = self.evaluator.evaluate_params(
                        tile_sizes, thread_groups)
                    continue
                hit = self.evaluator.peek(solution)
                if hit is not None:
                    results[ci][ri] = hit
                    continue
                key = solution.key()
                fresh.setdefault(key, []).append((ci, ri))
                fresh_solutions.setdefault(key, solution)

        if fresh:
            self.evaluator.check_deadline()
            if self.parallel:
                self._dispatch(fresh, fresh_solutions, results)
            elif self.vectorize:
                if self._batch is None:
                    self._batch = BatchEvaluator(self.evaluator)
                keys = list(fresh.keys())
                scored = self._batch.evaluate_batch(
                    [fresh_solutions[key] for key in keys])
                for key, result, exact in zip(
                        keys, scored, self._batch.exactness_mask):
                    if exact:
                        self._batched += 1
                    else:
                        self._batch_fallbacks += 1
                    for ci, ri in fresh[key]:
                        results[ci][ri] = result
            else:
                for key, places in fresh.items():
                    result = self.evaluator.evaluate(fresh_solutions[key])
                    for ci, ri in places:
                        results[ci][ri] = result

        self._elapsed_s += time.perf_counter() - started
        return [list(chunk) for chunk in results]    # type: ignore

    def evaluate_many(self, requests: Sequence[Request]
                      ) -> List[MakespanResult]:
        """Flat-list convenience: split fresh work across the pool."""
        if not self.parallel or len(requests) <= 1:
            return self.evaluate_chunks([list(requests)])[0]
        # Round-robin into one chunk per worker keeps chunks balanced
        # when the caller has no natural grouping.
        buckets: List[List[Request]] = [[] for _ in range(self.jobs)]
        order: List[Tuple[int, int]] = []
        for index, request in enumerate(requests):
            bucket = index % self.jobs
            order.append((bucket, len(buckets[bucket])))
            buckets[bucket].append(request)
        chunked = self.evaluate_chunks(buckets)
        return [chunked[b][i] for b, i in order]

    def _dispatch(self, fresh: Dict[tuple, List[Tuple[int, int]]],
                  solutions: Dict[tuple, Solution],
                  results: List[List[Optional[MakespanResult]]]) -> None:
        pool = self._ensure_pool()
        keys = list(fresh.keys())
        # A few chunks per worker: big enough to amortize task overhead,
        # small enough that an uneven assignment cannot starve the pool.
        chunk_count = min(len(keys), self.jobs * 4)
        task_keys: List[List[tuple]] = [[] for _ in range(chunk_count)]
        for index, key in enumerate(keys):
            task_keys[index % chunk_count].append(key)
        tasks = [
            [(solutions[key].tile_sizes, solutions[key].thread_groups)
             for key in group]
            for group in task_keys
        ]
        self._dispatched += len(keys)
        self._chunks += len(tasks)
        timeout: Optional[Tuple[str, float]] = None
        for group, reply in zip(task_keys, pool.imap(_eval_chunk, tasks)):
            self._busy_s += reply["busy_s"]
            self._batched += reply.get("batched", 0)
            self._batch_fallbacks += reply.get("batch_fallbacks", 0)
            for key, outcome in zip(group, reply["outcomes"]):
                makespan_ns, feasible, reason, spm, transferred = outcome
                result = self.evaluator.record_remote(
                    solutions[key], makespan_ns, feasible, reason,
                    spm_bytes=spm, transferred_bytes=transferred)
                for ci, ri in fresh[key]:
                    results[ci][ri] = result
            if reply["timeout"] is not None and timeout is None:
                timeout = reply["timeout"]
        if timeout is not None:
            raise OptimizerTimeout(*timeout)

    # -- bounded dispatch (branch-and-bound search) -----------------------

    def note_pruned(self, count: int = 1) -> None:
        """Account candidates the caller discarded on an admissible bound."""
        self._pruned += count

    def note_bound_hit(self, count: int = 1) -> None:
        """Account pruned candidates the persistent cache already knew."""
        self._bound_hits += count

    def publish_incumbent(self, makespan_ns: float) -> None:
        """Expose the parent's best makespan to in-flight workers."""
        if self._incumbent_cell is not None:
            self._incumbent_cell.value = makespan_ns

    def submit_bounded(self, requests, incumbent):
        """Ship one chunk of bounded candidates to the pool (parallel
        engines only) and return the async reply handle.

        *requests* entries are ``(tile_sizes, thread_groups, bound_ns,
        flat_key)``; *incumbent* is the current ``(makespan, flat_key)``
        rank or None.  The caller harvests replies strictly in
        submission order (:meth:`harvest_bounded`), which keeps the
        winner deterministic regardless of worker scheduling."""
        pool = self._ensure_pool()
        self._dispatched += len(requests)
        self._chunks += 1
        payload = {"requests": list(requests), "incumbent": incumbent}
        return pool.apply_async(_eval_bounded_chunk, (payload,))

    def harvest_bounded(self, reply, solutions) -> List[
            Optional[MakespanResult]]:
        """Adopt one bounded chunk's outcomes, aligned with *solutions*.

        Worker-pruned candidates come back as None (already counted via
        :meth:`note_pruned` here); evaluated outcomes are recorded into
        the parent evaluator exactly like plain dispatch.  A worker
        timeout re-raises after the chunk's completed outcomes are
        adopted, so no finished plan is wasted."""
        data = reply.get()
        self._busy_s += data["busy_s"]
        results: List[Optional[MakespanResult]] = []
        for solution, outcome in zip(solutions, data["outcomes"]):
            if outcome is None:
                self._pruned += 1
                results.append(None)
                continue
            makespan_ns, feasible, reason, spm, transferred = outcome
            results.append(self.evaluator.record_remote(
                solution, makespan_ns, feasible, reason,
                spm_bytes=spm, transferred_bytes=transferred))
        if data["timeout"] is not None:
            raise OptimizerTimeout(*data["timeout"])
        return results

    # -- reduction --------------------------------------------------------

    @staticmethod
    def best_of(results: Iterable[Optional[MakespanResult]]
                ) -> Optional[MakespanResult]:
        """Deterministic winner: min ``(makespan, solution key)``.

        Independent of evaluation order, so serial and parallel runs —
        and re-runs against a warm cache — agree on ties."""
        best: Optional[MakespanResult] = None
        best_rank: Optional[tuple] = None
        for result in results:
            if result is None or not result.feasible:
                continue
            rank = (result.makespan_ns, result.solution.key())
            if best_rank is None or rank < best_rank:
                best, best_rank = result, rank
        return best

    def finalize(self, result: Optional[MakespanResult]
                 ) -> Optional[MakespanResult]:
        """Attach the full plan to a freshly-computed pool winner.

        Persistent-cache winners stay plan-less on purpose: a warm
        re-run must perform zero fresh plans."""
        if result is None or result.from_cache or result.plan is not None:
            return result
        return self.evaluator.attach_plan(result)

    # -- metrics ----------------------------------------------------------

    def metrics(self) -> EngineMetrics:
        return EngineMetrics(
            jobs=self.jobs,
            evaluations=self.evaluator.evaluations,
            memo_hits=self.evaluator.memo_hits,
            cache_hits=self.evaluator.cache_hits,
            invalid=self._invalid,
            dispatched=self._dispatched,
            chunks=self._chunks,
            elapsed_s=self._elapsed_s,
            busy_s=self._busy_s,
            pruned=self._pruned,
            bound_hits=self._bound_hits,
            batched=self._batched,
            batch_fallbacks=self._batch_fallbacks,
        )
