"""Admissible makespan lower bounds for branch-and-bound search.

Every quantity here is a *lower bound on the true component makespan* of
a candidate ``(R, K)`` solution, computed in closed form from the §4.2
timing model — no :class:`~repro.prem.segments.SegmentPlanner` plan, no
pipeline simulation (the derivation lives in DESIGN.md's bound section):

- **compute path** — on every core the execution phases are serialized,
  so ``makespan >= init_api + sum_tiles exec(tile)``.  The per-tile
  estimate ``intercept + sum_j O_j * prod_{k<=j} w_k + W * prod_k w_k``
  summed over a core's tile grid factorizes exactly into per-level span
  and count products, so the sum costs O(depth) instead of a grid walk.
- **DMA path** — all memory phases of all cores share the single DMA
  engine, so ``makespan >= sum of every transfer``.  The planner's swap
  events are counted exactly (the odometer rollover arithmetic), each
  charged the cheapest canonical-range transfer it could possibly carry.
- **exact infeasibility** — the planner's own segment-cap and SPM checks,
  replicated bit for bit (cap, validity) or as a provable lower bound
  (SPM): a candidate flagged here is *guaranteed* to raise
  :class:`~repro.prem.segments.PlanError`, so skipping it cannot change
  the winner.

The bound comes in two tiers.  :meth:`BoundCalculator.quick_bound` uses
closed-form arithmetic only and is cheap enough to rank the entire
candidate space; :meth:`BoundCalculator.refine` adds the DMA path and
the exact SPM test, which need (memoized, shared) range geometry, and is
paid only for candidates that survive the quick tier.

Floating-point note: the closed forms re-associate sums the simulator
accumulates term by term, so the bounds are scaled by ``1 - 1e-9``
before use — far larger than any accumulated rounding error, far
smaller than any real pruning margin — keeping them admissible even in
exact-tie corner cases.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..loopir.component import TilableComponent
from ..prem.ranges import _stmt_guards, partial_bounds
from ..prem.segments import RO, RW, WO, ArrayGeometry, classify_modes
from ..schedule.makespan import DEFAULT_SEGMENT_CAP
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform

#: Safety factor absorbing re-association rounding (see module docstring).
_SAFETY = 1.0 - 1e-9

#: Masks enumerated per array when searching the cheapest event transfer;
#: above this many remainder levels the DMA term falls back to zero
#: (still admissible, never reached by the corpus).
_MAX_MASK_LEVELS = 6


def flatten_key(key: Sequence[Tuple[str, int, int]]) -> Tuple[int, ...]:
    """``Solution.key()`` with the level names dropped: ``(K1, R1, K2,
    R2, ...)``.  Within one component the names are identical across
    candidates, so tuple comparison of flattened keys orders exactly
    like the full keys — the incumbent tie-break used by the search."""
    return tuple(x for _, k, r in key for x in (k, r))


def chain_lower_bound(component: TilableComponent, platform: Platform,
                      exec_model: ExecModel, cores: int) -> float:
    """Admissible per-execution makespan floor for a whole component.

    Every iteration-space tile executes on some core, so the busiest
    core carries at least ``1/cores`` of the total execution cycles and
    additionally pays dispatch plus two ``end_segment`` calls (one in
    the initialisation segment, one for its first segment).  Used by
    :class:`~repro.opt.tree.TreeOptimizer` to skip optimizing parent
    chains that provably cannot beat their children.
    """
    total = float(exec_model.work)
    for node in component.nodes:
        total *= node.N
    total += exec_model.intercept
    api = platform.api_cost("dispatch") + 2 * platform.api_cost("end_segment")
    return (api + total * platform.ns_per_cycle / max(1, cores)) * _SAFETY


class BoundCalculator:
    """Closed-form admissible bounds for one component's candidates.

    Candidates are passed positionally: ``sizes[j]`` / ``groups[j]``
    belong to ``component.nodes[j]``, exactly the order the search
    enumerates.  All per-level and per-array quantities are memoized —
    the candidate space revisits the same ``(N, K, R)`` triples and the
    same geometry sub-keys constantly.
    """

    def __init__(self, component: TilableComponent, platform: Platform,
                 exec_model: ExecModel,
                 segment_cap: int = DEFAULT_SEGMENT_CAP,
                 modes: Mapping[str, str] | None = None,
                 geometry: ArrayGeometry | None = None):
        self.component = component
        self.platform = platform
        self.exec_model = exec_model
        self.segment_cap = segment_cap
        self.modes = dict(modes) if modes else classify_modes(component)
        self.geometry = geometry or ArrayGeometry(
            component, platform, exec_model)
        self._ns = platform.ns_per_cycle
        self._init_api = platform.api_cost("dispatch") + \
            platform.api_cost("end_segment")
        self._seg_api = platform.api_cost("end_segment")
        self._nodes = list(component.nodes)
        self._node_by_var = {node.var: node for node in self._nodes}
        #: (level, K, R) -> [((tiles, span), group multiplicity)]
        self._level_opts: Dict[Tuple[int, int, int],
                               List[Tuple[Tuple[int, int], int]]] = {}
        self._spm_terms = self._build_spm_terms()
        self._extent_memo: Dict[Tuple, int] = {}
        self._min_xfer: Dict[Tuple, float] = {}
        self._min_bytes: Dict[Tuple, int] = {}
        #: Per-array direction count: ops the DMA carries per swap event.
        self._dirs = {
            name: (1 if mode in (RO, RW) else 0) +
                  (1 if mode in (WO, RW) else 0)
            for name, mode in self.modes.items()
        }

    # -- tier 1: closed-form arithmetic only ------------------------------

    def quick_bound(self, sizes: Sequence[int],
                    groups: Sequence[int]) -> float:
        """Compute-path bound, or ``+inf`` for provably infeasible
        candidates (invalid parameters, segment cap, SPM floor)."""
        segments = 1
        for node, k, r in zip(self._nodes, sizes, groups):
            if k < 1 or k > node.N or r < 1 or (r > 1 and not node.parallel):
                return math.inf       # Solution() rejects these outright
            m = -(-node.N // k)
            if r > m:
                return math.inf       # more thread groups than tiles
            segments *= -(-m // r)
        if segments > self.segment_cap:
            return math.inf           # the planner's evaluation cap
        if 2 * self._spm_floor(sizes) > self.platform.spm_bytes:
            return math.inf           # cannot fit double-buffered SPM
        return self._compute_path(sizes, groups) * _SAFETY

    def exact_infeasible(self, tile_sizes: Mapping[str, int],
                         thread_groups: Mapping[str, int] | None
                         ) -> Optional[str]:
        """Reason when the candidate is *guaranteed* infeasible, else
        None.  Mapping-keyed front door for the greedy optimizer: every
        check here is an exact implication of a ``Solution`` ValueError
        or planner :class:`PlanError`, so skipping the evaluation cannot
        change any optimizer decision."""
        thread_groups = thread_groups or {}
        segments = 1
        for node in self._nodes:
            k = int(tile_sizes.get(node.var, node.N))
            r = int(thread_groups.get(node.var, 1))
            if k < 1 or k > node.N:
                return f"tile size {k} out of range for {node.var}"
            if r < 1 or (r > 1 and not node.parallel):
                return f"invalid thread-group count {r} for {node.var}"
            m = -(-node.N // k)
            if r > m:
                return f"{r} thread groups exceed {m} tiles of {node.var}"
            segments *= -(-m // r)
        if segments > self.segment_cap:
            return (f"{segments} segments/core exceeds "
                    f"the evaluation cap {self.segment_cap}")
        sizes = tuple(
            int(tile_sizes.get(node.var, node.N)) for node in self._nodes)
        floor = 2 * self._spm_floor(sizes)
        if floor > self.platform.spm_bytes:
            return (f"solution needs at least {floor} B of SPM "
                    f"(> {self.platform.spm_bytes} B)")
        return None

    def quick_bound_array(self, candidate_lists: Sequence[Sequence[int]],
                          groups: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`quick_bound` over one assignment's grid.

        *candidate_lists* holds each level's tile-size options under one
        thread-group assignment; the result is a float64 array over
        ``itertools.product(*candidate_lists)`` in enumeration order,
        elementwise bit-identical to calling :meth:`quick_bound` on each
        point.  The closed forms are evaluated once per *distinct*
        per-level value (the level-profile and dimension-extent memos are
        shared with the scalar path) and broadcast across the grid, so
        screening a whole assignment costs a handful of array passes
        instead of one Python call per candidate.
        """
        depth = len(self._nodes)
        shape = tuple(len(lst) for lst in candidate_lists)
        count = 1
        for extent in shape:
            count *= extent
        if count == 0:
            return np.empty(0, dtype=np.float64)

        def bcast(arr, j):
            view = [1] * depth
            view[j] = shape[j]
            return arr.reshape(view)

        invalid = np.zeros(shape, dtype=bool)
        segments = np.ones(shape, dtype=np.int64)
        ks_levels = []
        for j, (node, lst, r) in enumerate(
                zip(self._nodes, candidate_lists, groups)):
            ks = np.asarray(lst, dtype=np.int64)
            ks_levels.append(ks)
            if r < 1 or (r > 1 and not node.parallel):
                return np.full(count, math.inf, dtype=np.float64)
            bad = (ks < 1) | (ks > node.N)
            m = -(-node.N // np.maximum(ks, 1))
            bad |= r > m
            invalid |= bcast(bad, j)
            segments *= bcast(-(-m // r), j)
        invalid |= segments > self.segment_cap

        # SPM floor: per-dimension extent lookup tables over each
        # dimension's support subgrid (scalar extents stay memoized in
        # _extent_memo), broadcast and multiplied in integer arithmetic
        # exactly like _spm_floor.
        if self._spm_terms:
            var_axis = {node.var: j for j, node in enumerate(self._nodes)}
            floor = np.zeros(shape, dtype=np.int64)
            for name, element_size, dims in self._spm_terms:
                nbytes = np.asarray(element_size, dtype=np.int64)
                for dim, support, exprs, full_extent in dims:
                    axes = [var_axis[v] for v in support]
                    sub_shape = tuple(shape[a] for a in axes)
                    lut = np.empty(sub_shape, dtype=np.int64)
                    for idx in np.ndindex(*sub_shape):
                        sizes_by_var = {
                            v: int(candidate_lists[a][i])
                            for v, a, i in zip(support, axes, idx)}
                        lut[idx] = self._dim_extent(
                            name, dim, support, exprs, full_extent,
                            sizes_by_var)
                    if axes != sorted(axes):
                        perm = sorted(range(len(axes)),
                                      key=lambda i: axes[i])
                        lut = lut.transpose(perm)
                        axes = sorted(axes)
                    view = [1] * depth
                    for a in axes:
                        view[a] = shape[a]
                    nbytes = nbytes * lut.reshape(view)
                floor = floor + nbytes
            invalid |= 2 * floor > self.platform.spm_bytes

        # Compute path: pad each level's (tiles, span) profiles to a
        # fixed slot count (at most three exist per level) and take the
        # max total over the slot cross-product, replicating
        # _compute_path's floating-point operation order so the result
        # is bitwise the serial one.
        level_cnt, level_span, level_ok = [], [], []
        for j, (node, ks, r) in enumerate(
                zip(self._nodes, ks_levels, groups)):
            opts_per_k = []
            width = 1
            for k in ks:
                k = int(k)
                if 1 <= k <= node.N:
                    opts = self._level_options(j, k, r)
                else:
                    opts = [((0, 0), r)]   # masked out via `invalid`
                opts_per_k.append(opts)
                width = max(width, len(opts))
            cnt = np.zeros((len(ks), width), dtype=np.int64)
            span = np.zeros((len(ks), width), dtype=np.int64)
            ok = np.zeros((len(ks), width), dtype=bool)
            for i, opts in enumerate(opts_per_k):
                for s, ((c, sp), _mult) in enumerate(opts):
                    cnt[i, s] = c
                    span[i, s] = sp
                    ok[i, s] = True
            level_cnt.append(cnt)
            level_span.append(span)
            level_ok.append(ok)

        model = self.exec_model
        overheads = model.overheads
        best = np.zeros(shape, dtype=np.float64)
        for combo in product(*(range(c.shape[1]) for c in level_cnt)):
            contrib = np.ones(shape, dtype=bool)
            for j, s in enumerate(combo):
                contrib &= bcast(level_ok[j][:, s], j)
            if not contrib.any():
                continue
            cnts = [bcast(level_cnt[j][:, s], j)
                    for j, s in enumerate(combo)]
            spans = [bcast(level_span[j][:, s], j)
                     for j, s in enumerate(combo)]
            suffix = [None] * (depth + 1)
            suffix[depth] = np.ones((), dtype=np.int64)
            for j in range(depth - 1, -1, -1):
                suffix[j] = suffix[j + 1] * cnts[j]
            n = suffix[0]
            contrib &= n > 0
            if not contrib.any():
                continue
            cycles = model.intercept * n
            prefix_span = np.float64(1.0)
            for j in range(depth):
                prefix_span = prefix_span * spans[j]
                overhead = overheads[j]
                if overhead:
                    cycles = cycles + (overhead * prefix_span) * suffix[j + 1]
            cycles = cycles + model.work * prefix_span
            total = self._init_api + n * self._seg_api + cycles * self._ns
            best = np.where(contrib & (total > best), total, best)

        return np.where(invalid, np.inf, best * _SAFETY).reshape(-1)

    # -- tier 2: adds shared geometry --------------------------------------

    def refine(self, quick: float, sizes: Sequence[int],
               groups: Sequence[int]) -> float:
        """Tighten *quick* with the exact SPM test and the DMA path."""
        if not math.isfinite(quick):
            return quick
        sizes_map = {
            node.var: k for node, k in zip(self._nodes, sizes)}
        try:
            spm = sum(
                self.geometry.bounding_bytes(name, sizes_map)
                for name in self.component.arrays())
        except LookupError:
            return quick              # planner would fail the same way
        if 2 * spm > self.platform.spm_bytes:
            return math.inf           # the planner's exact SPM check
        dma = self._dma_path(sizes, groups, sizes_map) * _SAFETY
        return dma if dma > quick else quick

    # -- compute path ------------------------------------------------------

    def _level_options(self, idx: int, k: int, r: int
                       ) -> List[Tuple[Tuple[int, int], int]]:
        """Distinct per-group ``(tiles, span)`` profiles of one level.

        ``tiles`` is how many level-*idx* tiles a group owns, ``span``
        the total iteration width they cover (the remainder tile is
        narrower).  At most three distinct profiles exist per level —
        full blocks, the block holding the remainder tile, and trailing
        empty blocks when ``Z * R`` overshoots ``M``."""
        key = (idx, k, r)
        opts = self._level_opts.get(key)
        if opts is None:
            node = self._nodes[idx]
            m = -(-node.N // k)
            z = -(-m // r)
            rem_w = node.N - (m - 1) * k
            tally: Dict[Tuple[int, int], int] = {}
            for g in range(r):
                start = g * z
                end = min(start + z, m)
                cnt = max(0, end - start)
                if cnt and end == m and rem_w != k:
                    span = (cnt - 1) * k + rem_w
                else:
                    span = cnt * k
                pair = (cnt, span)
                tally[pair] = tally.get(pair, 0) + 1
            opts = list(tally.items())
            self._level_opts[key] = opts
        return opts

    def _compute_path(self, sizes: Sequence[int],
                      groups: Sequence[int]) -> float:
        """Max over core profiles of ``init_api + n*seg_api + exec``.

        ``sum_tiles (intercept + sum_j O_j prod_{k<=j} w_k + W prod w)``
        over a core's tile grid factorizes: each prefix product sums to
        ``prod_{k<=j} span_k * prod_{k>j} tiles_k``.
        """
        model = self.exec_model
        overheads = model.overheads
        per_level = [
            self._level_options(j, k, r)
            for j, (k, r) in enumerate(zip(sizes, groups))
        ]
        depth = len(per_level)
        best = 0.0
        for combo in product(*per_level):
            n = 1
            for (cnt, _), _mult in combo:
                n *= cnt
            if n == 0:
                continue              # a group past the end of the level
            suffix = [1] * (depth + 1)
            for j in range(depth - 1, -1, -1):
                suffix[j] = suffix[j + 1] * combo[j][0][0]
            cycles = model.intercept * n
            prefix_span = 1.0
            for j in range(depth):
                prefix_span *= combo[j][0][1]
                overhead = overheads[j]
                if overhead:
                    cycles += overhead * prefix_span * suffix[j + 1]
            cycles += model.work * prefix_span
            total = self._init_api + n * self._seg_api + cycles * self._ns
            if total > best:
                best = total
        return best

    # -- SPM floor (tier 1) ------------------------------------------------

    def _build_spm_terms(self):
        """Per-dimension extent descriptors for guard-free arrays.

        For an array none of whose accessing statements carry guards,
        the hull of the all-first tile is a pure interval-arithmetic
        fold of the subscripts over the tile box — position-independent,
        and by hull monotonicity a lower bound on the planner's
        bounding-box shape.  Guarded arrays are skipped (contributing
        zero keeps the floor admissible)."""
        band = list(self.component.band_vars)
        inner = self.component.full_inner_box()
        terms = []
        for name, array in self.component.arrays().items():
            pairs = self.component.accesses(name)
            if not pairs or any(
                    _stmt_guards(self.component, stmt) for stmt, _ in pairs):
                continue
            dims = []
            for dim in range(array.ndim):
                exprs = [access.indices[dim] for _, access in pairs]
                support = tuple(
                    v for v in band
                    if any(expr.coeff(v) for expr in exprs))
                dims.append((dim, support, exprs, array.shape[dim]))
            terms.append((name, array.element_size, dims))
        self._inner_box = dict(inner)
        return terms

    def _spm_floor(self, sizes: Sequence[int]) -> int:
        """Lower bound on ``sum_a bounding_bytes(a)`` for these tile
        sizes, with every per-dimension extent memoized by the tile
        sizes of that dimension's supporting band iterators."""
        if not self._spm_terms:
            return 0
        sizes_by_var = {
            node.var: k for node, k in zip(self._nodes, sizes)}
        total = 0
        for name, element_size, dims in self._spm_terms:
            nbytes = element_size
            for dim, support, exprs, full_extent in dims:
                nbytes *= self._dim_extent(
                    name, dim, support, exprs, full_extent, sizes_by_var)
            total += nbytes
        return total

    def _dim_extent(self, name: str, dim: int, support: Tuple[str, ...],
                    exprs, full_extent: int,
                    sizes_by_var: Mapping[str, int]) -> int:
        key = (name, dim, tuple(sizes_by_var[v] for v in support))
        extent = self._extent_memo.get(key)
        if extent is None:
            box = dict(self._inner_box)
            for var in support:
                node = self._node_by_var[var]
                width = min(sizes_by_var[var], node.N)
                box[var] = (node.begin,
                            node.begin + (width - 1) * node.S)
            lo = hi = None
            widened = False
            for expr in exprs:
                expr_lo, expr_hi = partial_bounds(expr, box)
                if lo is None:
                    lo, hi = expr_lo, expr_hi
                    continue
                if lo.coeffs != expr_lo.coeffs or hi.coeffs != expr_hi.coeffs:
                    widened = True    # canonical_range widens to the array
                    break
                if expr_lo.constant < lo.constant:
                    lo = expr_lo
                if expr_hi.constant > hi.constant:
                    hi = expr_hi
            if widened:
                extent = full_extent
            else:
                delta = hi - lo
                extent = int(delta.constant) + 1 \
                    if delta.is_constant() else full_extent
            self._extent_memo[key] = extent
        return extent

    # -- DMA path (tier 2) -------------------------------------------------

    def _min_event_transfer(self, name: str,
                            sizes_map: Mapping[str, int]) -> float:
        """Cheapest transfer any swap event of *name* can carry: the min
        over every remainder-mask combination of the canonical-range
        transfer time (transfer is *not* monotone in tile widths — a
        wider range can coalesce into fewer DMA lines)."""
        key_vars = self.geometry.key_vars(name)
        memo_key = (name, tuple(sizes_map[v] for v in key_vars))
        cached = self._min_xfer.get(memo_key)
        if cached is not None:
            return cached
        rem_vars = []
        for var in key_vars:
            node = self._node_by_var[var]
            k = sizes_map[var]
            m = -(-node.N // k)
            rem_w = node.N - (m - 1) * k
            if rem_w != k:
                rem_vars.append((var, rem_w))
        if len(rem_vars) > _MAX_MASK_LEVELS:
            self._min_xfer[memo_key] = 0.0
            return 0.0
        best = math.inf
        try:
            for choice in product((False, True), repeat=len(rem_vars)):
                widths = dict(sizes_map)
                for (var, rem_w), take in zip(rem_vars, choice):
                    if take:
                        widths[var] = rem_w
                entry = self.geometry.range_entry(name, sizes_map, widths)
                if entry[1] < best:
                    best = entry[1]
        except LookupError:
            best = 0.0
        if not math.isfinite(best):
            best = 0.0
        self._min_xfer[memo_key] = best
        return best

    def _dma_path(self, sizes: Sequence[int], groups: Sequence[int],
                  sizes_map: Mapping[str, int]) -> float:
        """Total DMA busy-time floor: exact per-core swap-event counts
        (the planner's rollover rule) times the cheapest per-event
        transfer, summed over every core — all serialized on the single
        shared DMA engine."""
        depth = len(sizes)
        arrays = {}
        for name in self.component.arrays():
            dirs = self._dirs[name]
            if not dirs:
                continue
            xfer = self._min_event_transfer(name, sizes_map)
            if xfer <= 0.0:
                continue
            arrays[name] = (
                self.geometry.relevant_levels(name, sizes_map),
                dirs, xfer)
        if not arrays:
            return 0.0
        per_level = [
            self._level_options(j, k, r)
            for j, (k, r) in enumerate(zip(sizes, groups))
        ]
        total = 0.0
        for combo in product(*per_level):
            mult = 1
            for _opt, group_count in combo:
                mult *= group_count
            cnts = [opt[0] for opt, _ in combo]
            prefix = 1
            rollovers = []
            for j in range(depth):
                nxt = prefix * cnts[j]
                rollovers.append(nxt - prefix)
                prefix = nxt
            if prefix == 0:
                continue              # empty cores swap nothing
            for relevant, dirs, xfer in arrays.values():
                events = 1            # segment 1 loads every array
                for roll in range(depth):
                    if any(r == roll or (r > roll and cnts[r] > 1)
                           for r in relevant):
                        events += rollovers[roll]
                total += mult * events * dirs * xfer
        return total

    # -- objective floors (multi-objective search) -------------------------

    def spm_bytes_exact(self, sizes_map: Mapping[str, int]) -> Optional[int]:
        """The double-buffered SPM requirement for these tile sizes.

        Matches the planner's ``spm_bytes_needed`` (``2 * sum`` of the
        bounding-box bytes — thread groups never change bounding boxes),
        so for the multi-objective search the SPM objective is *known*
        before any plan is paid for.  None when geometry cannot resolve
        a bounding box (the planner would reject the candidate the same
        way); callers fall back to :meth:`spm_bytes_floor`."""
        try:
            return 2 * sum(
                self.geometry.bounding_bytes(name, sizes_map)
                for name in self.component.arrays())
        except LookupError:
            return None

    def spm_bytes_floor(self, sizes: Sequence[int]) -> int:
        """Closed-form admissible floor on the double-buffered SPM
        requirement: the quick tier's interval-arithmetic hull, doubled
        the same way the planner doubles for the ping/pong buffers."""
        return 2 * self._spm_floor(sizes)

    def _min_event_bytes(self, name: str,
                         sizes_map: Mapping[str, int]) -> int:
        """Cheapest payload any swap event of *name* can carry, in
        bytes: the byte twin of :meth:`_min_event_transfer` (minimized
        independently over the same remainder masks — each floor is
        admissible on its own axis)."""
        key_vars = self.geometry.key_vars(name)
        memo_key = (name, tuple(sizes_map[v] for v in key_vars))
        cached = self._min_bytes.get(memo_key)
        if cached is not None:
            return cached
        rem_vars = []
        for var in key_vars:
            node = self._node_by_var[var]
            k = sizes_map[var]
            m = -(-node.N // k)
            rem_w = node.N - (m - 1) * k
            if rem_w != k:
                rem_vars.append((var, rem_w))
        if len(rem_vars) > _MAX_MASK_LEVELS:
            self._min_bytes[memo_key] = 0
            return 0
        best: Optional[int] = None
        try:
            for choice in product((False, True), repeat=len(rem_vars)):
                widths = dict(sizes_map)
                for (var, rem_w), take in zip(rem_vars, choice):
                    if take:
                        widths[var] = rem_w
                entry = self.geometry.range_entry(name, sizes_map, widths)
                if best is None or entry[2] < best:
                    best = int(entry[2])
        except LookupError:
            best = 0
        best = 0 if best is None else best
        self._min_bytes[memo_key] = best
        return best

    def dma_bytes_floor(self, sizes: Sequence[int], groups: Sequence[int],
                        sizes_map: Mapping[str, int]) -> int:
        """Admissible floor on ``ComponentPlan.total_transferred_bytes``.

        The exact swap-event counts of :meth:`_dma_path` (the planner's
        rollover rule), each event charged the cheapest payload any
        event of its array could possibly carry.  Pure integer
        arithmetic, so no safety factor is needed — there is no float
        rounding to absorb."""
        arrays = {}
        for name in self.component.arrays():
            dirs = self._dirs[name]
            if not dirs:
                continue
            nbytes = self._min_event_bytes(name, sizes_map)
            if nbytes <= 0:
                continue
            arrays[name] = (
                self.geometry.relevant_levels(name, sizes_map),
                dirs, nbytes)
        if not arrays:
            return 0
        depth = len(sizes)
        per_level = [
            self._level_options(j, k, r)
            for j, (k, r) in enumerate(zip(sizes, groups))
        ]
        total = 0
        for combo in product(*per_level):
            mult = 1
            for _opt, group_count in combo:
                mult *= group_count
            cnts = [opt[0] for opt, _ in combo]
            prefix = 1
            rollovers = []
            for j in range(depth):
                nxt = prefix * cnts[j]
                rollovers.append(nxt - prefix)
                prefix = nxt
            if prefix == 0:
                continue              # empty cores swap nothing
            for relevant, dirs, nbytes in arrays.values():
                events = 1            # segment 1 loads every array
                for roll in range(depth):
                    if any(r == roll or (r > roll and cnts[r] > 1)
                           for r in relevant):
                        events += rollovers[roll]
                total += mult * events * dirs * nbytes
        return total
