"""Optimization solutions: tile sizes and thread-group assignments.

A :class:`Solution` binds a tilable component to per-level tile sizes
``l_j.K`` and thread-group counts ``l_j.R`` (Section 3.4) and derives all
the bookkeeping the scheduler needs: iteration-range counts ``l_j.M``,
ranges per group ``l_j.Z``, the core -> thread-group mapping, and each
core's tile sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from ..loopir.component import TilableComponent


@dataclass(frozen=True)
class LevelParams:
    """Derived per-level quantities of Section 3.4."""

    var: str
    N: int
    K: int     # tile size
    R: int     # thread groups
    M: int     # iteration ranges: ceil(N / K)
    Z: int     # ranges per thread group: ceil(M / R)

    @property
    def remainder_width(self) -> int:
        """Width of the final (possibly partial) iteration range."""
        return self.N - (self.M - 1) * self.K

    def tile_width(self, index: int) -> int:
        if not 0 <= index < self.M:
            raise IndexError(
                f"level {self.var}: tile {index} out of range 0..{self.M - 1}")
        return self.K if index < self.M - 1 else self.remainder_width

    def group_tiles(self, group: int) -> range:
        """Contiguous block of iteration-range indices owned by *group*."""
        first = group * self.Z
        last = min((group + 1) * self.Z, self.M)
        return range(first, max(first, last))


class Solution:
    """One point of the optimization space for a tilable component."""

    def __init__(self, component: TilableComponent,
                 tile_sizes: Mapping[str, int],
                 thread_groups: Mapping[str, int] | None = None):
        self.component = component
        thread_groups = thread_groups or {}
        levels: List[LevelParams] = []
        for node in component.nodes:
            k = int(tile_sizes[node.var])
            r = int(thread_groups.get(node.var, 1))
            if k <= 0 or k > node.N:
                raise ValueError(
                    f"tile size for {node.var} must be in 1..{node.N}, got {k}")
            if r <= 0:
                raise ValueError(f"thread groups for {node.var} must be >= 1")
            if r > 1 and not node.parallel:
                raise ValueError(
                    f"{node.var} is not parallelizable (R must be 1)")
            m = math.ceil(node.N / k)
            if r > m:
                raise ValueError(
                    f"{node.var}: {r} thread groups but only {m} ranges")
            levels.append(LevelParams(
                var=node.var, N=node.N, K=k, R=r, M=m, Z=math.ceil(m / r)))
        self.levels: Tuple[LevelParams, ...] = tuple(levels)

    # -- basic quantities ---------------------------------------------------

    @property
    def tile_sizes(self) -> Dict[str, int]:
        return {lv.var: lv.K for lv in self.levels}

    @property
    def thread_groups(self) -> Dict[str, int]:
        return {lv.var: lv.R for lv in self.levels}

    @property
    def threads(self) -> int:
        """Total cores required: prod(l_j.R)."""
        total = 1
        for level in self.levels:
            total *= level.R
        return total

    @property
    def total_tiles(self) -> int:
        total = 1
        for level in self.levels:
            total *= level.M
        return total

    def level(self, var: str) -> LevelParams:
        for level in self.levels:
            if level.var == var:
                return level
        raise KeyError(var)

    # -- core -> thread-group mapping (Section 3.4) -------------------------

    def group_ids(self, core: int) -> Tuple[int, ...]:
        """Per-level thread-group id of *core* (outermost level first).

        Matches the paper's formula
        ``threadID() % prod_{k=j..L} R_k / prod_{k=j+1..L} R_k``.
        """
        ids = []
        suffix = self.threads
        for level in self.levels:
            suffix //= level.R
            ids.append((core % (suffix * level.R)) // suffix)
        return tuple(ids)

    def core_tile_counts(self, core: int) -> Tuple[int, ...]:
        """Number of iteration ranges owned by *core* at each level."""
        return tuple(
            len(level.group_tiles(group))
            for level, group in zip(self.levels, self.group_ids(core)))

    def segments_on_core(self, core: int) -> int:
        total = 1
        for count in self.core_tile_counts(core):
            total *= count
        return total

    def max_segments_per_core(self) -> int:
        return max(self.segments_on_core(c) for c in range(self.threads))

    def core_tiles(self, core: int) -> Iterator[Dict[str, int]]:
        """This core's tile-index vectors in execution (odometer) order."""
        blocks = [
            level.group_tiles(group)
            for level, group in zip(self.levels, self.group_ids(core))
        ]

        def recurse(level: int, chosen: Dict[str, int]):
            if level == len(self.levels):
                yield dict(chosen)
                return
            var = self.levels[level].var
            for index in blocks[level]:
                chosen[var] = index
                yield from recurse(level + 1, chosen)

        yield from recurse(0, {})

    def tile_widths(self, tile_indices: Mapping[str, int]) -> Tuple[int, ...]:
        """Per-level iteration counts of one tile."""
        return tuple(
            level.tile_width(tile_indices[level.var]) for level in self.levels)

    def key(self) -> Tuple[Tuple[str, int, int], ...]:
        """Hashable identity used for memoization in the optimizer."""
        return tuple((lv.var, lv.K, lv.R) for lv in self.levels)

    def describe(self) -> str:
        """Compact human-readable form matching the paper's notation."""
        groups = ", ".join(f"'{lv.var}': {lv.R}" for lv in self.levels)
        sizes = ", ".join(f"'{lv.var}': {lv.K}" for lv in self.levels)
        return "R: {" + groups + "} K: {" + sizes + "}"

    def __repr__(self) -> str:
        return f"Solution({self.describe()})"
