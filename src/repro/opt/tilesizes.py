"""``select_tile_sizes`` (Algorithm 1, lines 19-28).

For a level with trip count ``N`` partitioned across ``R`` thread groups,
iterate K from 1 to N and keep exactly the smallest tile size for each
achievable number ``Z = ceil(ceil(N/K) / R)`` of iteration ranges per
group: those are the most load-balanced choices.  The paper's example
(N=24, R=4) yields {1, 2, 3, 6}.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

#: Memoized candidate lists.  The search revisits the same (N, R) pair
#: constantly — twice per node per assignment in the exhaustive search
#: alone — and the O(N) scan below is pure, so a module-level cache is
#: safe.  Values are stored as tuples; callers get a fresh list.
_CANDIDATES: Dict[Tuple[int, int], Tuple[int, ...]] = {}


def select_tile_sizes(n: int, groups: int) -> List[int]:
    """Candidate tile sizes for one level (ascending)."""
    cached = _CANDIDATES.get((n, groups))
    if cached is None:
        if n <= 0:
            raise ValueError("trip count must be positive")
        if groups <= 0:
            raise ValueError("thread-group count must be positive")
        candidates: List[int] = []
        prev_z = math.inf
        for k in range(1, n + 1):
            m = math.ceil(n / k)
            z = math.ceil(m / groups)
            if z < prev_z:
                candidates.append(k)
            prev_z = min(prev_z, z)
        cached = tuple(candidates)
        _CANDIDATES[(n, groups)] = cached
    return list(cached)
