"""Non-dominated thread-group assignments (Section 4.3).

An assignment ``(l_1.R, ..., l_L.R)`` is valid when every ``R_j`` is 1 for
non-parallelizable levels, ``R_j <= l_j.N`` and ``prod R_j <= P``.  An
assignment dominates another when it is >= componentwise; dominated
assignments never need to be explored because a strictly more parallel one
exists.  The paper's example on P=10 and two parallel levels yields
(10,1), (5,2), (3,3), (2,5), (1,10).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..loopir.component import TilableComponent


def valid_assignments(cores: int, max_groups: Sequence[int]
                      ) -> List[Tuple[int, ...]]:
    """All componentwise-valid assignments with product <= cores."""
    out: List[Tuple[int, ...]] = []

    def recurse(level: int, chosen: List[int], budget: int):
        if level == len(max_groups):
            out.append(tuple(chosen))
            return
        limit = min(budget, max_groups[level])
        for groups in range(1, limit + 1):
            chosen.append(groups)
            recurse(level + 1, chosen, budget // groups)
            chosen.pop()

    recurse(0, [], cores)
    return out


def dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    """a dominates b: a >= b componentwise and a != b."""
    return all(x >= y for x, y in zip(a, b)) and tuple(a) != tuple(b)


def nondominated(assignments: Sequence[Tuple[int, ...]]
                 ) -> List[Tuple[int, ...]]:
    """Filter out every assignment dominated by another one."""
    out = []
    for candidate in assignments:
        if not any(dominates(other, candidate) for other in assignments):
            out.append(candidate)
    return sorted(set(out), reverse=True)


def generate_nondominated_thread_groups(
        cores: int, component: TilableComponent) -> List[Tuple[int, ...]]:
    """``generate_nondominated_thread_groups(P, L)`` of Algorithm 1."""
    max_groups = [
        node.N if node.parallel else 1 for node in component.nodes
    ]
    max_groups = [min(m, cores) for m in max_groups]
    return nondominated(valid_assignments(cores, max_groups))
