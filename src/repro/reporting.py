"""Report formatting for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; these
helpers render the rows/series as aligned text tables (printed to stdout
and archived under ``benchmarks/results/``) plus a JSON sidecar so
EXPERIMENTS.md can quote exact numbers.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_value(value: Cell) -> str:
    """Human formatting: thousands separators, short floats, inf/None."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return f"{value:,}"


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Cell]],
                 title: str = "") -> str:
    """Render an aligned text table."""
    text_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(
        h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(
            cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def results_dir() -> Path:
    """Where benchmark outputs are archived (override via REPRO_RESULTS)."""
    root = os.environ.get("REPRO_RESULTS")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


class ExperimentReport:
    """Collects the rows of one experiment and archives them."""

    def __init__(self, experiment_id: str, title: str,
                 headers: Sequence[str]):
        self.experiment_id = experiment_id
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[Cell]] = []
        self.notes: List[str] = []

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{self.experiment_id}: row has {len(cells)} cells, "
                f"expected {len(self.headers)}")
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        text = format_table(
            self.headers, self.rows,
            title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def save(self) -> Path:
        """Write <id>.txt and <id>.json into the results directory."""
        directory = results_dir()
        text_path = directory / f"{self.experiment_id}.txt"
        text_path.write_text(self.render() + "\n")
        payload = {
            "experiment": self.experiment_id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
        }
        (directory / f"{self.experiment_id}.json").write_text(
            json.dumps(payload, indent=2, default=str) + "\n")
        return text_path

    def emit(self) -> str:
        """Print, archive, and return the rendered table."""
        text = self.render()
        print("\n" + text)
        self.save()
        return text


def diagnostics_note(bag) -> str:
    """One-line :class:`~repro.analysis.DiagnosticBag` summary.

    Formatted for :meth:`ExperimentReport.add_note`, so archived benches
    record the static-verification outcome next to their numbers."""
    if not bag:
        return "static analysis: clean"
    counts = ", ".join(
        f"{code}×{count}" for code, count in sorted(
            bag.by_code().items()))
    return (f"static analysis: {len(bag.errors)} error(s), "
            f"{len(bag.warnings)} warning(s) ({counts})")


def fission_note(result) -> str:
    """One-line :class:`~repro.loopir.fission.FissionResult` summary.

    Printed by ``compile --fission auto`` and archived next to the
    fission bench numbers, so every run records which loops were
    distributed (or that the pre-pass proved nothing splittable)."""
    if not result.changed:
        return ("fission: no legal distribution "
                "(kernel unchanged)")
    splits = "; ".join(
        f"{split.var} -> {'|'.join(split.new_vars)}"
        for split in result.splits)
    return (f"fission: {len(result.splits)} loop(s) distributed "
            f"({splits})")


def engine_note(metrics) -> str:
    """One-line :class:`~repro.opt.engine.EngineMetrics` summary.

    Formatted for :meth:`ExperimentReport.add_note`, so every archived
    bench records how its numbers were produced (pool width, evaluation
    throughput, cache hit rate, worker utilization)."""
    parts = [f"engine: jobs={metrics.jobs}",
             f"{metrics.evaluations:,} evals"]
    if metrics.elapsed_s > 0:
        parts.append(f"{metrics.evaluations_per_s:,.0f} evals/s")
    parts.append(f"cache hit rate {metrics.cache_hit_rate:.1%}")
    if getattr(metrics, "pruned", 0):
        parts.append(f"{metrics.pruned:,} pruned")
    if getattr(metrics, "bound_hits", 0):
        parts.append(f"{metrics.bound_hits:,} bound hits")
    if getattr(metrics, "batched", 0):
        parts.append(f"{metrics.batched:,} batched")
    if getattr(metrics, "batch_fallbacks", 0):
        parts.append(f"{metrics.batch_fallbacks:,} batch fallbacks")
    if metrics.jobs > 1:
        parts.append(
            f"worker utilization {metrics.worker_utilization:.1%}")
    return ", ".join(parts)


def shard_note(result) -> str:
    """One-line :class:`~repro.opt.shard.ShardWorkerResult` summary.

    Shows how one worker's claim loop went — chunks drained, the
    scored/pruned split, claim contention, and the best feasible rank
    it saw — the line printed per shard worker and archived next to
    the shard-scaling bench numbers."""
    parts = [f"shard worker {result.worker}: "
             f"{result.chunks_done} chunk(s), "
             f"{result.candidates:,} candidates "
             f"({result.scored:,} scored, {result.pruned:,} pruned)"]
    if result.bound_hits:
        parts.append(f"{result.bound_hits:,} bound hits")
    if result.contention:
        parts.append(f"{result.contention:,} claim collisions")
    if result.best is not None:
        parts.append(f"best {result.best[0]:,.0f} ns")
    parts.append(f"{result.elapsed_s:.3f} s")
    return ", ".join(parts)


def robust_note(result) -> str:
    """One-line robust-search summary for one component result.

    Accepts a :class:`~repro.opt.robust.RobustComponentResult`; shows
    the risk objective, nominal vs robust winner, the regret the nominal
    winner would have carried, and the most fragile timing parameter —
    the line archived next to robust-compile bench numbers and printed
    by ``compile --robust-timing``."""
    label = result.risk if result.risk != "cvar" \
        else f"cvar-{result.alpha:g}"
    if not result.scenario_count or result.robust is None:
        return f"robust: {label}, 0 scenarios (nominal winner kept)"
    parts = [f"robust: {label} over {result.scenario_count} scenarios "
             f"(seed {result.seed}, spread ±{result.spread:g})"]
    if result.switched:
        parts.append(
            f"winner switched {result.nominal.solution.describe()} -> "
            f"{result.robust.solution.describe()}, regret "
            f"{result.regret_ns:,.0f} ns "
            f"({result.regret_ns / result.robust.risk_ns:.2%})")
    else:
        parts.append("nominal winner already robust")
    parts.append(f"risk {result.robust.risk_ns:,.0f} ns, worst "
                 f"{result.robust.worst_ns:,.0f} ns")
    if result.sensitivity:
        top = result.sensitivity[0]
        parts.append(f"most fragile: {top.parameter} "
                     f"(+{top.delta_ns:,.0f} ns adverse)")
    return ", ".join(parts)


def pareto_note(result) -> str:
    """One-line pareto-sweep summary for one component result.

    Accepts a :class:`~repro.opt.pareto.ParetoComponentResult`; shows
    the front size, how much of the candidate space the bound tiers
    eliminated, and the makespan span the front covers — the line
    printed by ``compile --pareto`` and archived next to frontier
    bench numbers."""
    if not result.front:
        return "pareto: empty front (no feasible candidate)"
    fastest = result.front[0]
    leanest = min(result.front, key=lambda p: p.spm_bytes)
    parts = [f"pareto: {result.front_size} front members from "
             f"{result.candidates:,} candidates "
             f"({result.pruned_fraction:.1%} bound-pruned, "
             f"{result.dominance_pruned:,} by dominance)"]
    parts.append(
        f"makespan {fastest.makespan_ns:,.0f} ns at "
        f"{fastest.spm_bytes:,} B SPM down to "
        f"{leanest.spm_bytes:,} B SPM at "
        f"{leanest.makespan_ns:,.0f} ns")
    return ", ".join(parts)


def pareto_table(front, title: str = "") -> str:
    """Aligned frontier table for a sweep or composed front.

    Accepts any sequence of points exposing the four objectives and
    ``describe()`` — per-component :class:`~repro.opt.pareto.
    ParetoPoint` rows and kernel-level :class:`~repro.opt.pareto.
    ComposedPoint` rows alike."""
    headers = ["makespan ns", "SPM B", "DMA B", "cores", "solution"]
    rows = [
        [point.makespan_ns, point.spm_bytes, point.dma_bytes,
         point.cores, point.describe()]
        for point in front
    ]
    return format_table(headers, rows, title=title)


def full_grid_enabled() -> bool:
    """REPRO_FULL=1 switches benches to the paper's complete sweeps."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false")


def log2_label(value: float) -> str:
    """Bus speeds as the paper labels them: powers of two in GB/s."""
    if value >= 1:
        return f"{value:g}"
    return f"1/{round(1 / value):d}"
