"""Explicit phase DAG (Section 4.2) and its longest path.

The optimizer uses the fast recurrence in :mod:`repro.schedule.pipeline`;
this module materialises the same precedence structure as a DAG — nodes are
execution phases and memory phases, edges are (a) same-core segment order,
(b) DMA round-robin order, (c) data constraints between memory and
execution phases — and computes the makespan as the weighted longest path.
The test-suite asserts both evaluators agree on every schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..prem.segments import CoreSchedule

EXEC = "exec"
MEM = "mem"
INIT = "init"


def build_phase_dag(cores: Sequence[CoreSchedule]) -> "nx.DiGraph":
    """The phase DAG: node weights are phase lengths in nanoseconds.

    Nodes are ``(kind, core, index)``: ``(INIT, i, 0)`` for initialisation
    segments, ``(EXEC, i, s)`` for execution phases and ``(MEM, i, s)`` for
    the combined memory phase in slot ``s``.  Zero-length memory phases are
    omitted (they occupy no DMA time).
    """
    graph = nx.DiGraph()
    active = [core for core in cores if core.n_segments > 0]

    for core in active:
        graph.add_node((INIT, core.core, 0), weight=core.init_api_ns)
        for segment in range(1, core.n_segments + 1):
            graph.add_node((EXEC, core.core, segment),
                           weight=core.exec_ns[segment - 1])
        for slot in range(1, core.n_segments + 3):
            if core.mem_slot_ns[slot - 1] > 0:
                graph.add_node((MEM, core.core, slot),
                               weight=core.mem_slot_ns[slot - 1])

    # (a) same-core order + init before first segment.
    for core in active:
        previous = (INIT, core.core, 0)
        for segment in range(1, core.n_segments + 1):
            node = (EXEC, core.core, segment)
            graph.add_edge(previous, node)
            previous = node

    # (b) single DMA, round-robin slot-major then core order.
    mem_nodes: List[Tuple[str, int, int]] = []
    max_slots = max(core.n_segments + 2 for core in active)
    for slot in range(1, max_slots + 1):
        for core in active:
            node = (MEM, core.core, slot)
            if graph.has_node(node):
                mem_nodes.append(node)
    for before, after in zip(mem_nodes, mem_nodes[1:]):
        graph.add_edge(before, after)

    # (c) data constraints.
    for core in active:
        for slot in range(1, core.n_segments + 3):
            node = (MEM, core.core, slot)
            if not graph.has_node(node):
                continue
            # The combined op reuses buffers freed by segment slot-2.
            gate = min(slot - 2, core.n_segments)
            if gate >= 1:
                graph.add_edge((EXEC, core.core, gate), node)
            else:
                graph.add_edge((INIT, core.core, 0), node)
        for segment in range(1, core.n_segments + 1):
            dep = core.dep_slot[segment - 1]
            if dep and graph.has_node((MEM, core.core, dep)):
                graph.add_edge((MEM, core.core, dep),
                               (EXEC, core.core, segment))
    return graph


def dag_makespan(cores: Sequence[CoreSchedule]) -> float:
    """Longest weighted path through the phase DAG."""
    active = [core for core in cores if core.n_segments > 0]
    if not active:
        return 0.0
    graph = build_phase_dag(cores)
    finish: Dict[Tuple[str, int, int], float] = {}
    for node in nx.topological_sort(graph):
        start = max(
            (finish[pred] for pred in graph.predecessors(node)), default=0.0)
        finish[node] = start + graph.nodes[node]["weight"]
    return max(finish.values(), default=0.0)
