"""Event-driven evaluation of the parallel streaming PREM schedule.

The paper encodes the schedule as a DAG of execution and memory phases and
takes the longest path (Section 4.2).  For the streaming structure at hand
— per-core segment chains plus a single DMA serving cores round-robin —
the longest path equals the completion time of an event-driven simulation
of the recurrences:

    M(i, s) = max(DMA-previous-op end, E(i, s-2)) + mem(i, s)
    E(i, s) = max(E(i, s-1), M(i, dep_slot(i, s))) + exec(i, s)

where ``M`` are DMA (memory-phase) completions in round-robin order
(slot-major, then core), ``E(i, 0)`` is the initialisation segment, and
``dep_slot`` points at the slot whose transfers segment ``s`` needs.
:mod:`repro.schedule.dag` builds the explicit DAG for inspection and as a
cross-check; this module is the fast evaluator used inside the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..prem.segments import CoreSchedule


@dataclass(frozen=True)
class PipelineResult:
    """Timing of one component execution."""

    makespan_ns: float
    exec_finish_ns: float      # last execution phase completion
    dma_finish_ns: float       # last memory phase completion
    dma_busy_ns: float         # total DMA occupancy
    exec_busy_ns: float        # total core occupancy (max over cores)


@dataclass(frozen=True)
class PipelineOp:
    """One scheduled operation of the evaluated pipeline timeline."""

    kind: str           # "mem" (DMA op in a slot) or "exec" (segment)
    core: int
    index: int          # slot number (mem) or segment number (exec)
    start_ns: float
    end_ns: float

    @property
    def length_ns(self) -> float:
        return self.end_ns - self.start_ns


def static_timeline(cores: Sequence[CoreSchedule]) -> List[PipelineOp]:
    """Every operation's unfaulted static placement, in issue order.

    This is the schedule a real PREM deployment launches phases by; the
    timing invariant checker replays faulted durations against it.
    """
    timeline: List[PipelineOp] = []
    evaluate_pipeline(cores, timeline=timeline)
    return timeline


def evaluate_pipeline(cores: Sequence[CoreSchedule],
                      injector=None,
                      timeline: Optional[List[PipelineOp]] = None
                      ) -> PipelineResult:
    """Makespan of one component execution over the given core schedules.

    *injector* (duck-typed, see :class:`repro.faults.FaultInjector`) may
    stretch individual DMA ops (``mem_ns``) and execution phases
    (``exec_ns``); *timeline* collects every operation's placement.  Both
    default to ``None``, leaving the hot path untouched.
    """
    active = [core for core in cores if core.n_segments > 0]
    if not active:
        return PipelineResult(0.0, 0.0, 0.0, 0.0, 0.0)

    exec_end: Dict[int, List[float]] = {}
    slot_end: Dict[int, Dict[int, float]] = {}
    for core in active:
        # exec_end[core][0] is the initialisation segment.
        exec_end[core.core] = [core.init_api_ns]
        slot_end[core.core] = {}

    dma_clock = 0.0
    dma_busy = 0.0
    max_slots = max(core.n_segments + 2 for core in active)

    for slot in range(1, max_slots + 1):
        # Round-robin DMA pass for this slot.
        for core in active:
            if slot > core.n_segments + 2:
                continue
            length = core.mem_slot_ns[slot - 1]
            if length <= 0.0:
                continue
            if injector is not None:
                length = injector.mem_ns(core.core, slot, length)
            ends = exec_end[core.core]
            gate_idx = min(max(slot - 2, 0), len(ends) - 1)
            start = max(dma_clock, ends[gate_idx])
            dma_clock = start + length
            dma_busy += length
            slot_end[core.core][slot] = dma_clock
            if timeline is not None:
                timeline.append(PipelineOp(
                    "mem", core.core, slot, start, dma_clock))
        # Execution phases for segment == slot.
        for core in active:
            if slot > core.n_segments:
                continue
            ends = exec_end[core.core]
            ready = ends[-1]
            dep = core.dep_slot[slot - 1]
            if dep:
                ready = max(ready, slot_end[core.core].get(dep, 0.0))
            length = core.exec_ns[slot - 1]
            if injector is not None:
                length = injector.exec_ns(core.core, slot, length)
            ends.append(ready + length)
            if timeline is not None:
                timeline.append(PipelineOp(
                    "exec", core.core, slot, ready, ends[-1]))

    exec_finish = max(exec_end[core.core][-1] for core in active)
    dma_finish = max(
        (max(slots.values()) for slots in slot_end.values() if slots),
        default=0.0)
    makespan = max(exec_finish, dma_finish)
    exec_busy = max(
        core.init_api_ns + core.exec_ns_total for core in active)
    return PipelineResult(
        makespan_ns=makespan,
        exec_finish_ns=exec_finish,
        dma_finish_ns=dma_finish,
        dma_busy_ns=dma_busy,
        exec_busy_ns=exec_busy,
    )
