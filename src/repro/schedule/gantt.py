"""Text Gantt rendering of a PREM schedule (Figure 3.4-style timelines).

Replays the pipeline recurrence while recording the start/end of every
phase, then renders per-lane timelines: one lane per core's execution
phases and one lane for the shared DMA.  Useful for inspecting how well
memory phases hide behind execution and where the DMA serialises cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..prem.segments import CoreSchedule


@dataclass(frozen=True)
class PhaseSpan:
    """One scheduled phase occurrence."""

    kind: str          # "init" | "exec" | "mem"
    core: int
    index: int         # segment number or DMA slot
    start_ns: float
    end_ns: float

    @property
    def length_ns(self) -> float:
        return self.end_ns - self.start_ns


def schedule_spans(cores: Sequence[CoreSchedule]) -> List[PhaseSpan]:
    """All phase spans of one component execution, in start order.

    Mirrors :func:`repro.schedule.pipeline.evaluate_pipeline` exactly; the
    test-suite cross-checks that the last span ends at the makespan.
    """
    active = [core for core in cores if core.n_segments > 0]
    spans: List[PhaseSpan] = []
    if not active:
        return spans

    exec_end: Dict[int, List[float]] = {}
    slot_end: Dict[int, Dict[int, float]] = {}
    for core in active:
        spans.append(PhaseSpan("init", core.core, 0, 0.0, core.init_api_ns))
        exec_end[core.core] = [core.init_api_ns]
        slot_end[core.core] = {}

    dma_clock = 0.0
    max_slots = max(core.n_segments + 2 for core in active)
    for slot in range(1, max_slots + 1):
        for core in active:
            if slot > core.n_segments + 2:
                continue
            length = core.mem_slot_ns[slot - 1]
            if length <= 0.0:
                continue
            ends = exec_end[core.core]
            gate_idx = min(max(slot - 2, 0), len(ends) - 1)
            start = max(dma_clock, ends[gate_idx])
            dma_clock = start + length
            slot_end[core.core][slot] = dma_clock
            spans.append(
                PhaseSpan("mem", core.core, slot, start, dma_clock))
        for core in active:
            if slot > core.n_segments:
                continue
            ends = exec_end[core.core]
            ready = ends[-1]
            dep = core.dep_slot[slot - 1]
            if dep:
                ready = max(ready, slot_end[core.core].get(dep, 0.0))
            finish = ready + core.exec_ns[slot - 1]
            spans.append(PhaseSpan("exec", core.core, slot, ready, finish))
            ends.append(finish)

    spans.sort(key=lambda s: (s.start_ns, s.core, s.kind))
    return spans


def render_gantt(cores: Sequence[CoreSchedule], width: int = 72,
                 max_segments: Optional[int] = None) -> str:
    """ASCII timeline: one row per core plus a DMA row.

    Execution phases print as digits (segment number mod 10), init as
    ``i``, DMA transfers as the owning core's digit on the DMA lane.
    """
    spans = schedule_spans(cores)
    if not spans:
        return "(empty schedule)"
    if max_segments is not None:
        spans = [s for s in spans
                 if s.kind != "exec" or s.index <= max_segments]
    horizon = max(span.end_ns for span in spans)
    if horizon <= 0:
        return "(zero-length schedule)"
    scale = width / horizon

    core_ids = sorted({span.core for span in spans})
    lanes: Dict[str, List[str]] = {}
    for core in core_ids:
        lanes[f"core {core}"] = [" "] * width
    lanes["dma   "] = [" "] * width

    for span in spans:
        first = min(width - 1, int(span.start_ns * scale))
        last = min(width - 1, max(first, int(span.end_ns * scale) - 1))
        if span.kind == "mem":
            lane = lanes["dma   "]
            glyph = str(span.core % 10)
        else:
            lane = lanes[f"core {span.core}"]
            glyph = "i" if span.kind == "init" else str(span.index % 10)
        for column in range(first, last + 1):
            lane[column] = glyph

    lines = [f"0 ns {'-' * (width - 14)} {horizon:,.0f} ns"]
    for label, cells in lanes.items():
        lines.append(f"{label} |{''.join(cells)}|")
    return "\n".join(lines)
