"""PREM schedule evaluation: phase DAG, pipeline recurrence, makespan."""

from .dag import build_phase_dag, dag_makespan
from .gantt import PhaseSpan, render_gantt, schedule_spans
from .makespan import (
    DEFAULT_SEGMENT_CAP,
    MakespanEvaluator,
    MakespanResult,
)
from .pipeline import (
    PipelineOp,
    PipelineResult,
    evaluate_pipeline,
    static_timeline,
)
from .validate import (
    ExactExecModel,
    ValidationResult,
    validate_static,
    validate_timing_model,
)

__all__ = [
    "build_phase_dag", "dag_makespan",
    "PhaseSpan", "render_gantt", "schedule_spans",
    "DEFAULT_SEGMENT_CAP", "MakespanEvaluator", "MakespanResult",
    "PipelineOp", "PipelineResult", "evaluate_pipeline", "static_timeline",
    "ExactExecModel", "ValidationResult", "validate_static",
    "validate_timing_model",
]
