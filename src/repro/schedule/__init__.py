"""PREM schedule evaluation: phase DAG, pipeline recurrence, makespan."""

from .dag import build_phase_dag, dag_makespan
from .gantt import PhaseSpan, render_gantt, schedule_spans
from .makespan import (
    DEFAULT_SEGMENT_CAP,
    MakespanEvaluator,
    MakespanResult,
)
from .pipeline import PipelineResult, evaluate_pipeline
from .validate import ExactExecModel, ValidationResult, validate_timing_model

__all__ = [
    "build_phase_dag", "dag_makespan",
    "PhaseSpan", "render_gantt", "schedule_spans",
    "DEFAULT_SEGMENT_CAP", "MakespanEvaluator", "MakespanResult",
    "PipelineResult", "evaluate_pipeline",
    "ExactExecModel", "ValidationResult", "validate_timing_model",
]
