"""Component makespan evaluation: plan -> pipeline -> result.

This is the ``makespan((l.R...), (l.K...))`` function of Algorithm 1: it
plans the PREM segment schedule for one optimization solution and returns
its length, or infinity when the solution is infeasible (SPM overflow,
overlap-illegal written ranges, or past the segment-count evaluation cap —
tiny tiles are dominated by per-segment overhead long before that cap, so
the search simply moves away from them).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import OptimizerTimeout
from ..loopir.component import TilableComponent
from ..opt.solution import Solution
from ..prem.segments import ComponentPlan, PlanError, SegmentPlanner
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .pipeline import PipelineResult, evaluate_pipeline

#: Solutions needing more segments per core than this evaluate to +inf.
DEFAULT_SEGMENT_CAP = 8192


@dataclass
class MakespanResult:
    """Outcome of evaluating one solution for one component execution."""

    component: TilableComponent
    solution: Solution
    makespan_ns: float
    feasible: bool
    reason: str = ""
    plan: Optional[ComponentPlan] = None
    pipeline: Optional[PipelineResult] = None

    @property
    def total_makespan_ns(self) -> float:
        """Makespan over all ``first(L).I`` executions of the component."""
        return self.makespan_ns * self.component.executions

    @property
    def transferred_bytes(self) -> int:
        return self.plan.total_transferred_bytes if self.plan else 0

    @property
    def spm_bytes_needed(self) -> int:
        return self.plan.spm_bytes_needed if self.plan else 0


class MakespanEvaluator:
    """Caches planning state so Algorithm 1 can probe many solutions."""

    def __init__(self, component: TilableComponent, platform: Platform,
                 exec_model: ExecModel,
                 segment_cap: int = DEFAULT_SEGMENT_CAP,
                 modes: Mapping[str, str] | None = None):
        self.component = component
        self.platform = platform
        self.exec_model = exec_model
        self.segment_cap = segment_cap
        self.planner = SegmentPlanner(component, platform, exec_model, modes)
        self._cache: Dict[tuple, MakespanResult] = {}
        self.evaluations = 0
        self.deadline: Optional[float] = None
        self.stage: str = "optimize"
        self.budget_s: float = 0.0

    def set_deadline(self, deadline: Optional[float],
                     stage: str = "optimize",
                     budget_s: float = 0.0) -> None:
        """Arm a cooperative wall-clock budget.

        Every *fresh* evaluation first checks the clock and raises
        :class:`OptimizerTimeout` once the deadline has passed — the
        hook the compiler's fallback chain relies on to bound each
        optimization stage.  Cache hits stay free of the check.
        """
        self.deadline = deadline
        self.stage = stage
        self.budget_s = budget_s

    def evaluate(self, solution: Solution) -> MakespanResult:
        key = solution.key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.deadline is not None and \
                time.perf_counter() > self.deadline:
            raise OptimizerTimeout(self.stage, self.budget_s)
        self.evaluations += 1
        try:
            plan = self.planner.plan(solution, self.segment_cap)
        except PlanError as error:
            result = MakespanResult(
                component=self.component,
                solution=solution,
                makespan_ns=math.inf,
                feasible=False,
                reason=str(error),
            )
            self._cache[key] = result
            return result
        pipeline = evaluate_pipeline(plan.cores)
        result = MakespanResult(
            component=self.component,
            solution=solution,
            makespan_ns=pipeline.makespan_ns,
            feasible=True,
            plan=plan,
            pipeline=pipeline,
        )
        self._cache[key] = result
        return result

    def evaluate_params(self, tile_sizes: Mapping[str, int],
                        thread_groups: Mapping[str, int] | None = None
                        ) -> MakespanResult:
        """Convenience wrapper building the Solution object."""
        try:
            solution = Solution(self.component, tile_sizes, thread_groups)
        except ValueError as error:
            return MakespanResult(
                component=self.component,
                solution=None,            # type: ignore[arg-type]
                makespan_ns=math.inf,
                feasible=False,
                reason=str(error),
            )
        return self.evaluate(solution)
