"""Component makespan evaluation: plan -> pipeline -> result.

This is the ``makespan((l.R...), (l.K...))`` function of Algorithm 1: it
plans the PREM segment schedule for one optimization solution and returns
its length, or infinity when the solution is infeasible (SPM overflow,
overlap-illegal written ranges, or past the segment-count evaluation cap —
tiny tiles are dominated by per-segment overhead long before that cap, so
the search simply moves away from them).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import OptimizerTimeout
from ..loopir.component import TilableComponent
from ..opt.cache import PersistentCache, context_fingerprint, solution_digest
from ..opt.solution import Solution
from ..prem.segments import (ArrayGeometry, ComponentPlan, PlanError,
                             SegmentPlanner)
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .pipeline import PipelineResult, evaluate_pipeline

#: Solutions needing more segments per core than this evaluate to +inf.
DEFAULT_SEGMENT_CAP = 8192


@dataclass
class MakespanResult:
    """Outcome of evaluating one solution for one component execution."""

    component: TilableComponent
    solution: Solution
    makespan_ns: float
    feasible: bool
    reason: str = ""
    plan: Optional[ComponentPlan] = None
    pipeline: Optional[PipelineResult] = None
    #: True when the outcome came out of the persistent cache (no plan
    #: was constructed this run); the byte totals below then carry the
    #: cached values a live plan would have reported.
    from_cache: bool = False
    transferred_bytes_hint: int = 0
    spm_bytes_hint: int = 0

    @property
    def total_makespan_ns(self) -> float:
        """Makespan over all ``first(L).I`` executions of the component."""
        return self.makespan_ns * self.component.executions

    @property
    def transferred_bytes(self) -> int:
        if self.plan is not None:
            return self.plan.total_transferred_bytes
        return self.transferred_bytes_hint

    @property
    def spm_bytes_needed(self) -> int:
        if self.plan is not None:
            return self.plan.spm_bytes_needed
        return self.spm_bytes_hint


class MakespanEvaluator:
    """Caches planning state so Algorithm 1 can probe many solutions."""

    def __init__(self, component: TilableComponent, platform: Platform,
                 exec_model: ExecModel,
                 segment_cap: int = DEFAULT_SEGMENT_CAP,
                 modes: Mapping[str, str] | None = None,
                 cache: Optional[PersistentCache] = None,
                 scenario: Optional[str] = None):
        self.component = component
        self.platform = platform
        self.exec_model = exec_model
        self.segment_cap = segment_cap
        self.modes = dict(modes) if modes else None
        #: Timing-scenario digest when platform/model carry Monte-Carlo
        #: perturbations; folded into persistent-cache fingerprints.
        self.scenario = scenario
        self.geometry = ArrayGeometry(component, platform, exec_model)
        self.planner = SegmentPlanner(
            component, platform, exec_model, modes, geometry=self.geometry)
        self._cache: Dict[tuple, MakespanResult] = {}
        self.evaluations = 0
        self.memo_hits = 0
        self.cache_hits = 0        # persistent-cache hits
        self.deadline: Optional[float] = None
        self.stage: str = "optimize"
        self.budget_s: float = 0.0
        self.cache: Optional[PersistentCache] = None
        self._context_hash: Optional[str] = None
        if cache is not None:
            self.set_cache(cache)

    def set_cache(self, cache: Optional[PersistentCache]) -> None:
        """Attach (or detach) a persistent cross-run result cache."""
        self.cache = cache
        if cache is not None:
            self._context_hash = context_fingerprint(
                self.component, self.platform, self.exec_model,
                self.segment_cap, self.modes, scenario=self.scenario)
        else:
            self._context_hash = None

    @property
    def context_hash(self) -> Optional[str]:
        """The persistent-cache context fingerprint (None when no cache
        is attached) — the shard protocol's component/space identity."""
        return self._context_hash

    def _digest(self, key: tuple) -> str:
        assert self._context_hash is not None
        return solution_digest(self._context_hash, key)

    def set_deadline(self, deadline: Optional[float],
                     stage: str = "optimize",
                     budget_s: float = 0.0) -> None:
        """Arm a cooperative wall-clock budget.

        Every *fresh* evaluation first checks the clock and raises
        :class:`OptimizerTimeout` once the deadline has passed — the
        hook the compiler's fallback chain relies on to bound each
        optimization stage.  Cache hits stay free of the check.
        """
        self.deadline = deadline
        self.stage = stage
        self.budget_s = budget_s

    def check_deadline(self) -> None:
        """Raise :class:`OptimizerTimeout` once the armed budget passed."""
        if self.deadline is not None and \
                time.perf_counter() > self.deadline:
            raise OptimizerTimeout(self.stage, self.budget_s)

    def peek(self, solution: Solution) -> Optional[MakespanResult]:
        """Cached result for *solution* without planning: the in-memory
        memo first, then the persistent cache.  Returns None on a miss;
        never counts an evaluation and never checks the deadline."""
        key = solution.key()
        cached = self._cache.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        if self.cache is not None:
            entry = self.cache.get_result(self._digest(key))
            if entry is not None:
                result = MakespanResult(
                    component=self.component,
                    solution=solution,
                    makespan_ns=PersistentCache.makespan_of(entry),
                    feasible=bool(entry.get("f")),
                    reason=entry.get("r", ""),
                    from_cache=True,
                    transferred_bytes_hint=int(entry.get("xfer", 0)),
                    spm_bytes_hint=int(entry.get("spm", 0)),
                )
                self._cache[key] = result
                self.cache_hits += 1
                return result
        return None

    def _persist(self, key: tuple, result: MakespanResult) -> None:
        if self.cache is not None:
            self.cache.put(
                self._digest(key),
                makespan_ns=result.makespan_ns,
                feasible=result.feasible,
                reason=result.reason,
                spm_bytes=result.spm_bytes_needed,
                transferred_bytes=result.transferred_bytes,
            )

    def persist_bound(self, key: tuple, bound_ns: float) -> bool:
        """Record a pruned candidate's admissible bound in the persistent
        cache.  Returns True when the digest was already present (a
        *bound hit*: this candidate was pruned — or evaluated — by an
        earlier run too); False when the entry is new or no cache is
        attached."""
        if self.cache is None:
            return False
        return not self.cache.put_bound(self._digest(key), bound_ns)

    def evaluate(self, solution: Solution) -> MakespanResult:
        key = solution.key()
        cached = self.peek(solution)
        if cached is not None:
            return cached
        self.check_deadline()
        self.evaluations += 1
        try:
            plan = self.planner.plan(solution, self.segment_cap)
        except PlanError as error:
            result = MakespanResult(
                component=self.component,
                solution=solution,
                makespan_ns=math.inf,
                feasible=False,
                reason=str(error),
            )
            self._cache[key] = result
            self._persist(key, result)
            return result
        pipeline = evaluate_pipeline(plan.cores)
        result = MakespanResult(
            component=self.component,
            solution=solution,
            makespan_ns=pipeline.makespan_ns,
            feasible=True,
            plan=plan,
            pipeline=pipeline,
        )
        self._cache[key] = result
        self._persist(key, result)
        return result

    def record_remote(self, solution: Solution, makespan_ns: float,
                      feasible: bool, reason: str = "",
                      spm_bytes: int = 0,
                      transferred_bytes: int = 0) -> MakespanResult:
        """Adopt an outcome computed by a worker process.

        The result enters the memo and the persistent cache and counts
        as one evaluation, exactly as if this evaluator had planned it —
        the engine's determinism guarantee for evaluation counts."""
        return self._adopt(solution, makespan_ns, feasible, reason,
                           spm_bytes, transferred_bytes)

    def record_local(self, solution: Solution, makespan_ns: float,
                     feasible: bool, reason: str = "",
                     spm_bytes: int = 0,
                     transferred_bytes: int = 0) -> MakespanResult:
        """Adopt an outcome computed by the in-process batch evaluator.

        Identical accounting to :meth:`record_remote`: the result enters
        the memo and the persistent cache and counts as one evaluation,
        so batched and per-candidate scoring report the same counters."""
        return self._adopt(solution, makespan_ns, feasible, reason,
                           spm_bytes, transferred_bytes)

    def _adopt(self, solution: Solution, makespan_ns: float,
               feasible: bool, reason: str,
               spm_bytes: int, transferred_bytes: int) -> MakespanResult:
        key = solution.key()
        result = MakespanResult(
            component=self.component,
            solution=solution,
            makespan_ns=makespan_ns,
            feasible=feasible,
            reason=reason,
            transferred_bytes_hint=int(transferred_bytes),
            spm_bytes_hint=int(spm_bytes),
        )
        self.evaluations += 1
        self._cache[key] = result
        self._persist(key, result)
        return result

    def attach_plan(self, result: MakespanResult) -> MakespanResult:
        """Re-plan a plan-less feasible result (a pool or cache winner).

        Does not count as an evaluation: the makespan was already
        computed (and paid for) once.  The re-planned result replaces
        the memo entry so later lookups see the full plan."""
        if result.plan is not None or not result.feasible:
            return result
        plan = self.planner.plan(result.solution, self.segment_cap)
        pipeline = evaluate_pipeline(plan.cores)
        replanned = MakespanResult(
            component=self.component,
            solution=result.solution,
            makespan_ns=pipeline.makespan_ns,
            feasible=True,
            plan=plan,
            pipeline=pipeline,
        )
        self._cache[result.solution.key()] = replanned
        return replanned

    @staticmethod
    def invalid_key(tile_sizes: Mapping[str, int],
                    thread_groups: Mapping[str, int] | None) -> tuple:
        """Memo key for parameter sets that fail Solution construction."""
        return ("invalid",
                tuple(sorted(tile_sizes.items())),
                tuple(sorted((thread_groups or {}).items())))

    def evaluate_params(self, tile_sizes: Mapping[str, int],
                        thread_groups: Mapping[str, int] | None = None
                        ) -> MakespanResult:
        """Convenience wrapper building the Solution object.

        Parameter sets that fail ``Solution`` construction (tile size
        out of range, too many thread groups, ...) are cached and
        counted like any other evaluation, so repeated invalid probes
        are free and the evaluation counts reported by the Tables
        6.2/6.3 bench reflect every candidate actually probed."""
        try:
            solution = Solution(self.component, tile_sizes, thread_groups)
        except ValueError as error:
            key = self.invalid_key(tile_sizes, thread_groups)
            cached = self._cache.get(key)
            if cached is not None:
                self.memo_hits += 1
                return cached
            result = MakespanResult(
                component=self.component,
                solution=None,            # type: ignore[arg-type]
                makespan_ns=math.inf,
                feasible=False,
                reason=str(error),
            )
            self.evaluations += 1
            self._cache[key] = result
            return result
        return self.evaluate(solution)
