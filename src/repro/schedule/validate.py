"""Timing-model validation (Section 6.1's <=5% accuracy check).

The paper validates its analytic timing model by running the final
compiled kernels on gem5 and comparing against the model's predicted
makespan, reporting at most 5% deviation.  The analogue here: build the
same segment plan twice — once with the fitted parametric execution model
(what the optimizer uses) and once with the gem5-substitute machine
model's exact per-tile costs — and compare the resulting makespans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..loopir.component import TilableComponent
from ..opt.solution import Solution
from ..prem.segments import SegmentPlanner
from ..sim.machine import MachineModel
from ..timing.execmodel import ExecModel
from ..timing.platform import Platform
from .pipeline import evaluate_pipeline


class ExactExecModel:
    """Duck-typed ExecModel that returns the machine model's exact cost."""

    def __init__(self, component: TilableComponent,
                 machine: MachineModel | None = None):
        self._component = component
        self._machine = machine or MachineModel()

    def estimate(self, widths: Sequence[int]) -> float:
        return float(self._machine.tile_cost(self._component, widths))


@dataclass(frozen=True)
class ValidationResult:
    """Predicted vs simulated makespan for one solution."""

    predicted_ns: float
    simulated_ns: float

    @property
    def error(self) -> float:
        """Relative deviation (positive when the model overestimates).

        A degenerate zero-length simulation has no meaningful relative
        error: both zero means perfect agreement (0.0), otherwise the
        deviation is unbounded (``inf``).
        """
        if self.simulated_ns == 0:
            return 0.0 if self.predicted_ns == 0 else math.inf
        return (self.predicted_ns - self.simulated_ns) / self.simulated_ns


def validate_static(component: TilableComponent, solution: Solution,
                    platform: Platform):
    """Static PREM-compliance check of one solution (no VM, no timing).

    Complements :func:`validate_timing_model`: that function asks "is the
    predicted makespan accurate", this one asks "is the schedule *safe*"
    — races, double-buffer hazards, capacity, well-formedness.  Returns
    the :class:`repro.analysis.ComponentReport`.
    """
    from ..analysis import StaticVerifier
    return StaticVerifier(platform).verify_component(component, solution)


def validate_timing_model(component: TilableComponent, solution: Solution,
                          platform: Platform, exec_model: ExecModel,
                          machine: MachineModel | None = None
                          ) -> ValidationResult:
    """Compare the fitted model's makespan with the machine model's."""
    predicted_plan = SegmentPlanner(
        component, platform, exec_model).plan(solution)
    exact = ExactExecModel(component, machine)
    simulated_plan = SegmentPlanner(
        component, platform, exact).plan(solution)
    return ValidationResult(
        predicted_ns=evaluate_pipeline(predicted_plan.cores).makespan_ns,
        simulated_ns=evaluate_pipeline(simulated_plan.cores).makespan_ns,
    )
