"""Typed error hierarchy for the whole toolchain.

Every failure the compiler, optimizers, planners, and the PREM VM can
produce derives from :class:`ReproError`, so callers can distinguish a
bug in the reproduction from an *expected* failure mode (infeasible
platform, optimizer timeout, a schedule that violates PREM semantics)
and degrade gracefully instead of crashing deep inside numpy.

Several classes multiply-inherit from the builtin exception previously
raised at the same site (``ValueError``, ``IndexError``, ...), so
pre-existing ``except``/``pytest.raises`` clauses keep working.
"""

from __future__ import annotations

from typing import Optional, Tuple


class ReproError(Exception):
    """Base class of every expected toolchain failure."""


# ---------------------------------------------------------------------------
# configuration / input errors


class KernelConfigError(ReproError, KeyError):
    """Unknown kernel name or preset."""

    def __str__(self) -> str:     # KeyError quotes its repr; keep prose
        return self.args[0] if self.args else ""


class TileConfigError(ReproError, ValueError):
    """Malformed tile-width vector handed to a cost model."""


# ---------------------------------------------------------------------------
# optimization / planning errors


class OptimizerError(ReproError):
    """An optimization stage could not produce a usable schedule."""


class OptimizerTimeout(OptimizerError):
    """An optimization stage exceeded its wall-clock budget."""

    def __init__(self, stage: str, budget_s: float):
        super().__init__(
            f"stage {stage!r} exceeded its {budget_s:.3g} s budget")
        self.stage = stage
        self.budget_s = budget_s


class InfeasibleScheduleError(OptimizerError):
    """No candidate solution fits the platform (SPM, legality, caps)."""


class CompilationError(ReproError):
    """Every stage of the compiler's fallback chain failed."""


# ---------------------------------------------------------------------------
# PREM VM errors


class PremVmError(ReproError):
    """Base class of functional-VM execution failures."""


class SpmAccessError(PremVmError, IndexError):
    """An execution phase touched SPM outside a segment's canonical range.

    Carries the full coordinates of the violation — array name, global
    index, the buffer's bound range, and the core/segment executing —
    so a fault campaign can report *where* PREM semantics broke.
    """

    def __init__(self, name: str, index: Tuple[int, ...],
                 lo: Tuple[int, ...], shape: Tuple[int, ...],
                 core: Optional[int] = None,
                 segment: Optional[int] = None, detail: str = ""):
        where = ""
        if core is not None or segment is not None:
            where = f" (core {core}, segment {segment})"
        hi = tuple(l + s - 1 for l, s in zip(lo, shape))
        super().__init__(
            f"{name}[{index}]{where}: {detail or 'outside'} the segment's "
            f"canonical range [{lo}..{hi}]")
        self.name = name
        self.index = index
        self.lo = lo
        self.shape = shape
        self.core = core
        self.segment = segment


class BufferUnboundError(PremVmError, RuntimeError):
    """An execution phase used a buffer no swap ever bound."""

    def __init__(self, name: str, buffer: int,
                 core: Optional[int] = None,
                 segment: Optional[int] = None):
        super().__init__(
            f"core {core} segment {segment}: buffer {name}_buf{buffer} "
            f"used before any swap")
        self.name = name
        self.buffer = buffer
        self.core = core
        self.segment = segment


class MissingComputeError(PremVmError, ValueError):
    """A statement reached by the VM has no compute function."""

    def __init__(self, stmt_name: str):
        super().__init__(f"statement {stmt_name} has no compute function")
        self.stmt_name = stmt_name


# ---------------------------------------------------------------------------
# source-level loop-IR analysis errors


class SourceAnalysisError(ReproError):
    """A loop-IR construct the source analyzer cannot reason about.

    Each subclass carries the stable ``PREM5xx`` diagnostic code the
    ``analyze --source`` command reports instead of a traceback.
    """

    code = "PREM502"


class GuardScopeError(SourceAnalysisError, ValueError):
    """A guard references a variable outside its ancestor iterators."""

    code = "PREM501"

    def __init__(self, loop_var: str, guard_var: str):
        super().__init__(
            f"guard on {loop_var} references non-ancestor {guard_var!r}")
        self.loop_var = loop_var
        self.guard_var = guard_var


class ChainConsistencyError(SourceAnalysisError, AssertionError):
    """A dependence names a loop outside the statements' shared nest."""

    code = "PREM502"

    def __init__(self, head: str, detail: str = ""):
        super().__init__(
            f"dependence chain head {head!r} is not a shared loop"
            + (f": {detail}" if detail else ""))
        self.head = head


class LatticeRangeError(SourceAnalysisError, ValueError):
    """A loop range with a non-positive stride reached interval math."""

    code = "PREM503"

    def __init__(self, detail: str):
        super().__init__(detail)


class FissionLegalityError(SourceAnalysisError, ValueError):
    """A requested loop distribution breaks a backward dependence."""

    code = "PREM521"


# ---------------------------------------------------------------------------
# structured PREM-invariant diagnostics


class InvariantViolationError(ReproError):
    """Raised when a caller asks a checker to fail on diagnostics.

    Carries the offending :class:`repro.analysis.Diagnostic` objects
    (duck-typed on ``describe()`` so this base module needs no analysis
    import).
    """

    def __init__(self, violations):
        self.violations = list(violations)
        lines = "\n".join(v.describe() for v in self.violations)
        super().__init__(
            f"{len(self.violations)} PREM invariant violation(s):\n{lines}")
