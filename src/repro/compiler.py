"""End-to-end PREM compiler pipeline (Figure 5.1).

``PremCompiler`` chains the whole toolflow the paper's block diagram
describes: loop/data analysis (dependences, loop tree), component
extraction and optimization (Algorithms 1 and 2), and code generation
with PREM API insertion.  The result object exposes the chosen solutions,
the generated PREM-C per component, the predicted makespan, and hooks to
execute the transformed program on the functional PREM VM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from .loopir.ast import Kernel
from .loopir.component import TilableComponent
from .loopir.looptree import LoopTree
from .opt.greedy import GreedyOptimizer
from .opt.ideal import ideal_makespan_ns
from .opt.solution import Solution
from .opt.tree import TreeOptimizer, TreeOptResult
from .prem.codegen import CodeGenerator
from .prem.runtime import SequentialInterpreter, init_arrays, run_kernel_prem
from .schedule.makespan import DEFAULT_SEGMENT_CAP
from .sim.machine import MachineModel
from .timing.platform import DEFAULT_PLATFORM, Platform


@dataclass
class CompiledComponent:
    """One scheduled component of the compiled program."""

    component: TilableComponent
    solution: Solution
    makespan_ns: float
    executions: int

    @property
    def total_makespan_ns(self) -> float:
        return self.makespan_ns * self.executions


@dataclass
class CompilationResult:
    """Everything the compiler produces for one kernel/platform pair."""

    kernel: Kernel
    tree: LoopTree
    platform: Platform
    components: List[CompiledComponent]
    makespan_ns: float
    ideal_ns: float
    opt_result: TreeOptResult

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.makespan_ns)

    @property
    def normalized_makespan(self) -> float:
        """Makespan over the ideal single-core bound (Figure 6.1's y axis)."""
        return self.makespan_ns / self.ideal_ns

    def generate_c(self) -> Dict[str, str]:
        """PREM-C source per component (keyed by component label)."""
        out = {}
        for compiled in self.components:
            generator = CodeGenerator(compiled.component, compiled.solution)
            out[compiled.component.label()] = generator.generate()
        return out

    def component_map(self) -> Dict[str, Tuple[TilableComponent, Solution]]:
        """Head iterator -> (component, solution), for the PREM VM."""
        return {
            compiled.component.nodes[0].var:
                (compiled.component, compiled.solution)
            for compiled in self.components
        }

    def run_functional(self, arrays: Optional[Dict[str, np.ndarray]] = None,
                       seed: int = 7) -> Dict[str, np.ndarray]:
        """Execute the transformed program on the PREM VM; returns memory."""
        if arrays is None:
            arrays = init_arrays(self.kernel, seed)
        run_kernel_prem(self.kernel, self.component_map(), arrays)
        return arrays

    def run_reference(self, arrays: Optional[Dict[str, np.ndarray]] = None,
                      seed: int = 7) -> Dict[str, np.ndarray]:
        """Execute the original program sequentially; returns memory."""
        if arrays is None:
            arrays = init_arrays(self.kernel, seed)
        SequentialInterpreter().run(self.kernel, arrays)
        return arrays


class PremCompiler:
    """The full toolchain: analysis, optimization, code generation."""

    def __init__(self, platform: Platform = DEFAULT_PLATFORM,
                 machine: MachineModel | None = None, max_iter: int = 3,
                 seed: int = 0, segment_cap: int = DEFAULT_SEGMENT_CAP):
        self.platform = platform
        self.machine = machine or MachineModel()
        self.max_iter = max_iter
        self.seed = seed
        self.segment_cap = segment_cap

    def compile(self, kernel: Kernel, cores: Optional[int] = None,
                strategy: str = "heuristic",
                tree: Optional[LoopTree] = None,
                optimizer: Optional[TreeOptimizer] = None
                ) -> CompilationResult:
        """Analyze, optimize (``heuristic`` or ``greedy``) and package."""
        tree = tree or LoopTree.build(kernel)
        optimizer = optimizer or TreeOptimizer(
            tree, machine=self.machine, max_iter=self.max_iter,
            seed=self.seed, segment_cap=self.segment_cap)

        if strategy == "heuristic":
            result = optimizer.optimize(self.platform, cores=cores)
        elif strategy == "greedy":
            result = optimizer.optimize(
                self.platform, cores=cores,
                optimize_fn=self._greedy_fn(cores))
        else:
            raise ValueError(f"unknown strategy {strategy!r}")

        components = []
        for choice in result.choices:
            best = choice.result.best
            if best is None:
                continue
            components.append(CompiledComponent(
                component=choice.component,
                solution=best.solution,
                makespan_ns=best.makespan_ns,
                executions=choice.component.executions,
            ))
        return CompilationResult(
            kernel=kernel,
            tree=tree,
            platform=self.platform,
            components=components,
            makespan_ns=result.makespan_ns,
            ideal_ns=ideal_makespan_ns(kernel, self.platform, self.machine),
            opt_result=result,
        )

    def _greedy_fn(self, cores: Optional[int]):
        platform = self.platform
        segment_cap = self.segment_cap

        def optimize_fn(component, exec_model):
            greedy = GreedyOptimizer(
                component, platform, exec_model, segment_cap=segment_cap)
            return greedy.optimize(cores)

        return optimize_fn
