"""End-to-end PREM compiler pipeline (Figure 5.1).

``PremCompiler`` chains the whole toolflow the paper's block diagram
describes: loop/data analysis (dependences, loop tree), component
extraction and optimization (Algorithms 1 and 2), and code generation
with PREM API insertion.  The result object exposes the chosen solutions,
the generated PREM-C per component, the predicted makespan, and hooks to
execute the transformed program on the functional PREM VM.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .errors import (
    CompilationError,
    InfeasibleScheduleError,
    OptimizerError,
    OptimizerTimeout,
    ReproError,
)
from .loopir.ast import Kernel
from .loopir.component import TilableComponent
from .loopir.fission import FissionResult, fission_kernel
from .loopir.looptree import LoopTree
from .opt.cache import PersistentCache
from .opt.exhaustive import ExhaustiveOptimizer
from .opt.greedy import GreedyOptimizer
from .opt.ideal import ideal_makespan_ns
from .opt.pareto import ParetoOptimizer
from .opt.pruned import DEFAULT_PRUNED_MAX_POINTS, PrunedOptimizer
from .opt.robust import RobustOptimizer
from .opt.solution import Solution
from .opt.tree import TreeOptimizer, TreeOptResult
from .prem.codegen import CodeGenerator
from .prem.runtime import SequentialInterpreter, init_arrays, run_kernel_prem
from .prem.segments import ComponentPlan, SegmentPlanner
from .schedule.makespan import DEFAULT_SEGMENT_CAP
from .sim.machine import MachineModel
from .timing.platform import DEFAULT_PLATFORM, Platform

#: Degradation order of :meth:`PremCompiler.compile_robust` — the best
#: optimizer first, the unconditionally feasible strategy last.
FALLBACK_CHAIN: Tuple[str, ...] = ("exhaustive", "greedy", "sequential")


@dataclass
class CompiledComponent:
    """One scheduled component of the compiled program."""

    component: TilableComponent
    solution: Solution
    makespan_ns: float
    executions: int

    @property
    def total_makespan_ns(self) -> float:
        return self.makespan_ns * self.executions


@dataclass
class StageAttempt:
    """One stage of the fallback chain and how it ended."""

    strategy: str
    status: str               # "ok" | "timeout" | "infeasible" | "error"
    elapsed_s: float
    detail: str = ""

    def describe(self) -> str:
        text = f"{self.strategy}: {self.status} ({self.elapsed_s:.3f} s)"
        return f"{text} — {self.detail}" if self.detail else text


@dataclass
class CompilationResult:
    """Everything the compiler produces for one kernel/platform pair."""

    kernel: Kernel
    tree: LoopTree
    platform: Platform
    components: List[CompiledComponent]
    makespan_ns: float
    ideal_ns: float
    opt_result: TreeOptResult
    strategy: str = "heuristic"
    attempts: List[StageAttempt] = field(default_factory=list)
    segment_cap: int = DEFAULT_SEGMENT_CAP
    #: Set when the dependence-verified fission pre-pass ran; its
    #: ``original`` field keeps the unfissioned kernel (``self.kernel``
    #: is the distributed one the components were extracted from).
    fission: Optional[FissionResult] = None

    @property
    def degraded(self) -> bool:
        """True when at least one better strategy failed before this one."""
        return any(a.status != "ok" for a in self.attempts)

    @property
    def feasible(self) -> bool:
        return math.isfinite(self.makespan_ns)

    @property
    def normalized_makespan(self) -> float:
        """Makespan over the ideal single-core bound (Figure 6.1's y axis)."""
        return self.makespan_ns / self.ideal_ns

    def generate_c(self) -> Dict[str, str]:
        """PREM-C source per component (keyed by component label)."""
        out = {}
        for compiled in self.components:
            generator = CodeGenerator(compiled.component, compiled.solution)
            out[compiled.component.label()] = generator.generate()
        return out

    def component_map(self) -> Dict[str, Tuple[TilableComponent, Solution]]:
        """Head iterator -> (component, solution), for the PREM VM.

        The PREM VM dispatches components by head iterator name, so two
        components sharing one (both headed by ``i``, say) cannot be
        represented — building the map would silently drop the first.
        That is a hard error, not a quiet wrong answer."""
        out: Dict[str, Tuple[TilableComponent, Solution]] = {}
        for compiled in self.components:
            head = compiled.component.nodes[0].var
            if head in out:
                raise CompilationError(
                    f"components {out[head][0].label()} and "
                    f"{compiled.component.label()} share the head "
                    f"iterator {head!r}; the PREM VM keys components by "
                    f"head iterator and would drop one of them — rename "
                    f"one of the loops")
            out[head] = (compiled.component, compiled.solution)
        return out

    def plan_of(self, compiled: CompiledComponent) -> ComponentPlan:
        """The full segment plan of one compiled component.

        Persistent-cache winners are deliberately plan-less (a warm run
        performs zero fresh plans), so consumers that need the actual
        segment schedule — the gantt chart, the report's per-segment
        table — re-plan the single chosen solution here instead of
        bypassing the cache for the whole compilation.  The fitted
        execution model travels with the optimizer result, so the
        re-plan reproduces the optimizer's plan exactly."""
        for choice in self.opt_result.choices:
            if choice.component is not compiled.component:
                continue
            best = choice.result.best
            if best is not None and best.plan is not None:
                return best.plan
            exec_model = choice.result.exec_model
            if exec_model is not None:
                planner = SegmentPlanner(
                    compiled.component, self.platform, exec_model)
                return planner.plan(compiled.solution, self.segment_cap)
        raise CompilationError(
            f"no optimizer record for component "
            f"{compiled.component.label()}; cannot reconstruct its plan")

    def run_functional(self, arrays: Optional[Dict[str, np.ndarray]] = None,
                       seed: int = 7) -> Dict[str, np.ndarray]:
        """Execute the transformed program on the PREM VM; returns memory."""
        if arrays is None:
            arrays = init_arrays(self.kernel, seed)
        run_kernel_prem(self.kernel, self.component_map(), arrays)
        return arrays

    def run_reference(self, arrays: Optional[Dict[str, np.ndarray]] = None,
                      seed: int = 7) -> Dict[str, np.ndarray]:
        """Execute the original program sequentially; returns memory."""
        if arrays is None:
            arrays = init_arrays(self.kernel, seed)
        SequentialInterpreter().run(self.kernel, arrays)
        return arrays

    def verify_static(self, passes: Optional[Sequence[str]] = None):
        """Run the static PREM-compliance verifier over every component.

        Returns the :class:`repro.analysis.AnalysisReport`; no VM is
        involved.  Imported lazily so the analysis subsystem stays
        optional for callers that only compile.
        """
        from .analysis import StaticVerifier
        return StaticVerifier(self.platform).verify_compilation(
            self, passes=passes)


class PremCompiler:
    """The full toolchain: analysis, optimization, code generation."""

    def __init__(self, platform: Platform = DEFAULT_PLATFORM,
                 machine: MachineModel | None = None, max_iter: int = 3,
                 seed: int = 0, segment_cap: int = DEFAULT_SEGMENT_CAP,
                 exhaustive_max_points: int = 20_000,
                 pruned_max_points: int = DEFAULT_PRUNED_MAX_POINTS,
                 jobs: int = 1, cache: Optional[PersistentCache] = None):
        self.platform = platform
        self.machine = machine or MachineModel()
        self.max_iter = max_iter
        self.seed = seed
        self.segment_cap = segment_cap
        self.exhaustive_max_points = exhaustive_max_points
        self.pruned_max_points = pruned_max_points
        #: Worker-pool width for candidate evaluation (1 = serial) and
        #: the optional persistent cross-run makespan cache; both are
        #: threaded through every optimization strategy.
        self.jobs = jobs
        self.cache = cache

    def compile(self, kernel: Kernel, cores: Optional[int] = None,
                strategy: str = "heuristic",
                tree: Optional[LoopTree] = None,
                optimizer: Optional[TreeOptimizer] = None,
                deadline: Optional[float] = None,
                budget_s: float = 0.0,
                jobs: Optional[int] = None,
                cache: Optional[PersistentCache] = None,
                scenarios: int = 32,
                risk: str = "cvar",
                alpha: float = 0.9,
                spread: float = 0.2,
                shards: Optional[Tuple[int, int]] = None,
                fission: str = "off"
                ) -> CompilationResult:
        """Analyze, optimize and package one kernel.

        *strategy* is ``heuristic`` (Algorithm 1), ``greedy`` (the
        Section 6.2 baseline), ``exhaustive`` (full candidate scan,
        guarded by ``exhaustive_max_points``), ``pruned`` (the same
        scan driven by admissible lower bounds — identical winner,
        far fewer plans, guarded by the much larger
        ``pruned_max_points``), ``robust`` (the pruned scan re-ranked
        by *risk* — ``worst``/``cvar``/``mean`` — over *scenarios*
        seeded Monte-Carlo timing perturbations of half-width *spread*;
        ``scenarios=0`` degrades to the nominal pruned winner),
        ``pareto`` (the pruned scan kept *whole*: every component's
        exact non-dominated front over makespan / SPM bytes / DMA
        bytes / cores — ``choice.result.front`` — with the chain
        assembled from each front's makespan-optimal member, so the
        compiled schedule matches ``pruned``), or ``sequential`` (no
        PREM transformation at all — the whole kernel on one core).  *deadline*/*budget_s* arm the cooperative
        per-stage timeout used by :meth:`compile_robust`.  *jobs*/
        *cache* override the compiler-level evaluation-engine settings
        for this call; the deadline stays armed inside worker
        processes, and parallel runs are guaranteed to pick the same
        solutions as serial ones.

        *shards* — ``(index, count)`` — restricts every component's
        candidate walk to shard *index* of *count* (zero-based) for
        distributed compilation: each worker process compiles one
        shard against a *shared* persistent cache directory, and a
        final unsharded run over the warm cache (``shard-reduce``)
        recovers the bit-identical single-host winner with zero fresh
        plans.  Requires an enumerated-space strategy (``pruned``,
        ``robust`` or ``pareto``); with a cache attached, pruned-shard
        workers additionally exchange incumbent snapshots through the
        cache directory's coordination log.  A shard-restricted result
        may be infeasible on its own — that is expected, the reduce
        step supplies the winner.

        *fission* — ``"off"`` (default) compiles the kernel as given;
        ``"auto"`` first runs the dependence-verified loop-fission
        pre-pass (:func:`repro.loopir.fission.fission_kernel`),
        compiling the distributed kernel instead.  The result's
        :attr:`CompilationResult.fission` records the transform and
        keeps the original kernel for reference runs.  ``"auto"`` is
        incompatible with an explicitly supplied *tree* (the pre-pass
        changes the kernel the tree must be built from).
        """
        jobs = self.jobs if jobs is None else jobs
        cache = self.cache if cache is None else cache
        if shards is not None and strategy not in (
                "pruned", "robust", "pareto"):
            raise ValueError(
                f"strategy {strategy!r} does not support sharding; "
                f"--shard needs an enumerated candidate space "
                f"(pruned, robust, or pareto)")
        if fission not in ("off", "auto"):
            raise ValueError(
                f"unknown fission mode {fission!r}; use 'off' or 'auto'")
        fission_result: Optional[FissionResult] = None
        if fission == "auto":
            if tree is not None:
                raise ValueError(
                    "fission='auto' transforms the kernel and rebuilds "
                    "the loop tree; an explicit tree cannot be combined "
                    "with it")
            fission_result = fission_kernel(kernel)
            kernel = fission_result.kernel
        tree = tree or LoopTree.build(kernel)
        if strategy == "sequential":
            return self._compile_sequential(kernel, tree, fission_result)
        optimizer = optimizer or TreeOptimizer(
            tree, machine=self.machine, max_iter=self.max_iter,
            seed=self.seed, segment_cap=self.segment_cap)

        if strategy == "heuristic":
            result = optimizer.optimize(
                self.platform, cores=cores,
                optimize_fn=self._heuristic_fn(
                    cores, deadline, budget_s, jobs, cache))
        elif strategy == "greedy":
            result = optimizer.optimize(
                self.platform, cores=cores,
                optimize_fn=self._greedy_fn(
                    cores, deadline, budget_s, cache))
        elif strategy == "exhaustive":
            result = optimizer.optimize(
                self.platform, cores=cores,
                optimize_fn=self._exhaustive_fn(
                    cores, deadline, budget_s, jobs, cache))
        elif strategy == "pruned":
            result = optimizer.optimize(
                self.platform, cores=cores,
                optimize_fn=self._pruned_fn(
                    cores, deadline, budget_s, jobs, cache,
                    shards=shards))
        elif strategy == "pareto":
            result = optimizer.optimize(
                self.platform, cores=cores,
                optimize_fn=self._pareto_fn(
                    cores, deadline, budget_s, jobs, cache,
                    shards=shards))
        elif strategy == "robust":
            result = optimizer.optimize(
                self.platform, cores=cores,
                optimize_fn=self._robust_fn(
                    cores, deadline, budget_s, jobs, cache,
                    scenarios=scenarios, risk=risk, alpha=alpha,
                    spread=spread, shards=shards))
        else:
            raise ValueError(f"unknown strategy {strategy!r}")

        components = []
        for choice in result.choices:
            best = choice.result.best
            if best is None:
                continue
            components.append(CompiledComponent(
                component=choice.component,
                solution=best.solution,
                makespan_ns=best.makespan_ns,
                executions=choice.component.executions,
            ))
        return CompilationResult(
            kernel=kernel,
            tree=tree,
            platform=self.platform,
            components=components,
            makespan_ns=result.makespan_ns,
            ideal_ns=ideal_makespan_ns(kernel, self.platform, self.machine),
            opt_result=result,
            strategy=strategy,
            segment_cap=self.segment_cap,
            fission=fission_result,
        )

    def compile_robust(self, kernel: Kernel, cores: Optional[int] = None,
                       strategies: Sequence[str] = FALLBACK_CHAIN,
                       stage_budget_s: Optional[float] = 10.0,
                       tree: Optional[LoopTree] = None,
                       jobs: Optional[int] = None,
                       cache: Optional[PersistentCache] = None,
                       fission: str = "off"
                       ) -> CompilationResult:
        """Compile with graceful degradation.

        Stages are tried in order; a stage that times out (wall-clock
        budget *stage_budget_s*), proves infeasible on this platform, or
        raises any :class:`repro.errors.ReproError` is recorded as a
        :class:`StageAttempt` and the next stage runs.  ``sequential``
        never fails, so with the default chain this method never raises
        for a well-formed kernel; the attempt log lands in
        :attr:`CompilationResult.attempts`.  *jobs*/*cache* are forwarded
        to every stage's :meth:`compile` call; a shared cache lets a
        later stage reuse makespans an earlier, timed-out stage already
        paid for.  *fission* as in :meth:`compile`: with ``"auto"`` the
        pre-pass runs once up front and every stage compiles the
        distributed kernel.
        """
        fission_result: Optional[FissionResult] = None
        if fission == "auto":
            if tree is not None:
                raise ValueError(
                    "fission='auto' transforms the kernel and rebuilds "
                    "the loop tree; an explicit tree cannot be combined "
                    "with it")
            fission_result = fission_kernel(kernel)
            kernel = fission_result.kernel
        elif fission != "off":
            raise ValueError(
                f"unknown fission mode {fission!r}; use 'off' or 'auto'")
        tree = tree or LoopTree.build(kernel)
        attempts: List[StageAttempt] = []
        for strategy in strategies:
            started = time.perf_counter()
            deadline = None
            if stage_budget_s is not None and strategy != "sequential":
                deadline = started + stage_budget_s
            try:
                result = self.compile(
                    kernel, cores=cores, strategy=strategy, tree=tree,
                    deadline=deadline, budget_s=stage_budget_s or 0.0,
                    jobs=jobs, cache=cache)
                if not result.feasible:
                    raise InfeasibleScheduleError(
                        f"strategy {strategy!r} found no feasible "
                        f"schedule on this platform")
            except ReproError as error:
                status = "timeout" if isinstance(error, OptimizerTimeout) \
                    else ("infeasible"
                          if isinstance(error, (InfeasibleScheduleError,
                                                OptimizerError))
                          else "error")
                attempts.append(StageAttempt(
                    strategy, status,
                    time.perf_counter() - started, str(error)))
                continue
            attempts.append(StageAttempt(
                strategy, "ok", time.perf_counter() - started))
            result.attempts = attempts
            result.fission = fission_result
            return result
        raise CompilationError(
            f"all strategies failed for kernel {kernel.name}: "
            + "; ".join(a.describe() for a in attempts))

    # -- stage builders ---------------------------------------------------

    def _compile_sequential(
            self, kernel: Kernel, tree: LoopTree,
            fission_result: Optional[FissionResult] = None
    ) -> CompilationResult:
        """No-PREM fallback: the untransformed kernel on one core."""
        started = time.perf_counter()
        makespan = self.machine.kernel_cost(kernel) * \
            self.platform.ns_per_cycle
        result = TreeOptResult(
            tree=tree,
            makespan_ns=makespan,
            choices=[],
            elapsed_s=time.perf_counter() - started,
            evaluations=0,
        )
        return CompilationResult(
            kernel=kernel,
            tree=tree,
            platform=self.platform,
            components=[],
            makespan_ns=makespan,
            ideal_ns=ideal_makespan_ns(kernel, self.platform, self.machine),
            opt_result=result,
            strategy="sequential",
            segment_cap=self.segment_cap,
            fission=fission_result,
        )

    def _heuristic_fn(self, cores: Optional[int],
                      deadline: Optional[float], budget_s: float,
                      jobs: int = 1,
                      cache: Optional[PersistentCache] = None):
        from .opt.component import ComponentOptimizer

        def optimize_fn(component, exec_model):
            optimizer = ComponentOptimizer(
                component, self.platform, exec_model,
                max_iter=self.max_iter, seed=self.seed,
                segment_cap=self.segment_cap,
                deadline=deadline, budget_s=budget_s,
                jobs=jobs, cache=cache)
            return optimizer.optimize(cores)

        return optimize_fn

    def _greedy_fn(self, cores: Optional[int],
                   deadline: Optional[float] = None,
                   budget_s: float = 0.0,
                   cache: Optional[PersistentCache] = None):
        platform = self.platform
        segment_cap = self.segment_cap

        def optimize_fn(component, exec_model):
            greedy = GreedyOptimizer(
                component, platform, exec_model, segment_cap=segment_cap,
                deadline=deadline, budget_s=budget_s, cache=cache)
            return greedy.optimize(cores)

        return optimize_fn

    def _exhaustive_fn(self, cores: Optional[int],
                       deadline: Optional[float], budget_s: float,
                       jobs: int = 1,
                       cache: Optional[PersistentCache] = None):
        def optimize_fn(component, exec_model):
            exhaustive = ExhaustiveOptimizer(
                component, self.platform, exec_model,
                segment_cap=self.segment_cap,
                max_points=self.exhaustive_max_points,
                deadline=deadline, budget_s=budget_s,
                jobs=jobs, cache=cache)
            return exhaustive.optimize(cores)

        return optimize_fn

    def _pruned_fn(self, cores: Optional[int],
                   deadline: Optional[float], budget_s: float,
                   jobs: int = 1,
                   cache: Optional[PersistentCache] = None,
                   shards: Optional[Tuple[int, int]] = None):
        def optimize_fn(component, exec_model):
            pruned = PrunedOptimizer(
                component, self.platform, exec_model,
                segment_cap=self.segment_cap,
                max_points=self.pruned_max_points,
                deadline=deadline, budget_s=budget_s,
                jobs=jobs, cache=cache, shard_of=shards)
            exchange = self._shard_exchange(
                pruned.evaluator.context_hash, shards, cache)
            if exchange is not None:
                # Seed this shard with the best rank any sibling shard
                # has already published; can only increase pruning.
                pruned.incumbent = exchange.seed()
            result = pruned.optimize(cores)
            if exchange is not None:
                exchange.publish(component, result)
            return result

        return optimize_fn

    def _pareto_fn(self, cores: Optional[int],
                   deadline: Optional[float], budget_s: float,
                   jobs: int = 1,
                   cache: Optional[PersistentCache] = None,
                   shards: Optional[Tuple[int, int]] = None):
        def optimize_fn(component, exec_model):
            pareto = ParetoOptimizer(
                component, self.platform, exec_model,
                segment_cap=self.segment_cap,
                max_points=self.pruned_max_points,
                deadline=deadline, budget_s=budget_s,
                jobs=jobs, cache=cache, shard_of=shards)
            result = pareto.optimize(cores)
            # A dominance archive cannot adopt a scalar incumbent, so
            # pareto shards publish progress records only.
            exchange = self._shard_exchange(
                pareto.evaluator.context_hash, shards, cache)
            if exchange is not None:
                exchange.publish(component, result, winner=False)
            return result

        return optimize_fn

    def _robust_fn(self, cores: Optional[int],
                   deadline: Optional[float], budget_s: float,
                   jobs: int = 1,
                   cache: Optional[PersistentCache] = None,
                   scenarios: int = 32, risk: str = "cvar",
                   alpha: float = 0.9, spread: float = 0.2,
                   shards: Optional[Tuple[int, int]] = None):
        def optimize_fn(component, exec_model):
            robust = RobustOptimizer(
                component, self.platform, exec_model,
                segment_cap=self.segment_cap,
                scenarios=scenarios, seed=self.seed, spread=spread,
                risk=risk, alpha=alpha,
                max_points=self.pruned_max_points,
                deadline=deadline, budget_s=budget_s,
                jobs=jobs, cache=cache, shard_of=shards)
            result = robust.optimize(cores)
            # Risk winners are not nominal-rank comparable across
            # shards through the makespan log; publish progress only.
            exchange = self._shard_exchange(
                robust._nominal_search.evaluator.context_hash,
                shards, cache)
            if exchange is not None:
                exchange.publish(component, result, winner=False)
            return result

        return optimize_fn

    def _shard_exchange(self, context_hash: Optional[str],
                        shards: Optional[Tuple[int, int]],
                        cache: Optional[PersistentCache]):
        """Incumbent/progress exchange for one static shard worker.

        Active only when both a shard restriction and a shared cache
        directory exist — a shard run without a cache is a plain
        restricted search with nobody to talk to."""
        if shards is None or cache is None or context_hash is None:
            return None
        from .opt.shard import StaticShardExchange
        return StaticShardExchange(cache.directory, context_hash, shards)
