"""Tilable components (Section 3.4).

A tilable component is an ordered sequence of perfectly nested loop-tree
levels ``(l_1, ..., l_L)``; the framework tiles its loops, maps tiles to
threads, and builds a PREM streaming schedule for it.  This module only
captures the *structure*; tiling parameters live in
:class:`repro.opt.solution.Solution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..poly.access import Access, Array
from .ast import Kernel, Loop, Stmt
from .looptree import LoopTree, LoopTreeNode


@dataclass(frozen=True)
class TilableComponent:
    """A chain of loop-tree levels tiled and scheduled together.

    Attributes
    ----------
    tree:
        The owning loop tree (gives access to kernel and dependences).
    nodes:
        The chain ``(l_1, ..., l_L)``, outermost first.
    """

    tree: LoopTree
    nodes: Tuple[LoopTreeNode, ...]

    def __post_init__(self):
        if not self.nodes:
            raise ValueError("a tilable component needs at least one level")
        for parent, child in zip(self.nodes, self.nodes[1:]):
            if child not in parent.children:
                raise ValueError(
                    f"{child.var} is not a child of {parent.var}: "
                    "component levels must form a chain")

    # -- structure --------------------------------------------------------

    @property
    def kernel(self) -> Kernel:
        return self.tree.kernel

    @property
    def band_vars(self) -> Tuple[str, ...]:
        """Iterator names of the component levels, outermost first."""
        return tuple(node.var for node in self.nodes)

    @property
    def depth(self) -> int:
        return len(self.nodes)

    @property
    def executions(self) -> int:
        """``first(L).I`` — times the whole component runs."""
        return self.nodes[0].I

    def outer_vars(self) -> Tuple[str, ...]:
        """Iterators of loops enclosing the component (e.g. LSTM's ``t``)."""
        kernel = self.kernel
        head = self.nodes[0].loop
        for stmt, loops in kernel.walk_stmts():
            vars_ = [loop.var for loop in loops]
            if head.var in vars_:
                return tuple(vars_[:vars_.index(head.var)])
        raise LookupError(f"component head {head.var} contains no statements")

    def stmts(self) -> List[Stmt]:
        """All statements executed by the component (incl. folded levels)."""
        return self.kernel.stmts_under(self.nodes[-1].loop)

    def arrays(self) -> Dict[str, Array]:
        """``L.A`` — every array accessed in the component."""
        out: Dict[str, Array] = {}
        for stmt in self.stmts():
            for array in stmt.arrays():
                out.setdefault(array.name, array)
        return out

    def accesses(self, array_name: str) -> List[Tuple[Stmt, Access]]:
        """(stmt, access) pairs touching *array_name*."""
        pairs = []
        for stmt in self.stmts():
            for access in stmt.accesses:
                if access.array.name == array_name:
                    pairs.append((stmt, access))
        return pairs

    def inner_vars(self) -> Tuple[str, ...]:
        """Iterators strictly below the band (folded/leaf body loops)."""
        last = self.nodes[-1].loop
        inner: List[str] = []

        def descend(loop: Loop):
            for child in loop.child_loops():
                inner.append(child.var)
                descend(child)

        descend(last)
        return tuple(inner)

    def full_inner_box(self) -> Dict[str, Tuple[int, int]]:
        """Full iterator bounds for the inner (non-band) loops."""
        box = {}
        last = self.nodes[-1].loop

        def descend(loop: Loop):
            for child in loop.child_loops():
                box[child.var] = child.loop_range.bounds
                descend(child)

        descend(last)
        return box

    def label(self) -> str:
        return "(" + ", ".join(self.band_vars) + ")"

    def __repr__(self) -> str:
        return f"TilableComponent{self.label()}"


def component_at(tree: LoopTree, vars_: Sequence[str]) -> TilableComponent:
    """Build a component from iterator names (test/report convenience)."""
    nodes = tuple(tree.node_by_var(v) for v in vars_)
    return TilableComponent(tree, nodes)
