"""Loop-nest intermediate representation (the front end's output).

The paper extracts a polyhedral schedule tree from C source with *pet*.
Because the target program class is restricted (Section 3.2: constant
bounds, uniform strides, affine subscripts, single SCoP), this reproduction
declares kernels directly in a small IR: a tree of :class:`Loop` nodes with
:class:`Stmt` leaves.  Every PolyBench-NN kernel is transcribed from its C
source into this IR in :mod:`repro.kernels.polybench`.

Each :class:`Stmt` carries:

- its affine accesses (:class:`repro.poly.access.Access`),
- optional affine guards (``if (p == 0)`` in Listing 3.1 becomes an
  equality guard),
- an optional ``compute`` callable used by the functional simulators to
  actually execute the statement instance on numpy-backed arrays, and
- a cost descriptor (flop count) used by the gem5-substitute timing
  simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..poly.access import Access, Array
from ..poly.constraint import Constraint, ConstraintSystem
from ..poly.domain import Domain, LoopRange
from ..poly.schedule import Schedule, ScheduleDim

ComputeFn = Callable[[Mapping[str, object], Mapping[str, int]], None]


@dataclass
class Stmt:
    """A statement leaf.

    Parameters
    ----------
    name:
        Unique statement name within the kernel.
    accesses:
        The statement's affine array accesses.
    guards:
        Affine constraints over surrounding iterators restricting the
        statement's domain (e.g. ``p == 0``).
    compute:
        Callable ``compute(arrays, point)`` executing one instance; *arrays*
        maps array names to indexable views, *point* maps iterator names to
        values.  Optional — only required by the functional simulators.
    flops:
        Arithmetic operations per instance, for the timing simulator.
    """

    name: str
    accesses: List[Access] = field(default_factory=list)
    guards: List[Constraint] = field(default_factory=list)
    compute: Optional[ComputeFn] = None
    flops: int = 1

    def reads(self) -> List[Access]:
        return [a for a in self.accesses if a.is_read]

    def writes(self) -> List[Access]:
        return [a for a in self.accesses if a.is_write]

    def arrays(self) -> List[Array]:
        seen = {}
        for access in self.accesses:
            seen.setdefault(access.array.name, access.array)
        return list(seen.values())

    def __repr__(self) -> str:
        return f"Stmt({self.name})"


@dataclass
class Loop:
    """A loop node: ``for (var = begin; var < begin + n*stride; var += stride)``.

    ``guards`` are affine constraints over *ancestor* iterators under which
    the loop body executes at all (e.g. the ``if (t > 0)`` wrapping the
    second LSTM component); they reduce ``l.I`` in the loop-tree model.
    """

    var: str
    n: int
    body: List[Union["Loop", Stmt]] = field(default_factory=list)
    begin: int = 0
    stride: int = 1
    guards: List[Constraint] = field(default_factory=list)

    @property
    def loop_range(self) -> LoopRange:
        return LoopRange(self.var, self.begin, self.n, self.stride)

    def child_loops(self) -> List["Loop"]:
        return [c for c in self.body if isinstance(c, Loop)]

    def child_stmts(self) -> List[Stmt]:
        return [c for c in self.body if isinstance(c, Stmt)]

    def __repr__(self) -> str:
        return f"Loop({self.var}, n={self.n})"


class Kernel:
    """A single-SCoP computational kernel: arrays + a forest of loops."""

    def __init__(self, name: str, arrays: Sequence[Array],
                 roots: Sequence[Loop], constants: Mapping[str, int] | None = None):
        self.name = name
        self.arrays: Dict[str, Array] = {a.name: a for a in arrays}
        if len(self.arrays) != len(arrays):
            raise ValueError(f"kernel {name}: duplicate array names")
        self.roots: Tuple[Loop, ...] = tuple(roots)
        self.constants: Dict[str, int] = dict(constants or {})
        self._check_unique_names()

    # -- structural queries -------------------------------------------------

    def _check_unique_names(self) -> None:
        loop_vars = [loop.var for loop, _ in self.walk_loops()]
        if len(set(loop_vars)) != len(loop_vars):
            raise ValueError(
                f"kernel {self.name}: loop iterator names must be unique, "
                f"got {loop_vars}")
        stmt_names = [s.name for s, _ in self.walk_stmts()]
        if len(set(stmt_names)) != len(stmt_names):
            raise ValueError(
                f"kernel {self.name}: statement names must be unique")

    def walk_loops(self) -> Iterator[Tuple[Loop, Tuple[Loop, ...]]]:
        """Yield ``(loop, ancestors)`` in pre-order; ancestors outermost first."""
        def recurse(loop: Loop, ancestors: Tuple[Loop, ...]):
            yield loop, ancestors
            for child in loop.child_loops():
                yield from recurse(child, (*ancestors, loop))

        for root in self.roots:
            yield from recurse(root, ())

    def walk_stmts(self) -> Iterator[Tuple[Stmt, Tuple[Loop, ...]]]:
        """Yield ``(stmt, surrounding loops)`` in textual order."""
        def recurse(loop: Loop, ancestors: Tuple[Loop, ...]):
            surrounding = (*ancestors, loop)
            for child in loop.body:
                if isinstance(child, Stmt):
                    yield child, surrounding
                else:
                    yield from recurse(child, surrounding)

        for root in self.roots:
            yield from recurse(root, ())

    def loop_by_var(self, var: str) -> Loop:
        for loop, _ in self.walk_loops():
            if loop.var == var:
                return loop
        raise KeyError(f"kernel {self.name}: no loop {var}")

    def stmt_by_name(self, name: str) -> Stmt:
        for stmt, _ in self.walk_stmts():
            if stmt.name == name:
                return stmt
        raise KeyError(f"kernel {self.name}: no statement {name}")

    def surrounding_loops(self, stmt_name: str) -> Tuple[Loop, ...]:
        for stmt, loops in self.walk_stmts():
            if stmt.name == stmt_name:
                return loops
        raise KeyError(stmt_name)

    # -- polyhedral views ---------------------------------------------------

    def stmt_domain(self, stmt_name: str) -> Domain:
        """The statement's iteration domain (loop ranges + all guards)."""
        stmt = self.stmt_by_name(stmt_name)
        loops = self.surrounding_loops(stmt_name)
        guards = ConstraintSystem()
        for loop in loops:
            guards.extend(loop.guards)
        guards.extend(stmt.guards)
        return Domain([loop.loop_range for loop in loops], guards)

    def stmt_schedule(self, stmt_name: str) -> Schedule:
        """The 2d+1 Kelly schedule of a statement (Section 2.2.1)."""
        target = self.stmt_by_name(stmt_name)
        dims: List[ScheduleDim] = []

        def locate(body: Sequence[Union[Loop, Stmt]]) -> bool:
            for position, child in enumerate(body):
                saved = len(dims)
                if child is target:
                    dims.append(ScheduleDim.static(position))
                    return True
                if isinstance(child, Loop):
                    dims.append(ScheduleDim.static(position))
                    dims.append(ScheduleDim.loop(child.var))
                    if locate(child.body):
                        return True
                del dims[saved:]
            return False

        if not locate(list(self.roots_as_body())):
            raise KeyError(stmt_name)
        return Schedule(dims)

    def roots_as_body(self) -> List[Union[Loop, Stmt]]:
        return list(self.roots)

    def stmts_under(self, loop: Loop) -> List[Stmt]:
        """All statements (transitively) inside *loop*."""
        out: List[Stmt] = []

        def recurse(node: Loop):
            for child in node.body:
                if isinstance(child, Stmt):
                    out.append(child)
                else:
                    recurse(child)

        recurse(loop)
        return out

    def arrays_under(self, loop: Loop) -> List[Array]:
        seen: Dict[str, Array] = {}
        for stmt in self.stmts_under(loop):
            for array in stmt.arrays():
                seen.setdefault(array.name, array)
        return list(seen.values())

    def __repr__(self) -> str:
        return f"Kernel({self.name}, roots={[r.var for r in self.roots]})"
