"""The loop-tree application model of Section 3.3.

Each kernel loop becomes a :class:`LoopTreeNode` carrying the paper's
attributes: ``N`` (trip count), ``S`` (stride), ``begin``, ``I`` (number of
times the loop is executed), ``parallel`` and its children.  Construction
performs the top-to-bottom validity check of Section 3.3/5.2.1: when a
level fails the tiling-legality check, all sub-loop levels *including that
node* are folded into its parent, which becomes a leaf.

Legality criteria (see :mod:`repro.loopir.validity` for the rationale):

- *tilable(l)*: no dependence direction vector has a ``>`` component at
  ``l`` while being carried at a level within the perfect chain containing
  ``l`` (i.e. at or below the chain head).  Vectors carried strictly above
  the chain head are ordered by the enclosing sequential loops and impose
  nothing — e.g. the LSTM dependences carried by the time loop.
- *parallel(l)*: every direction vector not carried above the chain head
  has an ``=`` component at ``l`` (the paper's "all of them are 0" check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..poly.dependence import Dependence, DependenceAnalyzer, StatementInfo
from .ast import Kernel, Loop, Stmt
from .validity import (
    chain_heads,
    count_guarded_executions,
    level_parallel,
    level_tilable,
)


def statement_infos(kernel: Kernel) -> List[StatementInfo]:
    """The per-statement domain/schedule/access records the polyhedral
    dependence tester consumes, in textual order."""
    return [
        StatementInfo(
            name=stmt.name,
            domain=kernel.stmt_domain(stmt.name),
            schedule=kernel.stmt_schedule(stmt.name),
            accesses=stmt.accesses,
        )
        for stmt, _ in kernel.walk_stmts()
    ]


def analyze_dependences(kernel: Kernel) -> List[Dependence]:
    """The kernel's full ``Dep`` set (every ordered statement pair)."""
    return DependenceAnalyzer(statement_infos(kernel)).analyze()


@dataclass
class LoopTreeNode:
    """One loop level of the application model."""

    loop: Loop
    N: int
    S: int
    begin: int
    I: int
    parallel: bool
    tilable: bool
    children: List["LoopTreeNode"] = field(default_factory=list)
    folded: bool = False   # True when sub-levels were absorbed into this node

    @property
    def var(self) -> str:
        return self.loop.var

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        flags = []
        if self.parallel:
            flags.append("parallel")
        if self.folded:
            flags.append("folded")
        if not self.tilable:
            flags.append("untilable")
        tag = f" [{', '.join(flags)}]" if flags else ""
        return f"LoopTreeNode({self.var}, N={self.N}, I={self.I}{tag})"


class LoopTree:
    """The application model: loop forest + the kernel's dependences."""

    def __init__(self, kernel: Kernel, roots: Sequence[LoopTreeNode],
                 dependences: Sequence[Dependence]):
        self.kernel = kernel
        self.roots: Tuple[LoopTreeNode, ...] = tuple(roots)
        self.dependences: Tuple[Dependence, ...] = tuple(dependences)

    @classmethod
    def build(cls, kernel: Kernel,
              dependences: Sequence[Dependence] | None = None) -> "LoopTree":
        """Analyze dependences (unless given) and build the folded tree."""
        if dependences is None:
            dependences = analyze_dependences(kernel)

        heads = chain_heads(kernel)
        roots = [
            cls._build_node(kernel, root, (), dependences, heads)
            for root in kernel.roots
        ]
        return cls(kernel, roots, dependences)

    @classmethod
    def _build_node(cls, kernel: Kernel, loop: Loop,
                    ancestors: Tuple[Loop, ...],
                    dependences: Sequence[Dependence],
                    heads: Dict[str, str]) -> LoopTreeNode:
        executions = count_guarded_executions(loop, ancestors)
        node = LoopTreeNode(
            loop=loop,
            N=loop.n,
            S=loop.stride,
            begin=loop.begin,
            I=executions,
            parallel=level_parallel(loop.var, dependences, heads),
            tilable=level_tilable(loop.var, dependences, heads),
        )
        if not node.tilable:
            # This level fails the check: the caller will fold it.  As a
            # root it has no parent, so it becomes a non-tilable leaf.
            node.folded = bool(loop.child_loops())
            node.parallel = False
            return node

        for child in loop.child_loops():
            child_node = cls._build_node(
                kernel, child, (*ancestors, loop), dependences, heads)
            if not child_node.tilable:
                # Section 3.3: fold all sub-levels including the failing
                # child into this node, making it a leaf.
                node.children = []
                node.folded = True
                return node
            node.children.append(child_node)
        return node

    # -- queries used by the optimizer -----------------------------------

    def node_by_var(self, var: str) -> LoopTreeNode:
        for root in self.roots:
            for node in root.walk():
                if node.var == var:
                    return node
        raise KeyError(f"no loop-tree node for iterator {var!r}")

    def stmts_under_node(self, node: LoopTreeNode) -> List[Stmt]:
        """All statements executed inside this node (incl. folded levels)."""
        return self.kernel.stmts_under(node.loop)

    def render(self) -> str:
        """Human-readable tree dump (mirrors Figure 3.2)."""
        lines: List[str] = []

        def emit(node: LoopTreeNode, indent: int):
            pad = "  " * indent
            par = "T" if node.parallel else "F"
            lines.append(
                f"{pad}{node.var}: N={node.N} I={node.I} parallel={par}"
                + (" (folded leaf)" if node.folded else ""))
            for child in node.children:
                emit(child, indent + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)
