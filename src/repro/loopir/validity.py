"""Legality checks and execution counting for loop-tree construction.

See :mod:`repro.loopir.looptree` for how these are combined.  The criteria
are derived from Section 5.2.1's Eq. 5.1 applied to the tiled schedule of
Section 5.2.2:

- Tiling a band reorders two dependent instances only when some dependence
  direction vector has a ``>`` component at a band level while being
  carried (first ``<``) at another band level: the floor parts can then tie
  or invert.  Vectors carried *above* the band execute in different
  iterations of an enclosing sequential loop and are always respected.
  Hence level ``l`` is tilable iff no vector has ``>`` at ``l`` carried at
  or below the head of the perfect chain containing ``l``.
- Level ``l`` is parallelizable iff every vector not carried above the
  chain head has component ``=`` (distance 0) at ``l`` — the paper's
  "check its corresponding index in related dependence distances, if all
  of them are 0" rule.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Mapping, Sequence, Tuple

from ..poly.constraint import Constraint, EQ
from ..poly.dependence import Dependence
from .ast import Kernel, Loop


# ---------------------------------------------------------------------------
# chain structure


def is_chain_extendable(loop: Loop) -> bool:
    """True when *loop*'s body is exactly one loop (perfect nesting step)."""
    return len(loop.body) == 1 and isinstance(loop.body[0], Loop)


def chain_heads(kernel: Kernel) -> Dict[str, str]:
    """Map every loop iterator to the head iterator of its perfect chain.

    A chain head is a root loop or any loop whose parent is not perfectly
    nested around it; tilable components (Section 3.4) are always contiguous
    sub-chains starting at a head, so legality exemptions for dependences
    "carried outside the component" key off these heads.
    """
    heads: Dict[str, str] = {}

    def descend(loop: Loop, head: str):
        heads[loop.var] = head
        extend = is_chain_extendable(loop)
        for child in loop.child_loops():
            descend(child, head if extend else child.var)

    for root in kernel.roots:
        descend(root, root.var)
    return heads


# ---------------------------------------------------------------------------
# per-level legality


def _carried_level(direction: Tuple[str, ...]):
    """Index of the first non-'=' component, or None if loop independent."""
    for index, sign in enumerate(direction):
        if sign != "=":
            return index
    return None


def level_tilable(var: str, dependences: Sequence[Dependence],
                  heads: Mapping[str, str]) -> bool:
    """Whether loop *var* may participate in a tiled band with its chain."""
    head = heads[var]
    for dep in dependences:
        if var not in dep.shared_loops:
            continue
        level = dep.shared_loops.index(var)
        if head not in dep.shared_loops:
            # The chain head is always an ancestor of var, hence shared.
            raise AssertionError(
                f"chain head {head} of {var} missing from shared loops "
                f"{dep.shared_loops} of {dep}")
        head_level = dep.shared_loops.index(head)
        for direction in dep.directions:
            if direction[level] != ">":
                continue
            carried = _carried_level(direction)
            if carried is not None and carried >= head_level:
                return False
    return True


def level_parallel(var: str, dependences: Sequence[Dependence],
                   heads: Mapping[str, str]) -> bool:
    """Whether tiles over different ranges of *var* may run on different
    threads (Section 3.3's ``l.parallel``)."""
    head = heads[var]
    for dep in dependences:
        if var not in dep.shared_loops:
            continue
        level = dep.shared_loops.index(var)
        head_level = dep.shared_loops.index(head)
        for direction in dep.directions:
            carried = _carried_level(direction)
            if carried is not None and carried < head_level:
                continue   # ordered by an enclosing sequential loop
            if direction[level] != "=":
                return False
    return True


# ---------------------------------------------------------------------------
# execution counting (l.I)


def count_guarded_executions(loop: Loop, ancestors: Tuple[Loop, ...]) -> int:
    """Number of times *loop* executes: guarded ancestor combinations.

    ``l.I = 1`` for root loops.  Guards constraining a single ancestor
    iterator (the only form in the corpus — e.g. ``t > 0``) are handled by
    exact interval narrowing; small multi-iterator guard systems fall back
    to enumeration; oversized ones are counted conservatively (the guard is
    ignored, overestimating ``I``), which is safe for makespan bounds.
    """
    if not ancestors:
        return 1

    constraints = []
    for ancestor in ancestors:
        constraints.extend(ancestor.guards)
    constraints.extend(loop.guards)

    bounds: Dict[str, Tuple[int, int]] = {
        a.var: (a.begin, a.loop_range.last) for a in ancestors
    }
    strides: Dict[str, int] = {a.var: a.stride for a in ancestors}
    begins: Dict[str, int] = {a.var: a.begin for a in ancestors}

    multi = []
    for constraint in constraints:
        variables = sorted(constraint.variables())
        if len(variables) == 0:
            if not constraint.satisfied({}):
                return 0
            continue
        if len(variables) == 1:
            var = variables[0]
            if var not in bounds:
                raise ValueError(
                    f"guard on {loop.var} references non-ancestor {var!r}")
            new = _narrow(bounds[var], constraint, var)
            if new is None:
                return 0
            bounds[var] = new
        else:
            multi.append(constraint)

    counts = {}
    for var, (lo, hi) in bounds.items():
        counts[var] = _lattice_count(lo, hi, begins[var], strides[var])
        if counts[var] == 0:
            return 0

    total = 1
    for value in counts.values():
        total *= value

    if not multi:
        return total
    if total <= 200_000:
        return _enumerate_count(bounds, begins, strides, multi)
    return total   # conservative overestimate; documented above


def _narrow(interval: Tuple[int, int], constraint: Constraint, var: str):
    """Intersect an interval with a single-variable affine constraint."""
    lo, hi = interval
    coeff = constraint.expr.coeff(var)
    const = constraint.expr.constant
    if constraint.kind == EQ:
        # coeff*var + const == 0
        if const % coeff != 0:
            return None
        value = -const // coeff
        if value < lo or value > hi:
            return None
        return (value, value)
    # coeff*var + const >= 0
    if coeff > 0:
        lo = max(lo, math.ceil(Fraction(-const, coeff)))
    else:
        hi = min(hi, math.floor(Fraction(-const, coeff)))
    if lo > hi:
        return None
    return (lo, hi)


def _lattice_count(lo: int, hi: int, begin: int, stride: int) -> int:
    """Points of the arithmetic progression begin, begin+stride, ... in [lo, hi]."""
    if lo > hi:
        return 0
    first = lo + (begin - lo) % stride
    if first < lo:
        first += stride
    if first > hi:
        return 0
    return (hi - first) // stride + 1


def _enumerate_count(bounds, begins, strides, constraints) -> int:
    """Exact count by enumeration (small guard systems only)."""
    names = sorted(bounds)
    total = 0

    def recurse(index: int, point: Dict[str, int]):
        nonlocal total
        if index == len(names):
            if all(c.satisfied(point) for c in constraints):
                total += 1
            return
        var = names[index]
        lo, hi = bounds[var]
        first = lo + (begins[var] - lo) % strides[var]
        for value in range(first, hi + 1, strides[var]):
            point[var] = value
            recurse(index + 1, point)

    recurse(0, {})
    return total
